#include "support/thread_pool.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace gmm::support {

ThreadPool::ThreadPool(std::size_t worker_count) {
  if (worker_count == 0) {
    worker_count = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  GMM_ASSERT(task != nullptr, "null task submitted to ThreadPool");
  {
    const std::scoped_lock lock(mutex_);
    GMM_ASSERT(!stopping_, "submit after ThreadPool shutdown");
    queue_.push(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();
    {
      const std::scoped_lock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  // Block-cyclic chunking: one task per worker scanning a shared counter
  // would serialize on tiny bodies; instead carve [0, count) into
  // contiguous chunks, a few per worker for load balance.
  const std::size_t chunks =
      std::min(count, pool.worker_count() * std::size_t{4});
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(count, begin + chunk_size);
    if (begin >= end) break;
    pool.submit([begin, end, &body] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }
  pool.wait_idle();
}

}  // namespace gmm::support
