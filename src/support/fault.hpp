// Deterministic, named fault-point injection.
//
// Production failure modes — partial socket writes, singular LU
// refactorizations, corrupted cache entries, wedged solves — are rare by
// construction, so the code paths that absorb them rot unless they can be
// forced on demand.  This registry names each such path as a fault *site*
// and lets a test (or an operator, via the GMM_FAULTS environment variable)
// arm a deterministic schedule of failures against it.
//
// Grammar (round-trippable through fault_spec_to_string):
//
//   spec     := [ "seed=" u64 "," ] clause { "," clause }
//   clause   := site ":" action "@" trigger | site ":" action
//   trigger  := real in (0,1)   fire each evaluation with that probability
//             | integer N >= 1  fire on exactly the Nth evaluation
//             | "once"          alias for @1
//             | "always"        fire on every evaluation (also the default)
//
// Example: GMM_FAULTS="seed=7,socket.write:partial@0.05,lu.refactor:singular@3"
//
// Sites and their allowed actions are a closed table (see known_fault_sites);
// unknown sites or actions reject at parse time, so a typo in a chaos spec
// fails loudly instead of silently arming nothing.
//
// Determinism: each clause draws from its own xoshiro stream seeded by
// (spec seed, site, action), so one site's evaluation count never perturbs
// another site's schedule, and the same spec replays the same schedule on
// every platform.
//
// Cost when disarmed: GMM_FAULT is a single relaxed atomic load.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gmm::support {

/// When a fault clause fires relative to its site's evaluation count.
enum class FaultTrigger : std::uint8_t {
  kAlways,       ///< every evaluation
  kOnce,         ///< first evaluation only
  kNth,          ///< exactly the Nth evaluation (1-based)
  kProbability,  ///< independent Bernoulli draw per evaluation
};

/// One armed `site:action@trigger` clause.
struct FaultClause {
  std::string site;
  std::string action;
  FaultTrigger trigger = FaultTrigger::kAlways;
  double probability = 0.0;  ///< kProbability only, in (0, 1)
  std::int64_t nth = 1;      ///< kNth only, 1-based

  bool operator==(const FaultClause& other) const {
    return site == other.site && action == other.action &&
           trigger == other.trigger && probability == other.probability &&
           nth == other.nth;
  }
};

/// Result of parsing a fault spec string.
struct FaultSpec {
  bool ok = false;
  std::string error;  ///< set when !ok
  std::uint64_t seed = 0;
  std::vector<FaultClause> clauses;
};

/// Parse a spec string (see grammar above).  Empty input parses to an ok
/// spec with no clauses (disarmed).
FaultSpec parse_fault_spec(const std::string& text);

/// Canonical printer; parse_fault_spec(fault_spec_to_string(s)) == s for
/// any valid spec.  Always leads with the seed clause.
std::string fault_spec_to_string(const FaultSpec& spec);

/// True when `site` exists and allows `action`.
bool fault_site_known(const std::string& site, const std::string& action);

/// Every known "site:action" pair, for diagnostics and test sweeps.
std::vector<std::string> known_fault_points();

/// Counters for one armed clause, for test accounting.
struct FaultCount {
  std::string site;
  std::string action;
  std::int64_t evaluations = 0;
  std::int64_t fires = 0;
};

/// A seeded schedule of armed fault clauses.  Thread-safe; the disarmed
/// fast path is one relaxed atomic load.  Normally used through the
/// process-global instance (global_faults() / GMM_FAULT), but tests can
/// construct private injectors to check schedule determinism.
class FaultInjector {
 public:
  // Both out of line: ArmedClause is incomplete here and the implicit
  // member definitions need vector<ArmedClause>'s destructor.
  FaultInjector();
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arm the given spec (replacing any previous one).  Returns false and
  /// sets `error` on parse failure; the previous arming is kept.
  bool arm(const std::string& spec_text, std::string& error);

  /// Drop all clauses and reset counters.
  void disarm();

  /// True when at least one clause is armed.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Evaluate the (site, action) point: true when an armed clause says
  /// this evaluation fails.  Callers go through GMM_FAULT, which skips
  /// the call entirely when disarmed.
  bool fire(const char* site, const char* action);

  /// Total fires across all clauses since arming.
  std::int64_t total_fires() const;

  /// Per-clause counters snapshot.
  std::vector<FaultCount> counts() const;

  /// The armed spec in canonical form ("" when disarmed).
  std::string spec_string() const;

 private:
  struct ArmedClause;

  std::atomic<bool> armed_{false};
  mutable std::mutex mutex_;
  std::uint64_t seed_ = 0;
  std::vector<ArmedClause> clauses_;
};

/// The process-global injector GMM_FAULT consults.  Arming is always an
/// explicit act (mapper_serve --faults / GMM_FAULTS read in main / a test
/// calling arm) — nothing arms at static-init time.
FaultInjector& global_faults();

}  // namespace gmm::support

/// True when the named fault point should fail right now.  Zero-cost when
/// no spec is armed (single relaxed load, no function call into the
/// registry).
#define GMM_FAULT(site, action)                   \
  (::gmm::support::global_faults().armed() &&     \
   ::gmm::support::global_faults().fire((site), (action)))
