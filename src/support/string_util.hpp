// Small string helpers shared by the text-format parsers and reporters.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gmm::support {

/// Strip leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on a delimiter character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on arbitrary whitespace runs; empty tokens are dropped.
std::vector<std::string> split_ws(std::string_view s);

/// True iff `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Fixed-width decimal formatting with the given number of fractional
/// digits ("12.3", "0.04"); used by the paper-style tables.
std::string format_fixed(double value, int digits);

/// Parse a non-negative integer; returns false on any non-digit input.
bool parse_int(std::string_view s, std::int64_t& out);

/// Parse a double; returns false on malformed input.
bool parse_double(std::string_view s, double& out);

}  // namespace gmm::support
