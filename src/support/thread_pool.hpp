// Fixed-size worker pool with a parallel_for convenience wrapper.
//
// Used for the embarrassingly-parallel layers of the system: per-bank-type
// detailed mapping, Table-3 design-point sweeps, and the simulator's
// per-trace replay.  Tasks are type-erased closures on a single locked
// queue; for our task granularities (milliseconds to minutes) queue
// contention is irrelevant, so we prefer the simple, obviously-correct
// structure over work stealing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gmm::support {

class ThreadPool {
 public:
  /// Spawn `worker_count` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t worker_count = 0);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task.  Tasks must not throw; exceptions abort the process
  /// (solver tasks report failure through their own result channels).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Run body(i) for i in [0, count) across the pool, blocking until done.
/// Iterations must be independent; `body` is shared by all workers and so
/// must be callable concurrently.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

}  // namespace gmm::support
