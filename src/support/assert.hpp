// Lightweight always-on assertion macros.
//
// GMM_ASSERT fires in all build types: the mapping pipeline is built on
// combinatorial invariants (port counts, capacity ceilings, basis
// consistency) whose violation means a wrong answer, not a slow one, so we
// never compile the checks out.  GMM_DEBUG_ASSERT is for hot-loop checks
// that are too expensive for Release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace gmm::support {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "gmm: assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace gmm::support

#define GMM_ASSERT(expr, msg)                                       \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::gmm::support::assert_fail(#expr, __FILE__, __LINE__, msg);  \
    }                                                               \
  } while (false)

#ifndef NDEBUG
#define GMM_DEBUG_ASSERT(expr, msg) GMM_ASSERT(expr, msg)
#else
#define GMM_DEBUG_ASSERT(expr, msg) \
  do {                              \
  } while (false)
#endif
