#include "support/fault.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/rng.hpp"
#include "support/string_util.hpp"

namespace gmm::support {

namespace {

/// Closed table of instrumented fault points.  A spec naming anything
/// outside this table is a typo and rejects at parse time.
struct KnownSite {
  const char* site;
  const char* actions[4];  // nullptr-terminated
};

constexpr KnownSite kKnownSites[] = {
    {"lu.refactor", {"singular", nullptr}},
    {"lp.basis_load", {"corrupt", nullptr}},
    {"ilp.node", {"stall", nullptr}},
    {"ilp.alloc", {"fail", nullptr}},
    {"service.json", {"fail", nullptr}},
    {"service.admission", {"reject", nullptr}},
    {"cache.verify", {"corrupt", nullptr}},
    {"socket.accept", {"fail", nullptr}},
    {"socket.read", {"short", "eintr", "econnreset", nullptr}},
    {"socket.write", {"partial", "eintr", "econnreset", nullptr}},
};

/// FNV-1a, to give every (site, action) pair its own stable stream id.
std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Shortest exact formatting is not portable pre-C++17 to_chars-for-double
/// everywhere we build, so print 17 significant digits: enough that
/// strtod(print(p)) == p for every double, which is what the round-trip
/// property needs.
std::string probability_to_string(double p) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", p);
  return buffer;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  out = static_cast<std::uint64_t>(value);
  return true;
}

/// Parse one trigger token ("0.05", "3", "once", "always").
bool parse_trigger(const std::string& text, FaultClause& clause,
                   std::string& error) {
  if (text == "once") {
    clause.trigger = FaultTrigger::kOnce;
    return true;
  }
  if (text == "always") {
    clause.trigger = FaultTrigger::kAlways;
    return true;
  }
  if (text.find('.') != std::string::npos) {
    char* end = nullptr;
    errno = 0;
    const double p = std::strtod(text.c_str(), &end);
    if (errno != 0 || end != text.c_str() + text.size() || !(p > 0.0) ||
        !(p < 1.0)) {
      error = "probability trigger '" + text + "' must be in (0, 1)";
      return false;
    }
    clause.trigger = FaultTrigger::kProbability;
    clause.probability = p;
    return true;
  }
  std::uint64_t nth = 0;
  if (!parse_u64(text, nth) || nth < 1 ||
      nth > static_cast<std::uint64_t>(INT64_MAX)) {
    error = "trigger '" + text +
            "' must be a probability in (0, 1), a positive "
            "evaluation index, 'once', or 'always'";
    return false;
  }
  clause.trigger = FaultTrigger::kNth;
  clause.nth = static_cast<std::int64_t>(nth);
  return true;
}

}  // namespace

bool fault_site_known(const std::string& site, const std::string& action) {
  for (const KnownSite& known : kKnownSites) {
    if (site != known.site) continue;
    for (const char* const* a = known.actions; *a != nullptr; ++a) {
      if (action == *a) return true;
    }
    return false;
  }
  return false;
}

std::vector<std::string> known_fault_points() {
  std::vector<std::string> points;
  for (const KnownSite& known : kKnownSites) {
    for (const char* const* a = known.actions; *a != nullptr; ++a) {
      points.push_back(std::string(known.site) + ":" + *a);
    }
  }
  return points;
}

FaultSpec parse_fault_spec(const std::string& text) {
  FaultSpec spec;
  spec.ok = true;
  const std::vector<std::string> tokens = split(text, ',');
  bool seen_clause = false;
  for (const std::string& raw : tokens) {
    const std::string token(trim(raw));
    if (token.empty()) {
      if (tokens.size() == 1) break;  // empty spec: disarmed, ok
      spec.ok = false;
      spec.error = "empty clause in fault spec";
      return spec;
    }
    if (token.rfind("seed=", 0) == 0) {
      if (seen_clause) {
        spec.ok = false;
        spec.error = "'seed=' must be the first clause";
        return spec;
      }
      if (!parse_u64(token.substr(5), spec.seed)) {
        spec.ok = false;
        spec.error = "malformed seed '" + token + "'";
        return spec;
      }
      seen_clause = true;
      continue;
    }
    const std::size_t colon = token.find(':');
    if (colon == std::string::npos || colon == 0) {
      spec.ok = false;
      spec.error = "clause '" + token + "' is not of the form site:action";
      return spec;
    }
    FaultClause clause;
    clause.site = token.substr(0, colon);
    const std::size_t at = token.find('@', colon + 1);
    if (at == std::string::npos) {
      clause.action = token.substr(colon + 1);
    } else {
      clause.action = token.substr(colon + 1, at - colon - 1);
      std::string error;
      if (!parse_trigger(token.substr(at + 1), clause, error)) {
        spec.ok = false;
        spec.error = error;
        return spec;
      }
    }
    if (clause.action.empty()) {
      spec.ok = false;
      spec.error = "clause '" + token + "' has an empty action";
      return spec;
    }
    if (!fault_site_known(clause.site, clause.action)) {
      spec.ok = false;
      spec.error = "unknown fault point '" + clause.site + ":" +
                   clause.action + "'";
      return spec;
    }
    spec.clauses.push_back(std::move(clause));
    seen_clause = true;
  }
  return spec;
}

std::string fault_spec_to_string(const FaultSpec& spec) {
  std::string out = "seed=" + std::to_string(spec.seed);
  for (const FaultClause& clause : spec.clauses) {
    out += "," + clause.site + ":" + clause.action + "@";
    switch (clause.trigger) {
      case FaultTrigger::kAlways:
        out += "always";
        break;
      case FaultTrigger::kOnce:
        out += "once";
        break;
      case FaultTrigger::kNth:
        out += std::to_string(clause.nth);
        break;
      case FaultTrigger::kProbability:
        out += probability_to_string(clause.probability);
        break;
    }
  }
  return out;
}

struct FaultInjector::ArmedClause {
  FaultClause clause;
  Rng rng{0};
  std::int64_t evaluations = 0;
  std::int64_t fires = 0;
};

FaultInjector::FaultInjector() = default;
FaultInjector::~FaultInjector() = default;

bool FaultInjector::arm(const std::string& spec_text, std::string& error) {
  FaultSpec spec = parse_fault_spec(spec_text);
  if (!spec.ok) {
    error = spec.error;
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  seed_ = spec.seed;
  clauses_.clear();
  clauses_.reserve(spec.clauses.size());
  std::size_t index = 0;
  for (FaultClause& clause : spec.clauses) {
    ArmedClause armed;
    // Every clause gets its own stream keyed by (seed, point, position):
    // one site's evaluation count never perturbs another site's schedule,
    // and duplicate clauses for the same point stay independent.
    armed.rng.reseed(spec.seed ^ fnv1a(clause.site + ":" + clause.action) ^
                     (0x9e3779b97f4a7c15ULL * (index + 1)));
    armed.clause = std::move(clause);
    clauses_.push_back(std::move(armed));
    ++index;
  }
  armed_.store(!clauses_.empty(), std::memory_order_relaxed);
  return true;
}

void FaultInjector::disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.store(false, std::memory_order_relaxed);
  clauses_.clear();
  seed_ = 0;
}

bool FaultInjector::fire(const char* site, const char* action) {
  std::lock_guard<std::mutex> lock(mutex_);
  bool fired = false;
  for (ArmedClause& armed : clauses_) {
    if (armed.clause.site != site || armed.clause.action != action) continue;
    ++armed.evaluations;
    bool hit = false;
    switch (armed.clause.trigger) {
      case FaultTrigger::kAlways:
        hit = true;
        break;
      case FaultTrigger::kOnce:
        hit = armed.evaluations == 1;
        break;
      case FaultTrigger::kNth:
        hit = armed.evaluations == armed.clause.nth;
        break;
      case FaultTrigger::kProbability:
        // One draw per evaluation, hit or not, so the schedule is a pure
        // function of (seed, point, evaluation index).
        hit = armed.rng.bernoulli(armed.clause.probability);
        break;
    }
    if (hit) {
      ++armed.fires;
      fired = true;
    }
  }
  return fired;
}

std::int64_t FaultInjector::total_fires() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::int64_t total = 0;
  for (const ArmedClause& armed : clauses_) total += armed.fires;
  return total;
}

std::vector<FaultCount> FaultInjector::counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FaultCount> out;
  out.reserve(clauses_.size());
  for (const ArmedClause& armed : clauses_) {
    FaultCount count;
    count.site = armed.clause.site;
    count.action = armed.clause.action;
    count.evaluations = armed.evaluations;
    count.fires = armed.fires;
    out.push_back(std::move(count));
  }
  return out;
}

std::string FaultInjector::spec_string() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (clauses_.empty()) return "";
  FaultSpec spec;
  spec.ok = true;
  spec.seed = seed_;
  for (const ArmedClause& armed : clauses_) spec.clauses.push_back(armed.clause);
  return fault_spec_to_string(spec);
}

FaultInjector& global_faults() {
  static FaultInjector injector;
  return injector;
}

}  // namespace gmm::support
