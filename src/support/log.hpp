// Minimal leveled logging.
//
// The solver and mappers log progress (B&B incumbents, presolve reductions,
// detailed-mapping fragmentation) at Debug/Info; benches run at Warn so the
// paper-style tables stay clean.  Thread-safe: each message is formatted
// into one string and written with a single mutex-guarded call.
#pragma once

#include <sstream>
#include <string>

namespace gmm::support {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one formatted line (internal; prefer the GMM_LOG macro).
void log_line(LogLevel level, const std::string& message);

}  // namespace gmm::support

/// Usage: GMM_LOG(kInfo) << "presolve removed " << n << " rows";
#define GMM_LOG(level_name)                                                  \
  for (bool gmm_log_once =                                                   \
           ::gmm::support::log_level() <= ::gmm::support::LogLevel::level_name; \
       gmm_log_once; gmm_log_once = false)                                   \
  ::gmm::support::LogStream(::gmm::support::LogLevel::level_name)

namespace gmm::support {

/// RAII stream that flushes its buffer as one log line on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, buffer_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    buffer_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream buffer_;
};

}  // namespace gmm::support
