#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace gmm::support {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_write_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  const std::scoped_lock lock(g_write_mutex);
  std::fprintf(stderr, "[gmm %s] %s\n", level_tag(level), message.c_str());
}

}  // namespace gmm::support
