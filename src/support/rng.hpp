// Deterministic, platform-independent pseudo-random numbers.
//
// std::mt19937 with std::uniform_int_distribution is not guaranteed to
// produce identical streams across standard libraries, which would make
// the workload generator non-reproducible.  We therefore ship our own
// xoshiro256** generator (Blackman & Vigna) plus bias-free bounded draws,
// seeded through SplitMix64 as its authors recommend.
#pragma once

#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace gmm::support {

/// xoshiro256** PRNG.  Fast, 256-bit state, passes BigCrush; every stream
/// is fully determined by the 64-bit seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] inclusive (lo <= hi), bias-free.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform_real();

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) { return uniform_real() < p; }

  /// Uniformly pick an index in [0, n).
  std::size_t index(std::size_t n) {
    GMM_ASSERT(n > 0, "cannot pick from empty range");
    return static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Pick a random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[index(v.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Derive an independent child seed; used to give each generated design
  /// point its own stream so points do not perturb each other.
  std::uint64_t fork_seed() { return next_u64(); }

 private:
  std::uint64_t s_[4] = {};
};

}  // namespace gmm::support
