#include "support/rng.hpp"

namespace gmm::support {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// SplitMix64 step; used only for seeding.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state would lock the generator; splitmix64 cannot produce four
  // zero words from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  GMM_ASSERT(lo <= hi, "uniform_int requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = (~std::uint64_t{0} / span) * span;
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::uniform_real() {
  // 53 top bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

}  // namespace gmm::support
