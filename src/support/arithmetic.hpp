// Exact integer arithmetic helpers for the capacity/port math.
//
// The paper's pre-processing (Section 4.1.1) rounds fragment depths to
// powers of two and divides bank space into port fractions; everything here
// is 64-bit, overflow-checked where a product can plausibly overflow, and
// constexpr so the device catalog can be table-driven.
#pragma once

#include <cstdint>
#include <limits>

#include "support/assert.hpp"

namespace gmm::support {

/// Ceiling division for non-negative integers: ceil(a / b), b > 0.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  GMM_DEBUG_ASSERT(a >= 0 && b > 0, "ceil_div requires a >= 0, b > 0");
  return (a + b - 1) / b;
}

/// True iff v is a power of two (1, 2, 4, ...). Zero is not a power of two.
constexpr bool is_pow2(std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; }

/// Smallest power of two >= v (v >= 1).  This is the paper's
/// `round(D, pow(2))` used by consumed_ports() (Figure 3): a fragment of
/// depth D occupies the next power-of-two block so that no base-address
/// adder logic is needed.
constexpr std::int64_t round_up_pow2(std::int64_t v) {
  GMM_DEBUG_ASSERT(v >= 1, "round_up_pow2 requires v >= 1");
  std::int64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Largest power of two <= v (v >= 1).
constexpr std::int64_t round_down_pow2(std::int64_t v) {
  GMM_DEBUG_ASSERT(v >= 1, "round_down_pow2 requires v >= 1");
  std::int64_t p = 1;
  while ((p << 1) <= v) p <<= 1;
  return p;
}

/// floor(log2(v)) for v >= 1.
constexpr int ilog2_floor(std::int64_t v) {
  GMM_DEBUG_ASSERT(v >= 1, "ilog2_floor requires v >= 1");
  int k = 0;
  while (v > 1) {
    v >>= 1;
    ++k;
  }
  return k;
}

/// ceil(log2(v)) for v >= 1.  Number of address bits needed for v words.
constexpr int ilog2_ceil(std::int64_t v) {
  GMM_DEBUG_ASSERT(v >= 1, "ilog2_ceil requires v >= 1");
  return is_pow2(v) ? ilog2_floor(v) : ilog2_floor(v) + 1;
}

/// Overflow-checked multiply of non-negative 64-bit values.  Capacity
/// products (depth * width * instances) stay far below 2^63 for any real
/// board, so an overflow indicates corrupted input and aborts.
constexpr std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  GMM_DEBUG_ASSERT(a >= 0 && b >= 0, "checked_mul requires non-negative");
  if (a != 0 && b > std::numeric_limits<std::int64_t>::max() / a) {
    GMM_ASSERT(false, "integer overflow in checked_mul");
  }
  return a * b;
}

}  // namespace gmm::support
