#include "support/string_util.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace gmm::support {

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin])) != 0) {
    ++begin;
  }
  std::size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i])) != 0) {
      ++i;
    }
    std::size_t start = i;
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i])) == 0) {
      ++i;
    }
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

bool parse_int(std::string_view s, std::int64_t& out) {
  s = trim(s);
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_double(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

}  // namespace gmm::support
