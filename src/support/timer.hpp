// Wall-clock timing for the Table-3 execution-time measurements.
#pragma once

#include <chrono>

namespace gmm::support {

/// Monotonic wall-clock stopwatch.  Started on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gmm::support
