// Cooperative cancellation and deadlines for long-running solves.
//
// A CancelToken is shared (shared_ptr) between a requester — the mapping
// service, a CLI signal handler, a test — and the solve it governs.  The
// requester flips `cancel()` or arms a deadline; the solver polls
// `cancelled()` / `deadline_passed()` at its node boundaries (cheap:
// two relaxed atomic loads) and stops cooperatively.  Cancellation is
// level-triggered and irrevocable: once set it stays set, so a token must
// not be reused across requests.
//
// The deadline is stored as steady-clock nanoseconds in an atomic, so
// arming and polling need no lock and tokens are safe to share between
// any number of requester and worker threads.
#pragma once

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

namespace gmm::support {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Request cooperative cancellation.  Irrevocable.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Cancel because the governed solve stopped making progress (watchdog).
  /// The solver still stops through the ordinary cancelled() path; the
  /// cause lets the requester report `stalled` instead of `cancelled`.
  void cancel_stalled() {
    stalled_.store(true, std::memory_order_relaxed);
    cancel();
  }

  [[nodiscard]] bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool stalled() const {
    return stalled_.load(std::memory_order_relaxed);
  }

  /// Arm (or move) the absolute deadline.
  void set_deadline(Clock::time_point deadline) {
    // Release/acquire pairing with has_deadline(): a reader that sees the
    // flag must also see the deadline value, or it could compare against
    // a stale 0 and spuriously expire the token.
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
    has_deadline_.store(true, std::memory_order_release);
  }

  /// Arm the deadline `seconds` from now.  Non-positive budgets produce an
  /// already-expired deadline (useful to reject queued work up front).
  void set_deadline_after_seconds(double seconds) {
    set_deadline(Clock::now() +
                 std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(seconds)));
  }

  [[nodiscard]] bool has_deadline() const {
    return has_deadline_.load(std::memory_order_acquire);
  }

  [[nodiscard]] bool deadline_passed() const {
    if (!has_deadline()) return false;
    return Clock::now().time_since_epoch().count() >=
           deadline_ns_.load(std::memory_order_relaxed);
  }

  /// Seconds until the deadline (infinity when none is armed, clamped at
  /// zero once passed); lets solvers clamp their internal time limits.
  [[nodiscard]] double seconds_remaining() const {
    if (!has_deadline()) return std::numeric_limits<double>::infinity();
    const Clock::rep now = Clock::now().time_since_epoch().count();
    const Clock::rep end = deadline_ns_.load(std::memory_order_relaxed);
    if (end <= now) return 0.0;
    return std::chrono::duration<double>(Clock::duration(end - now)).count();
  }

  /// True when the governed work should stop, for either reason.
  [[nodiscard]] bool should_stop() const {
    return cancelled() || deadline_passed();
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> stalled_{false};
  std::atomic<bool> has_deadline_{false};
  std::atomic<Clock::rep> deadline_ns_{0};
};

using CancelTokenPtr = std::shared_ptr<CancelToken>;

}  // namespace gmm::support
