// Seeded synthetic board and design generation.
//
// Table 3 characterizes each experiment point by four complexity totals:
// number of logical segments, total physical banks, total ports, and
// total configuration settings (over multi-configuration ports).  The
// board builder here reproduces any such (banks, ports, configs) triple
// exactly with a four-type template modeled on the paper's hardware:
//
//   T1: on-chip dual-ported 5-configuration RAM (Virtex BlockRAM style)
//   T2: on-chip single-ported 5-configuration RAM (FLEX EAB style)
//   T3: off-chip dual-ported fixed-configuration SRAM
//   T4: off-chip single-ported fixed-configuration SRAM (farther away)
//
// Instance counts (i1..i4) solve  i1+i2+i3+i4 = banks,
// 2*i1+i2+2*i3+i4 = ports, 10*i1+5*i2 = configs; the design generator
// draws signal/image-processing-shaped segments (coefficient tables,
// line buffers, frames) and rescales until the aggregate port/capacity
// load fits a target utilization of the board.
#pragma once

#include <cstdint>
#include <optional>

#include "arch/board.hpp"
#include "design/design.hpp"

namespace gmm::workload {

struct BoardTotals {
  std::int64_t banks = 0;
  std::int64_t ports = 0;
  std::int64_t configs = 0;
};

/// Build a board matching the exact complexity totals.  Returns nullopt
/// when the template cannot realize the triple (e.g. ports < banks).
std::optional<arch::Board> board_from_totals(const BoardTotals& totals);

struct DesignGenOptions {
  std::int64_t num_segments = 32;
  std::uint64_t seed = 1;
  /// Fraction of the board's aggregate port budget the design may load.
  double target_port_utilization = 0.6;
  /// Fraction of the board's aggregate bit capacity the design may load.
  double target_bit_utilization = 0.5;
  /// All pairs conflict (the Table-3 setting).  When false, random
  /// lifetimes are attached and conflicts derived from them.
  bool all_conflicting = true;
  /// Use the paper's access assumption (reads = writes = depth, i.e. no
  /// explicit footprints).  When false, random read/write footprints are
  /// attached — useful for simulator benches, but the unstructured costs
  /// make the ILPs considerably harder than anything the paper ran.
  bool paper_access_model = true;
};

/// Draw a design sized to fit `board` under the utilization targets.
design::Design generate_design(const arch::Board& board,
                               const DesignGenOptions& options);

}  // namespace gmm::workload
