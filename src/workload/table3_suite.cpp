#include "workload/table3_suite.hpp"

#include "support/assert.hpp"

namespace gmm::workload {

const std::vector<Table3Point>& table3_points() {
  static const std::vector<Table3Point> points = {
      {1, 22, {13, 25, 50}, 8.1, 7.8},
      {2, 32, {23, 45, 100}, 29.4, 25.3},
      {3, 32, {45, 77, 150}, 99.3, 50.7},
      {4, 42, {45, 77, 150}, 130.4, 59.2},
      {5, 32, {65, 105, 150}, 172.7, 105.1},
      {6, 62, {65, 105, 150}, 411.0, 140.4},
      {7, 32, {180, 265, 375}, 518.3, 216.4},
      {8, 62, {180, 265, 375}, 1225.0, 309.0},
      {9, 132, {180, 265, 375}, 2989.0, 489.0},
  };
  return points;
}

Table3Instance build_instance(const Table3Point& point, std::uint64_t seed) {
  auto board = board_from_totals(point.totals);
  GMM_ASSERT(board.has_value(),
             "Table-3 totals not realizable by the board template");
  DesignGenOptions options;
  options.num_segments = point.segments;
  options.seed = seed + static_cast<std::uint64_t>(point.index);
  options.all_conflicting = true;
  design::Design design = generate_design(*board, options);
  return Table3Instance{point, std::move(*board), std::move(design)};
}

}  // namespace gmm::workload
