// The nine canonical experiment points of the paper's Table 3.
//
// Each point is identified by the four complexity totals the paper
// reports: (#segments, #banks, #ports, #configs), together with the
// execution times measured by the authors on a SUN Ultra-30 (248 MHz) —
// kept here so benches can print paper-vs-measured side by side.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/board.hpp"
#include "design/design.hpp"
#include "workload/workload_gen.hpp"

namespace gmm::workload {

struct Table3Point {
  int index = 0;            // 1-based row number in the paper
  std::int64_t segments = 0;
  BoardTotals totals;
  double paper_complete_seconds = 0.0;  // Table 3, "Complete Approach"
  double paper_global_seconds = 0.0;    // Table 3, "Global Approach"
};

/// All nine rows of Table 3 in order.
const std::vector<Table3Point>& table3_points();

/// Instantiate a point: the board realizing its totals plus a seeded
/// design with its segment count (all-conflicting, as in the paper).
struct Table3Instance {
  Table3Point point;
  arch::Board board;
  design::Design design;
};

Table3Instance build_instance(const Table3Point& point,
                              std::uint64_t seed = 2001);

}  // namespace gmm::workload
