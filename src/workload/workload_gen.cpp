#include "workload/workload_gen.hpp"

#include <algorithm>
#include <limits>

#include "mapping/preprocess.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace gmm::workload {

namespace {

/// The five standard Altera/Xilinx-style configurations of a bank with
/// `bits` capacity (depth halves as width doubles, 1..16 bits wide).
std::vector<arch::BankConfig> five_configs(std::int64_t bits) {
  std::vector<arch::BankConfig> configs;
  for (std::int64_t width = 1; width <= 16; width *= 2) {
    configs.push_back({bits / width, width});
  }
  return configs;
}

}  // namespace

std::optional<arch::Board> board_from_totals(const BoardTotals& totals) {
  // Solve i1+i2+i3+i4 = B; 2 i1+i2+2 i3+i4 = P; 10 i1 + 5 i2 = C with all
  // i >= 0.  The port excess P-B equals the number of dual-ported
  // instances i1+i3; maximize i1 (on-chip multi-config) first.
  const std::int64_t dual = totals.ports - totals.banks;
  if (dual < 0 || totals.configs % 5 != 0) return std::nullopt;
  for (std::int64_t i1 = std::min(totals.configs / 10, dual); i1 >= 0;
       --i1) {
    const std::int64_t i2 = (totals.configs - 10 * i1) / 5;
    const std::int64_t i3 = dual - i1;
    const std::int64_t i4 = totals.banks - i1 - i2 - i3;
    if (i2 < 0 || i4 < 0) continue;

    arch::Board board("synthetic." + std::to_string(totals.banks) + "b" +
                      std::to_string(totals.ports) + "p" +
                      std::to_string(totals.configs) + "c");
    if (i1 > 0) {
      arch::BankType t;
      t.name = "onchip.dual";
      t.instances = i1;
      t.ports = 2;
      t.configs = five_configs(4096);
      t.read_latency = 1;
      t.write_latency = 1;
      t.pins_traversed = 0;
      board.add_bank_type(t);
    }
    if (i2 > 0) {
      arch::BankType t;
      t.name = "onchip.single";
      t.instances = i2;
      t.ports = 1;
      t.configs = five_configs(2048);
      t.read_latency = 1;
      t.write_latency = 1;
      t.pins_traversed = 0;
      board.add_bank_type(t);
    }
    if (i3 > 0) {
      arch::BankType t;
      t.name = "offchip.dual";
      t.instances = i3;
      t.ports = 2;
      t.configs = {{16384, 16}};
      t.read_latency = 2;
      t.write_latency = 2;
      t.pins_traversed = 2;
      board.add_bank_type(t);
    }
    if (i4 > 0) {
      arch::BankType t;
      t.name = "offchip.single";
      t.instances = i4;
      t.ports = 1;
      t.configs = {{32768, 32}};
      t.read_latency = 3;
      t.write_latency = 2;
      t.pins_traversed = 4;
      board.add_bank_type(t);
    }
    GMM_ASSERT(board.total_banks() == totals.banks &&
                   board.total_ports() == totals.ports &&
                   board.total_configs() == totals.configs,
               "board template failed to hit the requested totals");
    return board;
  }
  return std::nullopt;
}

design::Design generate_design(const arch::Board& board,
                               const DesignGenOptions& options) {
  support::Rng rng(options.seed);
  design::Design result("synthetic." +
                        std::to_string(options.num_segments) + "seg");

  // Per-type reservation budgets.  Reserving every segment on a concrete
  // type is a constructive witness that the global ILP is feasible (the
  // reservation itself satisfies the all-conflicting aggregate port and
  // capacity constraints).  The utilization targets scale the budgets,
  // but never below the hard floor of one port per segment — the paper's
  // smallest point runs 22 segments against 25 ports, close to that
  // floor already.
  std::int64_t port_budget = 0;
  for (const arch::BankType& t : board.types()) {
    port_budget += t.total_ports();
  }
  GMM_ASSERT(options.num_segments <= port_budget,
             "more segments than ports on the board");
  const double floor_scale =
      static_cast<double>(options.num_segments +
                          std::max<std::int64_t>(2,
                                                 options.num_segments / 10)) /
      static_cast<double>(port_budget);
  const double port_scale = std::min(
      1.0, std::max(options.target_port_utilization, floor_scale));
  const double bit_scale = std::min(
      1.0, std::max(options.target_bit_utilization, floor_scale));

  // Hard (full) budgets — the reservation witness must respect these —
  // plus soft (target-scaled) budgets used only as a preference.
  std::vector<std::int64_t> hard_ports(board.num_types());
  std::vector<std::int64_t> hard_bits(board.num_types());
  std::vector<std::int64_t> soft_ports(board.num_types());
  std::vector<std::int64_t> soft_bits(board.num_types());
  std::int64_t sum_hard_ports = 0;
  for (std::size_t t = 0; t < board.num_types(); ++t) {
    hard_ports[t] = board.type(t).total_ports();
    hard_bits[t] = board.type(t).total_bits();
    soft_ports[t] = static_cast<std::int64_t>(
        port_scale * static_cast<double>(hard_ports[t]));
    soft_bits[t] = static_cast<std::int64_t>(
        bit_scale * static_cast<double>(hard_bits[t]));
    sum_hard_ports += hard_ports[t];
  }

  // Reserve a segment on some type; returns the chosen type or -1.
  // `future_floor` ports must remain across the board afterwards (one
  // per yet-ungenerated segment), so early fat segments cannot starve
  // later ones.  Types within the soft budget are preferred; among them,
  // the one with the most remaining port headroom.
  const auto reserve = [&](const design::DataStructure& ds,
                           std::int64_t future_floor) {
    int best = -1;
    bool best_soft = false;
    double best_headroom = -1.0;
    mapping::PlacementPlan best_plan;
    for (std::size_t t = 0; t < board.num_types(); ++t) {
      const mapping::PlacementPlan plan =
          mapping::plan_placement(ds, board.type(t));
      if (!plan.feasible || plan.cp > hard_ports[t] ||
          plan.cw * plan.cd > hard_bits[t]) {
        continue;
      }
      if (sum_hard_ports - plan.cp < future_floor) continue;
      const bool soft = plan.cp <= soft_ports[t] &&
                        plan.cw * plan.cd <= soft_bits[t];
      const double headroom =
          static_cast<double>(hard_ports[t]) /
          static_cast<double>(board.type(t).total_ports());
      if ((soft && !best_soft) ||
          (soft == best_soft && headroom > best_headroom)) {
        best = static_cast<int>(t);
        best_soft = soft;
        best_headroom = headroom;
        best_plan = plan;
      }
    }
    if (best >= 0) {
      hard_ports[best] -= best_plan.cp;
      hard_bits[best] -= best_plan.cw * best_plan.cd;
      soft_ports[best] -= best_plan.cp;
      soft_bits[best] -= best_plan.cw * best_plan.cd;
      sum_hard_ports -= best_plan.cp;
    }
    return best;
  };

  for (std::int64_t i = 0; i < options.num_segments; ++i) {
    design::DataStructure ds;
    ds.name = "seg" + std::to_string(i);
    // Signal/image-processing mix: mostly small coefficient tables and
    // line buffers, a tail of large frame-like arrays.
    const double shape = rng.uniform_real();
    if (shape < 0.4) {
      ds.depth = rng.uniform_int(8, 256);     // coefficients, windows
    } else if (shape < 0.8) {
      ds.depth = rng.uniform_int(256, 2048);  // line buffers
    } else {
      ds.depth = rng.uniform_int(2048, 16384);  // frames, lookup tables
    }
    const std::int64_t widths[] = {1, 2, 4, 8, 12, 16, 24, 32};
    ds.width = widths[rng.index(std::size(widths))];
    if (!options.paper_access_model) {
      ds.reads = rng.uniform_int(ds.depth, ds.depth * 64);
      ds.writes = rng.uniform_int(ds.depth / 2 + 1, ds.depth * 8);
    }
    if (!options.all_conflicting) {
      const std::int64_t start = rng.uniform_int(0, 400);
      ds.lifetime =
          design::Lifetime{start, start + rng.uniform_int(10, 200)};
    }

    // Shrink until the segment reserves somewhere.  The future floor
    // keeps one port per remaining segment, and a minimal 8x1 table
    // costs exactly one port on any type, so termination is guaranteed
    // as long as the board has at least num_segments ports (asserted
    // above).
    const std::int64_t future_floor = options.num_segments - i - 1;
    while (reserve(ds, future_floor) < 0) {
      GMM_ASSERT(ds.depth > 8 || ds.width > 1,
                 "workload generator cannot place even a minimal segment");
      if (ds.depth > 8) {
        ds.depth = std::max<std::int64_t>(8, ds.depth / 2);
      } else {
        ds.width = std::max<std::int64_t>(1, ds.width / 2);
      }
    }
    result.add(std::move(ds));
  }

  if (options.all_conflicting) {
    result.set_all_conflicting();
  } else {
    result.derive_conflicts_from_lifetimes();
  }
  return result;
}

}  // namespace gmm::workload
