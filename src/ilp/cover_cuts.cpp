#include "ilp/cover_cuts.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

namespace gmm::ilp {

namespace {

struct Item {
  lp::Index var;
  double coef;
  double value;  // x*_j
};

}  // namespace

std::vector<CoverCut> separate_cover_cuts(const lp::Model& model,
                                          const std::vector<double>& x,
                                          std::size_t max_cuts,
                                          double min_violation) {
  std::vector<CoverCut> cuts;
  std::vector<Item> items;

  for (lp::Index i = 0; i < model.num_rows() && cuts.size() < max_cuts;
       ++i) {
    const double b = model.row_ub(i);
    if (!(b < lp::kInf) || model.row_lb(i) > -lp::kInf) continue;  // <= only
    const lp::Model::RowView row = model.row(i);
    if (row.size < 2) continue;

    items.clear();
    bool knapsack = true;
    for (std::size_t k = 0; k < row.size; ++k) {
      const lp::Index j = row.vars[k];
      if (row.coefs[k] <= 0 ||
          model.var_type(j) != lp::VarType::kBinary) {
        knapsack = false;
        break;
      }
      items.push_back({j, row.coefs[k], x[j]});
    }
    if (!knapsack || b <= 0) continue;

    // Greedy cover: take items by decreasing fractional value until the
    // weights exceed b.  Items at (near) zero can never help a cover's
    // violation, so stop considering them.
    std::sort(items.begin(), items.end(), [](const Item& a, const Item& b2) {
      return a.value > b2.value;
    });
    double weight = 0.0;
    std::size_t cover_end = 0;
    while (cover_end < items.size() && weight <= b) {
      weight += items[cover_end].coef;
      ++cover_end;
    }
    if (weight <= b) continue;  // the whole row cannot cover

    // Minimalize: drop members whose removal keeps it a cover, preferring
    // to drop low-value members (they contribute least to violation).
    std::vector<Item> cover(items.begin(),
                            items.begin() + static_cast<std::ptrdiff_t>(cover_end));
    for (std::size_t k = cover.size(); k-- > 0;) {
      if (weight - cover[k].coef > b) {
        weight -= cover[k].coef;
        cover.erase(cover.begin() + static_cast<std::ptrdiff_t>(k));
      }
    }

    const double rhs = static_cast<double>(cover.size()) - 1.0;

    // Lift every non-cover variable of the row: with mu_h = the sum of
    // the h largest cover weights, alpha_j = max{ h : mu_h <= a_j } (0 =
    // not in the cut).  See the header for the validity argument; the
    // old "extend with coefficient 1 when a_j >= max cover weight" is
    // exactly the h = 1 case.
    std::vector<double> mu;  // mu[h] = sum of h largest cover weights
    mu.reserve(cover.size() + 1);
    mu.push_back(0.0);
    {
      std::vector<double> weights;
      weights.reserve(cover.size());
      for (const Item& item : cover) weights.push_back(item.coef);
      std::sort(weights.begin(), weights.end(), std::greater<>());
      for (const double w : weights) mu.push_back(mu.back() + w);
    }

    CoverCut cut;
    double activity = 0.0;
    for (const Item& item : cover) {
      cut.vars.push_back(item.var);
      cut.coefs.push_back(1.0);
      activity += item.value;
    }
    for (const Item& item : items) {
      const bool in_cover =
          std::any_of(cover.begin(), cover.end(), [&item](const Item& c) {
            return c.var == item.var;
          });
      if (in_cover) continue;
      std::size_t alpha = 0;
      while (alpha + 1 < mu.size() && mu[alpha + 1] <= item.coef + 1e-9) {
        ++alpha;
      }
      if (alpha == 0) continue;
      cut.vars.push_back(item.var);
      cut.coefs.push_back(static_cast<double>(alpha));
      activity += static_cast<double>(alpha) * item.value;
    }
    if (activity <= rhs + min_violation) continue;

    cut.rhs = rhs;
    cuts.push_back(std::move(cut));
  }
  return cuts;
}

}  // namespace gmm::ilp
