#include "ilp/cover_cuts.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace gmm::ilp {

namespace {

struct Item {
  lp::Index var;
  double coef;
  double value;  // x*_j
};

}  // namespace

std::vector<CoverCut> separate_cover_cuts(const lp::Model& model,
                                          const std::vector<double>& x,
                                          std::size_t max_cuts,
                                          double min_violation) {
  std::vector<CoverCut> cuts;
  std::vector<Item> items;

  for (lp::Index i = 0; i < model.num_rows() && cuts.size() < max_cuts;
       ++i) {
    const double b = model.row_ub(i);
    if (!(b < lp::kInf) || model.row_lb(i) > -lp::kInf) continue;  // <= only
    const lp::Model::RowView row = model.row(i);
    if (row.size < 2) continue;

    items.clear();
    bool knapsack = true;
    for (std::size_t k = 0; k < row.size; ++k) {
      const lp::Index j = row.vars[k];
      if (row.coefs[k] <= 0 ||
          model.var_type(j) != lp::VarType::kBinary) {
        knapsack = false;
        break;
      }
      items.push_back({j, row.coefs[k], x[j]});
    }
    if (!knapsack || b <= 0) continue;

    // Greedy cover: take items by decreasing fractional value until the
    // weights exceed b.  Items at (near) zero can never help a cover's
    // violation, so stop considering them.
    std::sort(items.begin(), items.end(), [](const Item& a, const Item& b2) {
      return a.value > b2.value;
    });
    double weight = 0.0;
    std::size_t cover_end = 0;
    while (cover_end < items.size() && weight <= b) {
      weight += items[cover_end].coef;
      ++cover_end;
    }
    if (weight <= b) continue;  // the whole row cannot cover

    // Minimalize: drop members whose removal keeps it a cover, preferring
    // to drop low-value members (they contribute least to violation).
    std::vector<Item> cover(items.begin(),
                            items.begin() + static_cast<std::ptrdiff_t>(cover_end));
    for (std::size_t k = cover.size(); k-- > 0;) {
      if (weight - cover[k].coef > b) {
        weight -= cover[k].coef;
        cover.erase(cover.begin() + static_cast<std::ptrdiff_t>(k));
      }
    }

    // Violation check: sum x* > |C| - 1 ?
    double activity = 0.0;
    for (const Item& item : cover) activity += item.value;
    const double rhs = static_cast<double>(cover.size()) - 1.0;
    if (activity <= rhs + min_violation) continue;

    // Extend: any non-cover variable with coefficient >= the cover's max
    // can join the left-hand side without weakening validity.
    double max_coef = 0.0;
    for (const Item& item : cover) max_coef = std::max(max_coef, item.coef);
    CoverCut cut;
    for (const Item& item : cover) cut.vars.push_back(item.var);
    for (const Item& item : items) {
      const bool in_cover =
          std::any_of(cover.begin(), cover.end(), [&item](const Item& c) {
            return c.var == item.var;
          });
      if (!in_cover && item.coef >= max_coef) cut.vars.push_back(item.var);
    }
    cut.rhs = rhs;
    cuts.push_back(std::move(cut));
  }
  return cuts;
}

}  // namespace gmm::ilp
