// Branch & bound MILP solver over the dual-simplex LP engine.
//
// This is the stand-in for the commercial solver (CPLEX) used in the
// paper.  Architecture:
//
//   * presolve once at the root (lp::presolve);
//   * best-first node selection with PLUNGING: the popped node starts a
//     depth-first dive that reuses the engine's warm basis, so only heap
//     pops pay a refactorization;
//   * a per-open-node BASIS CACHE (MipOptions::max_stored_bases): a
//     pushed node carries a snapshot of its parent's optimal basis, and
//     the pop restores it — so even a heap pop warm-starts one branching
//     change away instead of from an unrelated subtree;
//   * branching on pseudocosts with most-fractional initialization;
//   * incumbents from integral LP relaxations, an optional user-supplied
//     primal heuristic (the complete memory mapper injects its packing
//     repair here), and the dive itself;
//   * node payloads are immutable parent-chain links shared via
//     shared_ptr, so a node costs O(1) memory at any depth;
//   * optional parallel search (MipOptions::num_threads): workers share
//     one best-first heap and one incumbent while each owns a private
//     dual-simplex engine over the shared standard form.
//
// Determinism: with num_threads == 1 (the default), given the same model
// and options the search is fully deterministic (no randomness; ties
// broken by index/rotation).  With more threads the node ORDER varies,
// but the returned objective is identical up to the optimality gap —
// pruning only ever uses proven bounds.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "lp/lp_backend.hpp"
#include "lp/model.hpp"
#include "lp/types.hpp"
#include "support/cancellation.hpp"

namespace gmm::ilp {

/// Optional primal heuristic: receives the ORIGINAL-space fractional LP
/// solution, returns an ORIGINAL-space integral candidate (or nullopt).
/// The solver validates the candidate against the model before accepting.
/// With num_threads > 1 the heuristic may be invoked concurrently from
/// several workers and must be safe to call in parallel (the built-in
/// mapping heuristics only read captured state, so they qualify).
using PrimalHeuristic = std::function<std::optional<std::vector<double>>(
    const std::vector<double>& lp_x)>;

struct MipOptions {
  double time_limit_seconds = lp::kInf;
  std::int64_t node_limit = 50'000'000;
  /// Relative optimality gap; 1e-4 matches the default of the commercial
  /// solver the paper used (CPLEX "mipgap"), and the memory-mapping
  /// objectives produce dense near-optimal plateaus that a tighter gap
  /// would enumerate pointlessly.
  double rel_gap = 1e-4;
  double abs_gap = 1e-9;
  bool use_presolve = true;
  lp::SimplexOptions simplex;
  /// Which LP engine every node relaxation runs on (root cut loop and
  /// all branch-and-bound workers alike).  Both backends prove the same
  /// objectives — see lp::LpBackend — so this is purely a speed knob:
  /// kSparse makes per-pivot cost scale with nonzeros instead of rows^2.
  lp::LpEngine lp_engine = lp::LpEngine::kDense;
  /// Rounds of root-node cut separation (0 = off).  Each round separates
  /// lifted knapsack cover cuts, clique cuts from `conflict_cliques`,
  /// and (with an incumbent) applies reduced-cost bound fixing.  The
  /// mapping formulations' port/capacity knapsacks leave the plain LP
  /// bound several percent weak; the cut loop closes most of it.
  int max_cut_rounds = 8;
  /// Cliques of mutually exclusive binary variables in ORIGINAL variable
  /// space (at most one of each clique can be 1), mined by callers from
  /// problem structure the row data does not expose — the global mapper
  /// passes conflict-graph cliques whose members cannot share any
  /// memory's resources.  The root loop adds `sum_{j in Q} x_j <= 1`
  /// whenever the root LP violates it.  Non-binary or presolve-fixed
  /// members are handled soundly (fixed-at-1 members zero the rest).
  std::vector<std::vector<lp::Index>> conflict_cliques;
  /// Root reduced-cost fixing: once an incumbent exists, any nonbasic
  /// integer column whose reduced cost proves every step away from its
  /// bound exceeds the prune threshold gets its bounds tightened.  Uses
  /// the SAME threshold as node pruning, so it never cuts off a solution
  /// the search itself would have kept.
  bool use_reduced_cost_fixing = true;
  /// Per-open-node LP basis cache: every node pushed to the shared heap
  /// carries a snapshot of its parent's optimal basis, and the worker
  /// that later pops it warm-starts from that snapshot — so a heap pop
  /// pays dual pivots proportional to ONE branching change instead of a
  /// subtree switch away from whatever the worker's engine last held.
  /// At most this many snapshots are stored at once; beyond the cap the
  /// least-recently-stored snapshot is evicted (its node re-solves cold,
  /// which is slower but never wrong).  0 disables the cache entirely.
  /// The cache only ever changes how fast nodes re-solve, never which
  /// objective the search returns.
  std::size_t max_stored_bases = 4096;
  /// Invoke the primal heuristic at the root and every N processed nodes.
  std::int64_t heuristic_period = 256;
  PrimalHeuristic primal_heuristic;
  /// Branch-and-bound workers sharing one best-first node heap.  1 (the
  /// default) runs today's fully serial, deterministic search on the
  /// calling thread.  With k > 1 workers the node processing ORDER varies
  /// between runs, so node/iteration counts differ, but every returned
  /// objective is identical up to the optimality gap (exactly identical
  /// when rel_gap and abs_gap are 0): pruning only ever uses proven
  /// bounds, so no optimum can be lost to a race.  0 = hardware
  /// concurrency.
  int num_threads = 1;
  /// Optional cooperative stop request shared with the caller (the async
  /// mapping service hands every request one).  `cancel()` stops the
  /// search with kCancelled; an armed deadline stops it with kTimeLimit
  /// and additionally clamps the per-node LP time limits, so a deadline
  /// interrupts even a single long LP solve.  Both are polled at node
  /// boundaries — two relaxed atomic loads, free at our node rates.
  std::shared_ptr<const support::CancelToken> cancel_token;
  /// Optional liveness counter, bumped once per processed node (and per
  /// root cut round).  Unlike the node counts in MipResult — which only
  /// exist after the solve returns — this is readable WHILE the solve
  /// runs, so a watchdog can tell a slow solve from a wedged one and
  /// force-cancel the latter.  nullptr (the default) costs nothing.
  std::shared_ptr<std::atomic<std::int64_t>> progress;
  /// Optional warm incumbent ("MIP start") in ORIGINAL variable space,
  /// installed at the root before any node solves so best-first pruning
  /// bites from node one.  The start is validated against the model like
  /// any other incumbent candidate; an infeasible or wrong-length start
  /// is silently ignored.  A start only ever SEEDS the incumbent — it
  /// never constrains the search — so it cannot change the proved
  /// optimal objective, only the node count reaching it.
  std::vector<double> mip_start;
  /// Hard variable pins (index, value) applied to a copy of the model
  /// before solving: both bounds collapse onto the value.  Unlike the
  /// MIP start these genuinely constrain the search — the solver proves
  /// the optimum of the PINNED model (incremental re-solves use this to
  /// freeze unchanged structures and re-optimize only the delta).
  /// Out-of-range indices are ignored.
  std::vector<std::pair<lp::Index, double>> pinned_vars;
};

struct MipResult {
  lp::SolveStatus status = lp::SolveStatus::kNumericalFailure;
  /// Why the search stopped early (kTimeLimit / kNodeLimit / kCancelled /
  /// kNumericalFailure); kOptimal when it ran to natural completion.
  /// Lets callers distinguish "feasible because the tree was exhausted to
  /// the gap" from "feasible because the deadline or a cancel cut the
  /// search short" — `status` alone conflates those as kFeasible once an
  /// incumbent exists.
  lp::SolveStatus stop_reason = lp::SolveStatus::kOptimal;
  double objective = lp::kInf;   // incumbent value (minimization)
  double best_bound = -lp::kInf; // proven lower bound
  std::vector<double> x;         // incumbent, original variable space
  std::int64_t nodes = 0;
  std::int64_t lp_iterations = 0;
  std::int64_t simplex_refactorizations = 0;
  /// Arithmetic work units spent inside the LP engines (root + all
  /// workers); see lp::SimplexStats::work_units.  The dense-vs-sparse
  /// A/B in bench_09 gates on this, not on wall time.
  std::int64_t lp_work_units = 0;
  std::int64_t cover_cuts = 0;   // lifted cover cuts added at the root
  std::int64_t clique_cuts = 0;  // conflict-clique cuts added at the root
  std::int64_t rc_fixed = 0;     // columns bound-tightened by reduced cost
  /// Basis warm-start cache counters (see MipOptions::max_stored_bases):
  /// snapshots stored/loaded/evicted plus the dual-pivot split between
  /// warm-started and cold heap pops.
  lp::BasisCacheStats basis;
  /// The MipOptions::mip_start validated feasible and seeded the root
  /// incumbent (false when no start was given or it failed validation).
  bool mip_start_used = false;
  double seconds = 0.0;

  [[nodiscard]] bool has_incumbent() const { return !x.empty(); }
  /// Relative optimality gap (0 when proven optimal).
  [[nodiscard]] double gap() const;
};

class MipSolver {
 public:
  explicit MipSolver(MipOptions options = {});

  /// Solve a minimization MILP.  Thread-compatible: distinct MipSolver
  /// instances may run concurrently on distinct models.
  MipResult solve(const lp::Model& model);

 private:
  MipOptions options_;
};

/// Convenience one-shot call.
MipResult solve_mip(const lp::Model& model, const MipOptions& options = {});

}  // namespace gmm::ilp
