// Lifted knapsack cover cuts.
//
// For a row  sum a_j x_j <= b  with a_j > 0 over binary variables, any
// COVER C (a set with sum_{j in C} a_j > b) yields the valid inequality
// sum_{j in C} x_j <= |C| - 1.  The port and capacity rows of the memory-
// mapping formulations are exactly such knapsacks, and their LP
// relaxations can sit several percent below the integer optimum; a few
// rounds of cover separation at the root closes most of that gap.
//
// Cuts are LIFTED: with the cover weights sorted descending and
// mu_h = (sum of the h largest), every non-cover variable enters with
// coefficient alpha_j = max{ h : mu_h <= a_j }.  Validity for any
// feasible 0/1 set S: each j in S\C with coefficient h contributes
// weight >= mu_h, mu is superadditive (mu_p + mu_q >= mu_{p+q}), and the
// members of S∩C weigh at least the |S∩C| smallest cover weights — so if
// the cut were violated the total weight of S would reach mu_|C| > b,
// contradicting feasibility.  alpha_j >= 1 exactly when a_j >= max cover
// weight, so lifting strictly subsumes the classic "extended cover".
//
// Separation is the classic greedy heuristic: scan candidates by
// decreasing fractional value, collect a cover, minimalize it, then lift
// every remaining variable of the row.
#pragma once

#include <vector>

#include "lp/model.hpp"

namespace gmm::ilp {

struct CoverCut {
  std::vector<lp::Index> vars;   // sum of coefs[k] * x_{vars[k]} ...
  std::vector<double> coefs;     // ... (1.0 for cover members,
                                 //      alpha_j >= 1 for lifted ones)
  double rhs = 0.0;              // ... is at most this (|C| - 1)
};

/// Find violated lifted cover cuts for `x` (a fractional LP solution of
/// `model`).  Only rows that are pure positive-coefficient binary
/// knapsacks are considered.  Returns at most `max_cuts` cuts, each
/// violated by at least `min_violation`.
std::vector<CoverCut> separate_cover_cuts(const lp::Model& model,
                                          const std::vector<double>& x,
                                          std::size_t max_cuts = 64,
                                          double min_violation = 1e-4);

}  // namespace gmm::ilp
