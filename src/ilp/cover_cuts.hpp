// Knapsack cover cuts.
//
// For a row  sum a_j x_j <= b  with a_j > 0 over binary variables, any
// COVER C (a set with sum_{j in C} a_j > b) yields the valid inequality
// sum_{j in C} x_j <= |C| - 1.  The port and capacity rows of the memory-
// mapping formulations are exactly such knapsacks, and their LP
// relaxations can sit several percent below the integer optimum; a few
// rounds of cover separation at the root closes most of that gap.
//
// Separation is the classic greedy heuristic: scan candidates by
// decreasing fractional value, collect a cover, minimalize it, then
// EXTEND it with every variable whose coefficient is at least the
// cover's largest (extended covers dominate plain ones).
#pragma once

#include <vector>

#include "lp/model.hpp"

namespace gmm::ilp {

struct CoverCut {
  std::vector<lp::Index> vars;  // sum of these binaries...
  double rhs = 0.0;             // ... is at most this
};

/// Find violated extended cover cuts for `x` (a fractional LP solution of
/// `model`).  Only rows that are pure positive-coefficient binary
/// knapsacks are considered.  Returns at most `max_cuts` cuts, each
/// violated by at least `min_violation`.
std::vector<CoverCut> separate_cover_cuts(const lp::Model& model,
                                          const std::vector<double>& x,
                                          std::size_t max_cuts = 64,
                                          double min_violation = 1e-4);

}  // namespace gmm::ilp
