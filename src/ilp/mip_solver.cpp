#include "ilp/mip_solver.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>

#include "ilp/cover_cuts.hpp"
#include "lp/presolve.hpp"
#include "lp/standard_form.hpp"
#include "support/assert.hpp"
#include "support/fault.hpp"
#include "support/log.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace gmm::ilp {

namespace {

using lp::Index;
using lp::kInf;
using lp::kIntTol;
using lp::SolveStatus;

/// One branching decision relative to the parent node.
struct BoundChange {
  Index var = lp::kInvalidIndex;
  double lb = 0.0, ub = 0.0;
};

/// Immutable node payload; children share their ancestors through the
/// parent chain, so a node costs O(1) memory regardless of depth.  The
/// shared_ptr chains are the only cross-thread node state and are never
/// mutated after construction.
struct NodeData {
  std::shared_ptr<const NodeData> parent;
  BoundChange change;
  int depth = 0;
};

/// Mutable (under heap_mutex_) holder for one cached basis snapshot.  The
/// indirection lets the eviction FIFO clear a snapshot that is still
/// referenced by a queued OpenNode: the node keeps its slot, the basis
/// inside is gone, and the pop falls back to a cold solve.
struct BasisSlot {
  std::shared_ptr<const lp::Basis> basis;
};

struct OpenNode {
  double bound = -kInf;  // parent LP objective: a valid lower bound
  std::uint64_t seq = 0;  // FIFO tie-break keeps the search deterministic
  std::shared_ptr<const NodeData> data;
  /// The PARENT's optimal basis, snapshot when this node was pushed; the
  /// popping worker warm-starts from it so re-deriving this node's LP
  /// costs pivots proportional to one branching change.  Null (or
  /// emptied by eviction) = cold solve.
  std::shared_ptr<BasisSlot> slot;
};

struct BestFirstOrder {
  bool operator()(const OpenNode& a, const OpenNode& b) const {
    if (a.bound != b.bound) return a.bound > b.bound;  // min-heap on bound
    return a.seq > b.seq;
  }
};

/// Per-variable pseudocost statistics for branching-variable selection.
/// Kept PER WORKER: sharing them would either race or serialize every
/// node on a lock, and they only steer node ordering, never correctness.
struct Pseudocost {
  double up_sum = 0.0, down_sum = 0.0;
  int up_count = 0, down_count = 0;
};

/// Branch-and-bound search shared across `num_threads` workers.
///
/// Work sharing: one global best-first heap under `heap_mutex_`.  A worker
/// pops the best open node, re-derives its bounds from the parent chain on
/// its PRIVATE SimplexEngine (all engines share the immutable StandardForm
/// built once at the root), and dives depth-first, pushing the deferred
/// sibling of every branch back onto the shared heap.  The incumbent is
/// published through a mutex-guarded vector plus a lock-free objective
/// snapshot that pruning reads; a stale snapshot only ever makes pruning
/// less aggressive, never unsound, so the returned objective is identical
/// to the serial solver's (up to the configured optimality gap).
///
/// With num_threads == 1 the single worker drains the heap on the calling
/// thread in exactly the serial order (best-first pops, FIFO tie-breaks,
/// plunging dives), preserving the historical deterministic behavior.
class Search {
 public:
  Search(const lp::Model& original, const MipOptions& options)
      : original_(original), options_(options) {
    if (options_.num_threads <= 0) {
      options_.num_threads = static_cast<int>(
          std::max(1u, std::thread::hardware_concurrency()));
    }
  }

  MipResult run();

 private:
  /// Per-thread search state: a private engine + pseudocosts.  Everything
  /// a worker touches outside its own members goes through the Search
  /// synchronization helpers.
  class Worker {
   public:
    explicit Worker(Search& search)
        : s_(search),
          engine_(lp::make_lp_backend(search.options_.lp_engine,
                                      *search.sf_)) {
      pcost_.assign(search.reduced_->num_vars(), Pseudocost{});
    }

    /// Pop/dive until the heap drains or a limit fires.
    void loop();

    [[nodiscard]] std::int64_t lp_iterations() const { return lp_iterations_; }
    [[nodiscard]] std::int64_t refactorizations() const {
      return engine_->stats().refactorizations;
    }
    [[nodiscard]] std::int64_t work_units() const {
      return engine_->stats().work_units;
    }
    [[nodiscard]] bool popped_any() const { return popped_any_; }
    [[nodiscard]] double last_popped_bound() const {
      return last_popped_bound_;
    }

    [[nodiscard]] const lp::BasisCacheStats& basis_stats() const {
      return basis_stats_;
    }

   private:
    /// Re-derive `node`'s bounds from its parent chain, then either
    /// restore `warm` (the node's own parent basis, already dual feasible
    /// for the changed bounds) or just refresh on the engine's current
    /// basis (cold: an unrelated subtree's basis or the initial one).
    void apply_path(const NodeData* node, const lp::Basis* warm);
    [[nodiscard]] Index pick_branch_var(const std::vector<double>& x) const;
    void run_rounding_heuristic(const std::vector<double>& reduced_x);
    void run_user_heuristic(const std::vector<double>& reduced_x);
    /// Solve the engine's current LP; returns the simplex status.
    SolveStatus solve_node_lp();
    /// Process one node: solve, prune/bound/branch; dives depth-first.
    /// `warm_start` records whether the popped node loaded its parent
    /// basis, for the warm/cold pivot accounting.
    void dive(std::shared_ptr<const NodeData> node, bool warm_start);

    Search& s_;
    std::unique_ptr<lp::LpBackend> engine_;  // private per-worker engine
    std::vector<Pseudocost> pcost_;  // indexed by reduced column
    std::int64_t lp_iterations_ = 0;
    // This worker's share of the cache counters: loaded/cold_pops and the
    // pivot split (stored/evicted live on the Search, under heap_mutex_).
    lp::BasisCacheStats basis_stats_;
    // Bound of the last node this worker started processing: when the
    // search is stopped early, the worker's (possibly abandoned) subtree
    // is bounded below by it, so it feeds MipResult::best_bound.
    double last_popped_bound_ = -kInf;
    bool popped_any_ = false;
  };

  // -- cross-worker helpers --------------------------------------------
  [[nodiscard]] double prune_threshold() const;
  /// Wall-clock budget left before the nearer of the option time limit and
  /// the cancel token's deadline (kInf when neither is armed); clamps the
  /// per-LP time limits so a deadline interrupts even one long LP.
  [[nodiscard]] double remaining_seconds() const;
  /// Check time/node limits; may request a stop.  Cheap enough per node.
  bool limits_hit();
  /// Record a stop reason and wake every waiting worker.  Numerical
  /// failure dominates any other reason; otherwise the first one wins.
  void request_stop(SolveStatus status);
  /// Validate an ORIGINAL-space candidate and install it if it improves
  /// the incumbent.
  void offer_incumbent(const std::vector<double>& orig_x);
  void offer_incumbent_reduced(const std::vector<double>& reduced_x);
  /// Push an open node, optionally carrying its parent's basis snapshot.
  /// Storing may evict the least-recently-stored snapshot to stay under
  /// MipOptions::max_stored_bases.
  void push_open(double bound, std::shared_ptr<const NodeData> data,
                 std::shared_ptr<const lp::Basis> parent_basis = nullptr);
  /// Drop a queued node's snapshot without consuming it (pruned while
  /// queued).  Caller holds heap_mutex_.
  void release_basis_locked(const std::shared_ptr<BasisSlot>& slot);

  const lp::Model& original_;
  MipOptions options_;

  // Immutable after root setup; shared read-only by every worker.
  lp::PresolveResult pre_;
  lp::Model working_;  // presolved model plus any root cover cuts
  const lp::Model* reduced_ = nullptr;
  std::unique_ptr<lp::StandardForm> sf_;
  std::vector<Index> int_cols_;

  // Shared open-node heap + idle/termination tracking.
  std::mutex heap_mutex_;
  std::condition_variable heap_cv_;
  std::priority_queue<OpenNode, std::vector<OpenNode>, BestFirstOrder> open_;
  std::uint64_t next_seq_ = 0;
  int active_workers_ = 0;  // workers currently inside a dive

  // Basis snapshot cache bookkeeping, all guarded by heap_mutex_.  The
  // FIFO holds every stored slot in storage order; eviction clears the
  // oldest slot still carrying a basis (the weak_ptr lets slots whose
  // nodes were already popped or discarded expire in place).
  std::deque<std::weak_ptr<BasisSlot>> basis_fifo_;
  std::size_t stored_bases_ = 0;  // slots currently holding a snapshot
  lp::BasisCacheStats basis_stats_;  // stored/evicted side (workers add
                                     // their loaded/cold/pivot shares)

  // Incumbent, in ORIGINAL variable space with TOTAL objective.  The
  // atomic snapshot lets pruning read the objective without the mutex.
  std::mutex incumbent_mutex_;
  double incumbent_obj_ = kInf;       // guarded by incumbent_mutex_
  std::vector<double> incumbent_x_;   // guarded by incumbent_mutex_
  std::atomic<double> incumbent_snapshot_{kInf};

  std::atomic<std::int64_t> nodes_{0};
  std::atomic<bool> stop_{false};
  std::mutex stop_mutex_;
  bool stop_requested_ = false;  // guarded by stop_mutex_
  SolveStatus stop_status_ = SolveStatus::kOptimal;  // guarded by stop_mutex_

  support::WallTimer timer_;
  MipResult result_;
};

double Search::prune_threshold() const {
  const double incumbent =
      incumbent_snapshot_.load(std::memory_order_relaxed);
  const double slack = std::max(options_.abs_gap,
                                options_.rel_gap * std::abs(incumbent));
  return incumbent - slack;
}

double Search::remaining_seconds() const {
  double remaining = kInf;
  if (options_.time_limit_seconds < kInf) {
    remaining = options_.time_limit_seconds - timer_.seconds();
  }
  if (options_.cancel_token) {
    remaining = std::min(remaining, options_.cancel_token->seconds_remaining());
  }
  return remaining;
}

bool Search::limits_hit() {
  if (stop_.load(std::memory_order_relaxed)) return true;
  if (GMM_FAULT("ilp.node", "stall")) {
    // Injected wedge: burn wall-clock without advancing the node count or
    // the progress counter, until something external — the service
    // watchdog, a deadline, a cancel — stops the solve.  This is the
    // fault the watchdog exists to catch.
    while (!(options_.cancel_token && options_.cancel_token->should_stop()) &&
           timer_.seconds() <= options_.time_limit_seconds) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  // Cancellation outranks the deadline: a request cancelled after its
  // deadline armed should still report "cancelled", not "timed out".
  if (options_.cancel_token && options_.cancel_token->cancelled()) {
    request_stop(SolveStatus::kCancelled);
  } else if (timer_.seconds() > options_.time_limit_seconds ||
             (options_.cancel_token &&
              options_.cancel_token->deadline_passed())) {
    request_stop(SolveStatus::kTimeLimit);
  } else if (nodes_.load(std::memory_order_relaxed) >= options_.node_limit) {
    request_stop(SolveStatus::kNodeLimit);
  }
  return stop_.load(std::memory_order_relaxed);
}

void Search::request_stop(SolveStatus status) {
  {
    // stop_requested_ (not the public stop_ flag) arbitrates the status:
    // it is owned by stop_mutex_, so two concurrent requests cannot both
    // see "first" and the numerical-failure-dominates rule holds.
    const std::scoped_lock lock(stop_mutex_);
    if (!stop_requested_ || status == SolveStatus::kNumericalFailure) {
      stop_status_ = status;
    }
    stop_requested_ = true;
  }
  {
    // The store must happen under heap_mutex_: a worker that evaluated
    // its wait predicate just before this store would otherwise block
    // AFTER the notify below and sleep through the stop forever.
    const std::scoped_lock lock(heap_mutex_);
    stop_.store(true, std::memory_order_relaxed);
  }
  heap_cv_.notify_all();
}

void Search::offer_incumbent(const std::vector<double>& orig_x) {
  if (!original_.is_feasible(orig_x, 1e-5)) return;
  // Snap integers exactly before evaluating.
  std::vector<double> snapped(orig_x);
  for (Index j = 0; j < original_.num_vars(); ++j) {
    if (original_.var_type(j) != lp::VarType::kContinuous) {
      snapped[j] = std::round(snapped[j]);
    }
  }
  const double obj = original_.objective_value(snapped);
  {
    const std::scoped_lock lock(incumbent_mutex_);
    if (obj >= incumbent_obj_) return;
    incumbent_obj_ = obj;
    incumbent_x_ = std::move(snapped);
    incumbent_snapshot_.store(obj, std::memory_order_relaxed);
  }
  GMM_LOG(kDebug) << "mip: new incumbent " << obj << " at node "
                  << nodes_.load(std::memory_order_relaxed);
}

void Search::offer_incumbent_reduced(const std::vector<double>& reduced_x) {
  offer_incumbent(lp::postsolve(pre_, reduced_x));
}

void Search::push_open(double bound, std::shared_ptr<const NodeData> data,
                       std::shared_ptr<const lp::Basis> parent_basis) {
  std::shared_ptr<BasisSlot> slot;
  if (parent_basis != nullptr) {
    slot = std::make_shared<BasisSlot>();
    slot->basis = std::move(parent_basis);
  }
  {
    const std::scoped_lock lock(heap_mutex_);
    if (slot != nullptr) {
      ++stored_bases_;
      ++basis_stats_.stored;
      basis_fifo_.push_back(slot);
      // Over the cap: clear the least-recently-stored snapshot still
      // alive.  Its node stays queued and will re-solve cold.
      while (stored_bases_ > options_.max_stored_bases &&
             !basis_fifo_.empty()) {
        const std::shared_ptr<BasisSlot> oldest = basis_fifo_.front().lock();
        basis_fifo_.pop_front();
        if (oldest == nullptr || oldest->basis == nullptr) continue;
        oldest->basis.reset();
        --stored_bases_;
        ++basis_stats_.evicted;
      }
      // The FIFO accumulates expired entries for snapshots consumed at
      // pop; compact before it outgrows the live population by much.
      if (basis_fifo_.size() >
          2 * std::max<std::size_t>(options_.max_stored_bases, 64)) {
        std::erase_if(basis_fifo_, [](const std::weak_ptr<BasisSlot>& w) {
          const std::shared_ptr<BasisSlot> s = w.lock();
          return s == nullptr || s->basis == nullptr;
        });
      }
    }
    open_.push(OpenNode{bound, next_seq_++, std::move(data), std::move(slot)});
  }
  heap_cv_.notify_one();
}

void Search::release_basis_locked(const std::shared_ptr<BasisSlot>& slot) {
  if (slot != nullptr && slot->basis != nullptr) {
    slot->basis.reset();
    --stored_bases_;
  }
}

void Search::Worker::apply_path(const NodeData* node, const lp::Basis* warm) {
  engine_->reset_bounds();
  // Collect root->leaf order; later changes on the same variable must win.
  std::vector<const NodeData*> chain;
  for (const NodeData* p = node; p != nullptr; p = p->parent.get()) {
    chain.push_back(p);
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const BoundChange& c = (*it)->change;
    if (c.var != lp::kInvalidIndex) {
      engine_->set_column_bounds(c.var, c.lb, c.ub);
    }
  }
  if (warm != nullptr) {
    // The node's own parent basis: dual feasible under the re-derived
    // bounds (they differ from the snapshot's by one branching change,
    // and reduced costs do not depend on bounds), so the dual simplex
    // resumes as if this worker had just solved the parent.  load_basis
    // refreshes the basic solution itself.
    engine_->load_basis(*warm);
  } else {
    engine_->refresh_basic_solution();
  }
}

Index Search::Worker::pick_branch_var(const std::vector<double>& x) const {
  // Two tiers: fractional variables that CARRY OBJECTIVE are branched
  // before zero-cost ones.  Zero-cost integers (e.g. the symmetric
  // placement counts of the complete memory-mapping formulation) cannot
  // move the bound, so resolving the cost-bearing decisions first lets
  // the primal heuristics close the remaining feasibility plateau.
  // Within a tier: pseudocost score with most-fractional fallback,
  // score = (1-mu)*min(up,down) + mu*max(up,down).
  constexpr double kMu = 1.0 / 6.0;
  Index best = lp::kInvalidIndex;
  double best_score = -1.0;
  bool best_has_cost = false;
  for (const Index j : s_.int_cols_) {
    const double frac = x[j] - std::floor(x[j]);
    if (frac < kIntTol || frac > 1.0 - kIntTol) continue;
    const bool has_cost = s_.reduced_->obj(j) != 0.0;
    if (best_has_cost && !has_cost) continue;
    const Pseudocost& pc = pcost_[j];
    double score;
    if (pc.up_count > 0 && pc.down_count > 0) {
      const double up = pc.up_sum / pc.up_count * (1.0 - frac);
      const double down = pc.down_sum / pc.down_count * frac;
      score = (1.0 - kMu) * std::min(up, down) + kMu * std::max(up, down);
    } else {
      // Fractionality: 0.5 is the most undecided and scores highest.
      score = 0.5 - std::abs(frac - 0.5);
    }
    if ((has_cost && !best_has_cost) || score > best_score) {
      best_score = score;
      best = j;
      best_has_cost = has_cost;
    }
  }
  return best;
}

void Search::Worker::run_rounding_heuristic(
    const std::vector<double>& reduced_x) {
  std::vector<double> rounded(reduced_x);
  for (const Index j : s_.int_cols_) rounded[j] = std::round(rounded[j]);
  if (s_.reduced_->is_feasible(rounded, 1e-6)) {
    s_.offer_incumbent_reduced(rounded);
  }
}

void Search::Worker::run_user_heuristic(const std::vector<double>& reduced_x) {
  if (!s_.options_.primal_heuristic) return;
  const auto candidate =
      s_.options_.primal_heuristic(lp::postsolve(s_.pre_, reduced_x));
  if (candidate.has_value()) s_.offer_incumbent(*candidate);
}

SolveStatus Search::Worker::solve_node_lp() {
  lp::SimplexOptions simplex = s_.options_.simplex;
  const double remaining = s_.remaining_seconds();
  if (remaining < kInf) {
    simplex.time_limit_seconds = std::max(0.0, remaining);
  }
  const std::int64_t before = engine_->stats().iterations;
  SolveStatus status = engine_->solve(simplex);
  if (status == SolveStatus::kNumericalFailure ||
      status == SolveStatus::kIterationLimit) {
    // Cold restart once; the all-logical basis is always dual feasible.
    GMM_LOG(kWarn) << "mip: node LP " << to_string(status)
                   << ", retrying from a cold basis";
    engine_->reset_to_logical_basis();
    status = engine_->solve(simplex);
  }
  lp_iterations_ += engine_->stats().iterations - before;
  return status;
}

void Search::Worker::dive(std::shared_ptr<const NodeData> node,
                          bool warm_start) {
  // Entry contract: bounds + basic solution reflect `node`; LP not yet
  // solved.  Each loop iteration processes one node and either prunes
  // (return) or pushes one child to the shared heap and follows the other.
  //
  // The pending_* locals carry the previous iteration's branching decision
  // so the followed child's LP objective can feed the pseudocosts.
  Index pending_var = lp::kInvalidIndex;
  bool pending_up = false;
  double pending_frac = 0.0;
  double pending_parent_obj = 0.0;
  // First loop iteration = the popped node itself; its LP pivots feed the
  // warm/cold split.  Later iterations are plunge nodes, warm by
  // construction (the engine never leaves this subtree mid-dive).
  bool at_popped_node = true;

  while (true) {
    if (s_.limits_hit()) return;
    if (GMM_FAULT("ilp.alloc", "fail")) {
      // Simulated allocation failure at node setup; surfaces through the
      // same path as a genuine numerical breakdown, which the service
      // reports as a retryable internal error.
      s_.request_stop(SolveStatus::kNumericalFailure);
      return;
    }
    const std::int64_t node_ordinal =
        s_.nodes_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (s_.options_.progress) {
      s_.options_.progress->fetch_add(1, std::memory_order_relaxed);
    }

    const std::int64_t pivots_before = engine_->stats().iterations;
    const SolveStatus lp_status = solve_node_lp();
    if (at_popped_node) {
      at_popped_node = false;
      const std::int64_t pivots = engine_->stats().iterations - pivots_before;
      if (warm_start) {
        basis_stats_.warm_pop_pivots += pivots;
      } else {
        basis_stats_.cold_pop_pivots += pivots;
      }
    }
    if (lp_status == SolveStatus::kInfeasible) return;  // pruned
    if (lp_status == SolveStatus::kTimeLimit) {
      s_.request_stop(SolveStatus::kTimeLimit);
      return;
    }
    if (lp_status != SolveStatus::kOptimal) {
      GMM_LOG(kError) << "mip: unrecoverable node LP status "
                      << to_string(lp_status);
      s_.request_stop(SolveStatus::kNumericalFailure);
      return;
    }

    const double node_bound =
        engine_->objective_value() + s_.pre_.objective_offset;

    if (pending_var != lp::kInvalidIndex) {
      const double degradation =
          std::max(0.0, node_bound - pending_parent_obj);
      Pseudocost& pc = pcost_[pending_var];
      if (pending_up) {
        pc.up_sum += degradation / std::max(kIntTol, 1.0 - pending_frac);
        ++pc.up_count;
      } else {
        pc.down_sum += degradation / std::max(kIntTol, pending_frac);
        ++pc.down_count;
      }
      pending_var = lp::kInvalidIndex;
    }

    if (node_bound >= s_.prune_threshold()) return;  // bound-pruned

    const std::vector<double> x = engine_->structural_solution();
    const Index branch_var = pick_branch_var(x);
    if (branch_var == lp::kInvalidIndex) {
      // Integral: candidate incumbent.
      s_.offer_incumbent_reduced(x);
      return;
    }

    // (ordinal-1) % N == 0 runs at the first node and every N after it;
    // the historical `ordinal % N == 1` picked the same nodes for N > 1
    // but was never true for N == 1, silently disabling "every node".
    if (s_.options_.primal_heuristic &&
        (node_ordinal - 1) %
                std::max<std::int64_t>(1, s_.options_.heuristic_period) ==
            0) {
      run_user_heuristic(x);
    } else if (node_ordinal % 64 == 1) {
      run_rounding_heuristic(x);
    }

    const double value = x[branch_var];
    const double frac = value - std::floor(value);
    const double floor_v = std::floor(value);
    // Follow the nearer side first (plunge toward integrality), push the
    // other side for best-first processing later.
    const bool up_first = frac > 0.5;

    const BoundChange up{branch_var, floor_v + 1.0,
                         engine_->column_ub(branch_var)};
    const BoundChange down{branch_var, engine_->column_lb(branch_var),
                           floor_v};
    const BoundChange& follow = up_first ? up : down;
    const BoundChange& defer = up_first ? down : up;

    auto follow_data = std::make_shared<NodeData>();
    follow_data->parent = node;
    follow_data->change = follow;
    follow_data->depth = node ? node->depth + 1 : 1;
    auto defer_data = std::make_shared<NodeData>();
    defer_data->parent = node;
    defer_data->change = defer;
    defer_data->depth = follow_data->depth;

    // The deferred sibling's parent basis is exactly the engine's current
    // (optimal) basis — snapshot it into the cache so whichever worker
    // pops the sibling later warm-starts one bound change away, instead
    // of from its own engine's unrelated subtree.  With the cache off
    // (max_stored_bases == 0) the sibling is pushed cold.
    std::shared_ptr<const lp::Basis> defer_basis;
    if (s_.options_.max_stored_bases > 0) {
      defer_basis =
          std::make_shared<const lp::Basis>(engine_->snapshot_basis());
    }
    s_.push_open(node_bound, std::move(defer_data), std::move(defer_basis));

    engine_->set_column_bounds(branch_var, follow.lb, follow.ub);
    engine_->refresh_basic_solution();

    pending_var = branch_var;
    pending_up = up_first;
    pending_frac = frac;
    pending_parent_obj = node_bound;
    node = std::move(follow_data);
  }
}

void Search::Worker::loop() {
  std::unique_lock lock(s_.heap_mutex_);
  while (true) {
    s_.heap_cv_.wait(lock, [this] {
      return s_.stop_.load(std::memory_order_relaxed) ||
             !s_.open_.empty() || s_.active_workers_ == 0;
    });
    if (s_.stop_.load(std::memory_order_relaxed)) break;
    if (s_.open_.empty()) {
      if (s_.active_workers_ == 0) {
        // Search complete.  Wake the siblings: this state can be REACHED
        // by a worker that popped the final node and discarded it in the
        // pruned-while-queued branch below — that path never touches
        // active_workers_, so the post-dive notification does not fire
        // and sleeping workers would otherwise never observe completion.
        s_.heap_cv_.notify_all();
        break;
      }
      continue;  // woken while another worker may still produce nodes
    }
    OpenNode top = s_.open_.top();
    s_.open_.pop();
    if (top.bound >= s_.prune_threshold()) {
      // Pruned while queued: free its snapshot's cache slot (not an
      // eviction — the node is gone, not the basis under pressure).
      s_.release_basis_locked(top.slot);
      continue;
    }
    // Consume the node's snapshot while still under heap_mutex_ (eviction
    // mutates slots under the same lock).
    std::shared_ptr<const lp::Basis> warm;
    if (top.slot != nullptr && top.slot->basis != nullptr) {
      warm = std::move(top.slot->basis);
      --s_.stored_bases_;
      ++basis_stats_.loaded;
    } else {
      ++basis_stats_.cold_pops;
    }
    last_popped_bound_ = top.bound;
    popped_any_ = true;
    ++s_.active_workers_;
    lock.unlock();

    const bool warm_start = warm != nullptr;
    apply_path(top.data.get(), warm.get());
    warm.reset();  // the engine holds the state now; free the snapshot
    dive(std::move(top.data), warm_start);

    lock.lock();
    --s_.active_workers_;
    if (s_.open_.empty() && s_.active_workers_ == 0) {
      // Nothing left and nobody producing: wake idle workers to exit.
      s_.heap_cv_.notify_all();
    }
  }
}

MipResult Search::run() {
  timer_.reset();

  // ---- presolve --------------------------------------------------------
  if (options_.use_presolve) {
    pre_ = lp::presolve(original_);
  } else {
    // Identity presolve: copy the model through untouched.
    pre_.reduced = original_;
    pre_.var_map.resize(original_.num_vars());
    pre_.fixed_value.assign(original_.num_vars(), 0.0);
    for (Index j = 0; j < original_.num_vars(); ++j) pre_.var_map[j] = j;
  }
  if (pre_.infeasible) {
    result_.status = SolveStatus::kInfeasible;
    result_.seconds = timer_.seconds();
    return result_;
  }
  working_ = pre_.reduced;
  reduced_ = &working_;
  if (reduced_->num_vars() == 0) {
    offer_incumbent(lp::postsolve(pre_, {}));
    result_.status = incumbent_x_.empty() ? SolveStatus::kInfeasible
                                          : SolveStatus::kOptimal;
    result_.objective = incumbent_obj_;
    result_.best_bound = incumbent_obj_;
    result_.x = std::move(incumbent_x_);
    result_.seconds = timer_.seconds();
    return result_;
  }

  for (Index j = 0; j < reduced_->num_vars(); ++j) {
    if (reduced_->var_type(j) != lp::VarType::kContinuous) {
      int_cols_.push_back(j);
    }
  }

  sf_ = std::make_unique<lp::StandardForm>(
      lp::StandardForm::build(*reduced_));

  // ---- MIP start --------------------------------------------------------
  // Seed the incumbent BEFORE the cut loop and the first node: best-first
  // pruning (and the queued-node prune check) bite immediately, and
  // root reduced-cost fixing below needs an incumbent to fix against.
  // offer_incumbent validates the candidate, so a stale or infeasible
  // start degrades to a no-op instead of corrupting the search.
  if (static_cast<Index>(options_.mip_start.size()) == original_.num_vars() &&
      original_.num_vars() > 0) {
    offer_incumbent(options_.mip_start);
    result_.mip_start_used =
        incumbent_snapshot_.load(std::memory_order_relaxed) < kInf;
  }

  // ---- conflict cliques --------------------------------------------------
  // Map caller-supplied cliques (ORIGINAL variable space) through the
  // presolve once.  A member fixed at 1 forces every other member to 0 —
  // applied to working_ bounds right away; members fixed at 0 (or
  // eliminated) simply drop out.  Cliques that survive with >= 2 members
  // feed the violation-driven separation in the cut loop below.
  std::vector<std::vector<Index>> cliques;
  {
    bool bounds_changed = false;
    for (const auto& orig_clique : options_.conflict_cliques) {
      std::vector<Index> mapped;
      bool forced_one = false;
      for (const Index v : orig_clique) {
        if (v < 0 || v >= static_cast<Index>(pre_.var_map.size())) continue;
        const Index r = pre_.var_map[v];
        if (r == lp::kInvalidIndex) {
          if (pre_.fixed_value[v] >= 0.5) forced_one = true;
          continue;
        }
        if (reduced_->var_type(r) != lp::VarType::kBinary) {
          mapped.clear();
          break;  // only pure binary cliques are sound as <= 1 rows
        }
        mapped.push_back(r);
      }
      if (forced_one) {
        for (const Index r : mapped) {
          if (working_.var_ub(r) > 0.0) {
            working_.set_var_bounds(r, working_.var_lb(r), 0.0);
            bounds_changed = true;
          }
        }
        continue;
      }
      if (mapped.size() >= 2) cliques.push_back(std::move(mapped));
    }
    if (bounds_changed) {
      sf_ = std::make_unique<lp::StandardForm>(
          lp::StandardForm::build(working_));
    }
  }
  std::vector<bool> clique_added(cliques.size(), false);

  // ---- root cut loop -----------------------------------------------------
  // Per round on the root LP: reduced-cost bound fixing from the
  // incumbent, lifted cover separation, violated-clique separation; then
  // rebuild the standard form and re-solve.  Each round pays a model
  // rebuild + cold solve, which the bound improvement repays many times
  // over on the mapping formulations.  Serial: the rounds mutate the
  // model every worker will share.
  std::int64_t root_refactorizations = 0;
  {
    auto root_engine = lp::make_lp_backend(options_.lp_engine, *sf_);
    for (int round = 0; round < options_.max_cut_rounds; ++round) {
      if (limits_hit()) break;
      if (options_.progress) {
        options_.progress->fetch_add(1, std::memory_order_relaxed);
      }
      lp::SimplexOptions simplex = options_.simplex;
      const double remaining = remaining_seconds();
      if (remaining < kInf) {
        simplex.time_limit_seconds = std::max(0.0, remaining);
      }
      const std::int64_t before = root_engine->stats().iterations;
      const SolveStatus root_status = root_engine->solve(simplex);
      result_.lp_iterations += root_engine->stats().iterations - before;
      if (root_status != SolveStatus::kOptimal) break;
      bool model_changed = false;

      // Reduced-cost fixing.  A nonbasic integer column at a bound with
      // reduced cost d could only move delta away from that bound before
      // the LP bound z + |d| * delta crosses the prune threshold — the
      // SAME threshold node pruning uses, so tightening to that delta
      // discards only solutions the search would prune anyway.
      const double threshold = prune_threshold();
      if (options_.use_reduced_cost_fixing &&
          incumbent_snapshot_.load(std::memory_order_relaxed) < kInf) {
        const double z_root =
            root_engine->objective_value() + pre_.objective_offset;
        for (const Index j : int_cols_) {
          const double lb = working_.var_lb(j);
          const double ub = working_.var_ub(j);
          if (lb >= ub) continue;
          const double d = root_engine->reduced_cost(j);
          const lp::VStat stat = root_engine->column_status(j);
          if (stat == lp::VStat::kAtLower && d > lp::kDualTol) {
            const double delta = (threshold - z_root) / d;
            const double new_ub = lb + std::floor(delta + 1e-9);
            if (new_ub < ub - 0.5) {
              working_.set_var_bounds(j, lb, std::max(lb, new_ub));
              ++result_.rc_fixed;
              model_changed = true;
            }
          } else if (stat == lp::VStat::kAtUpper && d < -lp::kDualTol) {
            const double delta = (threshold - z_root) / -d;
            const double new_lb = ub - std::floor(delta + 1e-9);
            if (new_lb > lb + 0.5) {
              working_.set_var_bounds(j, std::min(ub, new_lb), ub);
              ++result_.rc_fixed;
              model_changed = true;
            }
          }
        }
      }

      const std::vector<double> x = root_engine->structural_solution();

      // Lifted knapsack cover cuts.
      const std::vector<CoverCut> cuts = separate_cover_cuts(working_, x);
      for (const CoverCut& cut : cuts) {
        lp::LinExpr expr;
        for (std::size_t k = 0; k < cut.vars.size(); ++k) {
          expr.add(cut.vars[k], cut.coefs[k]);
        }
        working_.add_row(expr, -kInf, cut.rhs);
        model_changed = true;
      }
      result_.cover_cuts += static_cast<std::int64_t>(cuts.size());

      // Clique cuts: add sum_{j in Q} x_j <= 1 for every not-yet-added
      // clique the root LP violates.
      for (std::size_t c = 0; c < cliques.size(); ++c) {
        if (clique_added[c]) continue;
        double activity = 0.0;
        for (const Index j : cliques[c]) activity += x[j];
        if (activity <= 1.0 + 1e-6) continue;
        lp::LinExpr expr;
        for (const Index j : cliques[c]) expr.add(j, 1.0);
        working_.add_row(expr, -kInf, 1.0);
        clique_added[c] = true;
        ++result_.clique_cuts;
        model_changed = true;
      }

      if (!model_changed) break;
      root_refactorizations += root_engine->stats().refactorizations;
      result_.lp_work_units += root_engine->stats().work_units;
      sf_ =
          std::make_unique<lp::StandardForm>(lp::StandardForm::build(working_));
      root_engine = lp::make_lp_backend(options_.lp_engine, *sf_);
    }
    root_refactorizations += root_engine->stats().refactorizations;
    result_.lp_work_units += root_engine->stats().work_units;
  }

  // ---- root ------------------------------------------------------------
  push_open(-kInf, nullptr);

  // ---- main search -----------------------------------------------------
  std::vector<std::unique_ptr<Worker>> workers(
      static_cast<std::size_t>(options_.num_threads));
  if (options_.num_threads <= 1) {
    // Serial path: one worker on the calling thread, draining the heap in
    // the exact historical order.
    workers[0] = std::make_unique<Worker>(*this);
    workers[0]->loop();
  } else {
    support::ThreadPool pool(static_cast<std::size_t>(options_.num_threads));
    for (std::size_t t = 0; t < workers.size(); ++t) {
      pool.submit([this, &workers, t] {
        // Engine construction is O(m^2) per worker; build it inside the
        // task so the setup cost itself is parallel.
        workers[t] = std::make_unique<Worker>(*this);
        workers[t]->loop();
      });
    }
    pool.wait_idle();
  }

  // ---- wrap up -----------------------------------------------------------
  result_.simplex_refactorizations = root_refactorizations;
  result_.basis = basis_stats_;  // stored/evicted (heap side)
  for (const auto& worker : workers) {
    result_.lp_iterations += worker->lp_iterations();
    result_.simplex_refactorizations += worker->refactorizations();
    result_.lp_work_units += worker->work_units();
    result_.basis += worker->basis_stats();  // loaded/cold/pivot split
  }
  result_.nodes = nodes_.load(std::memory_order_relaxed);
  result_.seconds = timer_.seconds();
  result_.objective = incumbent_obj_;
  result_.x = std::move(incumbent_x_);
  if (stop_.load(std::memory_order_relaxed)) {
    result_.stop_reason = stop_status_;
    // Remaining open nodes and abandoned in-flight subtrees bound the
    // optimum from below.
    double bound = kInf;
    for (const auto& worker : workers) {
      if (worker->popped_any()) {
        bound = std::min(bound, worker->last_popped_bound());
      }
    }
    if (!open_.empty()) bound = std::min(bound, open_.top().bound);
    if (bound == kInf) bound = -kInf;  // stopped before any node ran
    result_.best_bound =
        result_.x.empty() ? bound : std::min(bound, incumbent_obj_);
    result_.status =
        result_.x.empty() ? stop_status_ : SolveStatus::kFeasible;
    if (stop_status_ == SolveStatus::kNumericalFailure) {
      result_.status = SolveStatus::kNumericalFailure;
    }
  } else if (result_.x.empty()) {
    result_.status = SolveStatus::kInfeasible;
    result_.best_bound = kInf;
  } else {
    result_.status = SolveStatus::kOptimal;
    result_.best_bound = incumbent_obj_;
  }
  return result_;
}

}  // namespace

double MipResult::gap() const {
  if (!has_incumbent()) return lp::kInf;
  if (objective == best_bound) return 0.0;
  return (objective - best_bound) / std::max(1e-9, std::abs(objective));
}

MipSolver::MipSolver(MipOptions options) : options_(std::move(options)) {}

MipResult MipSolver::solve(const lp::Model& model) {
  if (!options_.pinned_vars.empty()) {
    // Pins collapse bounds on a COPY so the caller's model is untouched.
    // The Search then validates incumbents (including the MIP start)
    // against the pinned model, so a start conflicting with a pin is
    // rejected rather than smuggled past the pins.
    lp::Model pinned = model;
    for (const auto& [j, v] : options_.pinned_vars) {
      if (j >= 0 && j < pinned.num_vars()) pinned.set_var_bounds(j, v, v);
    }
    Search search(pinned, options_);
    return search.run();
  }
  Search search(model, options_);
  return search.run();
}

MipResult solve_mip(const lp::Model& model, const MipOptions& options) {
  MipSolver solver(options);
  return solver.solve(model);
}

}  // namespace gmm::ilp
