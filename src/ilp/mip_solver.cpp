#include "ilp/mip_solver.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>

#include "ilp/cover_cuts.hpp"
#include "lp/presolve.hpp"
#include "lp/standard_form.hpp"
#include "support/assert.hpp"
#include "support/log.hpp"
#include "support/timer.hpp"

namespace gmm::ilp {

namespace {

using lp::Index;
using lp::kInf;
using lp::kIntTol;
using lp::SolveStatus;

/// One branching decision relative to the parent node.
struct BoundChange {
  Index var = lp::kInvalidIndex;
  double lb = 0.0, ub = 0.0;
};

/// Immutable node payload; children share their ancestors through the
/// parent chain, so a node costs O(1) memory regardless of depth.
struct NodeData {
  std::shared_ptr<const NodeData> parent;
  BoundChange change;
  int depth = 0;
};

struct OpenNode {
  double bound = -kInf;  // parent LP objective: a valid lower bound
  std::uint64_t seq = 0;  // FIFO tie-break keeps the search deterministic
  std::shared_ptr<const NodeData> data;
};

struct BestFirstOrder {
  bool operator()(const OpenNode& a, const OpenNode& b) const {
    if (a.bound != b.bound) return a.bound > b.bound;  // min-heap on bound
    return a.seq > b.seq;
  }
};

/// Per-variable pseudocost statistics for branching-variable selection.
struct Pseudocost {
  double up_sum = 0.0, down_sum = 0.0;
  int up_count = 0, down_count = 0;
};

class Search {
 public:
  Search(const lp::Model& original, const MipOptions& options)
      : original_(original), options_(options) {}

  MipResult run();

 private:
  // -- helpers ---------------------------------------------------------
  void apply_path(const NodeData* node);
  [[nodiscard]] Index pick_branch_var(const std::vector<double>& x) const;
  void try_incumbent_from_reduced(const std::vector<double>& reduced_x);
  void try_incumbent_original(const std::vector<double>& orig_x);
  void run_rounding_heuristic(const std::vector<double>& reduced_x);
  void run_user_heuristic(const std::vector<double>& reduced_x);
  [[nodiscard]] double prune_threshold() const;
  [[nodiscard]] bool limits_hit();
  /// Solve the engine's current LP; returns the simplex status.
  SolveStatus solve_node_lp();
  /// Process one node: solve, prune/bound/branch; dives depth-first.
  void dive(std::shared_ptr<const NodeData> node);

  const lp::Model& original_;
  MipOptions options_;

  lp::PresolveResult pre_;
  lp::Model working_;  // presolved model plus any root cover cuts
  const lp::Model* reduced_ = nullptr;
  std::unique_ptr<lp::StandardForm> sf_;
  std::unique_ptr<lp::SimplexEngine> engine_;
  std::vector<Index> int_cols_;
  std::vector<Pseudocost> pcost_;  // indexed by reduced column

  std::priority_queue<OpenNode, std::vector<OpenNode>, BestFirstOrder> open_;
  std::uint64_t next_seq_ = 0;

  // Incumbent is kept in ORIGINAL variable space with TOTAL objective.
  double incumbent_obj_ = kInf;
  std::vector<double> incumbent_x_;

  support::WallTimer timer_;
  MipResult result_;
  bool stop_ = false;
  SolveStatus stop_status_ = SolveStatus::kOptimal;
};

double Search::prune_threshold() const {
  const double slack = std::max(options_.abs_gap,
                                options_.rel_gap * std::abs(incumbent_obj_));
  return incumbent_obj_ - slack;
}

bool Search::limits_hit() {
  if (stop_) return true;
  if (timer_.seconds() > options_.time_limit_seconds) {
    stop_ = true;
    stop_status_ = SolveStatus::kTimeLimit;
  } else if (result_.nodes >= options_.node_limit) {
    stop_ = true;
    stop_status_ = SolveStatus::kNodeLimit;
  }
  return stop_;
}

void Search::apply_path(const NodeData* node) {
  engine_->reset_bounds();
  // Collect root->leaf order; later changes on the same variable must win.
  std::vector<const NodeData*> chain;
  for (const NodeData* p = node; p != nullptr; p = p->parent.get()) {
    chain.push_back(p);
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const BoundChange& c = (*it)->change;
    if (c.var != lp::kInvalidIndex) {
      engine_->set_column_bounds(c.var, c.lb, c.ub);
    }
  }
  engine_->refresh_basic_solution();
}

Index Search::pick_branch_var(const std::vector<double>& x) const {
  // Two tiers: fractional variables that CARRY OBJECTIVE are branched
  // before zero-cost ones.  Zero-cost integers (e.g. the symmetric
  // placement counts of the complete memory-mapping formulation) cannot
  // move the bound, so resolving the cost-bearing decisions first lets
  // the primal heuristics close the remaining feasibility plateau.
  // Within a tier: pseudocost score with most-fractional fallback,
  // score = (1-mu)*min(up,down) + mu*max(up,down).
  constexpr double kMu = 1.0 / 6.0;
  Index best = lp::kInvalidIndex;
  double best_score = -1.0;
  bool best_has_cost = false;
  for (const Index j : int_cols_) {
    const double frac = x[j] - std::floor(x[j]);
    if (frac < kIntTol || frac > 1.0 - kIntTol) continue;
    const bool has_cost = reduced_->obj(j) != 0.0;
    if (best_has_cost && !has_cost) continue;
    const Pseudocost& pc = pcost_[j];
    double score;
    if (pc.up_count > 0 && pc.down_count > 0) {
      const double up = pc.up_sum / pc.up_count * (1.0 - frac);
      const double down = pc.down_sum / pc.down_count * frac;
      score = (1.0 - kMu) * std::min(up, down) + kMu * std::max(up, down);
    } else {
      // Fractionality: 0.5 is the most undecided and scores highest.
      score = 0.5 - std::abs(frac - 0.5);
    }
    if ((has_cost && !best_has_cost) || score > best_score) {
      best_score = score;
      best = j;
      best_has_cost = has_cost;
    }
  }
  return best;
}

void Search::try_incumbent_original(const std::vector<double>& orig_x) {
  if (!original_.is_feasible(orig_x, 1e-5)) return;
  // Snap integers exactly before evaluating.
  std::vector<double> snapped(orig_x);
  for (Index j = 0; j < original_.num_vars(); ++j) {
    if (original_.var_type(j) != lp::VarType::kContinuous) {
      snapped[j] = std::round(snapped[j]);
    }
  }
  const double obj = original_.objective_value(snapped);
  if (obj < incumbent_obj_) {
    incumbent_obj_ = obj;
    incumbent_x_ = std::move(snapped);
    GMM_LOG(kDebug) << "mip: new incumbent " << obj << " at node "
                    << result_.nodes;
  }
}

void Search::try_incumbent_from_reduced(const std::vector<double>& reduced_x) {
  try_incumbent_original(lp::postsolve(pre_, reduced_x));
}

void Search::run_rounding_heuristic(const std::vector<double>& reduced_x) {
  std::vector<double> rounded(reduced_x);
  for (const Index j : int_cols_) rounded[j] = std::round(rounded[j]);
  if (reduced_->is_feasible(rounded, 1e-6)) {
    try_incumbent_from_reduced(rounded);
  }
}

void Search::run_user_heuristic(const std::vector<double>& reduced_x) {
  if (!options_.primal_heuristic) return;
  const auto candidate =
      options_.primal_heuristic(lp::postsolve(pre_, reduced_x));
  if (candidate.has_value()) try_incumbent_original(*candidate);
}

SolveStatus Search::solve_node_lp() {
  lp::SimplexOptions simplex = options_.simplex;
  if (options_.time_limit_seconds < kInf) {
    simplex.time_limit_seconds =
        std::max(0.0, options_.time_limit_seconds - timer_.seconds());
  }
  const std::int64_t before = engine_->stats().iterations;
  SolveStatus status = engine_->solve(simplex);
  if (status == SolveStatus::kNumericalFailure ||
      status == SolveStatus::kIterationLimit) {
    // Cold restart once; the all-logical basis is always dual feasible.
    GMM_LOG(kWarn) << "mip: node LP " << to_string(status)
                   << ", retrying from a cold basis";
    engine_->reset_to_logical_basis();
    status = engine_->solve(simplex);
  }
  result_.lp_iterations += engine_->stats().iterations - before;
  return status;
}

void Search::dive(std::shared_ptr<const NodeData> node) {
  // Entry contract: bounds + basic solution reflect `node`; LP not yet
  // solved.  Each loop iteration processes one node and either prunes
  // (return) or pushes one child to the heap and follows the other.
  //
  // The pending_* locals carry the previous iteration's branching decision
  // so the followed child's LP objective can feed the pseudocosts.
  Index pending_var = lp::kInvalidIndex;
  bool pending_up = false;
  double pending_frac = 0.0;
  double pending_parent_obj = 0.0;

  while (true) {
    if (limits_hit()) return;
    ++result_.nodes;

    const SolveStatus lp_status = solve_node_lp();
    if (lp_status == SolveStatus::kInfeasible) return;  // pruned
    if (lp_status == SolveStatus::kTimeLimit) {
      stop_ = true;
      stop_status_ = SolveStatus::kTimeLimit;
      return;
    }
    if (lp_status != SolveStatus::kOptimal) {
      stop_ = true;
      stop_status_ = SolveStatus::kNumericalFailure;
      GMM_LOG(kError) << "mip: unrecoverable node LP status "
                      << to_string(lp_status);
      return;
    }

    const double node_bound =
        engine_->objective_value() + pre_.objective_offset;

    if (pending_var != lp::kInvalidIndex) {
      const double degradation =
          std::max(0.0, node_bound - pending_parent_obj);
      Pseudocost& pc = pcost_[pending_var];
      if (pending_up) {
        pc.up_sum += degradation / std::max(kIntTol, 1.0 - pending_frac);
        ++pc.up_count;
      } else {
        pc.down_sum += degradation / std::max(kIntTol, pending_frac);
        ++pc.down_count;
      }
      pending_var = lp::kInvalidIndex;
    }

    if (node_bound >= prune_threshold()) return;  // bound-pruned

    const std::vector<double> x = engine_->structural_solution();
    const Index branch_var = pick_branch_var(x);
    if (branch_var == lp::kInvalidIndex) {
      // Integral: candidate incumbent.
      try_incumbent_from_reduced(x);
      return;
    }

    if (options_.primal_heuristic &&
        result_.nodes %
                std::max<std::int64_t>(1, options_.heuristic_period) ==
            1) {
      run_user_heuristic(x);
    } else if (result_.nodes % 64 == 1) {
      run_rounding_heuristic(x);
    }

    const double value = x[branch_var];
    const double frac = value - std::floor(value);
    const double floor_v = std::floor(value);
    // Follow the nearer side first (plunge toward integrality), push the
    // other side for best-first processing later.
    const bool up_first = frac > 0.5;

    const BoundChange up{branch_var, floor_v + 1.0,
                         engine_->column_ub(branch_var)};
    const BoundChange down{branch_var, engine_->column_lb(branch_var),
                           floor_v};
    const BoundChange& follow = up_first ? up : down;
    const BoundChange& defer = up_first ? down : up;

    auto follow_data = std::make_shared<NodeData>();
    follow_data->parent = node;
    follow_data->change = follow;
    follow_data->depth = node ? node->depth + 1 : 1;
    auto defer_data = std::make_shared<NodeData>();
    defer_data->parent = node;
    defer_data->change = defer;
    defer_data->depth = follow_data->depth;

    open_.push(OpenNode{node_bound, next_seq_++, std::move(defer_data)});

    engine_->set_column_bounds(branch_var, follow.lb, follow.ub);
    engine_->refresh_basic_solution();

    pending_var = branch_var;
    pending_up = up_first;
    pending_frac = frac;
    pending_parent_obj = node_bound;
    node = std::move(follow_data);
  }
}

MipResult Search::run() {
  timer_.reset();

  // ---- presolve --------------------------------------------------------
  if (options_.use_presolve) {
    pre_ = lp::presolve(original_);
  } else {
    // Identity presolve: copy the model through untouched.
    pre_.reduced = original_;
    pre_.var_map.resize(original_.num_vars());
    pre_.fixed_value.assign(original_.num_vars(), 0.0);
    for (Index j = 0; j < original_.num_vars(); ++j) pre_.var_map[j] = j;
  }
  if (pre_.infeasible) {
    result_.status = SolveStatus::kInfeasible;
    result_.seconds = timer_.seconds();
    return result_;
  }
  working_ = pre_.reduced;
  reduced_ = &working_;
  if (reduced_->num_vars() == 0) {
    std::vector<double> x = lp::postsolve(pre_, {});
    try_incumbent_original(x);
    result_.status = incumbent_x_.empty() ? SolveStatus::kInfeasible
                                          : SolveStatus::kOptimal;
    result_.objective = incumbent_obj_;
    result_.best_bound = incumbent_obj_;
    result_.x = std::move(incumbent_x_);
    result_.seconds = timer_.seconds();
    return result_;
  }

  for (Index j = 0; j < reduced_->num_vars(); ++j) {
    if (reduced_->var_type(j) != lp::VarType::kContinuous) {
      int_cols_.push_back(j);
    }
  }
  pcost_.assign(reduced_->num_vars(), Pseudocost{});

  sf_ = std::make_unique<lp::StandardForm>(
      lp::StandardForm::build(*reduced_));
  engine_ = std::make_unique<lp::SimplexEngine>(*sf_);

  // ---- root cutting planes ----------------------------------------------
  // Separate knapsack cover cuts on the root LP, rebuild, repeat.  Each
  // round pays a model rebuild + cold solve, which the bound improvement
  // repays many times over on the mapping formulations.
  for (int round = 0; round < options_.max_cut_rounds; ++round) {
    if (limits_hit()) break;
    lp::SimplexOptions simplex = options_.simplex;
    if (options_.time_limit_seconds < kInf) {
      simplex.time_limit_seconds =
          std::max(0.0, options_.time_limit_seconds - timer_.seconds());
    }
    const std::int64_t before = engine_->stats().iterations;
    const SolveStatus root_status = engine_->solve(simplex);
    result_.lp_iterations += engine_->stats().iterations - before;
    if (root_status != SolveStatus::kOptimal) break;
    const std::vector<double> x = engine_->structural_solution();
    const std::vector<CoverCut> cuts = separate_cover_cuts(working_, x);
    if (cuts.empty()) break;
    for (const CoverCut& cut : cuts) {
      lp::LinExpr expr;
      for (const Index var : cut.vars) expr.add(var, 1.0);
      working_.add_row(expr, -kInf, cut.rhs);
    }
    result_.cover_cuts += static_cast<std::int64_t>(cuts.size());
    sf_ = std::make_unique<lp::StandardForm>(lp::StandardForm::build(working_));
    engine_ = std::make_unique<lp::SimplexEngine>(*sf_);
  }

  // ---- root ------------------------------------------------------------
  open_.push(OpenNode{-kInf, next_seq_++, nullptr});

  // ---- main loop ---------------------------------------------------------
  double heap_best_bound = -kInf;
  while (!open_.empty() && !limits_hit()) {
    OpenNode top = open_.top();
    open_.pop();
    if (top.bound >= prune_threshold()) continue;  // pruned while queued
    heap_best_bound = top.bound;
    apply_path(top.data.get());
    dive(std::move(top.data));
  }

  // ---- wrap up -----------------------------------------------------------
  result_.simplex_refactorizations = engine_->stats().refactorizations;
  result_.seconds = timer_.seconds();
  result_.objective = incumbent_obj_;
  result_.x = std::move(incumbent_x_);
  if (stop_) {
    // Remaining open nodes bound the optimum from below.
    double bound = heap_best_bound;
    if (!open_.empty()) bound = std::min(bound, open_.top().bound);
    result_.best_bound = result_.x.empty() ? bound : std::min(bound, incumbent_obj_);
    result_.status = result_.x.empty() ? stop_status_ : SolveStatus::kFeasible;
    if (stop_status_ == SolveStatus::kNumericalFailure) {
      result_.status = SolveStatus::kNumericalFailure;
    }
  } else if (result_.x.empty()) {
    result_.status = SolveStatus::kInfeasible;
    result_.best_bound = kInf;
  } else {
    result_.status = SolveStatus::kOptimal;
    result_.best_bound = incumbent_obj_;
  }
  return result_;
}

}  // namespace

double MipResult::gap() const {
  if (!has_incumbent()) return lp::kInf;
  if (objective == best_bound) return 0.0;
  return (objective - best_bound) / std::max(1e-9, std::abs(objective));
}

MipSolver::MipSolver(MipOptions options) : options_(std::move(options)) {}

MipResult MipSolver::solve(const lp::Model& model) {
  Search search(model, options_);
  return search.run();
}

MipResult solve_mip(const lp::Model& model, const MipOptions& options) {
  MipSolver solver(options);
  return solver.solve(model);
}

}  // namespace gmm::ilp
