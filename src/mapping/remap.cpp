#include "mapping/remap.hpp"

#include "support/log.hpp"

namespace gmm::mapping {

namespace {

bool has_mapping(const PipelineResult& result) {
  return result.status == lp::SolveStatus::kOptimal ||
         result.status == lp::SolveStatus::kFeasible;
}

}  // namespace

RemapResult remap(const design::Design& design, const arch::Board& board,
                  const std::vector<int>& prior_type_of,
                  const RemapOptions& options) {
  RemapResult out;
  PipelineOptions warm = options.pipeline;
  if (prior_type_of.size() == design.size()) {
    warm.global.warm_assignment = prior_type_of;
    warm.global.pinned_structures = options.pinned_structures;
    warm.global.migration_penalty = options.migration_penalty;
  }
  out.result = map_pipeline(design, board, warm);
  out.warm_used = out.result.mip.mip_start_used;
  if (has_mapping(out.result)) return out;

  // A pin the delta cannot live with (or a stale prior on a changed
  // board) shows up as infeasibility; the cold path is always available.
  const bool constrained = !warm.global.pinned_structures.empty() ||
                           warm.global.migration_penalty > 0.0;
  if (options.fallback_to_cold && constrained &&
      out.result.status != lp::SolveStatus::kCancelled &&
      out.result.status != lp::SolveStatus::kTimeLimit) {
    GMM_LOG(kInfo) << "remap: incremental solve failed ("
                   << lp::to_string(out.result.status)
                   << "); falling back to a cold solve";
    out.result = map_pipeline(design, board, options.pipeline);
    out.warm_used = false;
    out.fell_back_cold = true;
  }
  return out;
}

}  // namespace gmm::mapping
