#include "mapping/validate.hpp"

#include <algorithm>
#include <map>

#include "support/arithmetic.hpp"

namespace gmm::mapping {

std::vector<std::string> validate_mapping(const design::Design& design,
                                          const arch::Board& board,
                                          const GlobalAssignment& assignment,
                                          const DetailedMapping& mapping) {
  std::vector<std::string> violations;
  const auto violation = [&violations](std::string message) {
    violations.push_back(std::move(message));
  };

  if (!mapping.success) {
    violation("mapping marked unsuccessful: " + mapping.failure);
    return violations;
  }

  // ---- per-fragment structural checks -------------------------------
  std::vector<std::int64_t> covered_bits(design.size(), 0);
  for (const PlacedFragment& f : mapping.fragments) {
    if (f.ds >= design.size()) {
      violation("fragment references unknown structure");
      continue;
    }
    const design::DataStructure& ds = design.at(f.ds);
    if (f.type >= board.num_types()) {
      violation(ds.name + ": fragment on unknown bank type");
      continue;
    }
    const arch::BankType& type = board.type(f.type);
    if (assignment.type_of[f.ds] != static_cast<int>(f.type)) {
      violation(ds.name + ": fragment on type " + type.name +
                " but globally assigned elsewhere");
    }
    if (f.instance < 0 || f.instance >= type.instances) {
      violation(ds.name + ": instance index out of range on " + type.name);
    }
    if (f.config_index < 0 ||
        f.config_index >= static_cast<int>(type.configs.size())) {
      violation(ds.name + ": unknown configuration index");
      continue;
    }
    if (f.ports <= 0 || f.first_port < 0 ||
        f.first_port + f.ports > type.ports) {
      violation(ds.name + ": port range outside the instance's ports");
    }
    if (f.block_bits <= 0 || !support::is_pow2(f.block_bits)) {
      violation(ds.name + ": block size is not a power of two");
      continue;
    }
    if (f.offset_bits < 0 || f.offset_bits % f.block_bits != 0) {
      violation(ds.name + ": block offset not aligned to its size");
    }
    if (f.offset_bits + f.block_bits > type.capacity_bits()) {
      violation(ds.name + ": block exceeds the instance capacity");
    }
    // The reserved block must hold the covered data in the chosen config.
    const arch::BankConfig& config = type.configs[f.config_index];
    const std::int64_t needed_depth = support::round_up_pow2(f.words_covered);
    if (f.bits_covered > config.width) {
      violation(ds.name + ": data wider than the port configuration");
    }
    if (needed_depth * config.width > f.block_bits) {
      violation(ds.name + ": block too small for the covered words");
    }
    covered_bits[f.ds] += f.words_covered * f.bits_covered;
  }

  // ---- full coverage -----------------------------------------------------
  for (std::size_t d = 0; d < design.size(); ++d) {
    if (assignment.type_of[d] < 0) {
      violation(design.at(d).name + ": structure left unassigned");
      continue;
    }
    if (covered_bits[d] != design.at(d).bits()) {
      violation(design.at(d).name + ": fragments cover " +
                std::to_string(covered_bits[d]) + " of " +
                std::to_string(design.at(d).bits()) + " data bits");
    }
  }

  // ---- per-instance checks ---------------------------------------------
  std::map<std::pair<std::size_t, std::int64_t>,
           std::vector<const PlacedFragment*>>
      by_instance;
  for (const PlacedFragment& f : mapping.fragments) {
    by_instance[{f.type, f.instance}].push_back(&f);
  }
  for (const auto& [key, fragments] : by_instance) {
    const arch::BankType& type = board.type(key.first);
    const std::string where =
        type.name + "[" + std::to_string(key.second) + "]";

    // Distinct wiring groups: fragments sharing the exact same block AND
    // port range time-multiplex one set of wiring and count once.
    std::vector<const PlacedFragment*> group_heads;
    for (const PlacedFragment* f : fragments) {
      const bool duplicate = std::any_of(
          group_heads.begin(), group_heads.end(),
          [f](const PlacedFragment* head) {
            return head->first_port == f->first_port &&
                   head->ports == f->ports &&
                   head->offset_bits == f->offset_bits &&
                   head->block_bits == f->block_bits;
          });
      if (!duplicate) group_heads.push_back(f);
    }
    std::int64_t total_ports = 0;
    for (const PlacedFragment* head : group_heads) total_ports += head->ports;
    if (total_ports > type.ports) {
      violation(where + ": " + std::to_string(total_ports) +
                " ports consumed of " + std::to_string(type.ports));
    }

    for (std::size_t a = 0; a < fragments.size(); ++a) {
      for (std::size_t b = a + 1; b < fragments.size(); ++b) {
        const PlacedFragment* fa = fragments[a];
        const PlacedFragment* fb = fragments[b];
        const bool port_overlap =
            fa->first_port < fb->first_port + fb->ports &&
            fb->first_port < fa->first_port + fa->ports;
        const bool block_overlap =
            fa->offset_bits < fb->offset_bits + fb->block_bits &&
            fb->offset_bits < fa->offset_bits + fa->block_bits;
        // Legal sharing: identical block + identical port range +
        // configuration between non-conflicting structures.
        const bool identical_share =
            fa->offset_bits == fb->offset_bits &&
            fa->block_bits == fb->block_bits &&
            fa->first_port == fb->first_port && fa->ports == fb->ports &&
            fa->config_index == fb->config_index;
        if (identical_share) {
          if (fa->ds == fb->ds) {
            violation(where + ": two fragments of " +
                      design.at(fa->ds).name + " share one block");
          } else if (design.conflicts(fa->ds, fb->ds)) {
            violation(where + ": conflicting structures " +
                      design.at(fa->ds).name + " and " +
                      design.at(fb->ds).name + " share storage");
          }
          continue;
        }
        if (port_overlap) {
          violation(where + ": port ranges of " + design.at(fa->ds).name +
                    " and " + design.at(fb->ds).name + " overlap");
        }
        if (block_overlap) {
          violation(where + ": blocks of " + design.at(fa->ds).name +
                    " and " + design.at(fb->ds).name + " overlap");
        }
      }
    }
  }
  return violations;
}

}  // namespace gmm::mapping
