// Greedy baseline mapper (not from the paper; quality yardstick).
//
// Structures sorted by decreasing storage footprint are assigned, one at
// a time, to the cheapest bank type whose remaining aggregate port and
// capacity budgets still admit them.  Orders of magnitude faster than any
// ILP, but blind to global trade-offs: the sim-quality and quality-parity
// benches quantify how much objective the ILP approaches buy over it.
#pragma once

#include "arch/board.hpp"
#include "design/design.hpp"
#include "mapping/cost_model.hpp"
#include "mapping/types.hpp"

namespace gmm::mapping {

struct GreedyResult {
  bool success = false;
  std::string failure;
  bool used_fallback = false;  // headroom fallback rescued a stuck run
  GlobalAssignment assignment;
  double seconds = 0.0;
};

GreedyResult map_greedy(const design::Design& design,
                        const arch::Board& board, const CostTable& table);

/// Feasibility-first construction: assign structures largest-first to the
/// feasible type with the most remaining port headroom, ignoring cost.
/// Used as map_greedy's fallback and as the ILP mappers' last-resort
/// incumbent source.  Returns an empty vector when even this fails.
std::vector<int> headroom_assignment(const design::Design& design,
                                     const arch::Board& board,
                                     const CostTable& table);

}  // namespace gmm::mapping
