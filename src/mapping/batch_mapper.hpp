// Batched mapping driver: map N independent designs concurrently.
//
// This is the serving-path counterpart of the single-design pipeline —
// the "many scenarios at once" workload: a board (with its parsed device
// catalog and bank types) is loaded once and shared read-only by every
// request, while a ThreadPool fans the per-design global/detailed
// pipelines out across workers.  Each pipeline run is independent, so
// results are deterministic per item regardless of worker interleaving
// (when the per-item solver itself runs with num_threads == 1).
//
// Two entry points: one borrowing a caller-owned pool (so a server can
// share a single pool between batches) and an owning convenience that
// spins one up for the call.
#pragma once

#include <cstddef>
#include <vector>

#include "arch/board.hpp"
#include "design/design.hpp"
#include "mapping/pipeline.hpp"
#include "support/thread_pool.hpp"

namespace gmm::mapping {

/// One mapping request.  The pointed-to design and board must outlive the
/// map_batch call; the board is typically shared by every item.
struct BatchItem {
  const design::Design* design = nullptr;
  const arch::Board* board = nullptr;
  /// Per-item override of the batch-wide options (null = use the batch
  /// default).  The shard-repair loop uses this to warm-start re-solves
  /// of changed parts with the previous round's assignment.  Must outlive
  /// the map_batch call.
  const PipelineOptions* options = nullptr;
};

struct BatchResult {
  std::vector<PipelineResult> results;  // parallel to the input items
  double seconds = 0.0;                 // wall clock for the whole batch
  std::size_t succeeded = 0;  // items that reached optimal/feasible

  [[nodiscard]] bool all_succeeded() const {
    return succeeded == results.size();
  }
};

/// Map every item over `pool`, blocking until the batch completes.
BatchResult map_batch(support::ThreadPool& pool,
                      const std::vector<BatchItem>& items,
                      const PipelineOptions& options = {});

/// Convenience: create a pool of `num_workers` (0 = hardware concurrency)
/// for the duration of the call.
BatchResult map_batch(const std::vector<BatchItem>& items,
                      const PipelineOptions& options = {},
                      std::size_t num_workers = 0);

}  // namespace gmm::mapping
