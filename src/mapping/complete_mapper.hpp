// Complete ("flat view") memory mapping — the baseline of Table 3.
//
// The paper's prior work [9] formulates the whole problem as one ILP over
//   Z_dt   (structure -> type),
//   X_dtip (structure -> port p of instance i), and
//   Y_tipc (configuration c chosen for port p of instance i),
// which optimizes and places in a single step and whose size explodes
// with the number of banks, ports and configurations — exactly the three
// complexity columns of Table 3.
//
// This reconstruction keeps that variable structure at instance
// granularity:
//   z[d][t]        binary   — type selection (carries the whole objective);
//   n[d][t][g][i]  integer  — how many fragments of Figure-2 group g of
//                             structure d sit on instance i of type t
//                             (the integer aggregation of X_dtip over the
//                             symmetric ports of an instance);
//   y[t][i][c]     integer  — ports of instance i configured as c (the
//                             aggregation of Y_tipc), present only for
//                             multi-configuration types as in the paper.
// Constraints: uniqueness, fragment completeness, per-instance port and
// capacity limits, and port/configuration consistency.  The objective is
// the same CostTable expression the global mapper uses, so a proven
// optimum of either formulation certifies the other (the paper's
// optimality-preservation claim, checked by the quality-parity bench).
#pragma once

#include "arch/board.hpp"
#include "design/design.hpp"
#include "ilp/mip_solver.hpp"
#include "mapping/cost_model.hpp"
#include "mapping/types.hpp"

namespace gmm::mapping {

struct CompleteOptions {
  ilp::MipOptions mip;
  /// Inject a packing-repair primal heuristic (rounds the LP's Z, runs
  /// the detailed packer, feeds the result back as an incumbent).  Helps
  /// pruning; the formulation size — the paper's point — is unaffected.
  bool use_packing_heuristic = true;
};

struct CompleteResult {
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  GlobalAssignment assignment;
  DetailedMapping detailed;  // placement decoded from the ILP solution
  ModelSize model_size;
  SolveEffort effort;
  ilp::MipResult mip;
};

CompleteResult map_complete(const design::Design& design,
                            const arch::Board& board, const CostTable& table,
                            const CompleteOptions& options = {});

}  // namespace gmm::mapping
