#include "mapping/detailed_ilp.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "mapping/detailed_mapper.hpp"
#include "support/assert.hpp"
#include "support/log.hpp"

namespace gmm::mapping {

namespace {

struct Fragment {
  std::size_t ds;
  const FragmentGroup* group;
};

/// Pack one type's fragments with the bin-packing ILP; returns false when
/// the model is infeasible or hits limits (caller falls back).
bool pack_type_ilp(const arch::BankType& type, std::size_t type_index,
                   const std::vector<Fragment>& fragments,
                   const DetailedIlpOptions& options,
                   DetailedMapping& mapping) {
  const auto num_fragments = static_cast<std::int64_t>(fragments.size());
  // Instances can never exceed the fragment count (each fragment touches
  // exactly one instance), which keeps the model compact.
  const std::int64_t num_instances =
      std::min<std::int64_t>(type.instances, num_fragments);

  lp::Model model;
  // y[f][i], laid out fragment-major.
  std::vector<lp::Index> y(static_cast<std::size_t>(num_fragments) *
                           num_instances);
  for (std::int64_t f = 0; f < num_fragments; ++f) {
    for (std::int64_t i = 0; i < num_instances; ++i) {
      y[f * num_instances + i] = model.add_binary(0.0);
    }
  }
  std::vector<lp::Index> used(num_instances);
  for (std::int64_t i = 0; i < num_instances; ++i) {
    used[i] = model.add_binary(1.0);  // objective: instances touched
  }

  for (std::int64_t f = 0; f < num_fragments; ++f) {
    lp::LinExpr placed;
    for (std::int64_t i = 0; i < num_instances; ++i) {
      placed.add(y[f * num_instances + i], 1.0);
    }
    model.add_constraint(placed, lp::Sense::kEqual, 1.0);
  }
  for (std::int64_t i = 0; i < num_instances; ++i) {
    lp::LinExpr ports, bits;
    for (std::int64_t f = 0; f < num_fragments; ++f) {
      ports.add(y[f * num_instances + i],
                static_cast<double>(fragments[f].group->ports_each));
      bits.add(y[f * num_instances + i],
               static_cast<double>(fragments[f].group->block_bits));
    }
    ports.add(used[i], -static_cast<double>(type.ports));
    bits.add(used[i], -static_cast<double>(type.capacity_bits()));
    model.add_constraint(ports, lp::Sense::kLessEqual, 0.0);
    model.add_constraint(bits, lp::Sense::kLessEqual, 0.0);
    if (i + 1 < num_instances) {
      lp::LinExpr order;
      order.add(used[i], 1.0);
      order.add(used[i + 1], -1.0);
      model.add_constraint(order, lp::Sense::kGreaterEqual, 0.0);
    }
  }

  const ilp::MipResult result = ilp::solve_mip(model, options.mip);
  if (!result.has_incumbent()) {
    GMM_LOG(kInfo) << "detailed-ilp: type " << type.name << " "
                   << lp::to_string(result.status)
                   << "; falling back to the constructive packer";
    return false;
  }

  // Decode: per instance, place blocks by descending size (pow-2 blocks
  // packed in order are automatically buddy-aligned).
  for (std::int64_t i = 0; i < num_instances; ++i) {
    std::vector<const Fragment*> members;
    for (std::int64_t f = 0; f < num_fragments; ++f) {
      if (result.x[y[f * num_instances + i]] > 0.5) {
        members.push_back(&fragments[f]);
      }
    }
    if (members.empty()) continue;
    std::stable_sort(members.begin(), members.end(),
                     [](const Fragment* a, const Fragment* b) {
                       return a->group->block_bits > b->group->block_bits;
                     });
    std::int64_t next_port = 0;
    std::int64_t next_offset = 0;
    for (const Fragment* frag : members) {
      mapping.fragments.push_back(PlacedFragment{
          .ds = frag->ds,
          .type = type_index,
          .instance = i,
          .config_index = frag->group->config_index,
          .kind = frag->group->kind,
          .ports = frag->group->ports_each,
          .first_port = next_port,
          .offset_bits = next_offset,
          .block_bits = frag->group->block_bits,
          .words_covered = frag->group->words_covered,
          .bits_covered = frag->group->bits_covered,
      });
      next_port += frag->group->ports_each;
      next_offset += frag->group->block_bits;
      GMM_ASSERT(next_port <= type.ports,
                 "detailed-ilp decode exceeded instance ports");
      GMM_ASSERT(next_offset <= type.capacity_bits(),
                 "detailed-ilp decode exceeded instance capacity");
    }
  }
  return true;
}

}  // namespace

DetailedMapping map_detailed_ilp(const design::Design& design,
                                 const arch::Board& board,
                                 const CostTable& table,
                                 const GlobalAssignment& assignment,
                                 const DetailedIlpOptions& options) {
  DetailedMapping mapping;
  GMM_ASSERT(assignment.type_of.size() == design.size(),
             "assignment does not match the design");

  // Computed on the first fallback and reused for any further ones.
  std::optional<DetailedMapping> constructive;

  for (std::size_t t = 0; t < board.num_types(); ++t) {
    std::vector<Fragment> fragments;
    for (std::size_t d = 0; d < design.size(); ++d) {
      if (assignment.type_of[d] != static_cast<int>(t)) continue;
      const PlacementPlan& plan = table.plan(d, t);
      for (const FragmentGroup& g : plan.groups) {
        for (std::int64_t k = 0; k < g.count; ++k) {
          fragments.push_back(Fragment{d, &g});
        }
      }
    }
    if (fragments.empty()) continue;

    const bool ilp_ok =
        static_cast<std::int64_t>(fragments.size()) <=
            options.max_fragments_for_ilp &&
        pack_type_ilp(board.type(t), t, fragments, options, mapping);
    if (!ilp_ok) {
      if (!constructive.has_value()) {
        constructive = map_detailed(design, board, table, assignment);
        if (!constructive->success) {
          mapping.success = false;
          mapping.failed_type = constructive->failed_type;
          mapping.failure = constructive->failure;
          return mapping;
        }
      }
      for (const PlacedFragment& f : constructive->fragments) {
        if (f.type == t) mapping.fragments.push_back(f);
      }
    }
  }
  mapping.success = true;
  return mapping;
}

}  // namespace gmm::mapping
