// Portfolio racing solves: several solver configurations ("lanes") race
// on the same design/board, and the first lane to PROVE an answer wins.
//
// The paper's Table 3 shows solve times varying by orders of magnitude
// between the global/detailed pipeline and the complete formulation, and
// between cut/heuristic configurations of the same formulation — with no
// reliable way to predict the fast one up front.  A portfolio sidesteps
// the prediction problem: launch N lanes concurrently on a
// support::ThreadPool, give each its own child CancelToken, and let the
// first prover cancel the rest.  Wall clock approaches the fastest
// lane's time (plus one cancellation poll interval) instead of the
// configured lane's, which can be the slowest.
//
// Quality contract: lanes may vary SEARCH strategy (formulation, cut
// rounds, heuristic cadence, basis-cache size) but never the OPTIMALITY
// contract (rel_gap/abs_gap).  A proof is a proof under either
// formulation — the paper's optimality-preservation claim — so racing
// never returns a worse objective than any single lane at gap 0, and
// the winner's proof is cacheable exactly like a single solve's.
//
// Determinism: a 1-lane portfolio is bitwise-identical to calling the
// lane's mapper directly (the child token only adds cancellation polls,
// which never alter the search path).  With N lanes the WINNER identity
// depends on timing, but every prover proves the same optimum, so the
// returned objective is deterministic at gap 0 across worker counts.
#pragma once

#include <string>
#include <vector>

#include "arch/board.hpp"
#include "design/design.hpp"
#include "mapping/complete_mapper.hpp"
#include "mapping/pipeline.hpp"
#include "mapping/shard_mapper.hpp"
#include "support/cancellation.hpp"
#include "support/thread_pool.hpp"

namespace gmm::mapping {

/// Which mapper a lane runs.
enum class LaneKind : std::uint8_t { kGlobal, kComplete, kSharded };

[[nodiscard]] const char* to_string(LaneKind kind);

/// One racing lane: a mapper plus its solver configuration.
struct PortfolioLane {
  /// Winner tag for stats/reports (e.g. "global", "complete",
  /// "global-nocuts").  Should be unique within a portfolio.
  std::string name;
  LaneKind kind = LaneKind::kGlobal;
  /// Full options for a kGlobal lane.  A kComplete lane takes its
  /// MipOptions and CostWeights from pipeline.global; a kSharded lane
  /// runs these options inside every per-device pipeline.  The embedded
  /// cancel token is IGNORED — solve_portfolio installs the lane's child
  /// token (see PortfolioOptions::cancel_token).
  PipelineOptions pipeline;
  /// kComplete only: packing-repair primal heuristic.
  bool use_packing_heuristic = true;
  /// kSharded only: partitioner/stitch knobs.  shard.pipeline is
  /// overwritten with `pipeline`; on 1-device boards map_sharded
  /// degenerates to plain map_pipeline (the ROADMAP race).
  ShardOptions shard;
};

struct PortfolioOptions {
  /// Lanes to race, in launch order.  Must be non-empty (an empty
  /// portfolio returns kInfeasible without running anything); see
  /// default_portfolio_lanes for the standard menu.
  std::vector<PortfolioLane> lanes;
  /// Parent token: cancelling it stops every lane (each lane's child
  /// token inherits the parent's remaining deadline at launch, and the
  /// supervisor propagates a parent cancel).  The winner cancels only
  /// the sibling children, never the parent.
  support::CancelTokenPtr cancel_token;
};

/// Per-lane race outcome — the honest effort accounting that keeps
/// portfolio results explainable.
struct LaneReport {
  std::string name;
  LaneKind kind = LaneKind::kGlobal;
  lp::SolveStatus status = lp::SolveStatus::kCancelled;
  /// Why the lane's search ended (kOptimal = ran to natural completion;
  /// kCancelled = lost the race or parent cancel; kTimeLimit = budget).
  lp::SolveStatus stop_reason = lp::SolveStatus::kCancelled;
  double objective = 0.0;  // incumbent objective when usable
  bool ran = false;        // false: cancelled before the lane started
  bool usable = false;     // complete assignment + successful placement
  bool proved = false;     // optimal (or infeasible) within the gap contract
  bool cancelled = false;  // stopped by the winner or the parent token
  double seconds = 0.0;    // lane wall clock inside the portfolio
  /// What this lane cost: for sharded lanes the TOTAL effort including
  /// discarded candidates, so capacity accounting stays honest.
  SolveEffort effort;
  int retries = 0;
};

/// Race outcome: the winner's solve in PipelineResult shape, plus the
/// per-lane reports.
struct PortfolioResult {
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  GlobalAssignment assignment;
  DetailedMapping detailed;
  ModelSize model_size;
  /// Effort behind the RETURNED mapping (the winner's own solve).
  SolveEffort effort;
  int retries = 0;
  /// The winner's final MIP solve (default-constructed for a sharded
  /// winner, which has no single MIP result).
  ilp::MipResult mip;
  /// Sharded-winner extras (empty/0 for global/complete winners).
  std::vector<int> device_of;
  int shards = 0;

  /// Index into PortfolioOptions::lanes of the first prover; -1 when no
  /// lane proved (the result then carries the best usable incumbent, or
  /// the most informative failure).
  int winner = -1;
  std::string winner_name;  // empty when winner < 0
  std::vector<LaneReport> lanes;
  /// Summed over EVERY lane, winners and losers alike.
  SolveEffort total_effort;
  int lanes_cancelled = 0;
  double seconds = 0.0;  // full portfolio wall clock (includes drain)
  /// Launch -> first proof; equals `seconds` when nobody proved.
  double first_prove_seconds = 0.0;
};

/// Upper bound of the default lane menu (kept in sync with the service's
/// SolverKnobs::kMaxLanes).
inline constexpr int kMaxPortfolioLanes = 6;

/// The standard lane menu, ordered by expected time-to-proof, truncated
/// to `lanes` (clamped to [1, kMaxPortfolioLanes]).  Every lane shares
/// `base`'s gap contract — the menu varies search knobs only.  On
/// single-device boards: global, complete, global-nocuts, sharded
/// (degenerate = plain pipeline), global-heur, global-morecuts.  On
/// multi-device boards all lanes are sharded variants with identical
/// partitions (so every lane optimizes the same stitched objective) and
/// varied per-device search knobs.
[[nodiscard]] std::vector<PortfolioLane> default_portfolio_lanes(
    const arch::Board& board, int lanes, const PipelineOptions& base = {});

/// Race the lanes on a caller-owned pool.  Blocks until every lane has
/// finished or acknowledged cancellation, so the reports are complete.
[[nodiscard]] PortfolioResult solve_portfolio(support::ThreadPool& pool,
                                              const design::Design& design,
                                              const arch::Board& board,
                                              const PortfolioOptions& options);

/// Convenience: create a pool (one worker per lane) for the call.
[[nodiscard]] PortfolioResult solve_portfolio(const design::Design& design,
                                              const arch::Board& board,
                                              const PortfolioOptions& options);

}  // namespace gmm::mapping
