// Incremental re-solve: map a design that differs only slightly from one
// already mapped, reusing the prior mapping instead of re-proving the ILP
// from scratch.
//
// Three mechanisms, all optional and composable:
//
//   * MIP start — the prior assignment seeds the B&B incumbent, so
//     best-first pruning bites from node one.  Never changes the proved
//     objective (starts only seed, never constrain).
//   * pins — structures whose parameters did not change are frozen onto
//     their prior type; the ILP re-optimizes only the delta.  Pins DO
//     constrain the search (that is the point), so the caller decides
//     which structures are safe to freeze.  Port/capacity feasibility of
//     a placement depends only on depth x width (the placement plans),
//     not on traffic, so pinning the traffic-unchanged structures of a
//     traffic-only mutation preserves feasibility of the prior mapping.
//   * migration penalty — moving a structure off its prior type costs
//     extra in the model, steering the delta toward minimal-disturbance
//     remaps (arXiv:2003.10472's "local reconfiguration" regime).  The
//     reported assignment objective stays the PURE mapping cost.
//
// When the pinned solve comes back infeasible (a delta the pins cannot
// absorb), remap falls back to a full cold solve, so the entry point is
// never worse than map_pipeline — only faster.
#pragma once

#include <cstdint>
#include <vector>

#include "mapping/pipeline.hpp"

namespace gmm::mapping {

struct RemapOptions {
  PipelineOptions pipeline;
  /// Structures (design indices) frozen onto their prior type.  Entries
  /// out of range or without a usable prior assignment are ignored.
  std::vector<std::size_t> pinned_structures;
  /// Extra model cost for moving a structure off its prior type (0 = off).
  double migration_penalty = 0.0;
  /// Re-run without warm start / pins / penalty when the incremental
  /// solve cannot find a mapping.
  bool fallback_to_cold = true;
};

struct RemapResult {
  PipelineResult result;
  /// The prior assignment validated feasible and seeded the incumbent.
  bool warm_used = false;
  /// The incremental solve failed and the cold fallback ran.
  bool fell_back_cold = false;
};

/// Re-map `design` given `prior_type_of` (bank-type index per structure,
/// -1 = unknown) from a previous mapping of the same or a similar design.
RemapResult remap(const design::Design& design, const arch::Board& board,
                  const std::vector<int>& prior_type_of,
                  const RemapOptions& options = {});

}  // namespace gmm::mapping
