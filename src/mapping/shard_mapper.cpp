#include "mapping/shard_mapper.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <numeric>
#include <string>
#include <thread>
#include <utility>

#include "ilp/mip_solver.hpp"
#include "lp/model.hpp"
#include "mapping/batch_mapper.hpp"
#include "support/assert.hpp"
#include "support/log.hpp"
#include "support/timer.hpp"

namespace gmm::mapping {

namespace {

void accumulate(SolveEffort& into, const SolveEffort& from) {
  into.preprocess_seconds += from.preprocess_seconds;
  into.formulate_seconds += from.formulate_seconds;
  into.solve_seconds += from.solve_seconds;
  into.detailed_seconds += from.detailed_seconds;
  into.bnb_nodes += from.bnb_nodes;
  into.lp_iterations += from.lp_iterations;
  into.lp_refactorizations += from.lp_refactorizations;
  into.basis += from.basis;
}

void accumulate(ModelSize& into, const ModelSize& from) {
  into.variables += from.variables;
  into.binaries += from.binaries;
  into.rows += from.rows;
  into.nonzeros += from.nonzeros;
}

bool solved(const PipelineResult& r) {
  return (r.status == lp::SolveStatus::kOptimal ||
          r.status == lp::SolveStatus::kFeasible) &&
         r.detailed.success;
}

/// The sub-design induced by `members` (global structure indices, in
/// order): the structures themselves plus every conflict pair with both
/// endpoints inside.
design::Design induced_subdesign(const design::Design& design,
                                 const std::vector<std::size_t>& members,
                                 std::string name) {
  design::Design sub(std::move(name));
  std::vector<int> local(design.size(), -1);
  for (const std::size_t d : members) {
    local[d] = static_cast<int>(sub.add(design.at(d)));
  }
  for (const auto& [a, b] : design.conflict_pairs()) {
    if (local[a] >= 0 && local[b] >= 0) {
      sub.add_conflict(static_cast<std::size_t>(local[a]),
                       static_cast<std::size_t>(local[b]));
    }
  }
  return sub;
}

/// Degenerate paths (single usable device, no devices at all, empty
/// design): the plain pipeline result, field for field — the board's flat
/// type indices are already the single device's indices, so nothing needs
/// remapping.
ShardResult single_device_result(const design::Design& design,
                                 const arch::Board& board,
                                 const ShardOptions& options,
                                 int device_index, int skipped) {
  PipelineResult r = map_pipeline(design, board, options.pipeline);
  ShardResult out;
  out.status = r.status;
  out.assignment = r.assignment;
  out.detailed = std::move(r.detailed);
  out.objective = out.assignment.objective;
  out.effort = r.effort;
  out.total_effort = r.effort;
  out.model_size = r.model_size;
  out.retries = r.retries;
  const bool mapped = solved(r);
  out.device_of.assign(design.size(), mapped ? device_index : -1);
  out.stats.devices = static_cast<int>(board.num_devices());
  out.stats.shards = mapped ? 1 : 0;
  out.stats.skipped_devices = skipped;
  out.stats.candidate_solves = 1;
  return out;
}

}  // namespace

ShardResult map_sharded(support::ThreadPool& pool,
                        const design::Design& design,
                        const arch::Board& board,
                        const ShardOptions& options) {
  // Devices without a single bank are skipped, never solved against.
  std::vector<std::size_t> usable;
  for (std::size_t k = 0; k < board.num_devices(); ++k) {
    if (board.device_banks(k) > 0) usable.push_back(k);
  }
  const int skipped =
      static_cast<int>(board.num_devices()) - static_cast<int>(usable.size());

  if (usable.size() <= 1 || design.size() == 0) {
    // Zero-bank devices own no bank types, so the flat board IS the lone
    // usable device's view; the single-device pipeline applies unchanged.
    return single_device_result(
        design, board, options,
        usable.empty() ? -1 : static_cast<int>(usable.front()), skipped);
  }

  ShardResult out;
  out.stats.devices = static_cast<int>(board.num_devices());
  out.stats.skipped_devices = skipped;
  out.device_of.assign(design.size(), -1);

  const std::size_t parts = usable.size();
  std::vector<arch::Board> views;
  std::vector<std::vector<std::size_t>> flat_of;  // local -> flat type idx
  std::vector<std::int64_t> device_bits;
  std::vector<std::int64_t> device_pins;
  views.reserve(parts);
  for (const std::size_t k : usable) {
    views.push_back(board.device_view(k));
    flat_of.push_back(board.device_type_indices(k));
    device_bits.push_back(board.device_bits(k));
    device_pins.push_back(board.device(k).inter_device_pins);
  }

  // Balance caps: each part may hold its device's proportional share of
  // the design (plus tolerance), hard-ceilinged by the device capacity —
  // otherwise min-cut happily piles every conflicting structure onto one
  // device and the board's other FPGAs idle.
  std::int64_t board_bits = 0;
  for (const std::int64_t bits : device_bits) board_bits += bits;
  std::vector<std::int64_t> caps(parts, 0);
  const double total_design_bits =
      static_cast<double>(std::max<std::int64_t>(design.total_bits(), 1));
  for (std::size_t u = 0; u < parts; ++u) {
    const double share = board_bits > 0
                             ? static_cast<double>(device_bits[u]) /
                                   static_cast<double>(board_bits)
                             : 0.0;
    caps[u] = std::min(
        device_bits[u],
        static_cast<std::int64_t>(
            total_design_bits * share *
            (1.0 + options.partition.balance_tolerance)) +
            1);
  }
  design::PartitionOptions partition_options = options.partition;
  partition_options.parts = parts;
  partition_options.capacities = std::move(caps);
  // Extra balance dimensions.  Bits-balance alone lets min-cut pile the
  // whole design onto one device until its scarce resources are
  // hopelessly oversubscribed, so the partitioner also balances the two
  // resources that actually bind on the paper's board family:
  //
  //   * OFF-CHIP PORTS — which structures need them depends on the
  //     AGGREGATE on-chip capacity, not per-structure fit, so a
  //     smallest-first virtual fill of the board's on-chip bits
  //     (mirroring the solver's economics, which parks the smallest
  //     structures on chip) decides who is off-chip-bound; those weigh
  //     their cheapest off-chip consumed-port count, capped per part by
  //     the device's off-chip port total;
  //   * ON-CHIP BITS — the fill's on-chip residents weigh their bits,
  //     capped per part by the device's on-chip capacity, so a cluster
  //     of hot little tables cannot all claim the same device's RAM.
  design::PartitionDimension off_chip_ports_dim;
  design::PartitionDimension on_chip_bits_dim;
  off_chip_ports_dim.weights.assign(design.size(), 0);
  on_chip_bits_dim.weights.assign(design.size(), 0);
  {
    std::int64_t on_chip_bits = 0;
    for (const arch::BankType& type : board.types()) {
      if (type.on_chip()) on_chip_bits += type.total_bits();
    }
    std::vector<std::size_t> by_bits(design.size());
    std::iota(by_bits.begin(), by_bits.end(), std::size_t{0});
    std::stable_sort(by_bits.begin(), by_bits.end(),
                     [&design](std::size_t a, std::size_t b) {
                       return design.at(a).bits() < design.at(b).bits();
                     });
    std::int64_t filled = 0;
    for (const std::size_t d : by_bits) {
      bool fits_on_chip = false;
      std::int64_t min_off_chip_ports = -1;
      for (const arch::BankType& type : board.types()) {
        const PlacementPlan plan = plan_placement(design.at(d), type);
        if (!plan.feasible) continue;
        if (type.on_chip()) {
          fits_on_chip = true;
        } else if (min_off_chip_ports < 0 || plan.cp < min_off_chip_ports) {
          min_off_chip_ports = plan.cp;
        }
      }
      if (fits_on_chip && filled + design.at(d).bits() <= on_chip_bits) {
        filled += design.at(d).bits();
        on_chip_bits_dim.weights[d] = design.at(d).bits();
        continue;
      }
      off_chip_ports_dim.weights[d] =
          std::max<std::int64_t>(min_off_chip_ports, 1);
    }
  }
  off_chip_ports_dim.capacities.resize(parts);
  on_chip_bits_dim.capacities.resize(parts);
  for (std::size_t u = 0; u < parts; ++u) {
    std::int64_t off_chip_ports = 0;
    std::int64_t on_chip_bits = 0;
    for (const std::size_t t : flat_of[u]) {
      if (board.type(t).on_chip()) {
        on_chip_bits += board.type(t).total_bits();
      } else {
        off_chip_ports += board.type(t).total_ports();
      }
    }
    off_chip_ports_dim.capacities[u] = off_chip_ports;
    on_chip_bits_dim.capacities[u] = on_chip_bits;
  }
  partition_options.extra_dimensions = {off_chip_ports_dim,
                                        on_chip_bits_dim};
  const design::PartitionResult partition =
      design::partition_design(design, partition_options);
  std::vector<int> part_of = partition.part_of;

  const std::shared_ptr<const support::CancelToken>& token =
      options.pipeline.global.mip.cancel_token;
  const auto stopped = [&token, &out]() {
    if (token == nullptr || !token->should_stop()) return false;
    out.status = token->cancelled() ? lp::SolveStatus::kCancelled
                                    : lp::SolveStatus::kTimeLimit;
    return true;
  };

  /// Repair step for a part that cannot land anywhere: move its most
  /// resource-hungry structure (largest off-chip port weight, then
  /// largest bits) to the other part with the most off-chip-port slack.
  /// Each structure may migrate at most twice — a structure that keeps
  /// making its host infeasible wherever it goes is evidence of genuine
  /// infeasibility, not of a bad split, and unbounded migration would
  /// just ping-pong it between two parts until the round budget burns.
  std::vector<int> migration_count(design.size(), 0);
  const auto migrate = [&](int from,
                           const std::vector<std::int64_t>& part_bits) {
    const std::vector<std::int64_t>& port_weight =
        off_chip_ports_dim.weights;
    std::size_t victim = design.size();
    for (std::size_t d = 0; d < design.size(); ++d) {
      if (part_of[d] != from || migration_count[d] >= 2) continue;
      if (victim == design.size() ||
          port_weight[d] > port_weight[victim] ||
          (port_weight[d] == port_weight[victim] &&
           design.at(d).bits() > design.at(victim).bits())) {
        victim = d;
      }
    }
    if (victim == design.size()) return false;
    std::vector<std::int64_t> port_load(parts, 0);
    for (std::size_t d = 0; d < design.size(); ++d) {
      port_load[static_cast<std::size_t>(part_of[d])] += port_weight[d];
    }
    // Target choice: among parts the victim still FITS bits-wise on some
    // device, maximize off-chip-port slack (ties: lightest part).  Port
    // slack alone could land the victim on a bits-full part and bounce
    // it around until the round budget burns.
    const std::int64_t victim_bits = design.at(victim).bits();
    const std::int64_t max_device_bits =
        *std::max_element(device_bits.begin(), device_bits.end());
    int target = -1;
    for (const bool require_bit_fit : {true, false}) {
      for (std::size_t p = 0; p < parts; ++p) {
        if (static_cast<int>(p) == from) continue;
        if (require_bit_fit &&
            part_bits[p] + victim_bits > max_device_bits) {
          continue;
        }
        const std::int64_t slack =
            off_chip_ports_dim.capacities[p] - port_load[p];
        const std::int64_t best_slack =
            target < 0
                ? 0
                : off_chip_ports_dim
                          .capacities[static_cast<std::size_t>(target)] -
                      port_load[static_cast<std::size_t>(target)];
        if (target < 0 || slack > best_slack ||
            (slack == best_slack &&
             part_bits[p] < part_bits[static_cast<std::size_t>(target)])) {
          target = static_cast<int>(p);
        }
      }
      if (target >= 0) break;  // fall back to any part only if none fit
    }
    if (target < 0) return false;
    GMM_LOG(kInfo) << "shard repair: migrating '" << design.at(victim).name
                   << "' from part " << from << " to part " << target;
    part_of[victim] = target;
    ++migration_count[victim];
    ++out.stats.migrations;
    return true;
  };

  // Candidate solves keyed by (part member set, device): a migration only
  // changes two parts, so every other part's sub-design is bit-identical
  // next round and its pipeline result can be reused instead of re-paying
  // the ILP (each pipeline run is deterministic in its inputs).
  std::map<std::string, PipelineResult> candidate_cache;
  const auto candidate_key = [](const std::vector<std::size_t>& part_members,
                                std::size_t dev) {
    std::string key = std::to_string(dev) + "|";
    for (const std::size_t d : part_members) {
      key += std::to_string(d);
      key += ',';
    }
    return key;
  };

  // Last solved assignment per (part index, device), keyed by global
  // structure index.  A migration changes two parts; their next-round
  // re-solves miss the candidate_cache, but the surviving structures
  // keep their prior types — which seeds the B&B as a MIP start so the
  // re-solve prunes from node one.  Starts never constrain the search,
  // so the per-candidate objectives (and the deterministic sharded
  // objective) are unchanged; only node counts drop.
  std::map<std::string, std::map<std::size_t, int>> last_assignment;
  const auto warm_key = [](std::size_t part, std::size_t dev) {
    return std::to_string(part) + "|" + std::to_string(dev);
  };

  const char* infeasible_reason = "repair round budget exhausted";
  for (int round = 0; round <= options.max_repair_rounds; ++round) {
    if (stopped()) return out;

    // Materialize the current parts: member lists, induced sub-designs,
    // per-part bits and incident cut traffic.
    std::vector<std::vector<std::size_t>> members(parts);
    for (std::size_t d = 0; d < design.size(); ++d) {
      members[static_cast<std::size_t>(part_of[d])].push_back(d);
    }
    std::vector<design::Design> subs(parts);
    std::vector<std::int64_t> part_bits(parts, 0);
    std::vector<std::int64_t> cut_traffic(parts, 0);
    std::int64_t cut_edges = 0;
    for (std::size_t p = 0; p < parts; ++p) {
      if (members[p].empty()) continue;
      subs[p] = induced_subdesign(
          design, members[p], design.name() + "/part" + std::to_string(p));
      for (const std::size_t d : members[p]) {
        part_bits[p] += design.at(d).bits();
      }
    }
    for (const auto& [a, b] : design.conflict_pairs()) {
      if (part_of[a] == part_of[b]) continue;
      ++cut_edges;
      const std::int64_t traffic = design::edge_traffic(design, a, b);
      cut_traffic[static_cast<std::size_t>(part_of[a])] += traffic;
      cut_traffic[static_cast<std::size_t>(part_of[b])] += traffic;
    }

    // Candidate (part, device) pairs whose bits fit the device at all.
    struct Candidate {
      std::size_t part;
      std::size_t dev;  // index into `usable`
    };
    std::vector<Candidate> candidates;
    std::vector<std::vector<std::size_t>> of_part(parts);  // candidate idx
    for (std::size_t p = 0; p < parts; ++p) {
      if (members[p].empty()) continue;
      for (std::size_t u = 0; u < parts; ++u) {
        if (part_bits[p] > device_bits[u]) continue;
        of_part[p].push_back(candidates.size());
        candidates.push_back({p, u});
      }
    }
    const auto needs_repair = [&](bool feasibility_known,
                                  const std::vector<std::size_t>& counts) {
      // The part with no (feasible) candidate, or -1 when none.
      for (std::size_t p = 0; p < parts; ++p) {
        if (members[p].empty()) continue;
        const std::size_t have =
            feasibility_known ? counts[p] : of_part[p].size();
        if (have == 0) return static_cast<int>(p);
      }
      return -1;
    };
    if (const int bad = needs_repair(false, {}); bad >= 0) {
      // A singleton part that fits nowhere can never be repaired by
      // migration: any part containing the structure inherits the
      // failure.  Report infeasible right away instead of thrashing.
      if (members[static_cast<std::size_t>(bad)].size() == 1) {
        infeasible_reason = "a lone structure fits no device";
        break;
      }
      out.stats.repair_rounds = round + 1;
      if (!migrate(bad, part_bits)) {
        infeasible_reason = "no migration target remains";
        break;
      }
      continue;
    }

    // Fan the UNCACHED candidate pipelines out over the pool.
    std::vector<const PipelineResult*> results(candidates.size(), nullptr);
    std::vector<std::size_t> uncached;
    std::vector<BatchItem> items;
    std::deque<PipelineOptions> warm_options;  // stable addresses for items
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const Candidate& cand = candidates[c];
      const auto it = candidate_cache.find(
          candidate_key(members[cand.part], cand.dev));
      if (it != candidate_cache.end()) {
        results[c] = &it->second;
      } else {
        uncached.push_back(c);
        BatchItem item{.design = &subs[cand.part], .board = &views[cand.dev]};
        const auto prior = last_assignment.find(warm_key(cand.part, cand.dev));
        if (prior != last_assignment.end()) {
          std::vector<int> warm(members[cand.part].size(), -1);
          bool complete = true;
          for (std::size_t j = 0; j < members[cand.part].size(); ++j) {
            const auto type = prior->second.find(members[cand.part][j]);
            if (type == prior->second.end()) {
              // A freshly migrated-in structure has no prior type here; a
              // partial start cannot validate, so solve this one cold.
              complete = false;
              break;
            }
            warm[j] = type->second;
          }
          if (complete) {
            warm_options.push_back(options.pipeline);
            warm_options.back().global.warm_assignment = std::move(warm);
            item.options = &warm_options.back();
          }
        }
        items.push_back(item);
      }
    }
    BatchResult batch = map_batch(pool, items, options.pipeline);
    out.stats.candidate_solves += static_cast<std::int64_t>(items.size());
    for (std::size_t i = 0; i < uncached.size(); ++i) {
      const Candidate& cand = candidates[uncached[i]];
      accumulate(out.total_effort, batch.results[i].effort);
      if (batch.results[i].mip.mip_start_used) ++out.stats.warm_started;
      // std::map nodes are stable, so the pointer survives later inserts.
      results[uncached[i]] =
          &(candidate_cache[candidate_key(members[cand.part], cand.dev)] =
                std::move(batch.results[i]));
    }
    // Refresh the per-(part, device) prior assignments for the next round.
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (results[c] == nullptr || !solved(*results[c])) continue;
      const Candidate& cand = candidates[c];
      std::map<std::size_t, int>& prior =
          last_assignment[warm_key(cand.part, cand.dev)];
      prior.clear();
      for (std::size_t j = 0; j < members[cand.part].size(); ++j) {
        prior[members[cand.part][j]] = results[c]->assignment.type_of[j];
      }
    }
    if (stopped()) return out;

    std::vector<std::size_t> feasible_count(parts, 0);
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (solved(*results[c])) ++feasible_count[candidates[c].part];
    }
    if (const int bad = needs_repair(true, feasible_count); bad >= 0) {
      // Same singleton argument: a lone structure that no device can
      // take makes the whole design unmappable.
      if (members[static_cast<std::size_t>(bad)].size() == 1) {
        infeasible_reason = "a lone structure maps on no device";
        break;
      }
      out.stats.repair_rounds = round + 1;
      if (!migrate(bad, part_bits)) {
        infeasible_reason = "no migration target remains";
        break;
      }
      continue;
    }

    // Stitch: assign parts to devices over solved objective + transfer
    // cost.  Tiny (<= parts^2 binaries), solved exactly and serially so
    // the sharded objective is deterministic.
    support::WallTimer stitch_timer;
    lp::Model stitch;
    std::vector<lp::Index> var_of(candidates.size(), -1);
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (!solved(*results[c])) continue;
      const Candidate& cand = candidates[c];
      const double transfer =
          options.transfer_weight *
          static_cast<double>(cut_traffic[cand.part]) *
          static_cast<double>(device_pins[cand.dev]);
      var_of[c] = stitch.add_binary(
          results[c]->assignment.objective + transfer,
          "y_p" + std::to_string(cand.part) + "_d" +
              std::to_string(cand.dev));
    }
    for (std::size_t p = 0; p < parts; ++p) {
      if (members[p].empty()) continue;
      lp::LinExpr row;
      for (const std::size_t c : of_part[p]) {
        if (var_of[c] >= 0) row.add(var_of[c], 1.0);
      }
      stitch.add_constraint(row, lp::Sense::kEqual, 1.0,
                            "part" + std::to_string(p));
    }
    for (std::size_t u = 0; u < parts; ++u) {
      lp::LinExpr row;
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (candidates[c].dev == u && var_of[c] >= 0) {
          row.add(var_of[c], 1.0);
        }
      }
      if (!row.empty()) {
        stitch.add_constraint(row, lp::Sense::kLessEqual, 1.0,
                              "dev" + std::to_string(u));
      }
    }
    ilp::MipOptions stitch_options;
    stitch_options.num_threads = 1;
    stitch_options.rel_gap = 0.0;
    stitch_options.abs_gap = 0.0;
    const ilp::MipResult stitched = ilp::solve_mip(stitch, stitch_options);
    // Failed rounds' stitch time is real work (total_effort, stats) but
    // not work behind the returned mapping; out.effort only gets the
    // successful stitch, below.
    const double stitch_seconds = stitch_timer.seconds();
    out.stats.stitch_seconds += stitch_seconds;
    out.total_effort.solve_seconds += stitch_seconds;
    out.stats.stitch_model = {.variables = stitch.num_vars(),
                              .binaries = stitch.num_vars(),
                              .rows = stitch.num_rows(),
                              .nonzeros = static_cast<std::int64_t>(
                                  stitch.num_nonzeros())};
    if (stitched.status != lp::SolveStatus::kOptimal ||
        !stitched.has_incumbent()) {
      // Hall-type blockage: several parts compete for the same devices.
      // Shrink the most constrained part and retry.
      int tightest = -1;
      for (std::size_t p = 0; p < parts; ++p) {
        if (members[p].empty()) continue;
        if (tightest < 0 ||
            feasible_count[p] <
                feasible_count[static_cast<std::size_t>(tightest)]) {
          tightest = static_cast<int>(p);
        }
      }
      out.stats.repair_rounds = round + 1;
      if (tightest < 0 || !migrate(tightest, part_bits)) {
        infeasible_reason = "stitch blocked and no migration remains";
        break;
      }
      continue;
    }

    // Assemble the chosen candidates into one flat-index mapping.
    out.effort.solve_seconds += stitch_seconds;
    out.assignment.type_of.assign(design.size(), -1);
    bool all_optimal = true;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      if (var_of[c] < 0 || stitched.x[static_cast<std::size_t>(var_of[c])] <
                               0.5) {
        continue;
      }
      const Candidate& cand = candidates[c];
      const PipelineResult& r = *results[c];
      const std::vector<std::size_t>& flat = flat_of[cand.dev];
      for (std::size_t j = 0; j < members[cand.part].size(); ++j) {
        const std::size_t d = members[cand.part][j];
        out.assignment.type_of[d] = static_cast<int>(
            flat[static_cast<std::size_t>(r.assignment.type_of[j])]);
        out.device_of[d] = static_cast<int>(usable[cand.dev]);
      }
      for (PlacedFragment fragment : r.detailed.fragments) {
        fragment.ds = members[cand.part][fragment.ds];
        fragment.type = flat[fragment.type];
        out.detailed.fragments.push_back(fragment);
      }
      out.objective += r.assignment.objective;
      out.stats.stitch_cost += options.transfer_weight *
                               static_cast<double>(cut_traffic[cand.part]) *
                               static_cast<double>(device_pins[cand.dev]);
      out.retries += r.retries;
      accumulate(out.effort, r.effort);
      accumulate(out.model_size, r.model_size);
      if (r.status != lp::SolveStatus::kOptimal) all_optimal = false;
      ++out.stats.shards;
    }
    out.objective += out.stats.stitch_cost;
    out.assignment.objective = out.objective;
    out.detailed.success = true;
    out.stats.cut_edges = cut_edges;
    out.status = all_optimal ? lp::SolveStatus::kOptimal
                             : lp::SolveStatus::kFeasible;
    return out;
  }

  GMM_LOG(kInfo) << "sharded mapping infeasible: " << infeasible_reason;
  out.status = lp::SolveStatus::kInfeasible;
  return out;
}

ShardResult map_sharded(const design::Design& design,
                        const arch::Board& board,
                        const ShardOptions& options) {
  std::size_t workers = options.num_workers;
  if (workers == 0) {
    // One worker per candidate solve (usable devices squared), capped so
    // fan-out workers x per-candidate B&B threads stays within the
    // hardware instead of multiplying against it.
    std::size_t usable = 0;
    for (std::size_t k = 0; k < board.num_devices(); ++k) {
      if (board.device_banks(k) > 0) ++usable;
    }
    const std::size_t cores =
        std::max(1u, std::thread::hardware_concurrency());
    // num_threads 0 = "all cores" per solve, so the fan-out serializes.
    const int solver_threads = options.pipeline.global.mip.num_threads;
    const std::size_t per_solve =
        solver_threads <= 0 ? cores
                            : static_cast<std::size_t>(solver_threads);
    const std::size_t hardware = std::max(std::size_t{1}, cores / per_solve);
    workers = std::min(std::max<std::size_t>(usable * usable, 1), hardware);
  }
  support::ThreadPool pool(workers);
  return map_sharded(pool, design, board, options);
}

}  // namespace gmm::mapping
