#include "mapping/complete_mapper.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "mapping/detailed_mapper.hpp"
#include "support/assert.hpp"
#include "support/log.hpp"
#include "support/timer.hpp"

namespace gmm::mapping {

namespace {

/// Variable bookkeeping for one fragment-count column n[d][t][g][i].
struct CountVar {
  std::size_t d, t, g;
  std::int64_t i;
  lp::Index var;
};

}  // namespace

CompleteResult map_complete(const design::Design& design,
                            const arch::Board& board, const CostTable& table,
                            const CompleteOptions& options) {
  CompleteResult result;
  const std::size_t num_ds = design.size();
  const std::size_t num_types = board.num_types();
  if (num_ds == 0) {
    result.status = lp::SolveStatus::kOptimal;
    return result;
  }

  support::WallTimer timer;
  lp::Model model;

  // ---- z variables ------------------------------------------------------
  std::vector<std::vector<lp::Index>> z(
      num_ds, std::vector<lp::Index>(num_types, lp::kInvalidIndex));
  for (std::size_t d = 0; d < num_ds; ++d) {
    bool any = false;
    for (std::size_t t = 0; t < num_types; ++t) {
      if (!table.feasible(d, t)) continue;
      z[d][t] = model.add_binary(table.cost(d, t));
      any = true;
    }
    if (!any) {
      result.status = lp::SolveStatus::kInfeasible;
      return result;
    }
  }

  // ---- n variables (fragment counts per instance) -----------------------
  std::vector<CountVar> count_vars;
  // n_index[d][t] -> first CountVar index of each group, laid out
  // group-major then instance.
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> n_first;
  for (std::size_t d = 0; d < num_ds; ++d) {
    for (std::size_t t = 0; t < num_types; ++t) {
      if (z[d][t] == lp::kInvalidIndex) continue;
      const PlacementPlan& plan = table.plan(d, t);
      n_first[{d, t}] = count_vars.size();
      for (std::size_t g = 0; g < plan.groups.size(); ++g) {
        const FragmentGroup& group = plan.groups[g];
        for (std::int64_t i = 0; i < board.type(t).instances; ++i) {
          const lp::Index var = model.add_variable(
              0.0, static_cast<double>(group.count), 0.0,
              lp::VarType::kInteger);
          count_vars.push_back(CountVar{d, t, g, i, var});
        }
      }
    }
  }

  // ---- y variables (ports per configuration), multi-config types only ---
  std::vector<std::vector<std::vector<lp::Index>>> y(num_types);
  for (std::size_t t = 0; t < num_types; ++t) {
    const arch::BankType& type = board.type(t);
    if (!type.multi_config()) continue;
    y[t].resize(type.instances);
    for (std::int64_t i = 0; i < type.instances; ++i) {
      y[t][i].resize(type.configs.size());
      for (std::size_t c = 0; c < type.configs.size(); ++c) {
        y[t][i][c] = model.add_variable(0.0, static_cast<double>(type.ports),
                                        0.0, lp::VarType::kContinuous);
      }
    }
  }

  // ---- uniqueness ---------------------------------------------------------
  for (std::size_t d = 0; d < num_ds; ++d) {
    lp::LinExpr expr;
    for (std::size_t t = 0; t < num_types; ++t) {
      if (z[d][t] != lp::kInvalidIndex) expr.add(z[d][t], 1.0);
    }
    model.add_constraint(expr, lp::Sense::kEqual, 1.0);
  }

  // ---- fragment completeness: sum_i n = count * z ------------------------
  for (std::size_t d = 0; d < num_ds; ++d) {
    for (std::size_t t = 0; t < num_types; ++t) {
      if (z[d][t] == lp::kInvalidIndex) continue;
      const PlacementPlan& plan = table.plan(d, t);
      const std::size_t first = n_first[{d, t}];
      const std::int64_t instances = board.type(t).instances;
      for (std::size_t g = 0; g < plan.groups.size(); ++g) {
        lp::LinExpr expr;
        for (std::int64_t i = 0; i < instances; ++i) {
          expr.add(count_vars[first + g * instances + i].var, 1.0);
        }
        expr.add(z[d][t], -static_cast<double>(plan.groups[g].count));
        model.add_constraint(expr, lp::Sense::kEqual, 0.0);
      }
    }
  }

  // ---- per-instance port, capacity, configuration rows -------------------
  // Bucket count variables by (t, i) first.
  std::map<std::pair<std::size_t, std::int64_t>, std::vector<std::size_t>>
      by_instance;
  for (std::size_t k = 0; k < count_vars.size(); ++k) {
    by_instance[{count_vars[k].t, count_vars[k].i}].push_back(k);
  }
  for (const auto& [key, members] : by_instance) {
    const auto& [t, i] = key;
    const arch::BankType& type = board.type(t);
    lp::LinExpr ports, bits;
    std::vector<lp::LinExpr> per_config(type.configs.size());
    for (const std::size_t k : members) {
      const CountVar& cv = count_vars[k];
      const FragmentGroup& group = table.plan(cv.d, cv.t).groups[cv.g];
      ports.add(cv.var, static_cast<double>(group.ports_each));
      bits.add(cv.var, static_cast<double>(group.block_bits));
      per_config[group.config_index].add(
          cv.var, static_cast<double>(group.ports_each));
    }
    model.add_constraint(ports, lp::Sense::kLessEqual,
                         static_cast<double>(type.ports));
    model.add_constraint(bits, lp::Sense::kLessEqual,
                         static_cast<double>(type.capacity_bits()));
    if (type.multi_config()) {
      lp::LinExpr y_sum;
      for (std::size_t c = 0; c < type.configs.size(); ++c) {
        if (!per_config[c].empty()) {
          lp::LinExpr link = per_config[c];
          link.add(y[t][i][c], -1.0);
          model.add_constraint(link, lp::Sense::kLessEqual, 0.0);
        }
        y_sum.add(y[t][i][c], 1.0);
      }
      model.add_constraint(y_sum, lp::Sense::kLessEqual,
                           static_cast<double>(type.ports));
    }
  }

  // ---- symmetry breaking: instance i must be loaded >= instance i+1 -----
  for (std::size_t t = 0; t < num_types; ++t) {
    const arch::BankType& type = board.type(t);
    for (std::int64_t i = 0; i + 1 < type.instances; ++i) {
      lp::LinExpr expr;
      for (const std::size_t k : by_instance[{t, i}]) {
        const CountVar& cv = count_vars[k];
        expr.add(cv.var, static_cast<double>(
                             table.plan(cv.d, cv.t).groups[cv.g].ports_each));
      }
      bool next_nonempty = false;
      for (const std::size_t k : by_instance[{t, i + 1}]) {
        const CountVar& cv = count_vars[k];
        expr.add(cv.var, -static_cast<double>(
                             table.plan(cv.d, cv.t).groups[cv.g].ports_each));
        next_nonempty = true;
      }
      if (next_nonempty) {
        model.add_constraint(expr, lp::Sense::kGreaterEqual, 0.0);
      }
    }
  }

  result.model_size.variables = model.num_vars();
  result.model_size.rows = model.num_rows();
  result.model_size.nonzeros =
      static_cast<std::int64_t>(model.num_nonzeros());
  for (lp::Index j = 0; j < model.num_vars(); ++j) {
    if (model.var_type(j) != lp::VarType::kContinuous) {
      ++result.model_size.binaries;
    }
  }
  result.effort.formulate_seconds = timer.seconds();

  // ---- packing-repair primal heuristic ---------------------------------
  ilp::MipOptions mip_options = options.mip;
  if (options.use_packing_heuristic) {
    // Run on every node: once the cost-bearing Z's are integral the
    // packer's incumbent matches the node bound exactly (the objective
    // lives on Z alone), pruning the whole symmetric placement plateau.
    mip_options.heuristic_period = 1;
    // Round the LP's Z to an assignment, run the detailed packer, and
    // encode the placement back into the flat variable space.
    mip_options.primal_heuristic =
        [&, num_ds, num_types](const std::vector<double>& lp_x)
        -> std::optional<std::vector<double>> {
      GlobalAssignment assignment;
      assignment.type_of.assign(num_ds, -1);
      for (std::size_t d = 0; d < num_ds; ++d) {
        double best = -1.0;
        for (std::size_t t = 0; t < num_types; ++t) {
          if (z[d][t] == lp::kInvalidIndex) continue;
          if (lp_x[z[d][t]] > best) {
            best = lp_x[z[d][t]];
            assignment.type_of[d] = static_cast<int>(t);
          }
        }
        if (assignment.type_of[d] < 0) return std::nullopt;
      }
      DetailedOptions packer;
      packer.allow_overlap = false;  // the flat model never shares blocks
      const DetailedMapping packed =
          map_detailed(design, board, table, assignment, packer);
      if (!packed.success) return std::nullopt;

      std::vector<double> x(static_cast<std::size_t>(model.num_vars()), 0.0);
      for (std::size_t d = 0; d < num_ds; ++d) {
        x[z[d][assignment.type_of[d]]] = 1.0;
      }
      // Canonicalize instance order per type by decreasing port load so
      // the symmetry-breaking rows hold.
      for (std::size_t t = 0; t < num_types; ++t) {
        std::map<std::int64_t, std::int64_t> load;  // instance -> ports
        for (const PlacedFragment& f : packed.fragments) {
          if (f.type == t) load[f.instance] += f.ports;
        }
        std::vector<std::pair<std::int64_t, std::int64_t>> order(
            load.begin(), load.end());
        std::sort(order.begin(), order.end(),
                  [](const auto& a, const auto& b) {
                    return a.second > b.second;
                  });
        std::map<std::int64_t, std::int64_t> renumber;
        for (std::size_t rank = 0; rank < order.size(); ++rank) {
          renumber[order[rank].first] = static_cast<std::int64_t>(rank);
        }
        const arch::BankType& type = board.type(t);
        std::vector<std::vector<double>> port_in_config(
            static_cast<std::size_t>(type.instances),
            std::vector<double>(type.configs.size(), 0.0));
        for (const PlacedFragment& f : packed.fragments) {
          if (f.type != t) continue;
          const std::int64_t inst = renumber[f.instance];
          // Locate the fragment's group: kinds are unique within a plan.
          const PlacementPlan& plan = table.plan(f.ds, t);
          const std::size_t first = n_first.at({f.ds, t});
          for (std::size_t g = 0; g < plan.groups.size(); ++g) {
            if (plan.groups[g].kind == f.kind) {
              x[count_vars[first + g * type.instances + inst].var] += 1.0;
              break;
            }
          }
          port_in_config[inst][f.config_index] +=
              static_cast<double>(f.ports);
        }
        if (type.multi_config()) {
          for (std::int64_t i = 0; i < type.instances; ++i) {
            for (std::size_t c = 0; c < type.configs.size(); ++c) {
              x[y[t][i][c]] = port_in_config[i][c];
            }
          }
        }
      }
      return x;
    };
  }

  // ---- solve ---------------------------------------------------------------
  timer.reset();
  result.mip = ilp::solve_mip(model, mip_options);
  result.effort.solve_seconds = timer.seconds();
  result.effort.bnb_nodes = result.mip.nodes;
  result.effort.lp_iterations = result.mip.lp_iterations;
  result.effort.lp_refactorizations = result.mip.simplex_refactorizations;
  result.effort.basis = result.mip.basis;
  result.status = result.mip.status;
  if (!result.mip.has_incumbent()) return result;

  // ---- decode the assignment and placement --------------------------------
  result.assignment.type_of.assign(num_ds, -1);
  for (std::size_t d = 0; d < num_ds; ++d) {
    for (std::size_t t = 0; t < num_types; ++t) {
      if (z[d][t] != lp::kInvalidIndex && result.mip.x[z[d][t]] > 0.5) {
        result.assignment.type_of[d] = static_cast<int>(t);
      }
    }
  }
  result.assignment.objective = result.mip.objective;

  // Decode concrete offsets/ports per instance from the counts; the model
  // rows guarantee the per-instance packing succeeds.
  std::map<std::pair<std::size_t, std::int64_t>,
           std::vector<std::pair<std::size_t, std::size_t>>>
      decode;  // (t, i) -> list of (count_var index, multiplicity)
  for (std::size_t k = 0; k < count_vars.size(); ++k) {
    const double v = result.mip.x[count_vars[k].var];
    const auto copies = static_cast<std::int64_t>(std::llround(v));
    if (copies <= 0) continue;
    decode[{count_vars[k].t, count_vars[k].i}].push_back(
        {k, static_cast<std::size_t>(copies)});
  }
  for (const auto& [key, members] : decode) {
    const auto& [t, i] = key;
    const arch::BankType& type = board.type(t);
    // Sort fragments by decreasing block size for buddy placement.
    std::vector<std::pair<const FragmentGroup*, std::size_t>> items;
    for (const auto& [k, copies] : members) {
      const CountVar& cv = count_vars[k];
      const FragmentGroup& group = table.plan(cv.d, cv.t).groups[cv.g];
      for (std::size_t c = 0; c < copies; ++c) items.push_back({&group, cv.d});
    }
    std::stable_sort(items.begin(), items.end(),
                     [](const auto& a, const auto& b) {
                       return a.first->block_bits > b.first->block_bits;
                     });
    std::int64_t next_port = 0;
    std::int64_t next_offset = 0;
    for (const auto& [group, d] : items) {
      // Blocks are powers of two sorted descending, so sequential
      // placement is automatically aligned.
      result.detailed.fragments.push_back(PlacedFragment{
          .ds = d,
          .type = t,
          .instance = i,
          .config_index = group->config_index,
          .kind = group->kind,
          .ports = group->ports_each,
          .first_port = next_port,
          .offset_bits = next_offset,
          .block_bits = group->block_bits,
          .words_covered = group->words_covered,
          .bits_covered = group->bits_covered,
      });
      next_port += group->ports_each;
      next_offset += group->block_bits;
      GMM_ASSERT(next_port <= type.ports,
                 "complete decode exceeded instance ports");
      GMM_ASSERT(next_offset <= type.capacity_bits(),
                 "complete decode exceeded instance capacity");
    }
  }
  result.detailed.success = true;
  return result;
}

}  // namespace gmm::mapping
