// Objective-function cost model (paper Section 4.1.3).
//
// Three components per (data structure d, bank type t):
//
//   latency   = reads_d * RL_t + writes_d * WL_t
//               (the paper assumes reads = writes = D_d, giving its
//                D_d * [RL_t + WL_t]; with footprint data the counts
//                refine it)
//   pin delay = D_d * T_t
//               (pins traversed throttle the clock; deeper structures are
//                accessed more often)
//   pin I/O   = (ceil(log2(CD_dt)) + CW_dt) * T_t
//               (address + data pins needed when the bank is off-chip)
//
// The total is the weighted sum with normalization weights alpha_i.
#pragma once

#include <vector>

#include "arch/board.hpp"
#include "design/design.hpp"
#include "mapping/preprocess.hpp"

namespace gmm::mapping {

struct CostWeights {
  double latency = 1.0;    // alpha_1
  double pin_delay = 1.0;  // alpha_2
  double pin_io = 1.0;     // alpha_3
};

/// Cost components for one (d, t) assignment.
struct CostBreakdown {
  double latency = 0.0;
  double pin_delay = 0.0;
  double pin_io = 0.0;

  [[nodiscard]] double total(const CostWeights& w) const {
    return w.latency * latency + w.pin_delay * pin_delay +
           w.pin_io * pin_io;
  }
};

/// Components of assigning `ds` to `type`, given its placement plan.
CostBreakdown assignment_cost(const design::DataStructure& ds,
                              const arch::BankType& type,
                              const PlacementPlan& plan);

/// All (d, t) plans and costs for a design on a board; computed once and
/// shared by the global, complete, and greedy mappers so every approach
/// optimizes the identical objective.
class CostTable {
 public:
  CostTable(const design::Design& design, const arch::Board& board,
            CostWeights weights = {});

  [[nodiscard]] const PlacementPlan& plan(std::size_t d, std::size_t t) const {
    return plans_[d * num_types_ + t];
  }
  [[nodiscard]] const CostBreakdown& breakdown(std::size_t d,
                                               std::size_t t) const {
    return costs_[d * num_types_ + t];
  }
  [[nodiscard]] double cost(std::size_t d, std::size_t t) const {
    return costs_[d * num_types_ + t].total(weights_);
  }
  [[nodiscard]] bool feasible(std::size_t d, std::size_t t) const {
    return plan(d, t).feasible;
  }
  [[nodiscard]] const CostWeights& weights() const { return weights_; }
  [[nodiscard]] std::size_t num_structures() const { return num_structures_; }
  [[nodiscard]] std::size_t num_types() const { return num_types_; }

  /// Objective of a full assignment (type index per structure).
  [[nodiscard]] double assignment_objective(
      const std::vector<int>& type_of) const;

 private:
  std::size_t num_structures_, num_types_;
  CostWeights weights_;
  std::vector<PlacementPlan> plans_;
  std::vector<CostBreakdown> costs_;
};

/// Weights that scale each component by the reciprocal of its mean over
/// all feasible (d, t) pairs, so no component numerically dominates (the
/// paper's "weight coefficient used to normalize").
CostWeights normalized_weights(const design::Design& design,
                               const arch::Board& board);

}  // namespace gmm::mapping
