#include "mapping/global_mapper.hpp"

#include <cmath>

#include "design/conflict_analysis.hpp"
#include "mapping/greedy_mapper.hpp"
#include "support/assert.hpp"
#include "support/log.hpp"
#include "support/timer.hpp"

namespace gmm::mapping {

GlobalResult map_global(const design::Design& design,
                        const arch::Board& board, const CostTable& table,
                        const GlobalOptions& options) {
  GlobalResult result;
  const std::size_t num_ds = design.size();
  const std::size_t num_types = board.num_types();
  GMM_ASSERT(table.num_structures() == num_ds &&
                 table.num_types() == num_types,
             "cost table does not match design/board");
  if (num_ds == 0) {
    result.status = lp::SolveStatus::kOptimal;
    result.assignment.objective = 0.0;
    return result;
  }

  support::WallTimer timer;

  // ---- variables: Z_dt for feasible pairs only -------------------------
  lp::Model model;
  std::vector<std::vector<lp::Index>> z(num_ds,
                                        std::vector<lp::Index>(num_types,
                                                               lp::kInvalidIndex));
  // Migration penalties (incremental re-solve): moving structure d off
  // its prior type costs extra, steering the delta re-optimization toward
  // minimal-disturbance remaps.  The penalty lives only in the model's
  // objective; the reported assignment objective is recomputed as the
  // pure mapping cost below so cold and warm solves stay comparable.
  const bool migration_active =
      options.migration_penalty > 0.0 &&
      options.warm_assignment.size() == num_ds;
  for (std::size_t d = 0; d < num_ds; ++d) {
    bool any = false;
    for (std::size_t t = 0; t < num_types; ++t) {
      if (!table.feasible(d, t)) continue;
      double coef = table.cost(d, t);
      if (migration_active && options.warm_assignment[d] >= 0 &&
          static_cast<std::size_t>(options.warm_assignment[d]) != t) {
        coef += options.migration_penalty;
      }
      z[d][t] = model.add_binary(coef,
                                 "z." + std::to_string(d) + "." +
                                     std::to_string(t));
      any = true;
    }
    if (!any) {
      GMM_LOG(kInfo) << "global: structure " << design.at(d).name
                     << " fits no bank type; model infeasible";
      result.status = lp::SolveStatus::kInfeasible;
      return result;
    }
  }

  // ---- uniqueness --------------------------------------------------------
  for (std::size_t d = 0; d < num_ds; ++d) {
    lp::LinExpr expr;
    for (std::size_t t = 0; t < num_types; ++t) {
      if (z[d][t] != lp::kInvalidIndex) expr.add(z[d][t], 1.0);
    }
    model.add_constraint(expr, lp::Sense::kEqual, 1.0,
                         "uniq." + std::to_string(d));
  }

  // ---- ports and capacity (conflict-clique aware) -----------------------
  // Lifetime-disjoint structures may time-multiplex both storage AND the
  // bank wiring (the detailed mapper realizes this as identical shared
  // blocks reusing the same port range), so with overlap enabled BOTH
  // resource constraints apply per maximal conflict clique.  Note the
  // Figure-3 port estimate dominates the capacity fraction
  // (CP_dt >= area_dt * P_t / bits_t), so relaxing capacity alone would
  // be vacuous — the port constraint would still forbid every overlap.
  std::vector<std::vector<std::size_t>> cliques;
  if (options.overlap_aware_capacity) {
    cliques = design::conflict_cliques(design).cliques;
  } else {
    std::vector<std::size_t> all(num_ds);
    for (std::size_t d = 0; d < num_ds; ++d) all[d] = d;
    cliques.push_back(std::move(all));
  }
  for (std::size_t t = 0; t < num_types; ++t) {
    const double total_ports =
        static_cast<double>(board.type(t).total_ports());
    const double capacity = static_cast<double>(board.type(t).total_bits());
    for (std::size_t q = 0; q < cliques.size(); ++q) {
      lp::LinExpr ports, area;
      for (const std::size_t d : cliques[q]) {
        if (z[d][t] == lp::kInvalidIndex) continue;
        const PlacementPlan& plan = table.plan(d, t);
        ports.add(z[d][t], static_cast<double>(plan.cp));
        area.add(z[d][t], static_cast<double>(plan.cw * plan.cd));
      }
      if (!ports.empty()) {
        model.add_constraint(ports, lp::Sense::kLessEqual, total_ports,
                             "ports." + std::to_string(t) + "." +
                                 std::to_string(q));
        model.add_constraint(area, lp::Sense::kLessEqual, capacity,
                             "cap." + std::to_string(t) + "." +
                                 std::to_string(q));
      }
    }
  }

  // ---- mined variable cliques for the root cut loop ----------------------
  // Within one conflict clique and one type, every member draws on the
  // same port and capacity rows, so any two structures whose demands each
  // exceed HALF the budget are mutually exclusive: at most one of their
  // Z_dt can be 1.  Handing those variable cliques to the MIP solver lets
  // its root loop add sum Z <= 1 rows the knapsack relaxation cannot see
  // (fractional Z's split a budget the integer solution cannot).
  std::vector<std::vector<lp::Index>> var_cliques;
  for (std::size_t t = 0; t < num_types; ++t) {
    const std::int64_t total_ports = board.type(t).total_ports();
    const std::int64_t total_bits = board.type(t).total_bits();
    for (const auto& clique : cliques) {
      std::vector<lp::Index> heavy_ports, heavy_bits;
      for (const std::size_t d : clique) {
        if (z[d][t] == lp::kInvalidIndex) continue;
        const PlacementPlan& plan = table.plan(d, t);
        if (2 * plan.cp > total_ports) heavy_ports.push_back(z[d][t]);
        if (2 * plan.cw * plan.cd > total_bits) {
          heavy_bits.push_back(z[d][t]);
        }
      }
      // Figure-3 port estimates usually dominate capacity, so the bits
      // clique is often identical to the ports one; drop the duplicate.
      if (heavy_bits.size() >= 2 && heavy_bits != heavy_ports) {
        var_cliques.push_back(std::move(heavy_bits));
      }
      if (heavy_ports.size() >= 2) {
        var_cliques.push_back(std::move(heavy_ports));
      }
    }
  }

  // ---- retry cuts ---------------------------------------------------------
  for (const auto& cut : options.no_good_cuts) {
    lp::LinExpr expr;
    for (const auto& [d, t] : cut) {
      if (z[d][t] != lp::kInvalidIndex) expr.add(z[d][t], 1.0);
    }
    if (!expr.empty()) {
      model.add_constraint(expr, lp::Sense::kLessEqual,
                           static_cast<double>(cut.size()) - 1.0);
    }
  }

  result.model_size.variables = model.num_vars();
  result.model_size.binaries = model.num_vars();
  result.model_size.rows = model.num_rows();
  result.model_size.nonzeros =
      static_cast<std::int64_t>(model.num_nonzeros());
  result.effort.formulate_seconds = timer.seconds();

  // ---- greedy-repair primal heuristic -----------------------------------
  // Round each structure to its strongest fractional type, then migrate
  // structures off over-budget types by smallest cost delta.  Conservative
  // (all-conflicting) budgets are used, so any repaired assignment is
  // feasible for the clique-relaxed model too; the MIP solver validates
  // against the actual rows regardless.  Early incumbents prune the
  // near-optimal plateaus these port/capacity knapsacks produce.
  ilp::MipOptions mip_options = options.mip;
  mip_options.heuristic_period = 1;
  for (auto& q : var_cliques) {
    mip_options.conflict_cliques.push_back(std::move(q));
  }
  if (!mip_options.primal_heuristic) {
    mip_options.primal_heuristic =
        [&model, &board, &table, &z, &design, num_ds,
         num_types](const std::vector<double>& lp_x)
        -> std::optional<std::vector<double>> {
      std::vector<int> assign(num_ds, -1);
      for (std::size_t d = 0; d < num_ds; ++d) {
        double best = -1.0;
        for (std::size_t t = 0; t < num_types; ++t) {
          if (z[d][t] != lp::kInvalidIndex && lp_x[z[d][t]] > best) {
            best = lp_x[z[d][t]];
            assign[d] = static_cast<int>(t);
          }
        }
        if (assign[d] < 0) return std::nullopt;
      }
      // Conservative per-type loads.
      std::vector<std::int64_t> ports(num_types, 0), bits(num_types, 0);
      for (std::size_t d = 0; d < num_ds; ++d) {
        const PlacementPlan& plan = table.plan(d, assign[d]);
        ports[assign[d]] += plan.cp;
        bits[assign[d]] += plan.cw * plan.cd;
      }
      for (std::size_t moves = 0; moves < 4 * num_ds; ++moves) {
        int over = -1;
        for (std::size_t t = 0; t < num_types; ++t) {
          if (ports[t] > board.type(t).total_ports() ||
              bits[t] > board.type(t).total_bits()) {
            over = static_cast<int>(t);
            break;
          }
        }
        if (over < 0) break;
        // Cheapest migration off the over-budget type.
        double best_delta = lp::kInf;
        std::size_t best_d = 0;
        int best_t = -1;
        for (std::size_t d = 0; d < num_ds; ++d) {
          if (assign[d] != over) continue;
          for (std::size_t t = 0; t < num_types; ++t) {
            if (static_cast<int>(t) == over ||
                z[d][t] == lp::kInvalidIndex) {
              continue;
            }
            const PlacementPlan& plan = table.plan(d, t);
            if (ports[t] + plan.cp > board.type(t).total_ports() ||
                bits[t] + plan.cw * plan.cd > board.type(t).total_bits()) {
              continue;
            }
            const double delta = table.cost(d, t) - table.cost(d, over);
            if (delta < best_delta) {
              best_delta = delta;
              best_d = d;
              best_t = static_cast<int>(t);
            }
          }
        }
        if (best_t < 0) {
          // Repair stuck: last resort is the feasibility-first
          // construction (ignores the LP entirely but always yields an
          // incumbent when one is this easy to build).
          assign = headroom_assignment(design, board, table);
          if (assign.empty()) return std::nullopt;
          break;
        }
        const PlacementPlan& from = table.plan(best_d, over);
        const PlacementPlan& to = table.plan(best_d, best_t);
        ports[over] -= from.cp;
        bits[over] -= from.cw * from.cd;
        ports[best_t] += to.cp;
        bits[best_t] += to.cw * to.cd;
        assign[best_d] = best_t;
      }
      std::vector<double> x(static_cast<std::size_t>(model.num_vars()), 0.0);
      for (std::size_t d = 0; d < num_ds; ++d) {
        if (z[d][assign[d]] == lp::kInvalidIndex) return std::nullopt;
        x[z[d][assign[d]]] = 1.0;
      }
      return x;
    };
  }

  // ---- warm start + pins (incremental re-solve) ---------------------------
  // The prior mapping seeds the B&B incumbent; pinned structures collapse
  // onto their prior type so the ILP proves the optimum over the delta
  // only.  Any entry referencing an infeasible pair voids the warm start
  // (a partial start would be infeasible anyway) and skips that pin.
  if (options.warm_assignment.size() == num_ds) {
    std::vector<double> start(static_cast<std::size_t>(model.num_vars()),
                              0.0);
    bool complete = true;
    for (std::size_t d = 0; d < num_ds && complete; ++d) {
      const int t = options.warm_assignment[d];
      if (t < 0 || static_cast<std::size_t>(t) >= num_types ||
          z[d][t] == lp::kInvalidIndex) {
        complete = false;
        break;
      }
      start[z[d][t]] = 1.0;
    }
    if (complete) mip_options.mip_start = std::move(start);
    for (const std::size_t d : options.pinned_structures) {
      if (d >= num_ds) continue;
      const int t = options.warm_assignment[d];
      if (t < 0 || static_cast<std::size_t>(t) >= num_types ||
          z[d][t] == lp::kInvalidIndex) {
        continue;
      }
      // Pinning Z_dt = 1 plus the uniqueness row forces the structure's
      // remaining variables to 0; no explicit zero-pins needed.
      mip_options.pinned_vars.emplace_back(z[d][t], 1.0);
    }
  }

  // ---- solve --------------------------------------------------------------
  timer.reset();
  result.mip = ilp::solve_mip(model, mip_options);
  result.effort.solve_seconds = timer.seconds();
  result.effort.bnb_nodes = result.mip.nodes;
  result.effort.lp_iterations = result.mip.lp_iterations;
  result.effort.lp_refactorizations = result.mip.simplex_refactorizations;
  result.effort.basis = result.mip.basis;
  result.status = result.mip.status;
  if (!result.mip.has_incumbent()) return result;

  // ---- extract assignment ---------------------------------------------
  result.assignment.type_of.assign(num_ds, -1);
  for (std::size_t d = 0; d < num_ds; ++d) {
    for (std::size_t t = 0; t < num_types; ++t) {
      if (z[d][t] != lp::kInvalidIndex &&
          result.mip.x[z[d][t]] > 0.5) {
        GMM_ASSERT(result.assignment.type_of[d] < 0,
                   "structure assigned to two types");
        result.assignment.type_of[d] = static_cast<int>(t);
      }
    }
    GMM_ASSERT(result.assignment.type_of[d] >= 0,
               "structure left unassigned by an incumbent solution");
  }
  result.assignment.objective =
      migration_active
          ? table.assignment_objective(result.assignment.type_of)
          : result.mip.objective;
  return result;
}

}  // namespace gmm::mapping
