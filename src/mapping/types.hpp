// Shared result types of the mapping pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lp/basis.hpp"
#include "lp/types.hpp"
#include "mapping/preprocess.hpp"

namespace gmm::mapping {

/// Global mapping result: one bank type per data structure.
struct GlobalAssignment {
  std::vector<int> type_of;  // bank-type index per structure, -1 = none
  double objective = 0.0;

  [[nodiscard]] bool complete() const {
    for (const int t : type_of) {
      if (t < 0) return false;
    }
    return !type_of.empty();
  }
};

/// One placed fragment of a data structure on a concrete bank instance.
struct PlacedFragment {
  std::size_t ds = 0;          // data-structure index
  std::size_t type = 0;        // bank-type index
  std::int64_t instance = 0;   // instance within the type
  int config_index = -1;       // port configuration used
  FragmentKind kind = FragmentKind::kFull;
  std::int64_t ports = 0;          // EP ports consumed
  std::int64_t first_port = 0;     // ports [first_port, first_port+ports)
  std::int64_t offset_bits = 0;    // block base inside the instance
  std::int64_t block_bits = 0;     // reserved (pow-2) block size
  std::int64_t words_covered = 0;  // actual data words of the structure
  std::int64_t bits_covered = 0;   // actual data width of the structure
};

/// Detailed mapping result: concrete placements for every fragment.
struct DetailedMapping {
  bool success = false;
  std::string failure;   // reason when !success
  int failed_type = -1;  // bank type whose packing failed, when !success
  std::vector<PlacedFragment> fragments;

  /// Number of distinct instances used on type t.
  [[nodiscard]] std::int64_t instances_used(std::size_t t) const;
  /// Total fragments of structure d (fragmentation measure).
  [[nodiscard]] std::int64_t fragment_count(std::size_t d) const;
};

/// Size of an ILP formulation, for the Table-3 complexity reporting.
struct ModelSize {
  std::int64_t variables = 0;
  std::int64_t binaries = 0;
  std::int64_t rows = 0;
  std::int64_t nonzeros = 0;
};

/// Timing/effort breakdown shared by the mapper entry points.
struct SolveEffort {
  double preprocess_seconds = 0.0;
  double formulate_seconds = 0.0;
  double solve_seconds = 0.0;
  double detailed_seconds = 0.0;
  std::int64_t bnb_nodes = 0;
  std::int64_t lp_iterations = 0;
  /// LP basis refactorizations across the root cut loop and every
  /// branch-and-bound worker — the dominant per-engine cost the sparse
  /// backend exists to shrink, surfaced end-to-end for the serving stats.
  std::int64_t lp_refactorizations = 0;
  /// Branch & bound basis warm-start cache counters, cumulative over the
  /// solves behind this result (the pipeline's retry loop sums them).
  lp::BasisCacheStats basis;

  [[nodiscard]] double total_seconds() const {
    return preprocess_seconds + formulate_seconds + solve_seconds +
           detailed_seconds;
  }
};

}  // namespace gmm::mapping
