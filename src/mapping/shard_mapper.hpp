// Multi-device sharded mapping: partition -> per-device ILP fan-out ->
// top-level stitch ILP.
//
// Boards with several FPGAs (arch::Board devices) cannot be fed to the
// single-device pipeline directly: bank sharing never crosses a device,
// and inter-device transfers pay board-level pin cost the flat model
// does not see.  map_sharded scales the paper's formulation out instead
// of up:
//
//   1. PARTITION the design's conflict graph into one part per usable
//      device with a balanced min-cut heuristic (design/partition.hpp) —
//      cut conflict edges are simultaneous cross-device traffic, which
//      is exactly what the stitch objective charges for;
//   2. FAN OUT the per-device global/detailed pipelines: every
//      (part, device) candidate whose bits fit is solved concurrently
//      over a support::ThreadPool via the map_batch machinery, each
//      candidate an independent, deterministic map_pipeline run on the
//      device's single-device board view;
//   3. STITCH with a small assignment ILP over the candidates: binary
//      Y_pk ("part p lands on device k"), cost = the candidate's solved
//      objective + transfer_weight * (part p's incident cut traffic) *
//      (device k's inter_device_pins), one-device-per-part equality rows
//      and at-most-one-part-per-device rows, solved exactly (gap 0) by
//      the in-tree MipSolver;
//   4. REPAIR: a part that is infeasible on every device migrates its
//      largest structure to the part with the most slack and the loop
//      re-solves, up to max_repair_rounds, after which the result is
//      reported infeasible.
//
// Determinism: the partition is deterministic, each candidate pipeline
// is deterministic regardless of pool interleaving (per-solve solver
// threads default to 1), and the stitch ILP is solved serially at gap 0
// — so for a fixed board the sharded objective is EXACTLY equal across
// worker counts.  Single-device boards (including boards with no
// explicit devices) bypass all of the above and return the plain
// map_pipeline result unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/board.hpp"
#include "design/design.hpp"
#include "design/partition.hpp"
#include "mapping/pipeline.hpp"
#include "support/thread_pool.hpp"

namespace gmm::mapping {

struct ShardOptions {
  /// Options for every per-device global/detailed pipeline run.  The
  /// embedded cancel token is honored between fan-out rounds.
  PipelineOptions pipeline;
  /// Partitioner knobs; `parts` and `capacities` are overwritten with the
  /// usable-device count and per-device bit capacities.
  design::PartitionOptions partition;
  /// Weight of the inter-device transfer term in the stitched objective
  /// (multiplies cut traffic x endpoint inter_device_pins).
  double transfer_weight = 1.0;
  /// Migration rounds for parts that are infeasible on every device.
  int max_repair_rounds = 8;
  /// Workers for the candidate fan-out when map_sharded creates its own
  /// pool (0 = one per candidate, capped at hardware concurrency).  The
  /// pool-taking overload ignores this.
  std::size_t num_workers = 0;
};

struct ShardStats {
  int devices = 0;           // devices on the board
  int shards = 0;            // non-empty parts actually mapped
  int skipped_devices = 0;   // devices with zero banks (never solved)
  int repair_rounds = 0;     // migration rounds the repair loop ran
  std::int64_t migrations = 0;        // structures moved between parts
  std::int64_t candidate_solves = 0;  // per-device pipelines executed
  /// Candidate solves whose B&B was seeded with the previous round's
  /// assignment for the same (part, device) pair (MIP start accepted).
  std::int64_t warm_started = 0;
  std::int64_t cut_edges = 0;    // conflict edges crossing devices
  double stitch_cost = 0.0;      // weighted inter-device transfer term
  double stitch_seconds = 0.0;   // top-level assignment ILP wall clock
  ModelSize stitch_model;        // size of the assignment ILP
};

struct ShardResult {
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  /// Bank-type assignment in the board's FLAT type index space, so
  /// validate_mapping and the reports work on it unchanged.
  GlobalAssignment assignment;
  /// Concrete placements, remapped to flat type indices.
  DetailedMapping detailed;
  /// Device index per structure (-1 when unmapped).
  std::vector<int> device_of;
  /// Sum of the chosen per-device objectives plus the stitch transfer
  /// term (equals assignment.objective).
  double objective = 0.0;
  /// Effort behind the RETURNED mapping: the chosen candidates' solves
  /// plus the stitch ILP — comparable to a PipelineResult's effort.
  SolveEffort effort;
  /// Total work executed, including candidates the stitch discarded and
  /// repair-round re-solves — what capacity accounting should charge.
  SolveEffort total_effort;
  /// Summed over the CHOSEN per-device models only.
  ModelSize model_size;
  /// Summed pipeline retries of the chosen candidates.
  int retries = 0;
  ShardStats stats;
};

/// Shard over a caller-owned pool (shared fan-out workers).
ShardResult map_sharded(support::ThreadPool& pool,
                        const design::Design& design,
                        const arch::Board& board,
                        const ShardOptions& options = {});

/// Convenience: create a pool for the duration of the call.
ShardResult map_sharded(const design::Design& design,
                        const arch::Board& board,
                        const ShardOptions& options = {});

}  // namespace gmm::mapping
