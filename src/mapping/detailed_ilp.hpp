// ILP-mode detailed mapper (paper Section 4.2).
//
// The paper: "An ILP-based formulation for the detailed memory mapper was
// developed ... The aim is to assign data structures to specific ports of
// specific instances of the bank ... Optimization factors include trying
// to reduce on-chip interconnection congestion and reducing data
// structure fragmentation."
//
// Since pre-processing already fixes the fragment multiset (fragmentation
// is decided by the Figure-2 decomposition), the remaining freedom is
// WHICH instances host the fragments; congestion is modeled as the number
// of instances touched.  Per bank type this is a small bin-packing ILP:
//
//   y_fi  (binary)  fragment f placed on instance i
//   u_i   (binary)  instance i used
//   minimize  sum_i u_i
//   s.t.  sum_i y_fi = 1                          for every fragment f
//         sum_f EP_f    * y_fi <= P_t  * u_i      per instance
//         sum_f bits_f  * y_fi <= cap  * u_i      per instance
//         u_i >= u_{i+1}                          (symmetry breaking)
//
// Cost-neutrality still holds (instances of a type are interchangeable),
// so this can only compress placements, never change the assignment cost.
// Storage overlap between lifetime-disjoint structures is NOT exploited
// in ILP mode (conservative); designs relying on it should use the
// constructive packer.  Types whose fragment count exceeds
// `max_fragments_for_ilp` silently fall back to the constructive packer.
#pragma once

#include "arch/board.hpp"
#include "design/design.hpp"
#include "ilp/mip_solver.hpp"
#include "mapping/cost_model.hpp"
#include "mapping/types.hpp"

namespace gmm::mapping {

struct DetailedIlpOptions {
  /// Bounded effort per type: bin packing is NP-hard and the constructive
  /// packer is always available, so a stuck ILP falls back rather than
  /// stalls (an incumbent found within the limits is still used).
  ilp::MipOptions mip = [] {
    ilp::MipOptions o;
    o.time_limit_seconds = 10.0;
    o.node_limit = 100'000;
    return o;
  }();
  /// Fall back to the constructive packer beyond this many fragments.
  std::int64_t max_fragments_for_ilp = 96;
};

DetailedMapping map_detailed_ilp(const design::Design& design,
                                 const arch::Board& board,
                                 const CostTable& table,
                                 const GlobalAssignment& assignment,
                                 const DetailedIlpOptions& options = {});

}  // namespace gmm::mapping
