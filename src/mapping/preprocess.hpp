// ILP pre-processing (paper Section 4.1.1, Figures 2 and 3).
//
// For a data structure d of Dd words x Wd bits considered on bank type t,
// the pre-processor picks two configurations:
//
//   alpha — the configuration with the smallest width >= Wd (or the widest
//           configuration when Wd exceeds every width), and
//   beta  — when the structure's width does not divide evenly into alpha
//           columns, the configuration with the smallest width >= the
//           width remainder.
//
// The structure is then decomposed into the Figure-2 rectangle:
//
//         | full columns (alpha)      | remainder column (beta) |
//   ------+---------------------------+-------------------------+
//   full  | FP: rows x cols fully     | WP: one fragment per    |
//   rows  | used instances, all ports | row, EP(D_a, D_b) ports |
//   ------+---------------------------+-------------------------+
//   rem.  | DP: one fragment per      | WDP: single corner      |
//   row   | column, EP(rem, D_a)      | fragment, EP(rem, D_b)  |
//
// Port consumption of one fragment follows Figure 3: round the fragment
// depth up to a power of two (so no base-address adders are needed), take
// the fraction of the bank depth it occupies, and charge
// ceil(fraction * Pt) ports.  The totals CP/CW/CD feed the global ILP's
// port and capacity constraints; the fragment groups feed the detailed
// mapper and the complete (flat) formulation.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/memory_bank.hpp"
#include "design/data_structure.hpp"

namespace gmm::mapping {

/// Figure-3 fractional port consumption.  `fragment_depth` words placed on
/// a bank configured `bank_depth` deep with `ports` ports.  Returns 0 for
/// an empty fragment.
std::int64_t consumed_ports(std::int64_t fragment_depth,
                            std::int64_t bank_depth, std::int64_t ports);

/// Role of a fragment group in the Figure-2 decomposition.
enum class FragmentKind : std::uint8_t {
  kFull,         // FP: fully utilized instances
  kWidthColumn,  // WP: width-remainder column
  kDepthRow,     // DP: depth-remainder row
  kCorner,       // WDP: corner fragment
};

constexpr const char* to_string(FragmentKind k) {
  switch (k) {
    case FragmentKind::kFull:
      return "full";
    case FragmentKind::kWidthColumn:
      return "width-column";
    case FragmentKind::kDepthRow:
      return "depth-row";
    case FragmentKind::kCorner:
      return "corner";
  }
  return "?";
}

/// A group of identical fragments of one data structure on one bank type.
struct FragmentGroup {
  FragmentKind kind = FragmentKind::kFull;
  int config_index = -1;         // configuration the fragment's ports use
  std::int64_t count = 0;        // identical fragments in this group
  std::int64_t ports_each = 0;   // EP: ports consumed per fragment
  std::int64_t block_depth = 0;  // pow-2 words reserved per fragment
  std::int64_t block_bits = 0;   // block_depth * config width (reserved)
  std::int64_t words_covered = 0;  // actual structure words per fragment
  std::int64_t bits_covered = 0;   // actual structure width per fragment
};

/// Pre-processing result for one (data structure, bank type) pair.
struct PlacementPlan {
  /// False when the structure cannot be hosted by this type at all (the
  /// aggregate port or capacity demand exceeds the whole type).
  bool feasible = false;
  int alpha = -1;  // config index; always set when feasible
  int beta = -1;   // config index of the width remainder; -1 if none
  std::int64_t cp = 0;  // consumed ports     (paper CP_dt)
  std::int64_t cw = 0;  // consumed width     (paper CW_dt)
  std::int64_t cd = 0;  // consumed depth     (paper CD_dt)
  /// Component breakdown of cp (paper: CP = FP + WP + DP + WDP).
  std::int64_t fp = 0, wp = 0, dp = 0, wdp = 0;
  std::vector<FragmentGroup> groups;

  /// Total number of fragments (= number of instances touched when no two
  /// fragments share an instance; packing may use fewer).
  [[nodiscard]] std::int64_t total_fragments() const;
  /// Reserved bits summed over fragments (block padding included).
  [[nodiscard]] std::int64_t reserved_bits() const;
};

/// Compute the plan for structure `ds` on bank type `type`.
PlacementPlan plan_placement(const design::DataStructure& ds,
                             const arch::BankType& type);

}  // namespace gmm::mapping
