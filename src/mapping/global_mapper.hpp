// Global memory mapping (paper Section 4.1): the ILP over Z_dt only.
//
// Constraints:
//   * uniqueness:  sum_t Z_dt = 1 for every structure d (only feasible
//     (d, t) pairs get variables; a structure with no feasible type makes
//     the model infeasible up front);
//   * ports:       sum_d CP_dt * Z_dt <= P_t * I_t per type;
//   * capacity:    sum_{d in Q} CW_dt * CD_dt * Z_dt <= I_t * bits_t per
//     type and per maximal conflict clique Q — lifetime-disjoint
//     structures may overlap in storage, which the clique family encodes
//     exactly (one all-structures clique when everything conflicts).
//
// Objective: the CostTable's weighted latency + pin-delay + pin-I/O.
#pragma once

#include "arch/board.hpp"
#include "design/design.hpp"
#include "ilp/mip_solver.hpp"
#include "mapping/cost_model.hpp"
#include "mapping/types.hpp"

namespace gmm::mapping {

struct GlobalOptions {
  CostWeights weights;
  ilp::MipOptions mip;
  /// Use conflict-clique capacity constraints (overlap-aware).  When
  /// false, one conservative all-structures capacity row per type.
  bool overlap_aware_capacity = true;
  /// No-good cuts from failed detailed-mapping attempts (the pipeline's
  /// retry loop): for each entry S, add sum_{(d,t) in S} Z_dt <= |S| - 1,
  /// forbidding that exact co-assignment from recurring.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> no_good_cuts;
  /// Prior assignment (type index per structure, -1 = unknown) injected as
  /// a MIP start: the B&B root starts with the prior mapping's cost as its
  /// incumbent and prunes from node one.  A start never constrains the
  /// search, so the proved objective is unchanged — only the node count.
  /// Entries referencing infeasible (d, t) pairs void the whole start.
  std::vector<int> warm_assignment;
  /// Structures pinned to their prior type (index into the design; the
  /// type is taken from warm_assignment).  Pins DO constrain the search:
  /// the ILP proves the optimum over the unpinned delta only, which is
  /// the incremental-re-solve contract.  Requires warm_assignment.
  std::vector<std::size_t> pinned_structures;
  /// Per-structure cost added to every Z_dt with t != warm_assignment[d]
  /// (0 = off).  Steers the delta re-solve toward minimal-disturbance
  /// remaps; the reported assignment objective is still the PURE mapping
  /// cost (recomputed from the cost table), so objectives stay comparable
  /// with cold solves.
  double migration_penalty = 0.0;
};

struct GlobalResult {
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  GlobalAssignment assignment;  // valid when status is optimal/feasible
  ModelSize model_size;
  SolveEffort effort;
  ilp::MipResult mip;
};

/// Run global mapping.  `table` must be built from the same design/board.
GlobalResult map_global(const design::Design& design,
                        const arch::Board& board, const CostTable& table,
                        const GlobalOptions& options = {});

}  // namespace gmm::mapping
