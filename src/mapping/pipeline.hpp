// The paper's full global/detailed pipeline: pre-process, solve the
// global ILP, run detailed mapping, and — if detailed mapping fails
// (possible only on >2-port types, where the Figure-3 port estimate is
// inexact) — add a no-good cut and re-run, exactly as the paper
// prescribes: "the global and detailed mappers need to execute multiple
// times until a solution is found".
//
// The reported timing matches Table 3's accounting: "execution times for
// the global/detailed formulation include all pre-processing steps".
#pragma once

#include "arch/board.hpp"
#include "design/design.hpp"
#include "mapping/detailed_mapper.hpp"
#include "mapping/global_mapper.hpp"

namespace gmm::mapping {

struct PipelineOptions {
  GlobalOptions global;
  DetailedOptions detailed;
  int max_retries = 16;
};

struct PipelineResult {
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  GlobalAssignment assignment;
  DetailedMapping detailed;
  ModelSize model_size;  // of the (last) global ILP
  SolveEffort effort;    // cumulative over retries
  int retries = 0;       // additional global solves after the first
  ilp::MipResult mip;    // of the last global solve
};

PipelineResult map_pipeline(const design::Design& design,
                            const arch::Board& board,
                            const PipelineOptions& options = {});

}  // namespace gmm::mapping
