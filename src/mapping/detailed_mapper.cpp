#include "mapping/detailed_mapper.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "support/assert.hpp"
#include "support/log.hpp"

namespace gmm::mapping {

namespace {

/// Buddy allocator over one instance's bit space.  All block sizes are
/// powers of two and the capacity is a power of two, so allocation never
/// fails while free space >= requested block (the buddy invariant).
class BuddyAllocator {
 public:
  explicit BuddyAllocator(std::int64_t capacity_bits)
      : capacity_(capacity_bits) {
    free_[capacity_bits].push_back(0);
  }

  /// Allocate a power-of-two block; returns the offset or -1.
  std::int64_t allocate(std::int64_t size) {
    auto it = free_.lower_bound(size);
    while (it != free_.end() && it->second.empty()) ++it;
    if (it == free_.end()) return -1;
    std::int64_t block_size = it->first;
    std::int64_t offset = it->second.back();
    it->second.pop_back();
    // Split down to the requested size, returning the upper halves.
    while (block_size > size) {
      block_size /= 2;
      free_[block_size].push_back(offset + block_size);
    }
    return offset;
  }

  [[nodiscard]] std::int64_t capacity() const { return capacity_; }

 private:
  std::int64_t capacity_;
  std::map<std::int64_t, std::vector<std::int64_t>> free_;
};

/// One shared block that lifetime-disjoint structures may co-occupy.
/// Sharing is time-multiplexing of the identical storage AND wiring: a
/// joiner must match the block size, configuration and port demand, and
/// it reuses the same port range (no extra ports consumed).
struct SharedBlock {
  std::int64_t offset = 0;
  std::int64_t size = 0;
  int config_index = -1;
  std::int64_t ports = 0;
  std::int64_t first_port = 0;
  std::vector<std::size_t> occupants;  // data-structure indices
};

struct InstanceState {
  explicit InstanceState(std::int64_t capacity_bits)
      : buddy(capacity_bits) {}
  std::int64_t ports_used = 0;
  BuddyAllocator buddy;
  std::vector<SharedBlock> blocks;
};

/// A single fragment awaiting placement.
struct PendingFragment {
  std::size_t ds;
  const FragmentGroup* group;
};

}  // namespace

std::int64_t DetailedMapping::instances_used(std::size_t t) const {
  std::vector<std::int64_t> seen;
  for (const PlacedFragment& f : fragments) {
    if (f.type == t) seen.push_back(f.instance);
  }
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  return static_cast<std::int64_t>(seen.size());
}

std::int64_t DetailedMapping::fragment_count(std::size_t d) const {
  std::int64_t count = 0;
  for (const PlacedFragment& f : fragments) {
    if (f.ds == d) ++count;
  }
  return count;
}

DetailedMapping map_detailed(const design::Design& design,
                             const arch::Board& board, const CostTable& table,
                             const GlobalAssignment& assignment,
                             const DetailedOptions& options) {
  DetailedMapping mapping;
  const std::size_t num_ds = design.size();
  GMM_ASSERT(assignment.type_of.size() == num_ds,
             "assignment does not match the design");

  // Conflict adjacency for the overlap rule.
  std::vector<std::vector<bool>> conflicts(num_ds,
                                           std::vector<bool>(num_ds, false));
  for (const auto& [a, b] : design.conflict_pairs()) {
    conflicts[a][b] = true;
    conflicts[b][a] = true;
  }

  for (std::size_t t = 0; t < board.num_types(); ++t) {
    const arch::BankType& type = board.type(t);

    // Gather this type's fragments.
    std::vector<PendingFragment> pending;
    for (std::size_t d = 0; d < num_ds; ++d) {
      if (assignment.type_of[d] != static_cast<int>(t)) continue;
      const PlacementPlan& plan = table.plan(d, t);
      GMM_ASSERT(plan.feasible,
                 "assignment routed a structure to an infeasible type");
      for (const FragmentGroup& g : plan.groups) {
        for (std::int64_t k = 0; k < g.count; ++k) {
          pending.push_back(PendingFragment{d, &g});
        }
      }
    }
    if (pending.empty()) continue;

    // The paper's rule: assign in order of decreasing fraction (port)
    // size; ties broken by block size, then structure index for
    // determinism.
    std::stable_sort(pending.begin(), pending.end(),
                     [](const PendingFragment& a, const PendingFragment& b) {
                       if (a.group->ports_each != b.group->ports_each) {
                         return a.group->ports_each > b.group->ports_each;
                       }
                       if (a.group->block_bits != b.group->block_bits) {
                         return a.group->block_bits > b.group->block_bits;
                       }
                       return a.ds < b.ds;
                     });

    std::vector<InstanceState> instances;
    instances.reserve(static_cast<std::size_t>(type.instances));

    for (const PendingFragment& frag : pending) {
      const FragmentGroup& g = *frag.group;
      bool placed = false;

      // Pass 1 (overlap): join an identical block (size, config, port
      // demand) whose occupants are all lifetime-compatible with this
      // structure; the joiner time-multiplexes the same storage and
      // ports, so neither capacity nor ports are charged again.
      if (options.allow_overlap) {
        for (std::size_t i = 0; i < instances.size() && !placed; ++i) {
          InstanceState& inst = instances[i];
          for (SharedBlock& block : inst.blocks) {
            if (block.size != g.block_bits ||
                block.config_index != g.config_index ||
                block.ports != g.ports_each) {
              continue;
            }
            const bool compatible = std::none_of(
                block.occupants.begin(), block.occupants.end(),
                [&](std::size_t other) {
                  return other == frag.ds || conflicts[frag.ds][other];
                });
            if (!compatible) continue;
            mapping.fragments.push_back(PlacedFragment{
                .ds = frag.ds,
                .type = t,
                .instance = static_cast<std::int64_t>(i),
                .config_index = g.config_index,
                .kind = g.kind,
                .ports = g.ports_each,
                .first_port = block.first_port,
                .offset_bits = block.offset,
                .block_bits = g.block_bits,
                .words_covered = g.words_covered,
                .bits_covered = g.bits_covered,
            });
            block.occupants.push_back(frag.ds);
            placed = true;
            break;
          }
        }
      }

      // Pass 2: first instance with free ports and a fresh buddy block.
      for (std::size_t i = 0; i < instances.size() && !placed; ++i) {
        InstanceState& inst = instances[i];
        if (inst.ports_used + g.ports_each > type.ports) continue;
        const std::int64_t offset = inst.buddy.allocate(g.block_bits);
        if (offset < 0) continue;
        mapping.fragments.push_back(PlacedFragment{
            .ds = frag.ds,
            .type = t,
            .instance = static_cast<std::int64_t>(i),
            .config_index = g.config_index,
            .kind = g.kind,
            .ports = g.ports_each,
            .first_port = inst.ports_used,
            .offset_bits = offset,
            .block_bits = g.block_bits,
            .words_covered = g.words_covered,
            .bits_covered = g.bits_covered,
        });
        inst.ports_used += g.ports_each;
        inst.blocks.push_back(SharedBlock{offset, g.block_bits,
                                          g.config_index, g.ports_each,
                                          mapping.fragments.back().first_port,
                                          {frag.ds}});
        placed = true;
      }

      // Pass 3: open a new instance.
      if (!placed) {
        if (static_cast<std::int64_t>(instances.size()) >= type.instances) {
          mapping.success = false;
          mapping.failed_type = static_cast<int>(t);
          mapping.failure = "type " + type.name +
                            ": out of instances while placing a fragment of "
                            + design.at(frag.ds).name;
          GMM_LOG(kInfo) << "detailed: " << mapping.failure;
          return mapping;
        }
        instances.emplace_back(type.capacity_bits());
        InstanceState& inst = instances.back();
        GMM_ASSERT(g.ports_each <= type.ports,
                   "fragment needs more ports than an instance offers");
        const std::int64_t offset = inst.buddy.allocate(g.block_bits);
        GMM_ASSERT(offset == 0, "fresh instance must allocate at offset 0");
        mapping.fragments.push_back(PlacedFragment{
            .ds = frag.ds,
            .type = t,
            .instance = static_cast<std::int64_t>(instances.size()) - 1,
            .config_index = g.config_index,
            .kind = g.kind,
            .ports = g.ports_each,
            .first_port = 0,
            .offset_bits = offset,
            .block_bits = g.block_bits,
            .words_covered = g.words_covered,
            .bits_covered = g.bits_covered,
        });
        inst.ports_used = g.ports_each;
        inst.blocks.push_back(SharedBlock{offset, g.block_bits,
                                          g.config_index, g.ports_each,
                                          0, {frag.ds}});
      }
    }
  }

  mapping.success = true;
  return mapping;
}

}  // namespace gmm::mapping
