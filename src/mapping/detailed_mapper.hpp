// Detailed memory mapping (paper Section 4.2).
//
// Given the global assignment (structure -> bank type), place every
// Figure-2 fragment on a concrete instance, port range and block offset.
// Because all instances of a type share performance and distance, nothing
// placed here can change the global objective — the paper's key
// observation — so the packer optimizes only the secondary goals the
// paper names: few instances touched (congestion) and low fragmentation.
//
// Algorithm, per bank type: fragments sorted by decreasing port demand
// (the paper's "order of decreasing fraction sizes"), then first-fit onto
// instances under two constraints that the pre-processing makes
// sufficient —
//   * sum of fragment EPs on an instance <= P_t, and
//   * power-of-two blocks allocated buddy-style inside the instance
//     (which can never fragment, because every block is a power of two
//     and EP/P_t dominates the capacity fraction).
// Lifetime-compatible structures may share a block of identical size when
// overlap is enabled, realizing the global mapper's clique-relaxed
// capacity constraints.
//
// For types with more than two ports the EP estimate is not exact (the
// paper: "optimal for Pt = 2; a waste of ports when Pt > 2"), so packing
// can fail; map_pipeline() then re-runs global mapping with a cut, as the
// paper prescribes ("the global and detailed mappers need to execute
// multiple times until a solution is found").
#pragma once

#include "arch/board.hpp"
#include "design/design.hpp"
#include "mapping/cost_model.hpp"
#include "mapping/types.hpp"

namespace gmm::mapping {

struct DetailedOptions {
  /// Allow lifetime-disjoint structures to share identical-size blocks.
  bool allow_overlap = true;
};

/// Place every structure's fragments.  `assignment.type_of[d]` must be a
/// feasible type for d according to `table`.
DetailedMapping map_detailed(const design::Design& design,
                             const arch::Board& board, const CostTable& table,
                             const GlobalAssignment& assignment,
                             const DetailedOptions& options = {});

}  // namespace gmm::mapping
