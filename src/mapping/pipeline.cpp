#include "mapping/pipeline.hpp"

#include <memory>

#include "support/cancellation.hpp"
#include "support/log.hpp"
#include "support/timer.hpp"

namespace gmm::mapping {

PipelineResult map_pipeline(const design::Design& design,
                            const arch::Board& board,
                            const PipelineOptions& options) {
  PipelineResult result;
  support::WallTimer timer;

  // Pre-processing: every (d, t) placement plan and cost — charged to the
  // pipeline per the paper's timing methodology.
  const CostTable table(design, board, options.global.weights);
  result.effort.preprocess_seconds = timer.seconds();

  GlobalOptions global_options = options.global;
  const std::shared_ptr<const support::CancelToken>& token =
      options.global.mip.cancel_token;
  for (int attempt = 0; attempt <= options.max_retries; ++attempt) {
    // Between retries the cancel token is the only brake: each global
    // solve gets the per-solve time limit afresh, so without this check a
    // cancelled or deadline-expired request could burn the whole retry
    // budget after its caller has already given up on it.
    if (token && token->should_stop()) {
      result.status = token->cancelled() ? lp::SolveStatus::kCancelled
                                         : lp::SolveStatus::kTimeLimit;
      return result;
    }
    GlobalResult global = map_global(design, board, table, global_options);
    result.model_size = global.model_size;
    result.effort.formulate_seconds += global.effort.formulate_seconds;
    result.effort.solve_seconds += global.effort.solve_seconds;
    result.effort.bnb_nodes += global.effort.bnb_nodes;
    result.effort.lp_iterations += global.effort.lp_iterations;
    result.effort.lp_refactorizations += global.effort.lp_refactorizations;
    result.effort.basis += global.effort.basis;
    result.mip = std::move(global.mip);
    result.status = global.status;
    if (global.status != lp::SolveStatus::kOptimal &&
        global.status != lp::SolveStatus::kFeasible) {
      return result;  // infeasible / limit without incumbent
    }
    result.assignment = global.assignment;

    timer.reset();
    result.detailed = map_detailed(design, board, table, result.assignment,
                                   options.detailed);
    result.effort.detailed_seconds += timer.seconds();
    if (result.detailed.success) return result;

    // Detailed mapping failed.  Packing failures only arise from the
    // optimistic parts of the model (overlap sharing, or the inexact
    // Figure-3 port estimate on >2-port types); forbid the failing
    // type's exact structure set from recurring and re-run.  Halfway
    // through the retry budget, also drop overlap awareness — the
    // conservative model is guaranteed packable on <=2-port types.
    result.retries = attempt + 1;
    std::vector<std::pair<std::size_t, std::size_t>> cut;
    const int failing = result.detailed.failed_type;
    for (std::size_t d = 0; d < design.size(); ++d) {
      if (failing < 0 || result.assignment.type_of[d] == failing) {
        cut.emplace_back(
            d, static_cast<std::size_t>(result.assignment.type_of[d]));
      }
    }
    global_options.no_good_cuts.push_back(std::move(cut));
    if (attempt + 1 >= (options.max_retries + 1) / 2 &&
        global_options.overlap_aware_capacity) {
      GMM_LOG(kInfo) << "pipeline: overlap retries exhausted; falling back "
                        "to the conservative (no-overlap) model";
      global_options.overlap_aware_capacity = false;
      global_options.no_good_cuts.clear();
    }
    GMM_LOG(kInfo) << "pipeline: detailed mapping failed ("
                   << result.detailed.failure << "); retry "
                   << result.retries;
  }
  result.status = lp::SolveStatus::kNumericalFailure;
  GMM_LOG(kError) << "pipeline: retry budget exhausted";
  return result;
}

}  // namespace gmm::mapping
