#include "mapping/batch_mapper.hpp"

#include "support/assert.hpp"
#include "support/timer.hpp"

namespace gmm::mapping {

BatchResult map_batch(support::ThreadPool& pool,
                      const std::vector<BatchItem>& items,
                      const PipelineOptions& options) {
  support::WallTimer timer;
  BatchResult batch;
  batch.results.resize(items.size());
  support::parallel_for(pool, items.size(), [&](std::size_t i) {
    const BatchItem& item = items[i];
    GMM_ASSERT(item.design != nullptr && item.board != nullptr,
               "map_batch item with null design or board");
    batch.results[i] = map_pipeline(*item.design, *item.board,
                                    item.options ? *item.options : options);
  });
  for (const PipelineResult& r : batch.results) {
    if (r.status == lp::SolveStatus::kOptimal ||
        r.status == lp::SolveStatus::kFeasible) {
      ++batch.succeeded;
    }
  }
  batch.seconds = timer.seconds();
  return batch;
}

BatchResult map_batch(const std::vector<BatchItem>& items,
                      const PipelineOptions& options,
                      std::size_t num_workers) {
  support::ThreadPool pool(num_workers);
  return map_batch(pool, items, options);
}

}  // namespace gmm::mapping
