#include "mapping/cost_model.hpp"

#include "support/arithmetic.hpp"
#include "support/assert.hpp"

namespace gmm::mapping {

CostBreakdown assignment_cost(const design::DataStructure& ds,
                              const arch::BankType& type,
                              const PlacementPlan& plan) {
  CostBreakdown cost;
  cost.latency =
      static_cast<double>(ds.effective_reads() * type.read_latency +
                          ds.effective_writes() * type.write_latency);
  cost.pin_delay = static_cast<double>(ds.depth * type.pins_traversed);
  if (plan.feasible) {
    cost.pin_io = static_cast<double>(
        (support::ilog2_ceil(plan.cd) + plan.cw) * type.pins_traversed);
  }
  return cost;
}

CostTable::CostTable(const design::Design& design, const arch::Board& board,
                     CostWeights weights)
    : num_structures_(design.size()),
      num_types_(board.num_types()),
      weights_(weights) {
  plans_.reserve(num_structures_ * num_types_);
  costs_.reserve(num_structures_ * num_types_);
  for (std::size_t d = 0; d < num_structures_; ++d) {
    for (std::size_t t = 0; t < num_types_; ++t) {
      plans_.push_back(plan_placement(design.at(d), board.type(t)));
      costs_.push_back(
          assignment_cost(design.at(d), board.type(t), plans_.back()));
    }
  }
}

double CostTable::assignment_objective(const std::vector<int>& type_of) const {
  GMM_ASSERT(type_of.size() == num_structures_,
             "assignment size does not match the design");
  double total = 0.0;
  for (std::size_t d = 0; d < num_structures_; ++d) {
    GMM_ASSERT(type_of[d] >= 0 &&
                   type_of[d] < static_cast<int>(num_types_),
               "assignment references an unknown bank type");
    total += cost(d, static_cast<std::size_t>(type_of[d]));
  }
  return total;
}

CostWeights normalized_weights(const design::Design& design,
                               const arch::Board& board) {
  double latency_sum = 0, pin_delay_sum = 0, pin_io_sum = 0;
  std::int64_t feasible_pairs = 0;
  for (std::size_t d = 0; d < design.size(); ++d) {
    for (std::size_t t = 0; t < board.num_types(); ++t) {
      const PlacementPlan plan = plan_placement(design.at(d), board.type(t));
      if (!plan.feasible) continue;
      const CostBreakdown c =
          assignment_cost(design.at(d), board.type(t), plan);
      latency_sum += c.latency;
      pin_delay_sum += c.pin_delay;
      pin_io_sum += c.pin_io;
      ++feasible_pairs;
    }
  }
  CostWeights w;
  if (feasible_pairs > 0) {
    const auto n = static_cast<double>(feasible_pairs);
    if (latency_sum > 0) w.latency = n / latency_sum;
    if (pin_delay_sum > 0) w.pin_delay = n / pin_delay_sum;
    if (pin_io_sum > 0) w.pin_io = n / pin_io_sum;
  }
  return w;
}

}  // namespace gmm::mapping
