#include "mapping/portfolio.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <utility>

#include "mapping/cost_model.hpp"
#include "support/timer.hpp"

namespace gmm::mapping {

namespace {

void accumulate(SolveEffort& into, const SolveEffort& add) {
  into.preprocess_seconds += add.preprocess_seconds;
  into.formulate_seconds += add.formulate_seconds;
  into.solve_seconds += add.solve_seconds;
  into.detailed_seconds += add.detailed_seconds;
  into.bnb_nodes += add.bnb_nodes;
  into.lp_iterations += add.lp_iterations;
  into.lp_refactorizations += add.lp_refactorizations;
  into.basis += add.basis;
}

/// Everything one lane produced: the report plus the winner payload.
struct LaneOutcome {
  LaneReport report;
  GlobalAssignment assignment;
  DetailedMapping detailed;
  ModelSize model_size;
  SolveEffort effort;  // behind the returned mapping (not the charge)
  int retries = 0;
  ilp::MipResult mip;
  std::vector<int> device_of;
  int shards = 0;
};

/// A proof is either a complete optimal mapping or proved infeasibility
/// — both are final answers that should stop the race.
bool is_proof(const LaneOutcome& o) {
  if (o.report.stop_reason != lp::SolveStatus::kOptimal) return false;
  if (o.report.status == lp::SolveStatus::kOptimal) return o.report.usable;
  return o.report.status == lp::SolveStatus::kInfeasible;
}

LaneOutcome run_lane(const design::Design& design, const arch::Board& board,
                     const PortfolioLane& lane,
                     const support::CancelTokenPtr& token) {
  LaneOutcome o;
  o.report.name = lane.name;
  o.report.kind = lane.kind;
  const support::WallTimer timer;
  if (token->should_stop()) {
    // Lost the race (or the parent stopped) before this lane ever got a
    // pool slot: record a zero-cost cancelled lane, never solve.
    o.report.status = lp::SolveStatus::kCancelled;
    o.report.stop_reason = token->cancelled() ? lp::SolveStatus::kCancelled
                                              : lp::SolveStatus::kTimeLimit;
    o.report.cancelled = true;
    o.report.seconds = timer.seconds();
    return o;
  }
  o.report.ran = true;
  switch (lane.kind) {
    case LaneKind::kGlobal: {
      PipelineOptions options = lane.pipeline;
      options.global.mip.cancel_token = token;
      PipelineResult r = map_pipeline(design, board, options);
      o.report.status = r.status;
      o.report.stop_reason = r.mip.stop_reason;
      o.report.retries = r.retries;
      o.assignment = std::move(r.assignment);
      o.detailed = std::move(r.detailed);
      o.model_size = r.model_size;
      o.effort = r.effort;
      o.retries = r.retries;
      o.mip = std::move(r.mip);
      o.report.effort = o.effort;
      break;
    }
    case LaneKind::kComplete: {
      CompleteOptions options;
      options.mip = lane.pipeline.global.mip;
      options.mip.cancel_token = token;
      options.use_packing_heuristic = lane.use_packing_heuristic;
      // The cost table is this lane's pre-processing; charge it like the
      // pipeline does so lane times follow Table 3's accounting.
      const support::WallTimer table_timer;
      const CostTable table(design, board, lane.pipeline.global.weights);
      const double table_seconds = table_timer.seconds();
      CompleteResult r = map_complete(design, board, table, options);
      o.report.status = r.status;
      o.report.stop_reason = r.mip.stop_reason;
      o.assignment = std::move(r.assignment);
      o.detailed = std::move(r.detailed);
      o.model_size = r.model_size;
      o.effort = r.effort;
      o.effort.preprocess_seconds += table_seconds;
      o.mip = std::move(r.mip);
      o.report.effort = o.effort;
      break;
    }
    case LaneKind::kSharded: {
      ShardOptions options = lane.shard;
      options.pipeline = lane.pipeline;
      options.pipeline.global.mip.cancel_token = token;
      // Owning overload on purpose: submitting candidate solves into the
      // portfolio's own pool and waiting for them from a lane task would
      // stall the race behind sibling lanes.
      ShardResult r = map_sharded(design, board, options);
      o.report.status = r.status;
      // A sharded answer has no single MIP stop reason; its stitch runs
      // at gap 0, so a kOptimal status IS a completed run.  An
      // infeasible sharded result is a heuristic-partition failure, not
      // a proof of model infeasibility — never report it as one.
      o.report.stop_reason = r.status == lp::SolveStatus::kOptimal
                                 ? lp::SolveStatus::kOptimal
                                 : r.status;
      o.report.retries = r.retries;
      o.assignment = std::move(r.assignment);
      o.detailed = std::move(r.detailed);
      o.model_size = r.model_size;
      o.effort = r.effort;
      o.retries = r.retries;
      o.device_of = std::move(r.device_of);
      o.shards = r.stats.shards;
      // Charge the TOTAL fan-out work (discarded candidates included).
      o.report.effort = r.total_effort;
      break;
    }
  }
  o.report.usable = o.detailed.success && o.assignment.complete();
  o.report.objective = o.report.usable ? o.assignment.objective : 0.0;
  o.report.proved = is_proof(o);
  o.report.cancelled = o.report.stop_reason == lp::SolveStatus::kCancelled;
  o.report.seconds = timer.seconds();
  return o;
}

}  // namespace

const char* to_string(LaneKind kind) {
  switch (kind) {
    case LaneKind::kGlobal:
      return "global";
    case LaneKind::kComplete:
      return "complete";
    case LaneKind::kSharded:
      return "sharded";
  }
  return "?";
}

std::vector<PortfolioLane> default_portfolio_lanes(
    const arch::Board& board, int lanes, const PipelineOptions& base) {
  const int count = std::clamp(lanes, 1, kMaxPortfolioLanes);
  std::vector<PortfolioLane> out;
  out.reserve(static_cast<std::size_t>(count));
  const auto add = [&out, &base](const std::string& name, LaneKind kind) {
    PortfolioLane lane;
    lane.name = name;
    lane.kind = kind;
    lane.pipeline = base;
    out.push_back(std::move(lane));
    return &out.back();
  };
  if (board.multi_device()) {
    // Multi-device boards: every lane must optimize the same STITCHED
    // objective over the same partition, or racing would compare apples
    // to oranges (the flat global formulation cannot see inter-device
    // pin costs).  Vary per-device search knobs only.
    add("sharded", LaneKind::kSharded);
    add("sharded-nocuts", LaneKind::kSharded)
        ->pipeline.global.mip.max_cut_rounds = 0;
    add("sharded-heur", LaneKind::kSharded)
        ->pipeline.global.mip.heuristic_period = 64;
    add("sharded-morecuts", LaneKind::kSharded)
        ->pipeline.global.mip.max_cut_rounds = 16;
    add("sharded-nobases", LaneKind::kSharded)
        ->pipeline.global.mip.max_stored_bases = 0;
    add("sharded-lazyheur", LaneKind::kSharded)
        ->pipeline.global.mip.heuristic_period = 1024;
  } else {
    // Single-device menu, ordered by Table-3 expectation: the pipeline
    // usually proves first, the complete formulation occasionally wins
    // on small instances, and the knob variants hedge against cut or
    // heuristic pathologies.  "sharded" degenerates to map_pipeline on
    // one device — the ROADMAP's map_sharded-vs-map_pipeline race.
    add("global", LaneKind::kGlobal);
    add("complete", LaneKind::kComplete);
    add("global-nocuts", LaneKind::kGlobal)
        ->pipeline.global.mip.max_cut_rounds = 0;
    add("sharded", LaneKind::kSharded);
    add("global-heur", LaneKind::kGlobal)
        ->pipeline.global.mip.heuristic_period = 64;
    add("global-morecuts", LaneKind::kGlobal)
        ->pipeline.global.mip.max_cut_rounds = 16;
  }
  out.resize(static_cast<std::size_t>(count));
  return out;
}

PortfolioResult solve_portfolio(support::ThreadPool& pool,
                                const design::Design& design,
                                const arch::Board& board,
                                const PortfolioOptions& options) {
  PortfolioResult out;
  const std::size_t n = options.lanes.size();
  if (n == 0) return out;
  const support::WallTimer timer;
  const support::CancelTokenPtr& parent = options.cancel_token;

  // Child tokens: one per lane, inheriting the parent's remaining
  // deadline at launch so in-lane solvers report kTimeLimit (not
  // kCancelled) when the request's budget runs out.
  std::vector<support::CancelTokenPtr> tokens;
  tokens.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto token = std::make_shared<support::CancelToken>();
    if (parent != nullptr) {
      if (parent->has_deadline()) {
        token->set_deadline_after_seconds(parent->seconds_remaining());
      }
      if (parent->cancelled()) token->cancel();
    }
    tokens.push_back(std::move(token));
  }

  std::mutex mutex;
  std::condition_variable cv;
  std::size_t done = 0;
  int winner = -1;
  double first_prove = -1.0;
  std::vector<LaneOutcome> outcomes(n);

  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&, i] {
      LaneOutcome outcome = run_lane(design, board, options.lanes[i],
                                     tokens[i]);
      const std::lock_guard<std::mutex> lock(mutex);
      const bool proof = outcome.report.proved;
      outcomes[i] = std::move(outcome);
      if (proof && winner < 0) {
        winner = static_cast<int>(i);
        first_prove = timer.seconds();
        // First prover wins: cancel every sibling.  Running lanes stop
        // at their next node boundary; queued lanes never start.
        for (std::size_t j = 0; j < n; ++j) {
          if (j != i) tokens[j]->cancel();
        }
      }
      ++done;
      cv.notify_all();
    });
  }

  // Supervise: wait for every lane (losers acknowledge cancellation
  // quickly), propagating a parent-side cancel to the children.  The
  // poll interval bounds cancel latency, not solve progress.
  {
    std::unique_lock<std::mutex> lock(mutex);
    bool propagated = false;
    while (done < n) {
      cv.wait_for(lock, std::chrono::milliseconds(2));
      if (!propagated && parent != nullptr && parent->cancelled()) {
        propagated = true;
        for (const auto& token : tokens) token->cancel();
      }
    }
  }

  // Pick the result: the first prover; else the best usable incumbent
  // (lowest objective, ties to the earliest lane); else the most
  // informative failure.
  int pick = winner;
  if (pick < 0) {
    for (std::size_t i = 0; i < n; ++i) {
      const LaneOutcome& o = outcomes[i];
      if (!o.report.usable) continue;
      if (pick < 0 ||
          o.assignment.objective <
              outcomes[static_cast<std::size_t>(pick)].assignment.objective) {
        pick = static_cast<int>(i);
      }
    }
  }
  if (pick < 0) {
    const auto rank = [](const LaneReport& r) {
      if (!r.ran) return 3;
      if (r.status == lp::SolveStatus::kInfeasible) return 0;
      if (r.status == lp::SolveStatus::kTimeLimit ||
          r.stop_reason == lp::SolveStatus::kTimeLimit) {
        return 1;
      }
      return 2;
    };
    pick = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (rank(outcomes[i].report) <
          rank(outcomes[static_cast<std::size_t>(pick)].report)) {
        pick = static_cast<int>(i);
      }
    }
  }

  LaneOutcome& chosen = outcomes[static_cast<std::size_t>(pick)];
  out.status = chosen.report.ran ? chosen.report.status
                                 : lp::SolveStatus::kCancelled;
  out.assignment = std::move(chosen.assignment);
  out.detailed = std::move(chosen.detailed);
  out.model_size = chosen.model_size;
  out.effort = chosen.effort;
  out.retries = chosen.retries;
  out.mip = std::move(chosen.mip);
  out.device_of = std::move(chosen.device_of);
  out.shards = chosen.shards;
  out.winner = winner;
  if (winner >= 0) {
    out.winner_name = options.lanes[static_cast<std::size_t>(winner)].name;
  }
  out.lanes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    accumulate(out.total_effort, outcomes[i].report.effort);
    if (outcomes[i].report.cancelled) ++out.lanes_cancelled;
    out.lanes.push_back(std::move(outcomes[i].report));
  }
  out.seconds = timer.seconds();
  out.first_prove_seconds = first_prove >= 0.0 ? first_prove : out.seconds;
  return out;
}

PortfolioResult solve_portfolio(const design::Design& design,
                                const arch::Board& board,
                                const PortfolioOptions& options) {
  support::ThreadPool pool(options.lanes.empty() ? 1 : options.lanes.size());
  return solve_portfolio(pool, design, board, options);
}

}  // namespace gmm::mapping
