#include "mapping/greedy_mapper.hpp"

#include <algorithm>
#include <numeric>

#include "support/timer.hpp"

namespace gmm::mapping {

std::vector<int> headroom_assignment(const design::Design& design,
                                     const arch::Board& board,
                                     const CostTable& table) {
  const std::size_t num_ds = design.size();
  const std::size_t num_types = board.num_types();
  std::vector<std::size_t> order(num_ds);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&design](std::size_t a, std::size_t b) {
                     return design.at(a).bits() > design.at(b).bits();
                   });
  std::vector<std::int64_t> ports_left(num_types), bits_left(num_types);
  for (std::size_t t = 0; t < num_types; ++t) {
    ports_left[t] = board.type(t).total_ports();
    bits_left[t] = board.type(t).total_bits();
  }
  std::vector<int> assignment(num_ds, -1);
  for (const std::size_t d : order) {
    int best = -1;
    double best_headroom = -1.0;
    for (std::size_t t = 0; t < num_types; ++t) {
      if (!table.feasible(d, t)) continue;
      const PlacementPlan& plan = table.plan(d, t);
      if (plan.cp > ports_left[t] || plan.cw * plan.cd > bits_left[t]) {
        continue;
      }
      const double headroom = static_cast<double>(ports_left[t]) /
                              static_cast<double>(board.type(t).total_ports());
      if (headroom > best_headroom) {
        best_headroom = headroom;
        best = static_cast<int>(t);
      }
    }
    if (best < 0) return {};
    assignment[d] = best;
    const PlacementPlan& plan = table.plan(d, static_cast<std::size_t>(best));
    ports_left[best] -= plan.cp;
    bits_left[best] -= plan.cw * plan.cd;
  }
  return assignment;
}

GreedyResult map_greedy(const design::Design& design,
                        const arch::Board& board, const CostTable& table) {
  support::WallTimer timer;
  GreedyResult result;
  const std::size_t num_ds = design.size();
  const std::size_t num_types = board.num_types();

  // Largest structures first: they have the fewest placement options.
  std::vector<std::size_t> order(num_ds);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&design](std::size_t a, std::size_t b) {
                     return design.at(a).bits() > design.at(b).bits();
                   });

  std::vector<std::int64_t> ports_left(num_types), bits_left(num_types);
  for (std::size_t t = 0; t < num_types; ++t) {
    ports_left[t] = board.type(t).total_ports();
    bits_left[t] = board.type(t).total_bits();
  }

  result.assignment.type_of.assign(num_ds, -1);
  for (const std::size_t d : order) {
    int best_type = -1;
    double best_cost = 0.0;
    for (std::size_t t = 0; t < num_types; ++t) {
      if (!table.feasible(d, t)) continue;
      const PlacementPlan& plan = table.plan(d, t);
      if (plan.cp > ports_left[t]) continue;
      if (plan.cw * plan.cd > bits_left[t]) continue;
      const double cost = table.cost(d, t);
      if (best_type < 0 || cost < best_cost) {
        best_type = static_cast<int>(t);
        best_cost = cost;
      }
    }
    if (best_type < 0) {
      // Cheapest-cost ordering painted itself into a corner; fall back to
      // the feasibility-first construction.
      const std::vector<int> fallback =
          headroom_assignment(design, board, table);
      if (fallback.empty()) {
        result.success = false;
        result.failure =
            "no bank type has budget left for " + design.at(d).name;
        result.seconds = timer.seconds();
        return result;
      }
      result.assignment.type_of = fallback;
      result.assignment.objective = table.assignment_objective(fallback);
      result.success = true;
      result.used_fallback = true;
      result.seconds = timer.seconds();
      return result;
    }
    result.assignment.type_of[d] = best_type;
    const PlacementPlan& plan = table.plan(d, static_cast<std::size_t>(best_type));
    ports_left[best_type] -= plan.cp;
    bits_left[best_type] -= plan.cw * plan.cd;
  }
  result.assignment.objective =
      table.assignment_objective(result.assignment.type_of);
  result.success = true;
  result.seconds = timer.seconds();
  return result;
}

}  // namespace gmm::mapping
