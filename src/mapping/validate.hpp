// Legality checking of a detailed mapping.
//
// Used by tests (the global->detailed success-guarantee property), by the
// pipeline as a paranoia gate, and by the complete mapper to vet its
// packing heuristic.  Checks, per violation string returned:
//   * every structure's fragments exactly cover depth x width data bits,
//   * fragments sit on existing instances of the assigned type,
//   * per instance: port demand within P_t, port ranges disjoint,
//   * blocks are power-of-two sized, aligned, inside the capacity,
//   * two blocks on an instance either coincide exactly (a shared block
//     between non-conflicting structures) or do not overlap at all,
//   * a port range carries exactly one configuration.
#pragma once

#include <string>
#include <vector>

#include "arch/board.hpp"
#include "design/design.hpp"
#include "mapping/types.hpp"

namespace gmm::mapping {

/// Empty result means the mapping is legal.
std::vector<std::string> validate_mapping(const design::Design& design,
                                          const arch::Board& board,
                                          const GlobalAssignment& assignment,
                                          const DetailedMapping& mapping);

}  // namespace gmm::mapping
