#include "mapping/preprocess.hpp"

#include <algorithm>

#include "support/arithmetic.hpp"
#include "support/assert.hpp"

namespace gmm::mapping {

namespace {

using support::ceil_div;
using support::round_up_pow2;

/// Index of the configuration with the smallest width >= `width`, or the
/// widest configuration when none qualifies (paper's alpha/beta rule).
int config_for_width(const arch::BankType& type, std::int64_t width) {
  int best = -1;
  int widest = 0;
  for (int c = 0; c < static_cast<int>(type.configs.size()); ++c) {
    const std::int64_t w = type.configs[c].width;
    if (w > type.configs[widest].width) widest = c;
    if (w >= width && (best < 0 || w < type.configs[best].width)) {
      best = c;
    }
  }
  return best >= 0 ? best : widest;
}

}  // namespace

std::int64_t consumed_ports(std::int64_t fragment_depth,
                            std::int64_t bank_depth, std::int64_t ports) {
  GMM_ASSERT(bank_depth > 0 && ports > 0,
             "consumed_ports requires a real bank");
  if (fragment_depth <= 0) return 0;
  // Figure 3: depth = round(Dd, pow(2)); fraction = depth / Dt;
  // EP = ceil(fraction * Pt).
  const std::int64_t depth = round_up_pow2(fragment_depth);
  GMM_ASSERT(depth <= bank_depth,
             "fragment deeper than the bank configuration");
  return ceil_div(depth * ports, bank_depth);
}

std::int64_t PlacementPlan::total_fragments() const {
  std::int64_t total = 0;
  for (const FragmentGroup& g : groups) total += g.count;
  return total;
}

std::int64_t PlacementPlan::reserved_bits() const {
  std::int64_t total = 0;
  for (const FragmentGroup& g : groups) total += g.count * g.block_bits;
  return total;
}

PlacementPlan plan_placement(const design::DataStructure& ds,
                             const arch::BankType& type) {
  GMM_ASSERT(ds.depth > 0 && ds.width > 0, "empty data structure");
  PlacementPlan plan;

  // ---- alpha / beta configuration selection ---------------------------
  plan.alpha = config_for_width(type, ds.width);
  const arch::BankConfig& ca = type.configs[plan.alpha];
  const std::int64_t w_alpha = ca.width;
  const std::int64_t d_alpha = ca.depth;

  const std::int64_t full_cols = ds.width / w_alpha;
  const std::int64_t w_rem = ds.width % w_alpha;
  const std::int64_t full_rows = ds.depth / d_alpha;
  const std::int64_t d_rem = ds.depth % d_alpha;

  std::int64_t w_beta = 0;
  std::int64_t d_beta = 0;
  if (w_rem != 0) {
    plan.beta = config_for_width(type, w_rem);
    w_beta = type.configs[plan.beta].width;
    d_beta = type.configs[plan.beta].depth;
  }

  // ---- the four CP components (paper Section 4.1.1) --------------------
  //   FP : fully-used instances consume every port.
  plan.fp = full_rows * full_cols * type.ports;
  //   WP : one width-remainder fragment per full row, depth d_alpha words
  //        hosted on a beta-configured instance.
  plan.wp = w_rem == 0 ? 0
                       : full_rows * consumed_ports(d_alpha, d_beta,
                                                    type.ports);
  //   DP : one depth-remainder fragment per full column.
  plan.dp = full_cols * consumed_ports(d_rem, d_alpha, type.ports);
  //   WDP: the corner fragment.
  plan.wdp = (w_rem == 0 || d_rem == 0)
                 ? 0
                 : consumed_ports(d_rem, d_beta, type.ports);
  plan.cp = plan.fp + plan.wp + plan.dp + plan.wdp;

  // ---- consumed width / depth ------------------------------------------
  plan.cw = full_cols * w_alpha + (w_rem != 0 ? w_beta : 0);
  plan.cd = full_rows * d_alpha + (d_rem != 0 ? round_up_pow2(d_rem) : 0);

  // ---- fragment groups ---------------------------------------------------
  if (plan.fp > 0) {
    plan.groups.push_back(FragmentGroup{
        .kind = FragmentKind::kFull,
        .config_index = plan.alpha,
        .count = full_rows * full_cols,
        .ports_each = type.ports,
        .block_depth = d_alpha,
        .block_bits = d_alpha * w_alpha,
        .words_covered = d_alpha,
        .bits_covered = w_alpha,
    });
  }
  if (w_rem != 0 && full_rows > 0) {
    plan.groups.push_back(FragmentGroup{
        .kind = FragmentKind::kWidthColumn,
        .config_index = plan.beta,
        .count = full_rows,
        .ports_each = consumed_ports(d_alpha, d_beta, type.ports),
        .block_depth = round_up_pow2(d_alpha),
        .block_bits = round_up_pow2(d_alpha) * w_beta,
        .words_covered = d_alpha,
        .bits_covered = w_rem,
    });
  }
  if (d_rem != 0 && full_cols > 0) {
    plan.groups.push_back(FragmentGroup{
        .kind = FragmentKind::kDepthRow,
        .config_index = plan.alpha,
        .count = full_cols,
        .ports_each = consumed_ports(d_rem, d_alpha, type.ports),
        .block_depth = round_up_pow2(d_rem),
        .block_bits = round_up_pow2(d_rem) * w_alpha,
        .words_covered = d_rem,
        .bits_covered = w_alpha,
    });
  }
  if (d_rem != 0 && w_rem != 0) {
    plan.groups.push_back(FragmentGroup{
        .kind = FragmentKind::kCorner,
        .config_index = plan.beta,
        .count = 1,
        .ports_each = consumed_ports(d_rem, d_beta, type.ports),
        .block_depth = round_up_pow2(d_rem),
        .block_bits = round_up_pow2(d_rem) * w_beta,
        .words_covered = d_rem,
        .bits_covered = w_rem,
    });
  }

  // ---- aggregate feasibility against the whole type ----------------------
  plan.feasible = plan.cp <= type.total_ports() &&
                  plan.cw * plan.cd <= type.total_bits();
  return plan;
}

}  // namespace gmm::mapping
