// Bounded-variable revised simplex with an explicit basis inverse — the
// dense LpBackend implementation (and the differential-testing oracle
// for the sparse one; see lp/lp_backend.hpp).
//
// The engine implements the DUAL simplex as its workhorse.  Rationale: in
// this project every LP is either (a) a fresh relaxation whose variables
// all carry a finite bound on the side their cost prefers — so the
// all-logical basis with cost-sign-chosen nonbasic bounds is dual feasible
// by construction — or (b) a branch-and-bound child, where only variable
// BOUNDS changed relative to an optimal parent basis; since reduced costs
// do not depend on bounds, the parent basis stays dual feasible and a few
// dual pivots restore primal feasibility.  A primal phase-1 is therefore
// never needed on this project's models.
//
// Numerical strategy: dense explicit B^{-1} (row-major) with product-form
// row updates per pivot, periodic Gauss-Jordan refactorization with
// partial pivoting and singular-basis repair, Harris-style two-pass dual
// ratio test picking the largest eligible pivot magnitude.
//
// Complexity per pivot: O(m^2) for the inverse/x_B row updates plus
// O(nnz(A)) for the pivot row — for the largest complete-formulation model
// in this project (m ~ 2.5e3, nnz ~ 2e5) a few milliseconds.
#pragma once

#include <vector>

#include "lp/basis.hpp"
#include "lp/lp_backend.hpp"
#include "lp/standard_form.hpp"
#include "lp/types.hpp"

namespace gmm::lp {

class DenseTableauBackend final : public LpBackend {
 public:
  /// The engine keeps a reference to `sf`; it must outlive the engine.
  explicit DenseTableauBackend(const StandardForm& sf);

  // ---- bounds (branch & bound interface) ----------------------------
  /// Override the working bounds of a column.  Call refresh_basic_solution()
  /// after a batch of changes and before solve().
  void set_column_bounds(Index j, double lb, double ub) override;
  /// Restore all working bounds from the standard form.
  void reset_bounds() override;
  [[nodiscard]] double column_lb(Index j) const override { return lb_[j]; }
  [[nodiscard]] double column_ub(Index j) const override { return ub_[j]; }

  // ---- basis management ---------------------------------------------
  /// All logicals basic; structurals nonbasic at the bound their cost
  /// prefers.  Dual feasible for any model where each structural variable
  /// has a finite bound on the side its cost pushes toward.
  void reset_to_logical_basis() override;
  /// Restore a snapshot taken on the same standard form (asserts the
  /// shapes match).  Nonbasic statuses are normalized against the current
  /// working bounds, then repaired to DUAL feasibility: columns sitting on
  /// the bound their reduced cost argues against are flipped to the other
  /// finite bound, and if any column admits no such repair (or the basis
  /// is singular beyond refactorize()'s row repair) the engine degrades to
  /// the all-logical cold basis — loading a foreign or stale basis can
  /// cost pivots, never correctness.
  void load_basis(const Basis& basis) override;
  [[nodiscard]] Basis snapshot_basis() const override;

  /// Recompute x_B and nonbasic values from the current bounds + basis.
  void refresh_basic_solution() override;

  // ---- solving -------------------------------------------------------
  /// Run dual simplex to optimality (primal feasibility).  The basis must
  /// already be dual feasible, which holds in all supported entry paths.
  SolveStatus solve(const SimplexOptions& options) override;

  // ---- solution access ------------------------------------------------
  [[nodiscard]] double objective_value() const override;
  /// Value of any column (structural or logical) at the current basis.
  [[nodiscard]] double column_value(Index j) const override;
  /// Values of the structural columns only.
  [[nodiscard]] std::vector<double> structural_solution() const override;
  /// Reduced cost of a column (valid after solve()).
  [[nodiscard]] double reduced_cost(Index j) const override { return d_[j]; }
  [[nodiscard]] VStat column_status(Index j) const override {
    return stat_[j];
  }
  [[nodiscard]] const SimplexStats& stats() const override { return stats_; }

 private:
  // Dense pivot-row / FTRAN helpers.
  void ftran(Index j, std::vector<double>& w) const;  // w = B^{-1} A_j
  double column_dot(const double* rho, Index j) const;  // rho . A_j

  void refactorize();
  void compute_duals();
  [[nodiscard]] double nonbasic_value(Index j) const;

  /// One dual pivot: returns false when no leaving row exists (optimal).
  enum class PivotResult { kOptimal, kPivoted, kInfeasible, kNumerical };
  PivotResult dual_pivot();

  const StandardForm& sf_;
  Index m_, n_;  // rows, total columns

  std::vector<double> lb_, ub_;  // working bounds (B&B overrides)
  std::vector<Index> basis_;     // basic column per row
  std::vector<VStat> stat_;      // per-column status
  std::vector<double> binv_;     // m x m row-major explicit inverse
  std::vector<double> xb_;       // values of basic columns per row
  std::vector<double> d_;        // reduced costs per column

  // Scratch buffers reused across pivots.
  std::vector<double> alpha_;          // pivot row across all columns
  std::vector<Index> eligible_;        // candidate entering columns
  std::vector<double> w_;              // FTRAN result
  std::vector<double> work_b_;         // refactorization workspace

  int pivots_since_refactor_ = 0;
  std::uint32_t tie_rotation_ = 0;  // deterministic tie-break rotation
  // Anti-cycling: after a long streak of degenerate (zero dual step)
  // pivots, switch to Bland's smallest-index rules, which provably
  // terminate; leave the mode on the first non-degenerate pivot.  The
  // streak threshold comes from SimplexOptions::stall_threshold.
  int degenerate_streak_ = 0;
  int stall_threshold_ = 200;
  bool bland_mode_ = false;
  SimplexStats stats_;
};

/// Historical name of the dense engine, kept for existing call sites and
/// tests; new code should hold an LpBackend from make_lp_backend().
using SimplexEngine = DenseTableauBackend;

}  // namespace gmm::lp
