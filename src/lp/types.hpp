// Shared scalar types, enums and tolerances for the LP/MILP layer.
#pragma once

#include <cstdint>
#include <limits>

namespace gmm::lp {

/// Column / row index type.  32-bit keeps basis snapshots compact; the
/// largest model in this project (the complete formulation at Table-3
/// design point 9) has ~5e4 columns, far below the 2^31 limit.
using Index = std::int32_t;

/// Sentinel for "no index".
inline constexpr Index kInvalidIndex = -1;

/// Infinity for variable and row activity bounds.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// Primal feasibility tolerance (bound violation).
inline constexpr double kFeasTol = 1e-7;

/// Dual feasibility tolerance (reduced-cost sign violation).
inline constexpr double kDualTol = 1e-7;

/// Integrality tolerance used by branch & bound.
inline constexpr double kIntTol = 1e-6;

/// Pivot magnitude below which an entry is treated as zero in ratio tests.
inline constexpr double kPivotTol = 1e-9;

enum class VarType : std::uint8_t { kContinuous, kInteger, kBinary };

enum class Sense : std::uint8_t { kLessEqual, kGreaterEqual, kEqual };

enum class SolveStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kTimeLimit,
  kNodeLimit,
  kNumericalFailure,
  kFeasible,   // MILP: incumbent found but optimality not proven
  kCancelled,  // stopped by a CancelToken before reaching a conclusion
};

/// Human-readable status name for logs and bench tables.
constexpr const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration-limit";
    case SolveStatus::kTimeLimit:
      return "time-limit";
    case SolveStatus::kNodeLimit:
      return "node-limit";
    case SolveStatus::kNumericalFailure:
      return "numerical-failure";
    case SolveStatus::kFeasible:
      return "feasible";
    case SolveStatus::kCancelled:
      return "cancelled";
  }
  return "?";
}

}  // namespace gmm::lp
