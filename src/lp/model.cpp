#include "lp/model.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace gmm::lp {

Index Model::add_variable(double lb, double ub, double obj_coef, VarType type,
                          std::string name) {
  GMM_ASSERT(!(lb > ub), "variable with lb > ub");
  if (type == VarType::kBinary) {
    lb = std::max(lb, 0.0);
    ub = std::min(ub, 1.0);
  }
  var_lb_.push_back(lb);
  var_ub_.push_back(ub);
  obj_.push_back(obj_coef);
  type_.push_back(type);
  var_names_.push_back(std::move(name));
  return static_cast<Index>(var_lb_.size()) - 1;
}

Index Model::add_row(const LinExpr& expr, double lb, double ub,
                     std::string name) {
  GMM_ASSERT(!(lb > ub), "row with lb > ub");
  if (row_start_.empty()) row_start_.push_back(0);

  // Canonicalize: sort by variable, merge duplicates, drop zeros.
  std::vector<Term> terms(expr.terms());
  std::sort(terms.begin(), terms.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  const std::size_t begin = coef_.size();
  for (std::size_t k = 0; k < terms.size();) {
    const Index var = terms[k].var;
    GMM_ASSERT(var >= 0 && var < num_vars(), "row references unknown variable");
    double coef = 0.0;
    while (k < terms.size() && terms[k].var == var) {
      coef += terms[k].coef;
      ++k;
    }
    if (coef != 0.0) {
      col_index_.push_back(var);
      coef_.push_back(coef);
    }
  }
  (void)begin;
  row_lb_.push_back(lb);
  row_ub_.push_back(ub);
  row_names_.push_back(std::move(name));
  row_start_.push_back(coef_.size());
  return static_cast<Index>(row_lb_.size()) - 1;
}

Index Model::add_constraint(const LinExpr& expr, Sense sense, double rhs,
                            std::string name) {
  switch (sense) {
    case Sense::kLessEqual:
      return add_row(expr, -kInf, rhs, std::move(name));
    case Sense::kGreaterEqual:
      return add_row(expr, rhs, kInf, std::move(name));
    case Sense::kEqual:
      return add_row(expr, rhs, rhs, std::move(name));
  }
  GMM_ASSERT(false, "bad sense");
  return kInvalidIndex;
}

void Model::set_var_bounds(Index j, double lb, double ub) {
  GMM_ASSERT(!(lb > ub), "set_var_bounds with lb > ub");
  var_lb_[j] = lb;
  var_ub_[j] = ub;
}

bool Model::has_integers() const {
  return std::any_of(type_.begin(), type_.end(), [](VarType t) {
    return t != VarType::kContinuous;
  });
}

Model::RowView Model::row(Index i) const {
  const std::size_t begin = row_start_[i];
  const std::size_t end = row_start_[i + 1];
  return RowView{col_index_.data() + begin, coef_.data() + begin,
                 end - begin};
}

double Model::row_activity(Index i, const std::vector<double>& x) const {
  const RowView r = row(i);
  double activity = 0.0;
  for (std::size_t k = 0; k < r.size; ++k) {
    activity += r.coefs[k] * x[r.vars[k]];
  }
  return activity;
}

double Model::objective_value(const std::vector<double>& x) const {
  double value = 0.0;
  for (Index j = 0; j < num_vars(); ++j) value += obj_[j] * x[j];
  return value;
}

bool Model::is_feasible(const std::vector<double>& x, double tol) const {
  if (x.size() != static_cast<std::size_t>(num_vars())) return false;
  for (Index j = 0; j < num_vars(); ++j) {
    if (x[j] < var_lb_[j] - tol || x[j] > var_ub_[j] + tol) return false;
    if (type_[j] != VarType::kContinuous &&
        std::abs(x[j] - std::round(x[j])) > tol) {
      return false;
    }
  }
  for (Index i = 0; i < num_rows(); ++i) {
    const double a = row_activity(i, x);
    // Scale the tolerance by the row magnitude so big-coefficient rows
    // (capacity sums in bits) are not spuriously rejected.
    const double scale = std::max(1.0, std::abs(a));
    if (a < row_lb_[i] - tol * scale || a > row_ub_[i] + tol * scale) {
      return false;
    }
  }
  return true;
}

}  // namespace gmm::lp
