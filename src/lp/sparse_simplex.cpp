#include "lp/sparse_simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/assert.hpp"
#include "support/fault.hpp"
#include "support/timer.hpp"

namespace gmm::lp {

namespace {

/// Harris ratio-test slack, identical to the dense engine so both
/// backends make the same stability/progress trade.
constexpr double kHarrisSlack = 1e-7;
/// Entries of a BTRAN row below this are treated as structural zeros
/// when scattering the pivot row (they cannot produce an |alpha| above
/// kPivotTol against the equilibrated matrix).
constexpr double kRhoDropTol = 1e-12;
/// Eta fill may grow to this multiple of the LU size before a
/// refactorization is forced — the "bounded eta" guarantee.
constexpr std::int64_t kEtaBudgetFactor = 4;

bool is_nonbasic(VStat s) { return s != VStat::kBasic; }

}  // namespace

SparseSimplexBackend::SparseSimplexBackend(const StandardForm& sf)
    : sf_(sf), m_(sf.num_rows), n_(sf.num_cols()) {
  lb_ = sf_.lb;
  ub_ = sf_.ub;
  basis_.resize(m_);
  stat_.resize(n_);
  xb_.resize(m_);
  d_.resize(n_);
  // Build the CSR copy of the structural columns once; the pivot-row
  // scatter is the only row-wise access in the engine.
  csr_start_.assign(static_cast<std::size_t>(m_) + 1, 0);
  for (std::size_t k = 0; k < sf_.row_index.size(); ++k) {
    ++csr_start_[static_cast<std::size_t>(sf_.row_index[k]) + 1];
  }
  for (Index i = 0; i < m_; ++i) {
    csr_start_[static_cast<std::size_t>(i) + 1] +=
        csr_start_[static_cast<std::size_t>(i)];
  }
  csr_col_.resize(sf_.row_index.size());
  csr_val_.resize(sf_.row_index.size());
  std::vector<std::size_t> fill(csr_start_.begin(), csr_start_.end() - 1);
  for (Index j = 0; j < sf_.num_structural; ++j) {
    for (std::size_t k = sf_.col_start[j]; k < sf_.col_start[j + 1]; ++k) {
      std::size_t& pos = fill[sf_.row_index[k]];
      csr_col_[pos] = j;
      csr_val_[pos] = sf_.value[k];
      ++pos;
    }
  }
  l_cols_.resize(m_);
  u_cols_.resize(m_);
  u_diag_.resize(m_);
  prow_.resize(m_);
  pinv_.resize(m_);
  work_m_.resize(m_);
  work_y_.resize(m_);
  rho_.resize(m_);
  alpha_ws_.assign(n_, 0.0);
  mark_.assign(n_, 0);
  w_.resize(m_);
  col_ws_.resize(m_);
  reset_to_logical_basis();
}

void SparseSimplexBackend::set_column_bounds(Index j, double lb, double ub) {
  GMM_ASSERT(!(lb > ub), "set_column_bounds with lb > ub");
  lb_[j] = lb;
  ub_[j] = ub;
  if (stat_[j] == VStat::kBasic) return;
  // Same contract as the dense engine: d_ is maintained for every
  // nonbasic column across pivots, so the dual-feasible side can be
  // re-derived under any bound change.
  stat_[j] = detail::dual_feasible_status(d_[j], lb, ub);
}

void SparseSimplexBackend::reset_bounds() {
  for (Index j = 0; j < n_; ++j) {
    if (stat_[j] == VStat::kBasic) {
      lb_[j] = sf_.lb[j];
      ub_[j] = sf_.ub[j];
    } else {
      set_column_bounds(j, sf_.lb[j], sf_.ub[j]);
    }
  }
}

double SparseSimplexBackend::nonbasic_value(Index j) const {
  switch (stat_[j]) {
    case VStat::kAtLower:
    case VStat::kFixed:
      return lb_[j];
    case VStat::kAtUpper:
      return ub_[j];
    case VStat::kFree:
      return 0.0;
    case VStat::kBasic:
      break;
  }
  GMM_ASSERT(false, "nonbasic_value called on basic column");
  return 0.0;
}

void SparseSimplexBackend::reset_to_logical_basis() {
  for (Index i = 0; i < m_; ++i) basis_[i] = sf_.num_structural + i;
  for (Index j = 0; j < n_; ++j) {
    if (sf_.is_logical(j)) {
      stat_[j] = VStat::kBasic;
      continue;
    }
    if (lb_[j] == ub_[j]) {
      stat_[j] = VStat::kFixed;
    } else if (sf_.cost[j] > kDualTol) {
      GMM_ASSERT(lb_[j] > -kInf,
                 "dual simplex start requires a finite lower bound on every "
                 "positive-cost variable");
      stat_[j] = VStat::kAtLower;
    } else if (sf_.cost[j] < -kDualTol) {
      GMM_ASSERT(ub_[j] < kInf,
                 "dual simplex start requires a finite upper bound on every "
                 "negative-cost variable");
      stat_[j] = VStat::kAtUpper;
    } else if (lb_[j] > -kInf) {
      stat_[j] = VStat::kAtLower;
    } else if (ub_[j] < kInf) {
      stat_[j] = VStat::kAtUpper;
    } else {
      stat_[j] = VStat::kFree;
    }
  }
  // B = I for the all-logical basis: the LU is the identity.
  for (Index i = 0; i < m_; ++i) {
    l_cols_[i].clear();
    u_cols_[i].clear();
    u_diag_[i] = 1.0;
    prow_[i] = i;
    pinv_[i] = i;
  }
  lu_nnz_ = m_;
  etas_.clear();
  eta_nnz_ = 0;
  pivots_since_refactor_ = 0;
  refresh_basic_solution();
  compute_duals();
}

void SparseSimplexBackend::load_basis(const Basis& basis) {
  GMM_ASSERT(basis.basic_in_row.size() == static_cast<std::size_t>(m_) &&
                 basis.status.size() == static_cast<std::size_t>(n_),
             "basis snapshot does not match this standard form");
  basis_ = basis.basic_in_row;
  stat_ = basis.status;
  for (Index j = 0; j < n_; ++j) {
    stat_[j] = detail::normalize_loaded_status(stat_[j], lb_[j], ub_[j]);
  }
  if (GMM_FAULT("lp.basis_load", "corrupt")) {
    // Injected snapshot corruption: flip every doubly-bounded nonbasic
    // column to its other bound.  Still a structurally valid basis, but
    // (generally) dual-infeasible — so the repair sweep below and the
    // cold logical-basis fallback get exercised for real.
    for (Index j = 0; j < n_; ++j) {
      if (stat_[j] == VStat::kAtLower && ub_[j] < kInf) {
        stat_[j] = VStat::kAtUpper;
      } else if (stat_[j] == VStat::kAtUpper && lb_[j] > -kInf) {
        stat_[j] = VStat::kAtLower;
      }
    }
  }
  factorize();
  compute_duals();
  // Repair DUAL feasibility exactly like the dense engine (see
  // lp/simplex.hpp): flip columns to their other finite bound, or fall
  // back to the cold logical basis when no cheap repair exists.
  for (Index j = 0; j < n_; ++j) {
    switch (stat_[j]) {
      case VStat::kBasic:
      case VStat::kFixed:
        break;
      case VStat::kAtLower:
        if (d_[j] < -kDualTol) {
          if (ub_[j] >= kInf) {
            reset_to_logical_basis();
            return;
          }
          stat_[j] = VStat::kAtUpper;
        }
        break;
      case VStat::kAtUpper:
        if (d_[j] > kDualTol) {
          if (lb_[j] <= -kInf) {
            reset_to_logical_basis();
            return;
          }
          stat_[j] = VStat::kAtLower;
        }
        break;
      case VStat::kFree:
        if (std::abs(d_[j]) > kDualTol) {
          reset_to_logical_basis();
          return;
        }
        break;
    }
  }
  refresh_basic_solution();
}

Basis SparseSimplexBackend::snapshot_basis() const {
  return Basis{basis_, stat_};
}

void SparseSimplexBackend::scatter_nonbasic_rhs(std::vector<double>& out) const {
  out.assign(m_, 0.0);
  for (Index j = 0; j < n_; ++j) {
    if (!is_nonbasic(stat_[j])) continue;
    const double v = nonbasic_value(j);
    if (v == 0.0) continue;
    if (sf_.is_logical(j)) {
      out[sf_.logical_row(j)] += v;
    } else {
      for (std::size_t k = sf_.col_start[j]; k < sf_.col_start[j + 1]; ++k) {
        out[sf_.row_index[k]] += sf_.value[k] * v;
      }
    }
  }
}

void SparseSimplexBackend::refresh_basic_solution() {
  // x_B = -B^{-1} * (nonbasic activity), one sparse solve.
  scatter_nonbasic_rhs(work_m_);
  ftran_in_place(work_m_);
  for (Index i = 0; i < m_; ++i) xb_[i] = -work_m_[i];
}

void SparseSimplexBackend::ftran_in_place(std::vector<double>& w) {
  std::int64_t work = 3 * static_cast<std::int64_t>(m_);
  // Forward L solve: w enters scattered over original rows; y (pivot
  // order) collects the residual at each pivot row as it is reached.
  for (Index j = 0; j < m_; ++j) {
    const double yj = w[prow_[j]];
    work_y_[j] = yj;
    if (yj == 0.0) continue;
    for (const auto& [r, lv] : l_cols_[j]) w[r] -= lv * yj;
    work += static_cast<std::int64_t>(l_cols_[j].size());
  }
  // Backward U solve in pivot order.
  for (Index k = m_ - 1; k >= 0; --k) {
    const double zk = work_y_[k] / u_diag_[k];
    work_y_[k] = zk;
    if (zk == 0.0) continue;
    for (const auto& [j, uv] : u_cols_[k]) work_y_[j] -= uv * zk;
    work += static_cast<std::int64_t>(u_cols_[k].size());
  }
  // U's columns are the basis positions, so y IS the result.
  for (Index i = 0; i < m_; ++i) w[i] = work_y_[i];
  // Product-form etas, oldest first: w := (I + u e_r^T) w.
  for (const Eta& eta : etas_) {
    const double wr = w[eta.r];
    if (wr == 0.0) continue;
    for (const auto& [i, uv] : eta.u) w[i] += uv * wr;
    work += static_cast<std::int64_t>(eta.u.size());
  }
  stats_.work_units += work;
}

void SparseSimplexBackend::btran_apply(std::vector<double>& v) {
  std::int64_t work = 2 * static_cast<std::int64_t>(m_);
  // Eta transposes, newest first: v := (I + e_r u^T) v.
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    double dot = 0.0;
    for (const auto& [i, uv] : it->u) dot += uv * v[i];
    if (dot != 0.0) v[it->r] += dot;
    work += static_cast<std::int64_t>(it->u.size());
  }
  // U^T forward solve (ascending pivot order).
  for (Index k = 0; k < m_; ++k) {
    double acc = v[k];
    for (const auto& [j, uv] : u_cols_[k]) acc -= uv * v[j];
    v[k] = acc / u_diag_[k];
    work += static_cast<std::int64_t>(u_cols_[k].size());
  }
  // L^T backward solve: L's off-diagonals live at original rows r whose
  // pivot positions pinv_[r] are strictly below j, already final here.
  for (Index j = m_ - 1; j >= 0; --j) {
    double acc = v[j];
    for (const auto& [r, lv] : l_cols_[j]) acc -= lv * v[pinv_[r]];
    v[j] = acc;
    work += static_cast<std::int64_t>(l_cols_[j].size());
  }
  stats_.work_units += work;
}

void SparseSimplexBackend::btran_row(Index r, std::vector<double>& rho) {
  work_m_.assign(m_, 0.0);
  work_m_[r] = 1.0;
  btran_apply(work_m_);
  rho.assign(m_, 0.0);
  rho_rows_.clear();
  for (Index j = 0; j < m_; ++j) {
    const double g = work_m_[j];
    if (std::abs(g) <= kRhoDropTol) continue;
    rho[prow_[j]] = g;
    rho_rows_.push_back(prow_[j]);
  }
  stats_.work_units += 2 * static_cast<std::int64_t>(m_);
}

void SparseSimplexBackend::btran_costs(std::vector<double>& y) {
  work_m_.assign(m_, 0.0);
  bool any = false;
  for (Index i = 0; i < m_; ++i) {
    const double cb = sf_.cost[basis_[i]];
    work_m_[i] = cb;
    any = any || cb != 0.0;
  }
  y.assign(m_, 0.0);
  if (!any) return;
  btran_apply(work_m_);
  for (Index j = 0; j < m_; ++j) y[prow_[j]] = work_m_[j];
}

void SparseSimplexBackend::compute_duals() {
  std::vector<double> y;
  btran_costs(y);
  for (Index j = 0; j < n_; ++j) {
    if (stat_[j] == VStat::kBasic) {
      d_[j] = 0.0;
    } else if (sf_.is_logical(j)) {
      d_[j] = sf_.cost[j] - y[sf_.logical_row(j)];
    } else {
      double acc = 0.0;
      for (std::size_t k = sf_.col_start[j]; k < sf_.col_start[j + 1]; ++k) {
        acc += y[sf_.row_index[k]] * sf_.value[k];
      }
      d_[j] = sf_.cost[j] - acc;
    }
  }
  stats_.work_units +=
      static_cast<std::int64_t>(sf_.value.size()) + 2 * m_;
}

bool SparseSimplexBackend::eta_budget_exceeded() const {
  return eta_nnz_ > kEtaBudgetFactor * (lu_nnz_ + static_cast<std::int64_t>(m_));
}

void SparseSimplexBackend::factorize() {
  ++stats_.refactorizations;
  pivots_since_refactor_ = 0;
  etas_.clear();
  eta_nnz_ = 0;
  std::int64_t work = 0;
  // Injected singularity: make the first structural basis column read back
  // as all zeros on the first attempt, forcing one trip through the same
  // eviction/repair path a genuinely dependent column takes.  (A
  // structural column is always evictable — at least one logical of a
  // still-unpivoted row is nonbasic — so the repair below cannot strand.)
  Index sabotaged_col = -1;
  if (GMM_FAULT("lu.refactor", "singular")) {
    for (Index c = 0; c < m_; ++c) {
      if (!sf_.is_logical(basis_[c])) {
        sabotaged_col = c;
        break;
      }
    }
  }
  // Left-looking LU with partial pivoting over the current basis
  // columns.  On a (near-)singular column, repair the basis exactly like
  // the dense engine — evict the dependent column, substitute the free
  // logical of a still-unpivoted original row — and restart; each repair
  // makes strict progress, so at most m restarts terminate.
  for (int attempt = 0; attempt < 1 + m_; ++attempt) {
    std::fill(pinv_.begin(), pinv_.end(), Index{-1});
    std::fill(col_ws_.begin(), col_ws_.end(), 0.0);
    lu_nnz_ = 0;
    bool repaired = false;
    for (Index col = 0; col < m_ && !repaired; ++col) {
      l_cols_[col].clear();
      u_cols_[col].clear();
      // Scatter basis column `col` into the dense row workspace.
      const Index bj = basis_[col];
      if (attempt == 0 && col == sabotaged_col) {
        // Leave the workspace zeroed: the column reads as dependent.
        ++work;
      } else if (sf_.is_logical(bj)) {
        col_ws_[sf_.logical_row(bj)] = 1.0;
        ++work;
      } else {
        for (std::size_t k = sf_.col_start[bj]; k < sf_.col_start[bj + 1];
             ++k) {
          col_ws_[sf_.row_index[k]] = sf_.value[k];
        }
        work += static_cast<std::int64_t>(sf_.col_start[bj + 1] -
                                          sf_.col_start[bj]);
      }
      // Eliminate with the already-built L columns in pivot order; the
      // value standing at pivot row jj when reached is y[jj] — final,
      // because later L columns never touch earlier pivot rows.
      for (Index jj = 0; jj < col; ++jj) {
        const double yj = col_ws_[prow_[jj]];
        work_y_[jj] = yj;
        if (yj == 0.0) continue;
        for (const auto& [r, lv] : l_cols_[jj]) col_ws_[r] -= lv * yj;
        work += static_cast<std::int64_t>(l_cols_[jj].size());
      }
      // Partial pivot among unpivoted original rows; scanning ascending
      // makes the smallest row index win ties, deterministically.
      Index piv_row = -1;
      double piv_mag = 1e-10;
      for (Index r = 0; r < m_; ++r) {
        if (pinv_[r] >= 0) continue;
        const double mag = std::abs(col_ws_[r]);
        if (mag > piv_mag) {
          piv_mag = mag;
          piv_row = r;
        }
      }
      work += 2 * static_cast<std::int64_t>(m_) + col;
      if (piv_row < 0) {
        // Dependent basis column: kick it out for the logical of an
        // unpivoted original row that is not already basic.
        const Index evicted = basis_[col];
        Index replacement = kInvalidIndex;
        for (Index r = 0; r < m_ && replacement == kInvalidIndex; ++r) {
          if (pinv_[r] >= 0) continue;
          const Index logical = sf_.num_structural + r;
          if (logical == evicted) continue;
          bool already = false;
          for (Index c = 0; c < m_; ++c) {
            if (basis_[c] == logical) {
              already = true;
              break;
            }
          }
          if (!already) replacement = logical;
        }
        GMM_ASSERT(replacement != kInvalidIndex,
                   "basis repair failed to find a free logical column");
        stat_[evicted] = lb_[evicted] > -kInf ? VStat::kAtLower
                         : ub_[evicted] < kInf ? VStat::kAtUpper
                                               : VStat::kFree;
        if (lb_[evicted] == ub_[evicted]) stat_[evicted] = VStat::kFixed;
        basis_[col] = replacement;
        stat_[replacement] = VStat::kBasic;
        repaired = true;
        break;
      }
      prow_[col] = piv_row;
      pinv_[piv_row] = col;
      u_diag_[col] = col_ws_[piv_row];
      for (Index jj = 0; jj < col; ++jj) {
        if (work_y_[jj] != 0.0) u_cols_[col].emplace_back(jj, work_y_[jj]);
      }
      const double inv_piv = 1.0 / u_diag_[col];
      for (Index r = 0; r < m_; ++r) {
        if (pinv_[r] >= 0 || col_ws_[r] == 0.0) continue;
        l_cols_[col].emplace_back(r, col_ws_[r] * inv_piv);
      }
      lu_nnz_ += 1 + static_cast<std::int64_t>(u_cols_[col].size()) +
                 static_cast<std::int64_t>(l_cols_[col].size());
      std::fill(col_ws_.begin(), col_ws_.end(), 0.0);
    }
    if (!repaired) {
      stats_.work_units += work;
      return;
    }
  }
  GMM_ASSERT(false, "factorize: repeated basis repair did not converge");
}

Index SparseSimplexBackend::select_leaving_row() {
  if (m_ == 0) return -1;
  if (bland_mode_) {
    // Anti-cycling: full scan, smallest basic variable index wins.
    Index leave_row = -1;
    Index smallest_var = std::numeric_limits<Index>::max();
    for (Index i = 0; i < m_; ++i) {
      const Index bj = basis_[i];
      const double v = xb_[i];
      if (std::max(lb_[bj] - v, v - ub_[bj]) > kFeasTol && bj < smallest_var) {
        smallest_var = bj;
        leave_row = i;
      }
    }
    stats_.work_units += m_;
    return leave_row;
  }
  // Partial pricing: scan rotating sections of the basic rows and take
  // the worst violation inside the first section that has one; only a
  // primal-feasible basis pays the full O(m) scan.
  const Index section = std::max<Index>(64, m_ / 8);
  Index pos = price_cursor_ % m_;
  Index scanned = 0;
  while (scanned < m_) {
    Index best = -1;
    double worst = kFeasTol;
    const Index block_end = std::min<Index>(scanned + section, m_);
    for (; scanned < block_end; ++scanned) {
      const Index i = pos;
      pos = pos + 1 == m_ ? 0 : pos + 1;
      const Index bj = basis_[i];
      const double v = xb_[i];
      const double viol = std::max(lb_[bj] - v, v - ub_[bj]);
      if (viol > worst) {
        worst = viol;
        best = i;
      }
    }
    if (best >= 0) {
      price_cursor_ = pos;
      stats_.work_units += scanned;
      return best;
    }
  }
  stats_.work_units += m_;
  return -1;
}

SparseSimplexBackend::PivotResult SparseSimplexBackend::dual_pivot() {
  // ---- 1. leaving row (partial pricing / Bland) -----------------------
  const Index leave_row = select_leaving_row();
  if (leave_row < 0) return PivotResult::kOptimal;

  const Index leave_col = basis_[leave_row];
  const bool above_upper = xb_[leave_row] > ub_[leave_col];
  const double target_bound = above_upper ? ub_[leave_col] : lb_[leave_col];
  const double sigma = above_upper ? 1.0 : -1.0;

  // ---- 2. pivot row, sparsely -----------------------------------------
  // rho = row leave_row of B^{-1}; alpha_j = rho . A_j accumulated by
  // scattering only rho's nonzero rows through the CSR rows.  touched_
  // ends up holding every column with alpha != 0 (and only those get a
  // reduced-cost update below) — this is where per-pivot cost becomes
  // proportional to nonzeros.
  btran_row(leave_row, rho_);
  if (++stamp_ == 0) {  // wraparound: old marks could collide, wipe them
    std::fill(mark_.begin(), mark_.end(), 0u);
    stamp_ = 1;
  }
  touched_.clear();
  std::int64_t scatter_work = 0;
  for (const Index r : rho_rows_) {
    const double rv = rho_[r];
    const Index lj = sf_.num_structural + r;  // logical column: alpha = rho_r
    if (mark_[lj] != stamp_) {
      mark_[lj] = stamp_;
      alpha_ws_[lj] = 0.0;
      touched_.push_back(lj);
    }
    alpha_ws_[lj] += rv;
    for (std::size_t k = csr_start_[r]; k < csr_start_[r + 1]; ++k) {
      const Index j = csr_col_[k];
      if (mark_[j] != stamp_) {
        mark_[j] = stamp_;
        alpha_ws_[j] = 0.0;
        touched_.push_back(j);
      }
      alpha_ws_[j] += rv * csr_val_[k];
    }
    scatter_work +=
        1 + static_cast<std::int64_t>(csr_start_[r + 1] - csr_start_[r]);
  }
  stats_.work_units += scatter_work;

  // ---- 3. dual ratio test over the touched columns --------------------
  // Same eligibility and Harris logic as the dense engine; see
  // lp/simplex.cpp for the sign derivation.
  double best_ratio = kInf;
  bool any_eligible = false;
  for (const Index j : touched_) {
    if (!is_nonbasic(stat_[j])) continue;
    const double a = alpha_ws_[j];
    if (std::abs(a) <= kPivotTol) continue;
    bool ok = false;
    switch (stat_[j]) {
      case VStat::kAtLower:
        ok = sigma * a > 0.0;
        break;
      case VStat::kAtUpper:
        ok = sigma * a < 0.0;
        break;
      case VStat::kFree:
        ok = true;
        break;
      default:
        break;
    }
    if (!ok) continue;
    any_eligible = true;
    best_ratio = std::min(best_ratio, std::max(sigma * d_[j] / a, 0.0));
  }
  if (!any_eligible) return PivotResult::kInfeasible;

  Index enter_col = -1;
  if (bland_mode_) {
    // Smallest column index among (near-exact) minimizers.  touched_ is
    // not sorted, so track the minimum explicitly.
    for (const Index j : touched_) {
      if (!is_nonbasic(stat_[j])) continue;
      const double a = alpha_ws_[j];
      if (std::abs(a) <= kPivotTol) continue;
      const bool ok = stat_[j] == VStat::kFree ||
                      (stat_[j] == VStat::kAtLower && sigma * a > 0.0) ||
                      (stat_[j] == VStat::kAtUpper && sigma * a < 0.0);
      if (!ok) continue;
      const double ratio = std::max(sigma * d_[j] / a, 0.0);
      if (ratio <= best_ratio + 1e-12 && (enter_col < 0 || j < enter_col)) {
        enter_col = j;
      }
    }
  } else {
    const double cutoff = best_ratio + kHarrisSlack;
    double enter_alpha_mag = 0.0;
    for (const Index j : touched_) {
      if (!is_nonbasic(stat_[j])) continue;
      const double a = alpha_ws_[j];
      if (std::abs(a) <= kPivotTol) continue;
      const bool ok = stat_[j] == VStat::kFree ||
                      (stat_[j] == VStat::kAtLower && sigma * a > 0.0) ||
                      (stat_[j] == VStat::kAtUpper && sigma * a < 0.0);
      if (!ok) continue;
      const double ratio = std::max(sigma * d_[j] / a, 0.0);
      if (ratio > cutoff) continue;
      const double mag = std::abs(a);
      // Largest |alpha| wins; smaller column index breaks exact ties so
      // the unsorted touched_ order cannot leak into the pivot choice.
      if (mag > enter_alpha_mag ||
          (mag == enter_alpha_mag && enter_col >= 0 && j < enter_col)) {
        enter_alpha_mag = mag;
        enter_col = j;
      }
    }
  }
  GMM_ASSERT(enter_col >= 0, "dual ratio test selected no column");
  const double alpha_q = alpha_ws_[enter_col];
  stats_.work_units += 2 * static_cast<std::int64_t>(touched_.size());

  // ---- 4. FTRAN and numerical cross-check ----------------------------
  std::fill(w_.begin(), w_.end(), 0.0);
  if (sf_.is_logical(enter_col)) {
    w_[sf_.logical_row(enter_col)] = 1.0;
  } else {
    for (std::size_t k = sf_.col_start[enter_col];
         k < sf_.col_start[enter_col + 1]; ++k) {
      w_[sf_.row_index[k]] = sf_.value[k];
    }
  }
  ftran_in_place(w_);
  if (std::abs(w_[leave_row] - alpha_q) > 1e-6 * (1.0 + std::abs(alpha_q))) {
    return PivotResult::kNumerical;
  }
  const double w_r = w_[leave_row];

  // ---- 5. apply the pivot ---------------------------------------------
  const double t = (xb_[leave_row] - target_bound) / w_r;  // step of x_q
  const double theta = d_[enter_col] / w_r;                // dual step

  if (theta != 0.0) {
    for (const Index j : touched_) {
      if (!is_nonbasic(stat_[j]) || j == enter_col) continue;
      const double a = alpha_ws_[j];
      if (a != 0.0) d_[j] -= theta * a;
    }
  }
  d_[leave_col] = -theta;
  d_[enter_col] = 0.0;

  const double enter_value = nonbasic_value(enter_col) + t;
  std::int64_t update_work = static_cast<std::int64_t>(touched_.size());
  for (Index i = 0; i < m_; ++i) {
    if (w_[i] != 0.0) xb_[i] -= t * w_[i];
  }
  xb_[leave_row] = enter_value;
  update_work += m_;

  stat_[enter_col] = VStat::kBasic;
  if (lb_[leave_col] == ub_[leave_col]) {
    stat_[leave_col] = VStat::kFixed;
  } else {
    stat_[leave_col] = above_upper ? VStat::kAtUpper : VStat::kAtLower;
  }
  basis_[leave_row] = enter_col;

  // Product-form eta: E = I + u e_r^T with u_i = -w_i / w_r (i != r) and
  // u_r = 1/w_r - 1, so that the next FTRAN/BTRAN sees B_new^{-1}.
  Eta eta;
  eta.r = leave_row;
  const double inv_wr = 1.0 / w_r;
  for (Index i = 0; i < m_; ++i) {
    if (i == leave_row) continue;
    if (w_[i] != 0.0) eta.u.emplace_back(i, -w_[i] * inv_wr);
  }
  eta.u.emplace_back(leave_row, inv_wr - 1.0);
  eta_nnz_ += static_cast<std::int64_t>(eta.u.size());
  update_work += static_cast<std::int64_t>(eta.u.size()) + m_;
  etas_.push_back(std::move(eta));
  stats_.work_units += update_work;

  if (std::abs(theta) <= kDualTol) {
    if (++degenerate_streak_ > std::max(stall_threshold_, m_ / 2)) {
      bland_mode_ = true;
    }
  } else {
    degenerate_streak_ = 0;
    bland_mode_ = false;
  }

  ++pivots_since_refactor_;
  ++stats_.iterations;
  return PivotResult::kPivoted;
}

SolveStatus SparseSimplexBackend::solve(const SimplexOptions& options) {
  support::WallTimer timer;
  stall_threshold_ = options.stall_threshold;
  std::int64_t iterations_this_call = 0;
  int numerical_retries = 0;
  while (true) {
    if (iterations_this_call >= options.iteration_limit) {
      return SolveStatus::kIterationLimit;
    }
    if ((iterations_this_call & 15) == 0 &&
        timer.seconds() > options.time_limit_seconds) {
      return SolveStatus::kTimeLimit;
    }
    if (pivots_since_refactor_ >= options.refactor_interval ||
        eta_budget_exceeded()) {
      factorize();
      refresh_basic_solution();
      compute_duals();
    }
    switch (dual_pivot()) {
      case PivotResult::kOptimal:
        return SolveStatus::kOptimal;
      case PivotResult::kInfeasible:
        return SolveStatus::kInfeasible;
      case PivotResult::kPivoted:
        ++iterations_this_call;
        numerical_retries = 0;
        break;
      case PivotResult::kNumerical:
        if (++numerical_retries > 3) return SolveStatus::kNumericalFailure;
        factorize();
        refresh_basic_solution();
        compute_duals();
        break;
    }
  }
}

double SparseSimplexBackend::objective_value() const {
  double obj = 0.0;
  for (Index i = 0; i < m_; ++i) obj += sf_.cost[basis_[i]] * xb_[i];
  for (Index j = 0; j < n_; ++j) {
    if (is_nonbasic(stat_[j]) && sf_.cost[j] != 0.0) {
      obj += sf_.cost[j] * nonbasic_value(j);
    }
  }
  return obj;
}

double SparseSimplexBackend::column_value(Index j) const {
  if (stat_[j] == VStat::kBasic) {
    for (Index i = 0; i < m_; ++i) {
      if (basis_[i] == j) return xb_[i];
    }
    GMM_ASSERT(false, "basic column missing from basis array");
  }
  return nonbasic_value(j);
}

std::vector<double> SparseSimplexBackend::structural_solution() const {
  std::vector<double> x(sf_.num_structural);
  for (Index j = 0; j < sf_.num_structural; ++j) {
    x[j] = stat_[j] == VStat::kBasic ? 0.0 : nonbasic_value(j);
  }
  for (Index i = 0; i < m_; ++i) {
    if (basis_[i] < sf_.num_structural) x[basis_[i]] = xb_[i];
  }
  return x;
}

}  // namespace gmm::lp
