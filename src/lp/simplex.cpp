#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "support/assert.hpp"
#include "support/fault.hpp"
#include "support/timer.hpp"

namespace gmm::lp {

namespace {

/// Harris ratio-test slack: candidates within this of the best ratio are
/// considered ties, and the largest |pivot| among them wins.
constexpr double kHarrisSlack = 1e-7;

bool is_nonbasic(VStat s) { return s != VStat::kBasic; }

}  // namespace

DenseTableauBackend::DenseTableauBackend(const StandardForm& sf)
    : sf_(sf), m_(sf.num_rows), n_(sf.num_cols()) {
  lb_ = sf_.lb;
  ub_ = sf_.ub;
  basis_.resize(m_);
  stat_.resize(n_);
  binv_.resize(static_cast<std::size_t>(m_) * m_);
  xb_.resize(m_);
  d_.resize(n_);
  alpha_.resize(n_);
  w_.resize(m_);
  reset_to_logical_basis();
}

void DenseTableauBackend::set_column_bounds(Index j, double lb, double ub) {
  GMM_ASSERT(!(lb > ub), "set_column_bounds with lb > ub");
  lb_[j] = lb;
  ub_[j] = ub;
  if (stat_[j] == VStat::kBasic) return;
  // Re-derive a nonbasic status that keeps the basis DUAL feasible, so a
  // branch-and-bound node restored under a different bound path can
  // warm-start the dual simplex from whatever basis the engine holds.
  // d_ is maintained across every pivot for ALL nonbasic columns, fixed
  // ones included, precisely so this is valid.
  stat_[j] = detail::dual_feasible_status(d_[j], lb, ub);
}

void DenseTableauBackend::reset_bounds() {
  for (Index j = 0; j < n_; ++j) {
    if (stat_[j] == VStat::kBasic) {
      lb_[j] = sf_.lb[j];
      ub_[j] = sf_.ub[j];
    } else {
      set_column_bounds(j, sf_.lb[j], sf_.ub[j]);
    }
  }
}

double DenseTableauBackend::nonbasic_value(Index j) const {
  switch (stat_[j]) {
    case VStat::kAtLower:
    case VStat::kFixed:
      return lb_[j];
    case VStat::kAtUpper:
      return ub_[j];
    case VStat::kFree:
      return 0.0;
    case VStat::kBasic:
      break;
  }
  GMM_ASSERT(false, "nonbasic_value called on basic column");
  return 0.0;
}

void DenseTableauBackend::reset_to_logical_basis() {
  for (Index i = 0; i < m_; ++i) basis_[i] = sf_.num_structural + i;
  for (Index j = 0; j < n_; ++j) {
    if (sf_.is_logical(j)) {
      stat_[j] = VStat::kBasic;
      continue;
    }
    if (lb_[j] == ub_[j]) {
      stat_[j] = VStat::kFixed;
    } else if (sf_.cost[j] > kDualTol) {
      GMM_ASSERT(lb_[j] > -kInf,
                 "dual simplex start requires a finite lower bound on every "
                 "positive-cost variable");
      stat_[j] = VStat::kAtLower;
    } else if (sf_.cost[j] < -kDualTol) {
      GMM_ASSERT(ub_[j] < kInf,
                 "dual simplex start requires a finite upper bound on every "
                 "negative-cost variable");
      stat_[j] = VStat::kAtUpper;
    } else if (lb_[j] > -kInf) {
      stat_[j] = VStat::kAtLower;
    } else if (ub_[j] < kInf) {
      stat_[j] = VStat::kAtUpper;
    } else {
      stat_[j] = VStat::kFree;
    }
  }
  // B = I for the all-logical basis.
  std::fill(binv_.begin(), binv_.end(), 0.0);
  for (Index i = 0; i < m_; ++i) binv_[static_cast<std::size_t>(i) * m_ + i] = 1.0;
  pivots_since_refactor_ = 0;
  refresh_basic_solution();
  compute_duals();
}

void DenseTableauBackend::load_basis(const Basis& basis) {
  GMM_ASSERT(basis.basic_in_row.size() == static_cast<std::size_t>(m_) &&
                 basis.status.size() == static_cast<std::size_t>(n_),
             "basis snapshot does not match this standard form");
  basis_ = basis.basic_in_row;
  stat_ = basis.status;
  // Normalize nonbasic statuses against the working bounds: keep the
  // snapshot's status whenever the bound it references still exists.
  for (Index j = 0; j < n_; ++j) {
    stat_[j] = detail::normalize_loaded_status(stat_[j], lb_[j], ub_[j]);
  }
  if (GMM_FAULT("lp.basis_load", "corrupt")) {
    // Injected snapshot corruption (see SparseSimplexBackend::load_basis):
    // flip doubly-bounded nonbasic columns to their other bound so the
    // dual repair below runs against a genuinely corrupted snapshot.
    for (Index j = 0; j < n_; ++j) {
      if (stat_[j] == VStat::kAtLower && ub_[j] < kInf) {
        stat_[j] = VStat::kAtUpper;
      } else if (stat_[j] == VStat::kAtUpper && lb_[j] > -kInf) {
        stat_[j] = VStat::kAtLower;
      }
    }
  }
  refactorize();
  compute_duals();
  // Repair DUAL feasibility.  A snapshot taken on this engine's own
  // parent node is dual feasible by construction (bounds don't enter the
  // duals), but a basis loaded from elsewhere — a different LP of the
  // same shape, or a snapshot whose nonbasic sides a long bound path
  // invalidated — may put a column on the bound its reduced cost argues
  // against.  Flipping such a column to its other finite bound restores
  // the dual-simplex entry contract without touching the duals (they
  // depend only on the basic set).  A column that cannot be flipped
  // (wrong-sign reduced cost with no opposite finite bound) admits no
  // cheap repair: fall back to the all-logical basis, which is always a
  // valid cold start — degraded, never wrong.
  for (Index j = 0; j < n_; ++j) {
    switch (stat_[j]) {
      case VStat::kBasic:
      case VStat::kFixed:
        break;
      case VStat::kAtLower:
        if (d_[j] < -kDualTol) {
          if (ub_[j] >= kInf) {
            reset_to_logical_basis();
            return;
          }
          stat_[j] = VStat::kAtUpper;
        }
        break;
      case VStat::kAtUpper:
        if (d_[j] > kDualTol) {
          if (lb_[j] <= -kInf) {
            reset_to_logical_basis();
            return;
          }
          stat_[j] = VStat::kAtLower;
        }
        break;
      case VStat::kFree:
        if (std::abs(d_[j]) > kDualTol) {
          // A nonbasic free column with nonzero reduced cost has no bound
          // to sit on at all; only a cold start is safe.
          reset_to_logical_basis();
          return;
        }
        break;
    }
  }
  refresh_basic_solution();
}

Basis DenseTableauBackend::snapshot_basis() const { return Basis{basis_, stat_}; }

void DenseTableauBackend::refresh_basic_solution() {
  // x_B = -B^{-1} * sum_j(A_j * value_j) over nonbasic columns with
  // nonzero value.
  std::vector<double> rhs(m_, 0.0);
  for (Index j = 0; j < n_; ++j) {
    if (!is_nonbasic(stat_[j])) continue;
    const double v = nonbasic_value(j);
    if (v == 0.0) continue;
    if (sf_.is_logical(j)) {
      rhs[sf_.logical_row(j)] += v;
    } else {
      for (std::size_t k = sf_.col_start[j]; k < sf_.col_start[j + 1]; ++k) {
        rhs[sf_.row_index[k]] += sf_.value[k] * v;
      }
    }
  }
  for (Index i = 0; i < m_; ++i) {
    const double* row = binv_.data() + static_cast<std::size_t>(i) * m_;
    double acc = 0.0;
    for (Index k = 0; k < m_; ++k) acc += row[k] * rhs[k];
    xb_[i] = -acc;
  }
}

void DenseTableauBackend::ftran(Index j, std::vector<double>& w) const {
  std::fill(w.begin(), w.end(), 0.0);
  if (sf_.is_logical(j)) {
    const Index r = sf_.logical_row(j);
    for (Index i = 0; i < m_; ++i) {
      w[i] = binv_[static_cast<std::size_t>(i) * m_ + r];
    }
    return;
  }
  for (std::size_t k = sf_.col_start[j]; k < sf_.col_start[j + 1]; ++k) {
    const Index row = sf_.row_index[k];
    const double v = sf_.value[k];
    for (Index i = 0; i < m_; ++i) {
      w[i] += v * binv_[static_cast<std::size_t>(i) * m_ + row];
    }
  }
}

double DenseTableauBackend::column_dot(const double* rho, Index j) const {
  if (sf_.is_logical(j)) return rho[sf_.logical_row(j)];
  double acc = 0.0;
  for (std::size_t k = sf_.col_start[j]; k < sf_.col_start[j + 1]; ++k) {
    acc += rho[sf_.row_index[k]] * sf_.value[k];
  }
  return acc;
}

void DenseTableauBackend::refactorize() {
  ++stats_.refactorizations;
  // Gauss-Jordan on [B | I] touches ~m^3 multiply-adds regardless of
  // sparsity — the cost the sparse backend's LU exists to avoid.
  stats_.work_units +=
      static_cast<std::int64_t>(m_) * m_ * m_;
  pivots_since_refactor_ = 0;
  const std::size_t mm = static_cast<std::size_t>(m_) * m_;
  work_b_.assign(mm, 0.0);
  // Assemble B column-by-column into a dense row-major matrix.
  for (Index col = 0; col < m_; ++col) {
    const Index j = basis_[col];
    if (sf_.is_logical(j)) {
      work_b_[static_cast<std::size_t>(sf_.logical_row(j)) * m_ + col] = 1.0;
    } else {
      for (std::size_t k = sf_.col_start[j]; k < sf_.col_start[j + 1]; ++k) {
        work_b_[static_cast<std::size_t>(sf_.row_index[k]) * m_ + col] =
            sf_.value[k];
      }
    }
  }
  // Gauss-Jordan on [B | I] with partial pivoting; binv_ holds the right
  // half.  On a (near-)singular column, repair the basis: evict that basic
  // column and substitute the logical of a still-unpivoted ORIGINAL row
  // (tracked through the swaps), which is guaranteed independent of the
  // already-processed columns — so each repair makes strict progress and
  // at most m restarts terminate.  Repair is rare; correctness matters
  // more than the restart cost.
  for (int attempt = 0; attempt < 1 + m_; ++attempt) {
    std::fill(binv_.begin(), binv_.end(), 0.0);
    for (Index i = 0; i < m_; ++i) {
      binv_[static_cast<std::size_t>(i) * m_ + i] = 1.0;
    }
    std::vector<double> lhs(work_b_);
    std::vector<Index> row_origin(m_);
    for (Index i = 0; i < m_; ++i) row_origin[i] = i;
    bool repaired = false;
    for (Index col = 0; col < m_ && !repaired; ++col) {
      // Partial pivot: largest |entry| in column `col` at rows >= col.
      Index piv_row = -1;
      double piv_mag = 1e-10;
      for (Index i = col; i < m_; ++i) {
        const double mag = std::abs(lhs[static_cast<std::size_t>(i) * m_ + col]);
        if (mag > piv_mag) {
          piv_mag = mag;
          piv_row = i;
        }
      }
      if (piv_row < 0) {
        // Dependent basis column: kick it out in favor of the logical of
        // an unpivoted original row that is not already basic.
        const Index evicted = basis_[col];
        Index replacement = kInvalidIndex;
        for (Index p = col; p < m_ && replacement == kInvalidIndex; ++p) {
          const Index logical = sf_.num_structural + row_origin[p];
          if (logical == evicted) continue;
          bool already = false;
          for (Index c = 0; c < m_; ++c) {
            if (basis_[c] == logical) {
              already = true;
              break;
            }
          }
          if (!already) replacement = logical;
        }
        GMM_ASSERT(replacement != kInvalidIndex,
                   "basis repair failed to find a free logical column");
        stat_[evicted] = lb_[evicted] > -kInf ? VStat::kAtLower
                         : ub_[evicted] < kInf ? VStat::kAtUpper
                                               : VStat::kFree;
        if (lb_[evicted] == ub_[evicted]) stat_[evicted] = VStat::kFixed;
        basis_[col] = replacement;
        stat_[replacement] = VStat::kBasic;
        // Rebuild the dense B with the repaired basis and restart.
        std::fill(work_b_.begin(), work_b_.end(), 0.0);
        for (Index c = 0; c < m_; ++c) {
          const Index jj = basis_[c];
          if (sf_.is_logical(jj)) {
            work_b_[static_cast<std::size_t>(sf_.logical_row(jj)) * m_ + c] =
                1.0;
          } else {
            for (std::size_t k = sf_.col_start[jj]; k < sf_.col_start[jj + 1];
                 ++k) {
              work_b_[static_cast<std::size_t>(sf_.row_index[k]) * m_ + c] =
                  sf_.value[k];
            }
          }
        }
        repaired = true;
        break;
      }
      if (piv_row != col) {
        // Swap rows in both halves.
        std::swap(row_origin[piv_row], row_origin[col]);
        for (Index k = 0; k < m_; ++k) {
          std::swap(lhs[static_cast<std::size_t>(piv_row) * m_ + k],
                    lhs[static_cast<std::size_t>(col) * m_ + k]);
          std::swap(binv_[static_cast<std::size_t>(piv_row) * m_ + k],
                    binv_[static_cast<std::size_t>(col) * m_ + k]);
        }
      }
      // Normalize the pivot row.
      const double piv = lhs[static_cast<std::size_t>(col) * m_ + col];
      const double inv_piv = 1.0 / piv;
      double* lhs_piv_row = lhs.data() + static_cast<std::size_t>(col) * m_;
      double* inv_piv_row = binv_.data() + static_cast<std::size_t>(col) * m_;
      for (Index k = 0; k < m_; ++k) {
        lhs_piv_row[k] *= inv_piv;
        inv_piv_row[k] *= inv_piv;
      }
      // Eliminate the column everywhere else.
      for (Index i = 0; i < m_; ++i) {
        if (i == col) continue;
        const double f = lhs[static_cast<std::size_t>(i) * m_ + col];
        if (f == 0.0) continue;
        double* lhs_row = lhs.data() + static_cast<std::size_t>(i) * m_;
        double* inv_row = binv_.data() + static_cast<std::size_t>(i) * m_;
        for (Index k = 0; k < m_; ++k) {
          lhs_row[k] -= f * lhs_piv_row[k];
          inv_row[k] -= f * inv_piv_row[k];
        }
      }
    }
    if (!repaired) return;  // success
  }
  GMM_ASSERT(false, "refactorize: repeated basis repair did not converge");
}

void DenseTableauBackend::compute_duals() {
  // y = c_B^T B^{-1}, accumulated row-wise over basic columns with
  // nonzero cost; then d_j = c_j - y . A_j.
  std::vector<double> y(m_, 0.0);
  for (Index i = 0; i < m_; ++i) {
    const double cb = sf_.cost[basis_[i]];
    if (cb == 0.0) continue;
    const double* row = binv_.data() + static_cast<std::size_t>(i) * m_;
    for (Index k = 0; k < m_; ++k) y[k] += cb * row[k];
  }
  for (Index j = 0; j < n_; ++j) {
    if (stat_[j] == VStat::kBasic) {
      d_[j] = 0.0;
    } else {
      d_[j] = sf_.cost[j] - column_dot(y.data(), j);
    }
  }
}

DenseTableauBackend::PivotResult DenseTableauBackend::dual_pivot() {
  // ---- 1. leaving row -------------------------------------------------
  // Normal mode: the largest bound violation, with a deterministic scan
  // rotation to vary tie-breaks.  Bland mode: the violated row whose
  // basic variable has the smallest index (anti-cycling).
  Index leave_row = -1;
  if (bland_mode_) {
    Index smallest_var = std::numeric_limits<Index>::max();
    for (Index i = 0; i < m_; ++i) {
      const Index bj = basis_[i];
      const double v = xb_[i];
      if (std::max(lb_[bj] - v, v - ub_[bj]) > kFeasTol &&
          bj < smallest_var) {
        smallest_var = bj;
        leave_row = i;
      }
    }
  } else {
    double worst = kFeasTol;
    for (Index ii = 0; ii < m_; ++ii) {
      const Index i = static_cast<Index>((ii + tie_rotation_) % m_);
      const Index bj = basis_[i];
      const double v = xb_[i];
      const double viol = std::max(lb_[bj] - v, v - ub_[bj]);
      if (viol > worst) {
        worst = viol;
        leave_row = i;
      }
    }
    ++tie_rotation_;
  }
  if (leave_row < 0) return PivotResult::kOptimal;

  const Index leave_col = basis_[leave_row];
  const bool above_upper = xb_[leave_row] > ub_[leave_col];
  const double target_bound =
      above_upper ? ub_[leave_col] : lb_[leave_col];
  // sigma encodes the violation side; see eligibility rules below.
  const double sigma = above_upper ? 1.0 : -1.0;

  // ---- 2. pivot row alpha_j = (row leave_row of B^{-1}) . A_j ---------
  const double* rho = binv_.data() + static_cast<std::size_t>(leave_row) * m_;
  eligible_.clear();
  for (Index j = 0; j < n_; ++j) {
    // Compute alpha for every nonbasic column, fixed ones included: their
    // reduced costs must also be updated below so they stay valid if a
    // branch-and-bound backtrack later unfixes them.
    if (!is_nonbasic(stat_[j])) continue;
    const double a = column_dot(rho, j);
    alpha_[j] = a;
    if (std::abs(a) <= kPivotTol) continue;
    // Eligibility: moving x_j in its feasible direction must move the
    // leaving basic variable back toward its violated bound.
    //   d x_B[leave_row] / d x_j = -alpha_j.
    // Below lower bound (sigma=-1): need the basic value to increase, so a
    // variable at lower (can only increase) needs alpha_j < 0, a variable
    // at upper (can only decrease) needs alpha_j > 0.  Above upper bound
    // (sigma=+1) the conditions flip.  Free columns are always eligible.
    bool ok = false;
    switch (stat_[j]) {
      case VStat::kAtLower:
        ok = sigma * a > 0.0;
        break;
      case VStat::kAtUpper:
        ok = sigma * a < 0.0;
        break;
      case VStat::kFree:
        ok = true;
        break;
      default:
        break;
    }
    if (ok) eligible_.push_back(j);
  }
  if (eligible_.empty()) return PivotResult::kInfeasible;

  // ---- 3. dual ratio test ----------------------------------------------
  // ratio_j = sigma * d_j / alpha_j >= 0 measures how much the entering
  // reduced cost movement degrades dual feasibility of column j; the
  // minimum wins.  Normal mode breaks near-ties (Harris slack) by the
  // largest |alpha| for stability; Bland mode takes the smallest column
  // index among exact minimizers (anti-cycling).
  double best_ratio = kInf;
  for (const Index j : eligible_) {
    const double ratio = sigma * d_[j] / alpha_[j];
    best_ratio = std::min(best_ratio, std::max(ratio, 0.0));
  }
  Index enter_col = -1;
  if (bland_mode_) {
    for (const Index j : eligible_) {
      const double ratio = std::max(sigma * d_[j] / alpha_[j], 0.0);
      if (ratio <= best_ratio + 1e-12) {
        enter_col = j;
        break;  // eligible_ is in ascending index order
      }
    }
  } else {
    const double cutoff = best_ratio + kHarrisSlack;
    double enter_alpha_mag = 0.0;
    for (const Index j : eligible_) {
      const double ratio = std::max(sigma * d_[j] / alpha_[j], 0.0);
      if (ratio <= cutoff && std::abs(alpha_[j]) > enter_alpha_mag) {
        enter_alpha_mag = std::abs(alpha_[j]);
        enter_col = j;
      }
    }
  }
  GMM_ASSERT(enter_col >= 0, "dual ratio test selected no column");
  const double alpha_q = alpha_[enter_col];

  // ---- 4. FTRAN and numerical cross-check ----------------------------
  ftran(enter_col, w_);
  if (std::abs(w_[leave_row] - alpha_q) >
      1e-6 * (1.0 + std::abs(alpha_q))) {
    return PivotResult::kNumerical;
  }

  // ---- 5. apply the pivot ---------------------------------------------
  const double t = (xb_[leave_row] - target_bound) / alpha_q;  // step of x_q
  const double theta = d_[enter_col] / alpha_q;                // dual step

  // Reduced costs: d_k -= theta * alpha_k for nonbasic k; the leaving
  // column (alpha = 1 in its own row) ends at -theta.
  if (theta != 0.0) {
    for (Index j = 0; j < n_; ++j) {
      if (!is_nonbasic(stat_[j]) || j == enter_col) continue;
      if (alpha_[j] != 0.0) d_[j] -= theta * alpha_[j];
    }
  }
  d_[leave_col] = -theta;
  d_[enter_col] = 0.0;

  // Basic values: x_B -= t * w, with the entering column taking row
  // leave_row at value (nonbasic value + t).
  const double enter_value = nonbasic_value(enter_col) + t;
  for (Index i = 0; i < m_; ++i) xb_[i] -= t * w_[i];
  xb_[leave_row] = enter_value;

  // Statuses.  A basic column whose bounds were fixed while basic leaves
  // as kFixed so it can never re-enter.
  stat_[enter_col] = VStat::kBasic;
  if (lb_[leave_col] == ub_[leave_col]) {
    stat_[leave_col] = VStat::kFixed;
  } else {
    stat_[leave_col] = above_upper ? VStat::kAtUpper : VStat::kAtLower;
  }
  basis_[leave_row] = enter_col;

  // Product-form update of the explicit inverse:
  //   row_r /= alpha_q;   row_i -= w_i * row_r (i != r).
  double* piv_row = binv_.data() + static_cast<std::size_t>(leave_row) * m_;
  const double inv_alpha = 1.0 / alpha_q;
  for (Index k = 0; k < m_; ++k) piv_row[k] *= inv_alpha;
  for (Index i = 0; i < m_; ++i) {
    if (i == leave_row) continue;
    const double f = w_[i];
    if (f == 0.0) continue;
    double* row = binv_.data() + static_cast<std::size_t>(i) * m_;
    for (Index k = 0; k < m_; ++k) row[k] -= f * piv_row[k];
  }

  // Degeneracy bookkeeping: a zero dual step makes no progress on the
  // dual objective; long streaks can cycle, so switch to Bland's rules
  // until a real step happens.
  if (std::abs(theta) <= kDualTol) {
    if (++degenerate_streak_ > std::max(stall_threshold_, m_ / 2)) {
      bland_mode_ = true;
    }
  } else {
    degenerate_streak_ = 0;
    bland_mode_ = false;
  }

  ++pivots_since_refactor_;
  ++stats_.iterations;
  // Work accounting: the pivot row touched every structural nonzero plus
  // the logicals, and the FTRAN + explicit-inverse + x_B updates each
  // swept dense length-m rows — the m^2 term the sparse engine exists to
  // shrink.
  stats_.work_units += static_cast<std::int64_t>(sf_.value.size()) + m_ +
                       2 * static_cast<std::int64_t>(m_) * m_;
  return PivotResult::kPivoted;
}

SolveStatus DenseTableauBackend::solve(const SimplexOptions& options) {
  support::WallTimer timer;
  stall_threshold_ = options.stall_threshold;
  std::int64_t iterations_this_call = 0;
  int numerical_retries = 0;
  while (true) {
    if (iterations_this_call >= options.iteration_limit) {
      return SolveStatus::kIterationLimit;
    }
    if ((iterations_this_call & 15) == 0 &&
        timer.seconds() > options.time_limit_seconds) {
      return SolveStatus::kTimeLimit;
    }
    if (pivots_since_refactor_ >= options.refactor_interval) {
      refactorize();
      refresh_basic_solution();
      compute_duals();
    }
    switch (dual_pivot()) {
      case PivotResult::kOptimal:
        return SolveStatus::kOptimal;
      case PivotResult::kInfeasible:
        return SolveStatus::kInfeasible;
      case PivotResult::kPivoted:
        ++iterations_this_call;
        numerical_retries = 0;
        break;
      case PivotResult::kNumerical:
        if (++numerical_retries > 3) return SolveStatus::kNumericalFailure;
        refactorize();
        refresh_basic_solution();
        compute_duals();
        break;
    }
  }
}

double DenseTableauBackend::objective_value() const {
  double obj = 0.0;
  for (Index i = 0; i < m_; ++i) obj += sf_.cost[basis_[i]] * xb_[i];
  for (Index j = 0; j < n_; ++j) {
    if (is_nonbasic(stat_[j]) && sf_.cost[j] != 0.0) {
      obj += sf_.cost[j] * nonbasic_value(j);
    }
  }
  return obj;
}

double DenseTableauBackend::column_value(Index j) const {
  if (stat_[j] == VStat::kBasic) {
    for (Index i = 0; i < m_; ++i) {
      if (basis_[i] == j) return xb_[i];
    }
    GMM_ASSERT(false, "basic column missing from basis array");
  }
  return nonbasic_value(j);
}

std::vector<double> DenseTableauBackend::structural_solution() const {
  std::vector<double> x(sf_.num_structural);
  for (Index j = 0; j < sf_.num_structural; ++j) {
    x[j] = stat_[j] == VStat::kBasic ? 0.0 : nonbasic_value(j);
  }
  for (Index i = 0; i < m_; ++i) {
    if (basis_[i] < sf_.num_structural) x[basis_[i]] = xb_[i];
  }
  return x;
}

}  // namespace gmm::lp
