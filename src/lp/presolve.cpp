#include "lp/presolve.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/assert.hpp"
#include "support/log.hpp"

namespace gmm::lp {

namespace {

constexpr double kTol = 1e-9;

struct WorkRow {
  std::vector<Term> terms;
  double lb, ub;
  bool removed = false;
};

/// Minimum and maximum possible activity of a row given variable bounds.
void activity_range(const WorkRow& row, const std::vector<double>& lb,
                    const std::vector<double>& ub, double& min_act,
                    double& max_act) {
  min_act = 0.0;
  max_act = 0.0;
  for (const Term& t : row.terms) {
    const double lo = t.coef >= 0 ? lb[t.var] : ub[t.var];
    const double hi = t.coef >= 0 ? ub[t.var] : lb[t.var];
    min_act += t.coef * lo;  // note: +-inf propagates correctly
    max_act += t.coef * hi;
  }
}

}  // namespace

PresolveResult presolve(const Model& model) {
  PresolveResult result;
  const Index n = model.num_vars();
  const Index m = model.num_rows();

  std::vector<double> lb(n), ub(n);
  std::vector<bool> fixed(n, false);
  for (Index j = 0; j < n; ++j) {
    lb[j] = model.var_lb(j);
    ub[j] = model.var_ub(j);
  }
  std::vector<WorkRow> rows(m);
  for (Index i = 0; i < m; ++i) {
    const Model::RowView r = model.row(i);
    rows[i].terms.reserve(r.size);
    for (std::size_t k = 0; k < r.size; ++k) {
      rows[i].terms.push_back({r.vars[k], r.coefs[k]});
    }
    rows[i].lb = model.row_lb(i);
    rows[i].ub = model.row_ub(i);
  }

  // Integer bound rounding.
  for (Index j = 0; j < n; ++j) {
    if (model.var_type(j) != VarType::kContinuous) {
      if (lb[j] > -kInf) lb[j] = std::ceil(lb[j] - kTol);
      if (ub[j] < kInf) ub[j] = std::floor(ub[j] + kTol);
    }
    if (lb[j] > ub[j] + kTol) {
      result.infeasible = true;
      return result;
    }
  }

  // Fixpoint loop.
  bool changed = true;
  int pass = 0;
  while (changed && pass++ < 10) {
    changed = false;

    // Substitute newly fixed variables into rows.
    for (Index j = 0; j < n; ++j) {
      if (fixed[j] || std::abs(ub[j] - lb[j]) > kTol) continue;
      fixed[j] = true;
      ++result.vars_fixed;
      changed = true;
    }
    for (WorkRow& row : rows) {
      if (row.removed) continue;
      std::size_t out = 0;
      for (const Term& t : row.terms) {
        if (fixed[t.var]) {
          const double shift = t.coef * lb[t.var];
          if (row.lb > -kInf) row.lb -= shift;
          if (row.ub < kInf) row.ub -= shift;
        } else {
          row.terms[out++] = t;
        }
      }
      row.terms.resize(out);
    }

    for (WorkRow& row : rows) {
      if (row.removed) continue;
      if (row.terms.empty()) {
        if (row.lb > kTol || row.ub < -kTol) {
          result.infeasible = true;
          return result;
        }
        row.removed = true;
        ++result.rows_removed;
        changed = true;
        continue;
      }
      double min_act, max_act;
      activity_range(row, lb, ub, min_act, max_act);
      const double scale =
          std::max({1.0, std::abs(min_act), std::abs(max_act)});
      if (min_act > row.ub + kTol * scale ||
          max_act < row.lb - kTol * scale) {
        result.infeasible = true;
        return result;
      }
      if (min_act >= row.lb - kTol * scale &&
          max_act <= row.ub + kTol * scale) {
        row.removed = true;  // redundant
        ++result.rows_removed;
        changed = true;
        continue;
      }
      if (row.terms.size() == 1) {
        // Singleton row: fold into the variable's bounds.
        const Term t = row.terms.front();
        double new_lb = lb[t.var];
        double new_ub = ub[t.var];
        if (t.coef > 0) {
          if (row.lb > -kInf) new_lb = std::max(new_lb, row.lb / t.coef);
          if (row.ub < kInf) new_ub = std::min(new_ub, row.ub / t.coef);
        } else {
          if (row.ub < kInf) new_lb = std::max(new_lb, row.ub / t.coef);
          if (row.lb > -kInf) new_ub = std::min(new_ub, row.lb / t.coef);
        }
        if (model.var_type(t.var) != VarType::kContinuous) {
          if (new_lb > -kInf) new_lb = std::ceil(new_lb - kTol);
          if (new_ub < kInf) new_ub = std::floor(new_ub + kTol);
        }
        if (new_lb > new_ub + kTol) {
          result.infeasible = true;
          return result;
        }
        lb[t.var] = new_lb;
        ub[t.var] = new_ub;
        row.removed = true;
        ++result.rows_removed;
        changed = true;
      }
    }
  }

  // Build the reduced model.
  result.var_map.assign(n, kInvalidIndex);
  result.fixed_value.assign(n, 0.0);
  for (Index j = 0; j < n; ++j) {
    if (fixed[j]) {
      result.fixed_value[j] = lb[j];
      result.objective_offset += model.obj(j) * lb[j];
    } else {
      result.var_map[j] = result.reduced.add_variable(
          lb[j], ub[j], model.obj(j), model.var_type(j), model.var_name(j));
    }
  }
  for (const WorkRow& row : rows) {
    if (row.removed) continue;
    LinExpr expr;
    expr.reserve(row.terms.size());
    for (const Term& t : row.terms) {
      expr.add(result.var_map[t.var], t.coef);
    }
    result.reduced.add_row(expr, row.lb, row.ub);
  }
  GMM_LOG(kDebug) << "presolve: " << result.vars_fixed << " vars fixed, "
                  << result.rows_removed << " rows removed ("
                  << result.reduced.num_vars() << " vars, "
                  << result.reduced.num_rows() << " rows remain)";
  return result;
}

std::vector<double> postsolve(const PresolveResult& result,
                              const std::vector<double>& reduced_x) {
  std::vector<double> x(result.var_map.size());
  for (std::size_t j = 0; j < result.var_map.size(); ++j) {
    x[j] = result.var_map[j] == kInvalidIndex
               ? result.fixed_value[j]
               : reduced_x[result.var_map[j]];
  }
  return x;
}

}  // namespace gmm::lp
