#include "lp/solver.hpp"

#include "lp/presolve.hpp"
#include "lp/standard_form.hpp"

namespace gmm::lp {

LpResult solve_lp(const Model& model, const LpOptions& options) {
  LpResult result;
  if (options.use_presolve) {
    PresolveResult pre = presolve(model);
    if (pre.infeasible) {
      result.status = SolveStatus::kInfeasible;
      return result;
    }
    if (pre.reduced.num_vars() == 0) {
      // Everything fixed by presolve; the offset is the whole objective.
      result.status = SolveStatus::kOptimal;
      result.x = postsolve(pre, {});
      result.objective = pre.objective_offset;
      return result;
    }
    const StandardForm sf = StandardForm::build(pre.reduced);
    const auto engine = make_lp_backend(options.engine, sf);
    result.status = engine->solve(options.simplex);
    result.stats = engine->stats();
    if (result.status == SolveStatus::kOptimal) {
      result.x = postsolve(pre, engine->structural_solution());
      result.objective = engine->objective_value() + pre.objective_offset;
    }
    return result;
  }

  const StandardForm sf = StandardForm::build(model);
  const auto engine = make_lp_backend(options.engine, sf);
  result.status = engine->solve(options.simplex);
  result.stats = engine->stats();
  if (result.status == SolveStatus::kOptimal) {
    result.x = engine->structural_solution();
    result.objective = engine->objective_value();
  }
  return result;
}

}  // namespace gmm::lp
