// Pluggable LP engine interface for the bounded-variable dual simplex.
//
// Everything above the LP layer — branch & bound workers, the basis
// warm-start cache, the root cut loop, pipeline retries — talks to an
// LpBackend, never to a concrete engine.  Two implementations exist:
//
//   * DenseTableauBackend (lp/simplex.hpp): the original engine with an
//     explicit dense B^{-1}; per-pivot cost O(m^2 + nnz(A)).  Kept as
//     the differential-testing oracle and the default.
//   * SparseSimplexBackend (lp/sparse_simplex.hpp): sparse revised
//     simplex — LU factorization of the basis with partial pivoting,
//     bounded product-form eta updates between periodic
//     refactorizations, and a row-wise pivot-row computation — so
//     per-pivot cost scales with the nonzeros actually touched.
//
// Both implement the SAME dual-simplex contract (see simplex.hpp's
// header comment for the rationale): any entry path is dual feasible,
// solve() runs dual pivots to primal feasibility, and a Basis snapshot
// taken on one backend loads into the other (the snapshot is pure
// status, no factorization state).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "lp/basis.hpp"
#include "lp/types.hpp"

namespace gmm::lp {

struct StandardForm;

/// Selectable LP engine implementation (MipOptions::lp_engine, the wire
/// knob "options.lp_engine", mapper_cli --lp-engine).
enum class LpEngine : std::uint8_t { kDense, kSparse };

constexpr const char* to_string(LpEngine engine) {
  switch (engine) {
    case LpEngine::kDense:
      return "dense";
    case LpEngine::kSparse:
      return "sparse";
  }
  return "?";
}

/// Parse "dense" / "sparse"; false on anything else (callers reject, not
/// clamp — an unknown engine name is a client bug, not a preference).
bool parse_lp_engine(std::string_view text, LpEngine& out);

struct SimplexOptions {
  std::int64_t iteration_limit = 200'000;
  double time_limit_seconds = kInf;  // wall clock for one solve() call
  int refactor_interval = 128;       // pivots between refactorizations
  /// Degenerate-pivot streak (zero dual step in the ratio test) after
  /// which the engine falls back to Bland's smallest-index anti-cycling
  /// rules until a real step happens.  The effective threshold is
  /// max(stall_threshold, m/2) so large models are not punished for
  /// ordinary degeneracy.
  int stall_threshold = 200;
};

struct SimplexStats {
  std::int64_t iterations = 0;        // dual pivots, cumulative
  std::int64_t refactorizations = 0;  // basis (re)factorizations, cumulative
  std::int64_t bound_flips = 0;       // cumulative (long-step ratio test)
  /// Arithmetic work proxy: inner-loop multiply-adds the engine actually
  /// performed (inverse/eta updates, pivot rows, triangular solves,
  /// factorizations).  The dense/sparse A/B compares THIS, not wall
  /// time, so "per-pivot cost scales with nonzeros" is measurable on any
  /// machine.
  std::int64_t work_units = 0;
};

/// Abstract bounded-variable dual-simplex engine over one StandardForm.
/// See SimplexEngine's original documentation for the entry contracts;
/// they bind every implementation:
///   * construction leaves the engine on the all-logical basis;
///   * set_column_bounds keeps nonbasic statuses dual feasible and must
///     be followed by refresh_basic_solution() before solve();
///   * load_basis normalizes + repairs a snapshot to dual feasibility,
///     degrading to the cold logical basis when no cheap repair exists;
///   * solve() requires a dual-feasible basis and returns kOptimal with
///     primal feasibility restored.
class LpBackend {
 public:
  virtual ~LpBackend() = default;

  // ---- bounds (branch & bound interface) ----------------------------
  virtual void set_column_bounds(Index j, double lb, double ub) = 0;
  virtual void reset_bounds() = 0;
  [[nodiscard]] virtual double column_lb(Index j) const = 0;
  [[nodiscard]] virtual double column_ub(Index j) const = 0;

  // ---- basis management ---------------------------------------------
  virtual void reset_to_logical_basis() = 0;
  virtual void load_basis(const Basis& basis) = 0;
  [[nodiscard]] virtual Basis snapshot_basis() const = 0;
  virtual void refresh_basic_solution() = 0;

  // ---- solving -------------------------------------------------------
  virtual SolveStatus solve(const SimplexOptions& options) = 0;

  // ---- solution access ------------------------------------------------
  [[nodiscard]] virtual double objective_value() const = 0;
  [[nodiscard]] virtual double column_value(Index j) const = 0;
  [[nodiscard]] virtual std::vector<double> structural_solution() const = 0;
  [[nodiscard]] virtual double reduced_cost(Index j) const = 0;
  [[nodiscard]] virtual VStat column_status(Index j) const = 0;
  [[nodiscard]] virtual const SimplexStats& stats() const = 0;
};

/// Build a backend over `sf` (which must outlive the backend).
std::unique_ptr<LpBackend> make_lp_backend(LpEngine engine,
                                           const StandardForm& sf);

namespace detail {

/// Nonbasic status that keeps a basis DUAL feasible for reduced cost `d`
/// under working bounds [lb, ub] (d >= 0 wants the lower bound, d < 0
/// the upper; one-sided bounds force the side).  Shared by both engines'
/// set_column_bounds so branch-and-bound bound paths behave identically.
VStat dual_feasible_status(double d, double lb, double ub);

/// Normalize one loaded-snapshot status against working bounds: keep the
/// snapshot's status whenever the bound it references still exists.
/// Shared by both engines' load_basis.
VStat normalize_loaded_status(VStat status, double lb, double ub);

}  // namespace detail

}  // namespace gmm::lp
