// Presolve: cheap model reductions applied before the simplex / B&B.
//
// Implemented reductions (iterated to a fixpoint):
//   * integer bound rounding (lb = ceil(lb), ub = floor(ub)),
//   * infeasibility detection from crossed bounds or row activity ranges,
//   * redundant-row elimination (activity range inside the row bounds),
//   * singleton rows folded into variable bounds,
//   * fixed variables substituted into row bounds and the objective.
//
// The reduced model keeps the surviving variables in original order;
// postsolve() re-inflates a reduced solution to the original index space.
#pragma once

#include <vector>

#include "lp/model.hpp"
#include "lp/types.hpp"

namespace gmm::lp {

struct PresolveResult {
  bool infeasible = false;
  Model reduced;
  /// Original variable -> reduced index, or kInvalidIndex when eliminated.
  std::vector<Index> var_map;
  /// Value of each eliminated (fixed) variable.
  std::vector<double> fixed_value;
  /// Objective contribution of the eliminated variables.
  double objective_offset = 0.0;
  /// Reduction counters for logging / the solver-ablation bench.
  int rows_removed = 0;
  int vars_fixed = 0;
};

PresolveResult presolve(const Model& model);

/// Expand a solution of `result.reduced` to the original variable space.
std::vector<double> postsolve(const PresolveResult& result,
                              const std::vector<double>& reduced_x);

}  // namespace gmm::lp
