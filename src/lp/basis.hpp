// Simplex basis snapshot, shared between the LP engine and branch & bound.
#pragma once

#include <cstdint>
#include <vector>

#include "lp/types.hpp"

namespace gmm::lp {

/// Status of a column in the current basis.
enum class VStat : std::uint8_t {
  kBasic,
  kAtLower,
  kAtUpper,
  kFixed,  // lb == ub; value is that bound, never enters the basis
  kFree,   // both bounds infinite; nonbasic at value 0
};

/// A restorable basis: which column is basic in each row, plus the
/// nonbasic status of every column.  ~(4m + n) bytes; branch & bound
/// snapshots one per open node to warm-start the dual simplex.
struct Basis {
  std::vector<Index> basic_in_row;  // size m
  std::vector<VStat> status;        // size n_total

  [[nodiscard]] bool empty() const { return basic_in_row.empty(); }
};

}  // namespace gmm::lp
