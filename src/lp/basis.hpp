// Simplex basis snapshot, shared between the LP engine and branch & bound.
#pragma once

#include <cstdint>
#include <vector>

#include "lp/types.hpp"

namespace gmm::lp {

/// Status of a column in the current basis.
enum class VStat : std::uint8_t {
  kBasic,
  kAtLower,
  kAtUpper,
  kFixed,  // lb == ub; value is that bound, never enters the basis
  kFree,   // both bounds infinite; nonbasic at value 0
};

/// A restorable basis: which column is basic in each row, plus the
/// nonbasic status of every column.  ~(4m + n) bytes; branch & bound
/// snapshots one per open node to warm-start the dual simplex.
struct Basis {
  std::vector<Index> basic_in_row;  // size m
  std::vector<VStat> status;        // size n_total

  [[nodiscard]] bool empty() const { return basic_in_row.empty(); }
};

/// Counters for the branch & bound's per-open-node basis snapshot cache
/// (MipOptions::max_stored_bases).  `loaded` heap pops warm-started from
/// their own parent's basis; `cold_pops` re-solved from whatever basis
/// the worker's engine last held (snapshot evicted, cache disabled, or
/// the root).  The pivot split is the cache's effectiveness measure: the
/// dual pivots the popped node's FIRST LP paid, bucketed by whether it
/// warm-started.
struct BasisCacheStats {
  std::int64_t stored = 0;   // snapshots attached to pushed open nodes
  std::int64_t loaded = 0;   // pops that restored their parent basis
  std::int64_t evicted = 0;  // snapshots dropped under the storage cap
  std::int64_t cold_pops = 0;         // pops with no snapshot available
  std::int64_t warm_pop_pivots = 0;   // dual pivots at warm-started pops
  std::int64_t cold_pop_pivots = 0;   // dual pivots at cold pops

  /// Fraction of heap pops that found their parent basis in the cache.
  [[nodiscard]] double hit_rate() const {
    const std::int64_t pops = loaded + cold_pops;
    return pops > 0 ? static_cast<double>(loaded) / static_cast<double>(pops)
                    : 0.0;
  }

  /// Mean dual pivots a heap pop paid for its first LP, warm and cold
  /// pops combined — the trajectory the cache exists to push down.
  [[nodiscard]] double pivots_per_pop() const {
    const std::int64_t pops = loaded + cold_pops;
    return pops > 0 ? static_cast<double>(warm_pop_pivots + cold_pop_pivots) /
                          static_cast<double>(pops)
                    : 0.0;
  }

  BasisCacheStats& operator+=(const BasisCacheStats& other) {
    stored += other.stored;
    loaded += other.loaded;
    evicted += other.evicted;
    cold_pops += other.cold_pops;
    warm_pop_pivots += other.warm_pop_pivots;
    cold_pop_pivots += other.cold_pop_pivots;
    return *this;
  }
};

}  // namespace gmm::lp
