// One-call LP solving facade over presolve + standard form + dual simplex.
//
// For mixed-integer models use gmm::ilp::MipSolver, which drives the same
// engine through branch & bound.  solve_lp() relaxes integrality.
#pragma once

#include <vector>

#include "lp/lp_backend.hpp"
#include "lp/model.hpp"
#include "lp/types.hpp"

namespace gmm::lp {

struct LpOptions {
  SimplexOptions simplex;
  bool use_presolve = true;
  LpEngine engine = LpEngine::kDense;
};

struct LpResult {
  SolveStatus status = SolveStatus::kNumericalFailure;
  double objective = 0.0;
  std::vector<double> x;  // original variable space
  SimplexStats stats;
};

/// Solve the LP relaxation of `model` (integrality ignored).
LpResult solve_lp(const Model& model, const LpOptions& options = {});

}  // namespace gmm::lp
