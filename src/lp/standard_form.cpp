#include "lp/standard_form.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/assert.hpp"

namespace gmm::lp {

namespace {

/// Power of two nearest to 1/magnitude (exact scaling factor).
double pow2_reciprocal(double magnitude) {
  if (magnitude <= 0.0) return 1.0;
  return std::exp2(-std::round(std::log2(magnitude)));
}

}  // namespace

StandardForm StandardForm::build(const Model& model) {
  StandardForm sf;
  sf.num_rows = model.num_rows();
  sf.num_structural = model.num_vars();

  // Count entries per column, then fill CSC (the model stores rows CSR).
  std::vector<std::size_t> counts(sf.num_structural + 1, 0);
  for (Index i = 0; i < model.num_rows(); ++i) {
    const Model::RowView r = model.row(i);
    for (std::size_t k = 0; k < r.size; ++k) ++counts[r.vars[k] + 1];
  }
  sf.col_start.resize(sf.num_structural + 1, 0);
  for (Index j = 0; j < sf.num_structural; ++j) {
    sf.col_start[j + 1] = sf.col_start[j] + counts[j + 1];
  }
  sf.row_index.resize(sf.col_start.back());
  sf.value.resize(sf.col_start.back());
  std::vector<std::size_t> fill(sf.col_start.begin(),
                                sf.col_start.end() - 1);
  for (Index i = 0; i < model.num_rows(); ++i) {
    const Model::RowView r = model.row(i);
    for (std::size_t k = 0; k < r.size; ++k) {
      const std::size_t slot = fill[r.vars[k]]++;
      sf.row_index[slot] = i;
      sf.value[slot] = r.coefs[k];
    }
  }

  // Row equilibration (see the header comment).
  std::vector<double> row_scale(sf.num_rows, 1.0);
  {
    std::vector<double> row_max(sf.num_rows, 0.0);
    for (std::size_t k = 0; k < sf.value.size(); ++k) {
      row_max[sf.row_index[k]] =
          std::max(row_max[sf.row_index[k]], std::abs(sf.value[k]));
    }
    for (Index i = 0; i < sf.num_rows; ++i) {
      row_scale[i] = pow2_reciprocal(row_max[i]);
    }
    for (std::size_t k = 0; k < sf.value.size(); ++k) {
      sf.value[k] *= row_scale[sf.row_index[k]];
    }
  }

  const Index n_total = sf.num_cols();
  sf.lb.resize(n_total);
  sf.ub.resize(n_total);
  sf.cost.assign(n_total, 0.0);
  for (Index j = 0; j < sf.num_structural; ++j) {
    sf.lb[j] = model.var_lb(j);
    sf.ub[j] = model.var_ub(j);
    sf.cost[j] = model.obj(j);
  }
  for (Index i = 0; i < sf.num_rows; ++i) {
    // s_i = -(scaled row activity), so the activity range [lb, ub] maps
    // to s in [-scale*ub, -scale*lb].
    sf.lb[sf.num_structural + i] =
        model.row_ub(i) >= kInf ? -kInf : -model.row_ub(i) * row_scale[i];
    sf.ub[sf.num_structural + i] =
        model.row_lb(i) <= -kInf ? kInf : -model.row_lb(i) * row_scale[i];
  }
  return sf;
}

}  // namespace gmm::lp
