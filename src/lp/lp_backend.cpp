#include "lp/lp_backend.hpp"

#include "lp/simplex.hpp"
#include "lp/sparse_simplex.hpp"

namespace gmm::lp {

bool parse_lp_engine(std::string_view text, LpEngine& out) {
  if (text == "dense") {
    out = LpEngine::kDense;
    return true;
  }
  if (text == "sparse") {
    out = LpEngine::kSparse;
    return true;
  }
  return false;
}

std::unique_ptr<LpBackend> make_lp_backend(LpEngine engine,
                                           const StandardForm& sf) {
  switch (engine) {
    case LpEngine::kDense:
      return std::make_unique<DenseTableauBackend>(sf);
    case LpEngine::kSparse:
      return std::make_unique<SparseSimplexBackend>(sf);
  }
  return std::make_unique<DenseTableauBackend>(sf);
}

namespace detail {

VStat dual_feasible_status(double d, double lb, double ub) {
  if (lb == ub) return VStat::kFixed;
  if (lb > -kInf && ub < kInf) {
    return d >= 0.0 ? VStat::kAtLower : VStat::kAtUpper;
  }
  if (lb > -kInf) return VStat::kAtLower;
  if (ub < kInf) return VStat::kAtUpper;
  return VStat::kFree;
}

VStat normalize_loaded_status(VStat status, double lb, double ub) {
  switch (status) {
    case VStat::kBasic:
      break;
    case VStat::kFixed:
      if (lb != ub) {
        return lb > -kInf ? VStat::kAtLower : VStat::kAtUpper;
      }
      break;
    case VStat::kAtLower:
      if (lb == ub) return VStat::kFixed;
      if (lb <= -kInf) {
        return ub < kInf ? VStat::kAtUpper : VStat::kFree;
      }
      break;
    case VStat::kAtUpper:
      if (lb == ub) return VStat::kFixed;
      if (ub >= kInf) {
        return lb > -kInf ? VStat::kAtLower : VStat::kFree;
      }
      break;
    case VStat::kFree:
      if (lb > -kInf || ub < kInf) {
        return lb > -kInf ? VStat::kAtLower : VStat::kAtUpper;
      }
      break;
  }
  return status;
}

}  // namespace detail

}  // namespace gmm::lp
