// Linear-expression building blocks.
//
// Lets formulation code read like the paper's math:
//
//   LinExpr lhs;
//   for (...) lhs += cp[d][t] * z(d, t);
//   model.add_constraint(lhs, Sense::kLessEqual, ports_of(t));
//
// Terms are kept unsorted and possibly duplicated while building; the Model
// canonicalizes (sort + merge) on insertion so construction stays O(1)
// amortized per term.
#pragma once

#include <utility>
#include <vector>

#include "lp/types.hpp"

namespace gmm::lp {

/// One `coefficient * variable` term.
struct Term {
  Index var = kInvalidIndex;
  double coef = 0.0;
};

/// A linear expression Σ coef_i · x_i (no constant part; constants belong
/// on the row's right-hand side).
class LinExpr {
 public:
  LinExpr() = default;

  LinExpr(Index var, double coef) { terms_.push_back({var, coef}); }

  LinExpr& operator+=(const Term& t) {
    terms_.push_back(t);
    return *this;
  }

  LinExpr& operator+=(const LinExpr& other) {
    terms_.insert(terms_.end(), other.terms_.begin(), other.terms_.end());
    return *this;
  }

  void add(Index var, double coef) { terms_.push_back({var, coef}); }

  [[nodiscard]] const std::vector<Term>& terms() const { return terms_; }
  [[nodiscard]] bool empty() const { return terms_.empty(); }
  void reserve(std::size_t n) { terms_.reserve(n); }

 private:
  std::vector<Term> terms_;
};

/// Build a term explicitly (Index is a builtin type, so an operator*
/// overload is not possible).
inline Term term(double coef, Index var) { return Term{var, coef}; }

}  // namespace gmm::lp
