// Sparse revised simplex — the nnz-scaling LpBackend implementation.
//
// Same bounded-variable DUAL simplex contract as DenseTableauBackend
// (see lp/simplex.hpp for the dual-first rationale and entry contracts);
// what changes is the linear algebra:
//
//   * The basis is held as a sparse LU factorization (left-looking
//     Gilbert–Peierls-style elimination with partial pivoting and a
//     dense per-column workspace), refactorized periodically.
//   * Between refactorizations, pivots append product-form eta vectors
//     (E = I + u e_r^T); the total eta fill is bounded — exceeding the
//     budget forces an early refactorization, so FTRAN/BTRAN cost can
//     never creep back toward dense.
//   * The pivot row is computed row-wise: BTRAN produces the dense row
//     rho of B^{-1}, and alpha_j is accumulated by scattering only the
//     NONZERO rows of rho through a CSR copy of A, tracking the touched
//     columns — the subsequent ratio test and reduced-cost update run
//     over that touched list only.
//   * The leaving row uses partial pricing: rotating sections of the
//     basic rows, picking the worst violation within the first section
//     that has one, instead of a full O(m) argmax every pivot.
//
// Per-pivot cost is therefore O(|L|+|U|+|etas| + touched nonzeros + m)
// — the O(m) terms are workspace scans — versus the dense engine's
// O(m^2 + nnz(A)).  SimplexStats::work_units counts the difference
// honestly (see lp_backend.hpp).
#pragma once

#include <utility>
#include <vector>

#include "lp/basis.hpp"
#include "lp/lp_backend.hpp"
#include "lp/standard_form.hpp"
#include "lp/types.hpp"

namespace gmm::lp {

class SparseSimplexBackend final : public LpBackend {
 public:
  /// The engine keeps a reference to `sf`; it must outlive the engine.
  explicit SparseSimplexBackend(const StandardForm& sf);

  // ---- bounds (branch & bound interface) ----------------------------
  void set_column_bounds(Index j, double lb, double ub) override;
  void reset_bounds() override;
  [[nodiscard]] double column_lb(Index j) const override { return lb_[j]; }
  [[nodiscard]] double column_ub(Index j) const override { return ub_[j]; }

  // ---- basis management ---------------------------------------------
  void reset_to_logical_basis() override;
  void load_basis(const Basis& basis) override;
  [[nodiscard]] Basis snapshot_basis() const override;
  void refresh_basic_solution() override;

  // ---- solving -------------------------------------------------------
  SolveStatus solve(const SimplexOptions& options) override;

  // ---- solution access ------------------------------------------------
  [[nodiscard]] double objective_value() const override;
  [[nodiscard]] double column_value(Index j) const override;
  [[nodiscard]] std::vector<double> structural_solution() const override;
  [[nodiscard]] double reduced_cost(Index j) const override { return d_[j]; }
  [[nodiscard]] VStat column_status(Index j) const override {
    return stat_[j];
  }
  [[nodiscard]] const SimplexStats& stats() const override { return stats_; }

 private:
  /// One product-form update E = I + u e_r^T appended per pivot.
  /// `u` stores (basis position, value) pairs including position r
  /// (u_r = 1/w_r - 1), so applying is one cached read plus a sweep.
  struct Eta {
    Index r;
    std::vector<std::pair<Index, double>> u;
  };

  // ---- factorization --------------------------------------------------
  /// LU-factorize the current basis with partial pivoting; repairs
  /// singular bases exactly like the dense engine (evict the dependent
  /// column, substitute the free logical of an unpivoted original row,
  /// restart).  Clears the eta file.
  void factorize();
  [[nodiscard]] bool eta_budget_exceeded() const;

  // ---- solves against B ----------------------------------------------
  /// w := B^{-1} w, where w enters scattered over ORIGINAL row space and
  /// leaves indexed by BASIS POSITION.  Applies LU then etas in order.
  void ftran_in_place(std::vector<double>& w);
  /// Core of every transposed solve: v enters in BASIS-POSITION space,
  /// has the eta transposes applied in reverse order, then U^T and L^T
  /// back-substitutions; leaves in PIVOT order (remap through prow_).
  void btran_apply(std::vector<double>& v);
  /// rho := row r of B^{-1} in ORIGINAL row space; fills `rho_rows_`
  /// with the indices of its (numerically) nonzero entries.
  void btran_row(Index r, std::vector<double>& rho);
  /// y := duals (original row space): solves B^T y = c_B.
  void btran_costs(std::vector<double>& y);

  void compute_duals();
  [[nodiscard]] double nonbasic_value(Index j) const;
  /// Scatter nonbasic activity into `out` (original row space).
  void scatter_nonbasic_rhs(std::vector<double>& out) const;

  enum class PivotResult { kOptimal, kPivoted, kInfeasible, kNumerical };
  PivotResult dual_pivot();
  [[nodiscard]] Index select_leaving_row();

  const StandardForm& sf_;
  Index m_, n_;

  std::vector<double> lb_, ub_;
  std::vector<Index> basis_;
  std::vector<VStat> stat_;
  std::vector<double> xb_;
  std::vector<double> d_;

  // CSR copy of the STRUCTURAL part of A, built once: the pivot-row
  // scatter needs rows, the CSC in sf_ serves everything else.
  std::vector<std::size_t> csr_start_;
  std::vector<Index> csr_col_;
  std::vector<double> csr_val_;

  // LU of the basis at the last factorization.  L is unit lower
  // triangular stored by pivot position with ORIGINAL row indices; U is
  // upper triangular stored by column in PIVOT indices.
  std::vector<std::vector<std::pair<Index, double>>> l_cols_;
  std::vector<std::vector<std::pair<Index, double>>> u_cols_;
  std::vector<double> u_diag_;
  std::vector<Index> prow_;  // pivot position -> original row
  std::vector<Index> pinv_;  // original row -> pivot position (or -1)
  std::int64_t lu_nnz_ = 0;

  std::vector<Eta> etas_;
  std::int64_t eta_nnz_ = 0;

  // Scratch reused across pivots.
  std::vector<double> work_m_;       // row-space / solve workspace
  std::vector<double> work_y_;       // pivot-order workspace
  std::vector<double> rho_;          // BTRAN row
  std::vector<Index> rho_rows_;      // nonzero rows of rho_
  std::vector<double> alpha_ws_;     // scattered pivot row
  std::vector<Index> touched_;       // columns with alpha != 0
  std::vector<std::uint32_t> mark_;  // touch stamps (dupe-free touched_)
  std::uint32_t stamp_ = 0;
  std::vector<double> w_;            // FTRAN of the entering column
  std::vector<double> col_ws_;       // factorization column workspace

  int pivots_since_refactor_ = 0;
  Index price_cursor_ = 0;  // partial-pricing section rotation
  int degenerate_streak_ = 0;
  int stall_threshold_ = 200;
  bool bland_mode_ = false;
  SimplexStats stats_;
};

}  // namespace gmm::lp
