// Conversion of a Model to the simplex-internal "computational form":
//
//   minimize    c' x
//   subject to  A x = 0,        A = [ A_structural | I ]
//               l <= x <= u
//
// Every model row  row_lb <= a'x <= row_ub  gains a logical variable
// s_i := -(a'x) with bounds [-row_ub, -row_lb], giving the homogeneous
// equality a'x + s_i = 0.  A zero right-hand side simplifies every basic-
// solution formula to x_B = -B^{-1} N x_N.
//
// Columns are stored sparse (CSC).  Logical columns are implicit unit
// vectors and are NOT materialized; SimplexEngine special-cases them.
//
// Rows are EQUILIBRATED on construction: each row is multiplied by the
// power of two nearest 1/max|a_ij|, which is exact in floating point and
// keeps every scaled coefficient near unit magnitude.  The memory-mapping
// models mix +-1 assignment rows with capacity rows whose coefficients
// reach ~5e5, and unscaled they stall the dual simplex in degenerate
// pivots.  Structural columns are never scaled, so variable values and
// integrality are untouched; the logical (row-activity) variables absorb
// the scale in their bounds.
#pragma once

#include <vector>

#include "lp/model.hpp"
#include "lp/types.hpp"

namespace gmm::lp {

struct StandardForm {
  Index num_rows = 0;        // m
  Index num_structural = 0;  // n (columns of A_structural)

  // CSC storage of the structural columns.
  std::vector<std::size_t> col_start;  // size num_structural + 1
  std::vector<Index> row_index;
  std::vector<double> value;

  // Bounds and costs for ALL columns (structural first, then m logicals).
  std::vector<double> lb, ub, cost;

  [[nodiscard]] Index num_cols() const { return num_structural + num_rows; }
  [[nodiscard]] bool is_logical(Index j) const { return j >= num_structural; }
  /// Row of the implicit +1 entry of logical column j.
  [[nodiscard]] Index logical_row(Index j) const { return j - num_structural; }

  /// Build from a model.  Variable bounds may be overridden later through
  /// SimplexEngine::set_column_bounds (used by branch & bound).
  static StandardForm build(const Model& model);
};

}  // namespace gmm::lp
