// Mixed-integer linear model builder.
//
// A Model is the user-facing description: variables with bounds, type and
// objective coefficient; rows with activity bounds.  Every row is stored in
// ranged form  row_lb <= a'x <= row_ub  (equalities have row_lb == row_ub),
// which is also what the simplex standard form wants.  The objective is
// always MINIMIZED; callers maximizing negate their costs.
#pragma once

#include <string>
#include <vector>

#include "lp/expr.hpp"
#include "lp/types.hpp"

namespace gmm::lp {

class Model {
 public:
  /// Add a variable; returns its index.  Bounds may be +-kInf.
  Index add_variable(double lb, double ub, double obj_coef,
                     VarType type = VarType::kContinuous,
                     std::string name = {});

  /// Convenience: binary 0/1 variable.
  Index add_binary(double obj_coef, std::string name = {}) {
    return add_variable(0.0, 1.0, obj_coef, VarType::kBinary,
                        std::move(name));
  }

  /// Add a ranged row  lb <= expr <= ub; returns the row index.
  /// Duplicate terms in `expr` are merged; zero coefficients are dropped.
  Index add_row(const LinExpr& expr, double lb, double ub,
                std::string name = {});

  /// Add a row with a single-sided or equality sense.
  Index add_constraint(const LinExpr& expr, Sense sense, double rhs,
                       std::string name = {});

  [[nodiscard]] Index num_vars() const {
    return static_cast<Index>(var_lb_.size());
  }
  [[nodiscard]] Index num_rows() const {
    return static_cast<Index>(row_lb_.size());
  }
  [[nodiscard]] std::size_t num_nonzeros() const { return coef_.size(); }

  [[nodiscard]] double var_lb(Index j) const { return var_lb_[j]; }
  [[nodiscard]] double var_ub(Index j) const { return var_ub_[j]; }
  [[nodiscard]] double obj(Index j) const { return obj_[j]; }
  [[nodiscard]] VarType var_type(Index j) const { return type_[j]; }
  [[nodiscard]] const std::string& var_name(Index j) const {
    return var_names_[j];
  }
  [[nodiscard]] double row_lb(Index i) const { return row_lb_[i]; }
  [[nodiscard]] double row_ub(Index i) const { return row_ub_[i]; }
  [[nodiscard]] const std::string& row_name(Index i) const {
    return row_names_[i];
  }

  void set_var_bounds(Index j, double lb, double ub);
  void set_obj(Index j, double coef) { obj_[j] = coef; }
  void set_var_type(Index j, VarType t) { type_[j] = t; }

  /// True iff the model has at least one integer/binary variable.
  [[nodiscard]] bool has_integers() const;

  /// Row i's terms, as parallel (var, coef) spans into the row storage.
  struct RowView {
    const Index* vars;
    const double* coefs;
    std::size_t size;
  };
  [[nodiscard]] RowView row(Index i) const;

  /// Evaluate row i's activity for a full solution vector.
  [[nodiscard]] double row_activity(Index i,
                                    const std::vector<double>& x) const;

  /// Evaluate the objective for a full solution vector.
  [[nodiscard]] double objective_value(const std::vector<double>& x) const;

  /// True iff x satisfies all bounds, rows (to `tol`) and integrality.
  [[nodiscard]] bool is_feasible(const std::vector<double>& x,
                                 double tol = 1e-6) const;

 private:
  // Variables.
  std::vector<double> var_lb_, var_ub_, obj_;
  std::vector<VarType> type_;
  std::vector<std::string> var_names_;
  // Rows in CSR-like storage.
  std::vector<double> row_lb_, row_ub_;
  std::vector<std::string> row_names_;
  std::vector<std::size_t> row_start_;  // size num_rows + 1
  std::vector<Index> col_index_;
  std::vector<double> coef_;
};

}  // namespace gmm::lp
