#include "arch/arch_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "support/string_util.hpp"

namespace gmm::arch {

namespace {

using support::parse_int;
using support::split_ws;
using support::trim;

std::string line_error(int line, const std::string& message) {
  return "line " + std::to_string(line) + ": " + message;
}

}  // namespace

BoardParseResult parse_board(std::istream& in) {
  BoardParseResult result;
  std::string line;
  int line_no = 0;
  bool in_type = false;
  BankType current;

  const auto fail = [&result](int line_number, const std::string& message) {
    result.ok = false;
    result.error = line_error(line_number, message);
    return result;
  };

  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::vector<std::string> tokens = split_ws(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens.front();

    if (keyword == "board") {
      if (tokens.size() != 2) return fail(line_no, "board expects a name");
      result.board.set_name(tokens[1]);
    } else if (keyword == "device") {
      if (in_type) return fail(line_no, "device inside banktype");
      if (result.board.num_types() > 0 &&
          !result.board.has_explicit_devices()) {
        return fail(line_no, "device directives must precede bank types");
      }
      if (tokens.size() != 2 && tokens.size() != 4) {
        return fail(line_no, "device expects: name [pins <P>]");
      }
      BoardDevice device;
      device.name = tokens[1];
      if (tokens.size() == 4) {
        if (tokens[2] != "pins" ||
            !parse_int(tokens[3], device.inter_device_pins) ||
            device.inter_device_pins < 0) {
          return fail(line_no, "device expects: name [pins <P>]");
        }
      }
      result.board.add_device(std::move(device));
    } else if (keyword == "banktype") {
      if (in_type) return fail(line_no, "nested banktype (missing 'end'?)");
      if (tokens.size() != 12) {
        return fail(line_no,
                    "banktype expects: name instances <I> ports <P> rl <RL> "
                    "wl <WL> pins <T>");
      }
      current = BankType{};
      current.name = tokens[1];
      std::int64_t value = 0;
      for (std::size_t k = 2; k + 1 < tokens.size(); k += 2) {
        if (!parse_int(tokens[k + 1], value)) {
          return fail(line_no, "bad integer '" + tokens[k + 1] + "'");
        }
        if (tokens[k] == "instances") {
          current.instances = value;
        } else if (tokens[k] == "ports") {
          current.ports = value;
        } else if (tokens[k] == "rl") {
          current.read_latency = value;
        } else if (tokens[k] == "wl") {
          current.write_latency = value;
        } else if (tokens[k] == "pins") {
          current.pins_traversed = value;
        } else {
          return fail(line_no, "unknown banktype field '" + tokens[k] + "'");
        }
      }
      in_type = true;
    } else if (keyword == "config") {
      if (!in_type) return fail(line_no, "config outside banktype");
      if (tokens.size() != 3) return fail(line_no, "config expects depth width");
      BankConfig config;
      if (!parse_int(tokens[1], config.depth) ||
          !parse_int(tokens[2], config.width)) {
        return fail(line_no, "bad config dimensions");
      }
      current.configs.push_back(config);
    } else if (keyword == "end") {
      if (!in_type) return fail(line_no, "'end' without banktype");
      const std::string problem = current.validate();
      if (!problem.empty()) return fail(line_no, problem);
      result.board.add_bank_type(current);
      in_type = false;
    } else {
      return fail(line_no, "unknown directive '" + keyword + "'");
    }
  }
  if (in_type) return fail(line_no, "unterminated banktype at end of input");
  result.ok = true;
  return result;
}

BoardParseResult parse_board_string(const std::string& text) {
  std::istringstream in(text);
  return parse_board(in);
}

namespace {

void write_bank_type(std::ostream& out, const BankType& t) {
  out << "banktype " << t.name << " instances " << t.instances << " ports "
      << t.ports << " rl " << t.read_latency << " wl " << t.write_latency
      << " pins " << t.pins_traversed << "\n";
  for (const BankConfig& c : t.configs) {
    out << "config " << c.depth << " " << c.width << "\n";
  }
  out << "end\n";
}

}  // namespace

void write_board(std::ostream& out, const Board& board) {
  // A nameless board writes no 'board' line at all (parse leaves the name
  // empty), so write -> parse round-trips exactly; the old "unnamed"
  // placeholder silently renamed such boards on the way through.
  if (!board.name().empty()) out << "board " << board.name() << "\n";
  if (!board.has_explicit_devices()) {
    // Single implicit device: the pre-device format, byte for byte.
    for (const BankType& t : board.types()) write_bank_type(out, t);
    return;
  }
  for (std::size_t k = 0; k < board.num_devices(); ++k) {
    const BoardDevice device = board.device(k);
    out << "device " << device.name;
    if (device.inter_device_pins > 0) {
      out << " pins " << device.inter_device_pins;
    }
    out << "\n";
    for (const std::size_t t : board.device_type_indices(k)) {
      write_bank_type(out, board.type(t));
    }
  }
}

std::string board_to_string(const Board& board) {
  std::ostringstream out;
  write_board(out, board);
  return out.str();
}

}  // namespace gmm::arch
