// Reconfigurable board: a named collection of bank types.
//
// The paper's Table 3 characterizes boards by three complexity totals,
// reproduced here as methods: total physical banks, total ports summed
// over all instances, and total configuration settings summed over all
// multi-configuration ports.
#pragma once

#include <string>
#include <vector>

#include "arch/memory_bank.hpp"

namespace gmm::arch {

class Board {
 public:
  Board() = default;
  explicit Board(std::string name) : name_(std::move(name)) {}

  /// Add a bank type; aborts on invalid types (see BankType::validate).
  void add_bank_type(BankType type);

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] std::size_t num_types() const { return types_.size(); }
  [[nodiscard]] const BankType& type(std::size_t t) const { return types_[t]; }
  [[nodiscard]] const std::vector<BankType>& types() const { return types_; }

  /// Total number of physical banks (Table 3 column "#banks").
  [[nodiscard]] std::int64_t total_banks() const;
  /// Total ports over all instances of all types ("#ports").
  [[nodiscard]] std::int64_t total_ports() const;
  /// Total configuration settings over all multi-configuration ports
  /// ("#configs"): sum of I_t * P_t * C_t for types with C_t > 1.
  [[nodiscard]] std::int64_t total_configs() const;
  /// Total storage capacity in bits.
  [[nodiscard]] std::int64_t total_bits() const;

 private:
  std::string name_;
  std::vector<BankType> types_;
};

}  // namespace gmm::arch
