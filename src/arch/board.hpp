// Reconfigurable board: a named collection of bank types, optionally
// grouped into several DEVICES (FPGAs) for multi-device boards.
//
// The paper's Table 3 characterizes boards by three complexity totals,
// reproduced here as methods: total physical banks, total ports summed
// over all instances, and total configuration settings summed over all
// multi-configuration ports.
//
// Devices: the paper's board has a single FPGA, and single-device boards
// keep working untouched — a Board with no explicit devices behaves as
// one implicit device holding every bank type.  Multi-FPGA boards declare
// devices up front (add_device / the `device` directive of arch_io) and
// every subsequently added bank type belongs to the most recent device.
// A cross-device transfer traverses both endpoints' `inter_device_pins`
// (0 = the device sits directly on the shared interconnect), which is
// what the shard mapper's stitch objective charges for cut conflict
// edges.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "arch/memory_bank.hpp"

namespace gmm::arch {

/// One FPGA (or other reconfigurable fabric) of a multi-device board.
struct BoardDevice {
  std::string name;
  /// Pins a transfer crosses between this device and the board-level
  /// interconnect; an inter-device transfer pays both endpoints' counts.
  std::int64_t inter_device_pins = 0;

  friend bool operator==(const BoardDevice&, const BoardDevice&) = default;
};

class Board {
 public:
  Board() = default;
  explicit Board(std::string name) : name_(std::move(name)) {}

  /// Declare a device; returns its index.  Subsequent add_bank_type calls
  /// attach their type to this device.  Devices must be declared before
  /// any bank type is added (a board is either implicit-single-device or
  /// fully device-grouped, never a mix); aborts otherwise.
  std::size_t add_device(BoardDevice device);

  /// Add a bank type; aborts on invalid types (see BankType::validate).
  /// The type belongs to the most recently declared device (or the
  /// implicit device 0 when none was declared).
  void add_bank_type(BankType type);

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] std::size_t num_types() const { return types_.size(); }
  [[nodiscard]] const BankType& type(std::size_t t) const { return types_[t]; }
  [[nodiscard]] const std::vector<BankType>& types() const { return types_; }

  // ---- devices -----------------------------------------------------------

  /// Number of devices; 1 for boards without explicit devices.
  [[nodiscard]] std::size_t num_devices() const {
    return devices_.empty() ? 1 : devices_.size();
  }
  /// True when devices were explicitly declared (even just one).
  [[nodiscard]] bool has_explicit_devices() const {
    return !devices_.empty();
  }
  [[nodiscard]] bool multi_device() const { return devices_.size() > 1; }
  /// Device k's descriptor (the implicit device is default-constructed).
  [[nodiscard]] BoardDevice device(std::size_t k) const;
  /// Device owning bank type t (always 0 on implicit boards).
  [[nodiscard]] std::size_t device_of_type(std::size_t t) const {
    return devices_.empty() ? 0 : device_of_[t];
  }
  /// Flat type indices belonging to device k, in add order.
  [[nodiscard]] std::vector<std::size_t> device_type_indices(
      std::size_t k) const;
  /// Physical banks on device k.
  [[nodiscard]] std::int64_t device_banks(std::size_t k) const;
  /// Storage capacity of device k in bits.
  [[nodiscard]] std::int64_t device_bits(std::size_t k) const;
  /// Device k as a standalone single-device board (named
  /// "<board>:<device>"); pair with device_type_indices(k) to map the
  /// view's type indices back to this board's flat indices.
  [[nodiscard]] Board device_view(std::size_t k) const;

  // ---- complexity totals -------------------------------------------------

  /// Total number of physical banks (Table 3 column "#banks").
  [[nodiscard]] std::int64_t total_banks() const;
  /// Total ports over all instances of all types ("#ports").
  [[nodiscard]] std::int64_t total_ports() const;
  /// Total configuration settings over all multi-configuration ports
  /// ("#configs"): sum of I_t * P_t * C_t for types with C_t > 1.
  [[nodiscard]] std::int64_t total_configs() const;
  /// Total storage capacity in bits.
  [[nodiscard]] std::int64_t total_bits() const;

 private:
  std::string name_;
  std::vector<BankType> types_;
  std::vector<BoardDevice> devices_;     // empty = one implicit device
  std::vector<std::size_t> device_of_;   // parallel to types_
};

/// Spread a single-device board's bank instances round-robin across
/// `num_devices` identical devices ("fpga0".."fpgaN-1", each
/// `inter_device_pins` from the interconnect): device k receives
/// floor(I/N) instances of every type plus one of the remainder, and
/// types that end up with zero instances on a device are omitted there —
/// so total banks, ports and bits are preserved exactly.  Type names are
/// device-qualified ("fpga0.<type>") so flat outputs stay unambiguous.
/// The workhorse behind `mapper_cli --devices N` and the 1/2/4-device
/// bench sweeps.  Aborts when `board` already has explicit devices or
/// num_devices < 1.
Board split_across_devices(const Board& board, int num_devices,
                           std::int64_t inter_device_pins = 2);

}  // namespace gmm::arch
