// Physical memory bank model (paper Section 3.1, Figure 1).
//
// A BankType describes a class of identical physical RAMs on the
// reconfigurable board: how many instances exist, how many ports each
// instance has, the selectable depth/width configurations of each port,
// the read/write latencies in clock cycles, and how many pins an access
// traverses between the processing unit and the bank (0 for on-chip RAM,
// 2 for a directly attached external bank, more for indirect paths).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gmm::arch {

/// One depth/width setting of a port ("4096x1", "256x16", ...).
struct BankConfig {
  std::int64_t depth = 0;  // number of words
  std::int64_t width = 0;  // bits per word

  [[nodiscard]] std::int64_t capacity_bits() const { return depth * width; }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const BankConfig&, const BankConfig&) = default;
};

/// A type of physical memory bank; all instances of a type share these
/// parameters (the paper's core modeling assumption, which is what makes
/// detailed mapping cost-neutral).
struct BankType {
  std::string name;
  std::int64_t instances = 0;      // I_t
  std::int64_t ports = 0;          // P_t
  std::vector<BankConfig> configs; // C_t entries, constant capacity
  std::int64_t read_latency = 1;   // RL_t, clock cycles
  std::int64_t write_latency = 1;  // WL_t, clock cycles
  std::int64_t pins_traversed = 0; // T_t

  /// Capacity of one instance in bits (identical for every configuration).
  [[nodiscard]] std::int64_t capacity_bits() const {
    return configs.empty() ? 0 : configs.front().capacity_bits();
  }
  [[nodiscard]] std::int64_t num_configs() const {
    return static_cast<std::int64_t>(configs.size());
  }
  [[nodiscard]] bool multi_config() const { return configs.size() > 1; }
  [[nodiscard]] bool on_chip() const { return pins_traversed == 0; }
  /// Total ports over all instances (P_t * I_t).
  [[nodiscard]] std::int64_t total_ports() const { return ports * instances; }
  /// Total storage over all instances in bits.
  [[nodiscard]] std::int64_t total_bits() const {
    return capacity_bits() * instances;
  }
  [[nodiscard]] std::int64_t max_width() const;
  [[nodiscard]] std::int64_t max_depth() const;

  /// Validate the paper's structural assumptions: at least one config,
  /// positive sizes, power-of-two depths, constant capacity across
  /// configurations.  Returns an empty string when valid, else a message.
  [[nodiscard]] std::string validate() const;
};

}  // namespace gmm::arch
