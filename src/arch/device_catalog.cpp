#include "arch/device_catalog.hpp"

#include "support/assert.hpp"

namespace gmm::arch {

namespace {

std::vector<BankConfig> virtex_configs() {
  return {{4096, 1}, {2048, 2}, {1024, 4}, {512, 8}, {256, 16}};
}

std::vector<BankConfig> altera_configs() {
  return {{2048, 1}, {1024, 2}, {512, 4}, {256, 8}, {128, 16}};
}

std::vector<DeviceInfo> build_catalog() {
  std::vector<DeviceInfo> catalog;
  const auto add = [&catalog](const std::string& family,
                              const std::string& device,
                              const std::string& ram, std::int64_t banks,
                              std::int64_t bits, std::int64_t ports,
                              std::vector<BankConfig> configs) {
    catalog.push_back(DeviceInfo{family, device, ram, banks, bits, ports,
                                 std::move(configs)});
  };

  // Xilinx Virtex / Virtex-E: dual-ported 4096-bit BlockRAMs.
  const std::string xv = "Xilinx Virtex";
  for (const auto& [device, banks] :
       std::initializer_list<std::pair<const char*, std::int64_t>>{
           {"XCV50", 8},     {"XCV100", 10},   {"XCV150", 12},
           {"XCV200", 14},   {"XCV300", 16},   {"XCV400", 20},
           {"XCV600", 24},   {"XCV800", 28},   {"XCV1000", 32},
           {"XCV400E", 40},  {"XCV600E", 72},  {"XCV1000E", 96},
           {"XCV1600E", 144}, {"XCV2000E", 160}, {"XCV2600E", 184},
           {"XCV3200E", 208}}) {
    add(xv, device, "BlockRAM", banks, 4096, 2, virtex_configs());
  }

  // Altera FLEX 10K: single-ported 2048-bit EABs.
  const std::string fl = "Altera Flex 10K";
  for (const auto& [device, banks] :
       std::initializer_list<std::pair<const char*, std::int64_t>>{
           {"EPF10K70", 9},
           {"EPF10K100", 12},
           {"EPF10K130", 16},
           {"EPF10K250A", 20}}) {
    add(fl, device, "EAB", banks, 2048, 1, altera_configs());
  }

  // Altera APEX E: dual-ported 2048-bit ESBs.
  const std::string ap = "Altera Apex E";
  for (const auto& [device, banks] :
       std::initializer_list<std::pair<const char*, std::int64_t>>{
           {"EP20K30E", 12},   {"EP20K60E", 16},   {"EP20K100E", 26},
           {"EP20K160E", 40},  {"EP20K200E", 52},  {"EP20K300E", 72},
           {"EP20K400E", 104}, {"EP20K600E", 152}, {"EP20K1000E", 160},
           {"EP20K1500E", 216}}) {
    add(ap, device, "ESB", banks, 2048, 2, altera_configs());
  }
  return catalog;
}

}  // namespace

const std::vector<DeviceInfo>& device_catalog() {
  static const std::vector<DeviceInfo> catalog = build_catalog();
  return catalog;
}

std::optional<DeviceInfo> find_device(const std::string& device) {
  for (const DeviceInfo& d : device_catalog()) {
    if (d.device == device) return d;
  }
  return std::nullopt;
}

BankType on_chip_bank_type(const DeviceInfo& device) {
  BankType type;
  type.name = device.device + "." + device.ram_name;
  type.instances = device.ram_banks;
  type.ports = device.ports;
  type.configs = device.configs;
  type.read_latency = 1;
  type.write_latency = 1;
  type.pins_traversed = 0;
  GMM_ASSERT(type.validate().empty(), "catalog device fails validation");
  return type;
}

BankType offchip_sram(std::int64_t instances, std::int64_t depth,
                      std::int64_t width) {
  BankType type;
  type.name = "sram" + std::to_string(depth) + "x" + std::to_string(width);
  type.instances = instances;
  type.ports = 1;
  type.configs = {{depth, width}};
  type.read_latency = 2;
  type.write_latency = 2;
  type.pins_traversed = 2;
  GMM_ASSERT(type.validate().empty(), "invalid off-chip SRAM parameters");
  return type;
}

BankType offchip_bulk(std::int64_t instances, std::int64_t depth,
                      std::int64_t width) {
  BankType type;
  type.name = "bulk" + std::to_string(depth) + "x" + std::to_string(width);
  type.instances = instances;
  type.ports = 1;
  type.configs = {{depth, width}};
  type.read_latency = 4;
  type.write_latency = 3;
  type.pins_traversed = 6;
  GMM_ASSERT(type.validate().empty(), "invalid off-chip bulk parameters");
  return type;
}

Board single_fpga_board(const std::string& device, int sram_banks) {
  const std::optional<DeviceInfo> info = find_device(device);
  GMM_ASSERT(info.has_value(), "unknown device name");
  Board board("board." + device);
  board.add_bank_type(on_chip_bank_type(*info));
  if (sram_banks > 0) {
    board.add_bank_type(offchip_sram(sram_banks, 32768, 32));
  }
  return board;
}

Board hierarchical_board(const std::string& device) {
  const std::optional<DeviceInfo> info = find_device(device);
  GMM_ASSERT(info.has_value(), "unknown device name");
  Board board("hier." + device);
  board.add_bank_type(on_chip_bank_type(*info));
  board.add_bank_type(offchip_sram(4, 32768, 32));
  board.add_bank_type(offchip_bulk(2, 1 << 20, 32));
  return board;
}

}  // namespace gmm::arch
