// FPGA on-chip RAM catalog (paper Table 1) plus off-chip SRAM presets and
// ready-made board descriptions.
//
// The three FPGA families the paper surveys:
//   * Xilinx Virtex BlockRAM — 4096-bit dual-ported blocks, five
//     configurations 4096x1 ... 256x16, 8 (XCV50) to 208 (XCV3200E) blocks;
//   * Altera FLEX 10K Embedded Array Blocks — 2048-bit single-ported,
//     2048x1 ... 128x16, 9 (EPF10K70) to 20 (EPF10K250A);
//   * Altera APEX E Embedded System Blocks — 2048-bit dual-ported,
//     2048x1 ... 128x16, 12 (EP20K30E) to 216 (EP20K1500E).
//
// Off-chip banks and latencies are modeling choices of this reproduction
// (the paper fixes none): on-chip RAM reads/writes in 1 cycle across 0
// pins; directly attached SRAM in 2 cycles across 2 pins; indirectly
// attached DRAM-class memory in 4/3 cycles across 6 pins.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "arch/board.hpp"

namespace gmm::arch {

/// One device row of the catalog.
struct DeviceInfo {
  std::string family;     // "Xilinx Virtex", ...
  std::string device;     // "XCV50", ...
  std::string ram_name;   // "BlockRAM", "EAB", "ESB"
  std::int64_t ram_banks; // number of on-chip RAM blocks
  std::int64_t ram_bits;  // bits per block
  std::int64_t ports;     // ports per block
  std::vector<BankConfig> configs;
};

/// Every device in the catalog, grouped by family in Table-1 order.
const std::vector<DeviceInfo>& device_catalog();

/// Find a device by name ("XCV1000", "EPF10K70", "EP20K400E", ...).
std::optional<DeviceInfo> find_device(const std::string& device);

/// The on-chip RAM of `device` as a BankType.
BankType on_chip_bank_type(const DeviceInfo& device);

// ---- off-chip presets ----------------------------------------------------

/// Directly attached synchronous SRAM: single-ported, fixed configuration,
/// 2 pins traversed, 2-cycle read / 2-cycle write.
BankType offchip_sram(std::int64_t instances, std::int64_t depth,
                      std::int64_t width);

/// Indirectly attached bulk memory: single-ported, fixed configuration,
/// 6 pins traversed, 4-cycle read / 3-cycle write.
BankType offchip_bulk(std::int64_t instances, std::int64_t depth,
                      std::int64_t width);

// ---- board presets ---------------------------------------------------------

/// A single-FPGA RC board: the device's on-chip RAM plus `sram_banks`
/// directly attached 32Kx32 SRAMs (the WildForce/WildStar style boards the
/// group's prior work targeted).
Board single_fpga_board(const std::string& device, int sram_banks = 4);

/// A richer hierarchy for examples: on-chip RAM, direct SRAM, and a bulk
/// indirect memory tier.
Board hierarchical_board(const std::string& device);

}  // namespace gmm::arch
