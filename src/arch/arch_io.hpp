// Plain-text serialization of board descriptions.
//
// Format (one directive per line, '#' comments):
//
//   board <name>
//   device <name> [pins <P>]      # starts a device (multi-FPGA boards);
//                                 # subsequent banktypes belong to it
//   banktype <name> instances <I> ports <P> rl <RL> wl <WL> pins <T>
//   config <depth> <width>        # one per configuration, after banktype
//   end                           # closes the current banktype
//
// Example:
//   board demo
//   banktype blockram instances 8 ports 2 rl 1 wl 1 pins 0
//   config 4096 1
//   config 256 16
//   end
//
// Single-device boards need no `device` directive (and write none back):
// their bank types live on one implicit device, exactly as before devices
// existed.  When `device` is used it must precede every banktype, and a
// device's `pins` is the count a transfer crosses between that device and
// the board-level interconnect (see arch::BoardDevice).
#pragma once

#include <iosfwd>
#include <string>

#include "arch/board.hpp"

namespace gmm::arch {

struct BoardParseResult {
  bool ok = false;
  std::string error;  // message with line number when !ok
  Board board;
};

/// Parse a board description from text.
BoardParseResult parse_board(std::istream& in);
BoardParseResult parse_board_string(const std::string& text);

/// Serialize; round-trips through parse_board.
void write_board(std::ostream& out, const Board& board);
std::string board_to_string(const Board& board);

}  // namespace gmm::arch
