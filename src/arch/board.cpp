#include "arch/board.hpp"

#include "support/assert.hpp"

namespace gmm::arch {

std::size_t Board::add_device(BoardDevice device) {
  GMM_ASSERT(types_.empty() || !devices_.empty(),
             "devices must be declared before bank types");
  devices_.push_back(std::move(device));
  return devices_.size() - 1;
}

void Board::add_bank_type(BankType type) {
  const std::string problem = type.validate();
  GMM_ASSERT(problem.empty(), problem.c_str());
  types_.push_back(std::move(type));
  device_of_.push_back(devices_.empty() ? 0 : devices_.size() - 1);
}

BoardDevice Board::device(std::size_t k) const {
  GMM_ASSERT(k < num_devices(), "device index out of range");
  return devices_.empty() ? BoardDevice{} : devices_[k];
}

std::vector<std::size_t> Board::device_type_indices(std::size_t k) const {
  GMM_ASSERT(k < num_devices(), "device index out of range");
  std::vector<std::size_t> indices;
  for (std::size_t t = 0; t < types_.size(); ++t) {
    if (device_of_type(t) == k) indices.push_back(t);
  }
  return indices;
}

std::int64_t Board::device_banks(std::size_t k) const {
  std::int64_t total = 0;
  for (const std::size_t t : device_type_indices(k)) {
    total += types_[t].instances;
  }
  return total;
}

std::int64_t Board::device_bits(std::size_t k) const {
  std::int64_t total = 0;
  for (const std::size_t t : device_type_indices(k)) {
    total += types_[t].total_bits();
  }
  return total;
}

Board Board::device_view(std::size_t k) const {
  const BoardDevice dev = device(k);
  Board view(dev.name.empty() ? name_ : name_ + ":" + dev.name);
  for (const std::size_t t : device_type_indices(k)) {
    view.add_bank_type(types_[t]);
  }
  return view;
}

std::int64_t Board::total_banks() const {
  std::int64_t total = 0;
  for (const BankType& t : types_) total += t.instances;
  return total;
}

std::int64_t Board::total_ports() const {
  std::int64_t total = 0;
  for (const BankType& t : types_) total += t.total_ports();
  return total;
}

std::int64_t Board::total_configs() const {
  std::int64_t total = 0;
  for (const BankType& t : types_) {
    if (t.multi_config()) total += t.total_ports() * t.num_configs();
  }
  return total;
}

std::int64_t Board::total_bits() const {
  std::int64_t total = 0;
  for (const BankType& t : types_) total += t.total_bits();
  return total;
}

Board split_across_devices(const Board& board, int num_devices,
                           std::int64_t inter_device_pins) {
  GMM_ASSERT(num_devices >= 1, "split_across_devices needs >= 1 device");
  GMM_ASSERT(!board.has_explicit_devices(),
             "split_across_devices expects a single-device board");
  Board split(board.name());
  const auto devices = static_cast<std::int64_t>(num_devices);
  for (std::int64_t k = 0; k < devices; ++k) {
    const std::string device_name = "fpga" + std::to_string(k);
    split.add_device(
        {.name = device_name, .inter_device_pins = inter_device_pins});
    for (const BankType& type : board.types()) {
      BankType share = type;
      // Device-qualified type names keep flat outputs (CSV dumps, service
      // placements) unambiguous: without the prefix, two devices' shares
      // of one type would both print "<type>, instance 0".
      share.name = device_name + "." + type.name;
      share.instances = type.instances / devices +
                        (k < type.instances % devices ? 1 : 0);
      if (share.instances > 0) split.add_bank_type(std::move(share));
    }
  }
  return split;
}

}  // namespace gmm::arch
