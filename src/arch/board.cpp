#include "arch/board.hpp"

#include "support/assert.hpp"

namespace gmm::arch {

void Board::add_bank_type(BankType type) {
  const std::string problem = type.validate();
  GMM_ASSERT(problem.empty(), problem.c_str());
  types_.push_back(std::move(type));
}

std::int64_t Board::total_banks() const {
  std::int64_t total = 0;
  for (const BankType& t : types_) total += t.instances;
  return total;
}

std::int64_t Board::total_ports() const {
  std::int64_t total = 0;
  for (const BankType& t : types_) total += t.total_ports();
  return total;
}

std::int64_t Board::total_configs() const {
  std::int64_t total = 0;
  for (const BankType& t : types_) {
    if (t.multi_config()) total += t.total_ports() * t.num_configs();
  }
  return total;
}

std::int64_t Board::total_bits() const {
  std::int64_t total = 0;
  for (const BankType& t : types_) total += t.total_bits();
  return total;
}

}  // namespace gmm::arch
