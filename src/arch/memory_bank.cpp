#include "arch/memory_bank.hpp"

#include <algorithm>

#include "support/arithmetic.hpp"

namespace gmm::arch {

std::string BankConfig::to_string() const {
  return std::to_string(depth) + "x" + std::to_string(width);
}

std::int64_t BankType::max_width() const {
  std::int64_t w = 0;
  for (const BankConfig& c : configs) w = std::max(w, c.width);
  return w;
}

std::int64_t BankType::max_depth() const {
  std::int64_t d = 0;
  for (const BankConfig& c : configs) d = std::max(d, c.depth);
  return d;
}

std::string BankType::validate() const {
  if (name.empty()) return "bank type without a name";
  if (instances <= 0) return name + ": instances must be positive";
  if (ports <= 0) return name + ": ports must be positive";
  if (configs.empty()) return name + ": at least one configuration required";
  if (read_latency < 0 || write_latency < 0) {
    return name + ": negative latency";
  }
  if (pins_traversed < 0) return name + ": negative pin count";
  const std::int64_t capacity = configs.front().capacity_bits();
  for (const BankConfig& c : configs) {
    if (c.depth <= 0 || c.width <= 0) {
      return name + ": configuration " + c.to_string() +
             " has a non-positive dimension";
    }
    if (!support::is_pow2(c.depth)) {
      return name + ": configuration " + c.to_string() +
             " depth is not a power of two (required by the pow-2 "
             "fragment rounding of consumed_ports)";
    }
    if (!support::is_pow2(c.width)) {
      return name + ": configuration " + c.to_string() +
             " width is not a power of two (required by the buddy block "
             "placement of detailed mapping)";
    }
    if (c.capacity_bits() != capacity) {
      return name + ": configuration " + c.to_string() +
             " breaks the constant-capacity assumption";
    }
  }
  for (std::size_t a = 0; a < configs.size(); ++a) {
    for (std::size_t b = a + 1; b < configs.size(); ++b) {
      if (configs[a].width == configs[b].width) {
        return name + ": duplicate configuration width " +
               std::to_string(configs[a].width);
      }
    }
  }
  return {};
}

}  // namespace gmm::arch
