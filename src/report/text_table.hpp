// Fixed-width text tables in the style of the paper, plus CSV emission.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gmm::report {

enum class Align { kLeft, kRight };

/// Column-oriented table builder: set headers once, append rows of cells.
class TextTable {
 public:
  /// One header per column; alignment defaults to right (numeric style).
  explicit TextTable(std::vector<std::string> headers);

  void set_alignment(std::size_t column, Align align);

  /// Append a row; must have exactly one cell per column.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_columns() const { return headers_.size(); }

  /// Render with a header rule, column separators and padding.
  void print(std::ostream& out) const;
  [[nodiscard]] std::string to_string() const;

  /// Emit RFC-4180-ish CSV (quotes around cells containing commas).
  void print_csv(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> align_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gmm::report
