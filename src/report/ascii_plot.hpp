// Terminal line plots (for Figure 4) and gnuplot data emission.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gmm::report {

struct Series {
  std::string label;
  std::vector<double> y;  // one value per x position
  char marker = '*';
};

struct PlotOptions {
  int width = 72;    // characters
  int height = 20;   // characters
  std::string x_label;
  std::string y_label;
  bool log_y = false;
};

/// Render series over x = 0..n-1 as an ASCII chart with a legend.
void ascii_plot(std::ostream& out, const std::vector<Series>& series,
                const PlotOptions& options = {});

/// Write a gnuplot-ready whitespace-separated data file: column 0 is the
/// x index, then one column per series (header comment with labels).
void write_gnuplot_data(std::ostream& out,
                        const std::vector<Series>& series);

}  // namespace gmm::report
