#include "report/placement_report.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

namespace gmm::report {

void write_placement_report(std::ostream& out, const design::Design& design,
                            const arch::Board& board,
                            const mapping::DetailedMapping& mapping) {
  if (!mapping.success) {
    out << "placement FAILED: " << mapping.failure << "\n";
    return;
  }

  // Bucket fragments by (type, instance), ordered.
  std::map<std::pair<std::size_t, std::int64_t>,
           std::vector<const mapping::PlacedFragment*>>
      by_instance;
  for (const mapping::PlacedFragment& f : mapping.fragments) {
    by_instance[{f.type, f.instance}].push_back(&f);
  }

  std::size_t current_type = static_cast<std::size_t>(-1);
  for (const auto& [key, fragments] : by_instance) {
    const auto& [t, instance] = key;
    const arch::BankType& type = board.type(t);
    if (t != current_type) {
      current_type = t;
      out << type.name << " (" << type.instances << " instances, "
          << type.ports << " port" << (type.ports == 1 ? "" : "s")
          << " x " << type.capacity_bits() << " bits";
      if (type.pins_traversed > 0) {
        out << ", " << type.pins_traversed << " pins";
      }
      out << ")\n";
    }

    // Distinct wiring groups count once toward port/bit usage.
    std::int64_t ports_used = 0;
    std::int64_t bits_used = 0;
    std::vector<const mapping::PlacedFragment*> heads;
    for (const mapping::PlacedFragment* f : fragments) {
      const bool duplicate = std::any_of(
          heads.begin(), heads.end(), [f](const mapping::PlacedFragment* h) {
            return h->first_port == f->first_port &&
                   h->offset_bits == f->offset_bits &&
                   h->block_bits == f->block_bits;
          });
      if (!duplicate) {
        heads.push_back(f);
        ports_used += f->ports;
        bits_used += f->block_bits;
      }
    }
    out << "  " << type.name << "[" << instance << "]  " << ports_used << "/"
        << type.ports << " ports, " << bits_used << "/"
        << type.capacity_bits() << " bits\n";

    std::vector<const mapping::PlacedFragment*> ordered(fragments);
    std::sort(ordered.begin(), ordered.end(),
              [](const mapping::PlacedFragment* a,
                 const mapping::PlacedFragment* b) {
                if (a->offset_bits != b->offset_bits) {
                  return a->offset_bits < b->offset_bits;
                }
                return a->ds < b->ds;
              });
    for (const mapping::PlacedFragment* f : ordered) {
      out << "    ";
      if (f->ports == 1) {
        out << "port  " << f->first_port << "   ";
      } else {
        out << "ports " << f->first_port << "-"
            << f->first_port + f->ports - 1 << " ";
      }
      out << " config " << type.configs[f->config_index].to_string() << "  ["
          << f->offset_bits << ".." << f->offset_bits + f->block_bits - 1
          << "]  " << design.at(f->ds).name << "  ("
          << mapping::to_string(f->kind) << ", " << f->words_covered << "x"
          << f->bits_covered << " data)\n";
    }
  }
}

std::string placement_report_to_string(
    const design::Design& design, const arch::Board& board,
    const mapping::DetailedMapping& mapping) {
  std::ostringstream out;
  write_placement_report(out, design, board, mapping);
  return out.str();
}

}  // namespace gmm::report
