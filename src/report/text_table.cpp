#include "report/text_table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace gmm::report {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)),
      align_(headers_.size(), Align::kRight) {
  GMM_ASSERT(!headers_.empty(), "table needs at least one column");
}

void TextTable::set_alignment(std::size_t column, Align align) {
  GMM_ASSERT(column < align_.size(), "alignment column out of range");
  align_[column] = align;
}

void TextTable::add_row(std::vector<std::string> cells) {
  GMM_ASSERT(cells.size() == headers_.size(),
             "row width does not match the header");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  const auto print_cell = [&](const std::string& text, std::size_t c) {
    const std::size_t pad = width[c] - text.size();
    if (align_[c] == Align::kRight) {
      out << std::string(pad, ' ') << text;
    } else {
      out << text << std::string(pad, ' ');
    }
  };
  const auto rule = [&] {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      out << (c == 0 ? "+" : "+") << std::string(width[c] + 2, '-');
    }
    out << "+\n";
  };
  rule();
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << "| ";
    print_cell(headers_[c], c);
    out << " ";
  }
  out << "|\n";
  rule();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      out << "| ";
      print_cell(row[c], c);
      out << " ";
    }
    out << "|\n";
  }
  rule();
}

std::string TextTable::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

void TextTable::print_csv(std::ostream& out) const {
  const auto emit = [&out](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ",";
      if (cells[c].find_first_of(",\"") != std::string::npos) {
        out << '"';
        for (const char ch : cells[c]) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << cells[c];
      }
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace gmm::report
