// Human-readable placement report: per bank type, a per-instance memory
// map showing port assignments and block occupancy of a detailed mapping.
//
//   blockram[0]  2/2 ports, 4096/4096 bits
//     ports 0-1  config 256x16  [   0..4095]  window      (full)
//   blockram[1]  1/2 ports, 2048/4096 bits
//     port  0    config 4096x1  [   0..2047]  coeffs      (depth-row)
//
// Shared blocks (lifetime-disjoint structures time-multiplexing one
// region) are rendered as stacked entries on the same range.
#pragma once

#include <iosfwd>

#include "arch/board.hpp"
#include "design/design.hpp"
#include "mapping/types.hpp"

namespace gmm::report {

void write_placement_report(std::ostream& out, const design::Design& design,
                            const arch::Board& board,
                            const mapping::DetailedMapping& mapping);

std::string placement_report_to_string(const design::Design& design,
                                       const arch::Board& board,
                                       const mapping::DetailedMapping& mapping);

}  // namespace gmm::report
