#include "report/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <string>

#include "support/assert.hpp"
#include "support/string_util.hpp"

namespace gmm::report {

void ascii_plot(std::ostream& out, const std::vector<Series>& series,
                const PlotOptions& options) {
  GMM_ASSERT(!series.empty(), "nothing to plot");
  std::size_t n = 0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (const Series& s : series) {
    n = std::max(n, s.y.size());
    for (const double v : s.y) {
      const double t = options.log_y ? std::log10(std::max(v, 1e-12)) : v;
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
  }
  GMM_ASSERT(n > 0, "empty series");
  if (hi <= lo) hi = lo + 1.0;

  const int width = std::max(options.width, 16);
  const int height = std::max(options.height, 4);
  std::vector<std::string> canvas(height, std::string(width, ' '));
  const auto to_row = [&](double v) {
    const double t = options.log_y ? std::log10(std::max(v, 1e-12)) : v;
    const double frac = (t - lo) / (hi - lo);
    return height - 1 -
           static_cast<int>(std::lround(frac * (height - 1)));
  };
  const auto to_col = [&](std::size_t i) {
    return n <= 1 ? 0
                  : static_cast<int>(i * static_cast<std::size_t>(width - 1) /
                                     (n - 1));
  };
  for (const Series& s : series) {
    // Connect consecutive points with interpolated markers.
    for (std::size_t i = 0; i + 1 < s.y.size(); ++i) {
      const int c0 = to_col(i), c1 = to_col(i + 1);
      const int r0 = to_row(s.y[i]), r1 = to_row(s.y[i + 1]);
      const int steps = std::max(1, c1 - c0);
      for (int k = 0; k <= steps; ++k) {
        const int c = c0 + k;
        const int r = r0 + (r1 - r0) * k / steps;
        if (r >= 0 && r < height && c >= 0 && c < width) {
          canvas[r][c] = s.marker;
        }
      }
    }
    if (s.y.size() == 1) {
      canvas[to_row(s.y[0])][to_col(0)] = s.marker;
    }
  }

  const auto value_at = [&](int row) {
    const double frac =
        static_cast<double>(height - 1 - row) / (height - 1);
    const double t = lo + frac * (hi - lo);
    return options.log_y ? std::pow(10.0, t) : t;
  };
  if (!options.y_label.empty()) out << options.y_label << "\n";
  for (int r = 0; r < height; ++r) {
    out << support::format_fixed(value_at(r), 1);
    const std::string tick = support::format_fixed(value_at(r), 1);
    for (std::size_t pad = tick.size(); pad < 10; ++pad) out << ' ';
    out << "| " << canvas[r] << "\n";
  }
  out << std::string(10, ' ') << "+" << std::string(width + 1, '-') << "\n";
  if (!options.x_label.empty()) {
    out << std::string(12, ' ') << options.x_label << "\n";
  }
  for (const Series& s : series) {
    out << "  " << s.marker << " = " << s.label << "\n";
  }
}

void write_gnuplot_data(std::ostream& out,
                        const std::vector<Series>& series) {
  out << "# x";
  for (const Series& s : series) out << "\t" << s.label;
  out << "\n";
  std::size_t n = 0;
  for (const Series& s : series) n = std::max(n, s.y.size());
  for (std::size_t i = 0; i < n; ++i) {
    out << i;
    for (const Series& s : series) {
      out << "\t";
      if (i < s.y.size()) {
        out << s.y[i];
      } else {
        out << "nan";
      }
    }
    out << "\n";
  }
}

}  // namespace gmm::report
