// Cycle-approximate memory simulator.
//
// Replays an access trace against a detailed mapping on a board and
// accounts, per access:
//   * bank latency — RL_t cycles per read, WL_t per write,
//   * pin-traversal delay — ceil(T_t / 2) extra cycles each way is the
//     modeling choice of this reproduction (the paper only states that
//     pins traversed are "inversely proportional to the clock speed"),
//   * port contention — an access to a word of structure d occupies one
//     port on EVERY instance holding a column fragment of that word's
//     row (the physical word is striped across column fragments); ports
//     are modeled as non-pipelined, busy for the access's full latency.
//
// The processing unit issues up to `issue_width` accesses per cycle, in
// program order.  The simulator reports the makespan, the latency sum
// (the quantity the paper's latency + pin-delay costs approximate), and
// contention stalls, so benches can check that mappings ranked better by
// the ILP objective really simulate faster.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/board.hpp"
#include "design/design.hpp"
#include "mapping/types.hpp"
#include "sim/access_trace.hpp"

namespace gmm::sim {

struct SimOptions {
  /// Accesses the processing unit may issue per cycle.
  int issue_width = 4;
};

struct TypeStats {
  std::int64_t accesses = 0;
  std::int64_t latency_cycles = 0;  // sum over accesses
};

struct SimReport {
  std::int64_t total_cycles = 0;    // makespan
  std::int64_t accesses = 0;
  std::int64_t latency_sum = 0;     // sum of per-access service latencies
  std::int64_t stall_cycles = 0;    // port-contention wait, summed
  std::vector<TypeStats> per_type;  // indexed by bank type

  [[nodiscard]] double average_latency() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(latency_sum) /
                               static_cast<double>(accesses);
  }
};

/// Simulate `trace` against a legal detailed mapping.
SimReport simulate(const arch::Board& board, const design::Design& design,
                   const mapping::DetailedMapping& mapping,
                   const std::vector<Access>& trace,
                   const SimOptions& options = {});

}  // namespace gmm::sim
