#include "sim/access_trace.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace gmm::sim {

namespace {

std::int64_t address_for(AddressPattern pattern, std::int64_t index,
                         std::int64_t depth, std::int64_t stride,
                         support::Rng& rng) {
  switch (pattern) {
    case AddressPattern::kSequential:
      return index % depth;
    case AddressPattern::kStrided:
      return (index * stride) % depth;
    case AddressPattern::kRandom:
      return rng.uniform_int(0, depth - 1);
  }
  GMM_ASSERT(false, "bad address pattern");
  return 0;
}

}  // namespace

std::vector<Access> generate_trace(const design::Design& design,
                                   const TraceOptions& options) {
  support::Rng rng(options.seed);

  // Per-structure access budgets, scaled to the cap.
  std::int64_t total = 0;
  std::vector<std::int64_t> reads(design.size()), writes(design.size());
  for (std::size_t d = 0; d < design.size(); ++d) {
    reads[d] = design.at(d).effective_reads();
    writes[d] = design.at(d).effective_writes();
    total += reads[d] + writes[d];
  }
  if (total > options.max_accesses && total > 0) {
    const double scale =
        static_cast<double>(options.max_accesses) / static_cast<double>(total);
    for (std::size_t d = 0; d < design.size(); ++d) {
      reads[d] = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(static_cast<double>(reads[d]) * scale));
      writes[d] = std::max<std::int64_t>(
          1,
          static_cast<std::int64_t>(static_cast<double>(writes[d]) * scale));
    }
  }

  // Emit per-structure streams (writes first touch, then reads — a
  // producer/consumer flavour), then interleave deterministically.
  std::vector<Access> trace;
  std::vector<std::int64_t> next_index(design.size(), 0);
  for (std::size_t d = 0; d < design.size(); ++d) {
    const std::int64_t depth = design.at(d).depth;
    for (std::int64_t k = 0; k < writes[d]; ++k) {
      trace.push_back(Access{static_cast<std::uint32_t>(d),
                             address_for(options.pattern, k, depth,
                                         options.stride, rng),
                             true});
    }
    for (std::int64_t k = 0; k < reads[d]; ++k) {
      trace.push_back(Access{static_cast<std::uint32_t>(d),
                             address_for(options.pattern, k, depth,
                                         options.stride, rng),
                             false});
    }
  }
  // Deterministic interleave: shuffle preserves per-structure counts while
  // mixing structures the way a scheduled datapath would.
  rng.shuffle(trace);
  return trace;
}

}  // namespace gmm::sim
