// Trace-driven footprint analysis.
//
// Paper, Section 3.2: "A footprint analysis of the memory accesses could
// tremendously help in guiding the mapping process: e.g. data segments
// that are extensively accessed should be assigned to faster and closer
// physical banks."  This closes that loop: count the per-structure reads
// and writes of an access trace and return a design whose footprints
// carry them, so the cost model weighs hot structures accordingly.
#pragma once

#include <vector>

#include "design/design.hpp"
#include "sim/access_trace.hpp"

namespace gmm::sim {

/// Copy of `design` with reads/writes replaced by the trace's counts.
/// Structures the trace never touches get footprint 1/1 (accessible but
/// cold), so the cost model deprioritizes rather than ignores them.
design::Design with_trace_footprints(const design::Design& design,
                                     const std::vector<Access>& trace);

}  // namespace gmm::sim
