// Synthetic memory-access traces.
//
// The paper's cost model scores a mapping by per-structure access counts;
// the simulator replays an explicit access stream against the placed
// memories to validate that score against cycle-level behaviour.  Since
// the original applications are unavailable, traces are synthesized per
// structure from its (reads, writes) footprint under a chosen address
// pattern, then interleaved into one processing-unit program order with a
// deterministic weighted shuffle.
#pragma once

#include <cstdint>
#include <vector>

#include "design/design.hpp"

namespace gmm::sim {

enum class AddressPattern : std::uint8_t {
  kSequential,  // streaming: 0, 1, 2, ... (line buffers, filters)
  kStrided,     // fixed stride mod depth (matrix columns, interleaving)
  kRandom,      // uniform random words (lookup tables)
};

/// One memory access of the processing unit's program order.
struct Access {
  std::uint32_t ds = 0;      // data-structure index
  std::int64_t word = 0;     // word address within the structure
  bool is_write = false;
};

struct TraceOptions {
  AddressPattern pattern = AddressPattern::kSequential;
  std::int64_t stride = 7;  // for kStrided
  /// Cap on total accesses; structure footprints are scaled down
  /// proportionally when they exceed it (keeps sim time bounded).
  std::int64_t max_accesses = 200'000;
  std::uint64_t seed = 1;
};

/// Build the interleaved access stream for a design.  Each structure
/// contributes effective_reads() reads and effective_writes() writes
/// (scaled under max_accesses), addressed by `pattern`.
std::vector<Access> generate_trace(const design::Design& design,
                                   const TraceOptions& options = {});

}  // namespace gmm::sim
