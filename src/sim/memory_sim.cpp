#include "sim/memory_sim.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "mapping/preprocess.hpp"
#include "support/arithmetic.hpp"
#include "support/assert.hpp"

namespace gmm::sim {

namespace {

/// Pin-traversal penalty in cycles (this reproduction's modeling choice;
/// see the header comment).
std::int64_t pin_penalty(std::int64_t pins) {
  return support::ceil_div(pins, 2);
}

/// Row-resolved placement of one structure: which placed fragments hold
/// each depth-row of the Figure-2 grid.
struct StructureLayout {
  std::size_t type = 0;
  std::int64_t d_alpha = 1;    // words per full row
  std::int64_t full_rows = 0;  // rows covered by full/width-column pieces
  // fragments[row] = the placed fragments striped across that row.
  std::vector<std::vector<const mapping::PlacedFragment*>> rows;
};

StructureLayout build_layout(const design::DataStructure& ds,
                             const arch::Board& board,
                             std::vector<const mapping::PlacedFragment*>
                                 fragments) {
  GMM_ASSERT(!fragments.empty(), "structure with no placed fragments");
  StructureLayout layout;
  layout.type = fragments.front()->type;
  const mapping::PlacementPlan plan =
      mapping::plan_placement(ds, board.type(layout.type));

  // Bucket placed fragments by kind, in placement order (fragments of a
  // kind are interchangeable, so a canonical order is fine).
  std::vector<const mapping::PlacedFragment*> full, wcol, drow, corner;
  for (const mapping::PlacedFragment* f : fragments) {
    switch (f->kind) {
      case mapping::FragmentKind::kFull:
        full.push_back(f);
        break;
      case mapping::FragmentKind::kWidthColumn:
        wcol.push_back(f);
        break;
      case mapping::FragmentKind::kDepthRow:
        drow.push_back(f);
        break;
      case mapping::FragmentKind::kCorner:
        corner.push_back(f);
        break;
    }
  }

  layout.d_alpha = board.type(layout.type).configs[plan.alpha].depth;
  layout.full_rows = ds.depth / layout.d_alpha;
  const std::int64_t cols =
      layout.full_rows > 0
          ? static_cast<std::int64_t>(full.size()) / layout.full_rows
          : 0;
  GMM_ASSERT(static_cast<std::int64_t>(full.size()) ==
                 layout.full_rows * cols,
             "placed full fragments do not tile the structure grid");

  const bool has_remainder_row = ds.depth % layout.d_alpha != 0;
  layout.rows.resize(layout.full_rows + (has_remainder_row ? 1 : 0));
  for (std::int64_t r = 0; r < layout.full_rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      layout.rows[r].push_back(full[r * cols + c]);
    }
    if (!wcol.empty()) layout.rows[r].push_back(wcol[r]);
  }
  if (has_remainder_row) {
    auto& last = layout.rows.back();
    for (const mapping::PlacedFragment* f : drow) last.push_back(f);
    for (const mapping::PlacedFragment* f : corner) last.push_back(f);
  }
  for (const auto& row : layout.rows) {
    GMM_ASSERT(!row.empty(), "layout row without fragments");
  }
  return layout;
}

}  // namespace

SimReport simulate(const arch::Board& board, const design::Design& design,
                   const mapping::DetailedMapping& mapping,
                   const std::vector<Access>& trace,
                   const SimOptions& options) {
  GMM_ASSERT(mapping.success, "cannot simulate a failed mapping");
  GMM_ASSERT(options.issue_width >= 1, "issue width must be positive");

  SimReport report;
  report.per_type.resize(board.num_types());

  // Group fragments per structure and resolve row layouts.
  std::vector<std::vector<const mapping::PlacedFragment*>> by_ds(
      design.size());
  for (const mapping::PlacedFragment& f : mapping.fragments) {
    by_ds[f.ds].push_back(&f);
  }
  std::vector<StructureLayout> layouts;
  layouts.reserve(design.size());
  for (std::size_t d = 0; d < design.size(); ++d) {
    layouts.push_back(build_layout(design.at(d), board, by_ds[d]));
  }

  // Port timeline: next-free cycle per (type, instance, port).
  std::vector<std::vector<std::int64_t>> port_free(board.num_types());
  for (std::size_t t = 0; t < board.num_types(); ++t) {
    port_free[t].assign(static_cast<std::size_t>(board.type(t).instances *
                                                 board.type(t).ports),
                        0);
  }

  std::int64_t issue_cycle = 0;
  int issued_this_cycle = 0;
  for (const Access& access : trace) {
    const StructureLayout& layout = layouts[access.ds];
    const arch::BankType& type = board.type(layout.type);
    const std::int64_t row =
        std::min<std::int64_t>(access.word / layout.d_alpha,
                               static_cast<std::int64_t>(layout.rows.size()) -
                                   1);

    const std::int64_t service =
        (access.is_write ? type.write_latency : type.read_latency) +
        pin_penalty(type.pins_traversed);

    // The word is striped over every fragment of its row; claim the
    // earliest-free port inside each fragment's range.
    std::int64_t start = issue_cycle;
    std::vector<std::size_t> chosen_ports;
    chosen_ports.reserve(layout.rows[row].size());
    for (const mapping::PlacedFragment* f : layout.rows[row]) {
      std::size_t best_slot = 0;
      std::int64_t best_free = std::numeric_limits<std::int64_t>::max();
      for (std::int64_t p = f->first_port; p < f->first_port + f->ports;
           ++p) {
        const std::size_t slot =
            static_cast<std::size_t>(f->instance * type.ports + p);
        if (port_free[layout.type][slot] < best_free) {
          best_free = port_free[layout.type][slot];
          best_slot = slot;
        }
      }
      chosen_ports.push_back(best_slot);
      start = std::max(start, best_free);
    }
    const std::int64_t completion = start + service;
    for (const std::size_t slot : chosen_ports) {
      port_free[layout.type][slot] = completion;  // non-pipelined port
    }

    report.accesses += 1;
    report.latency_sum += service;
    report.stall_cycles += start - issue_cycle;
    report.total_cycles = std::max(report.total_cycles, completion);
    report.per_type[layout.type].accesses += 1;
    report.per_type[layout.type].latency_cycles += service;

    if (++issued_this_cycle >= options.issue_width) {
      issued_this_cycle = 0;
      ++issue_cycle;
    }
  }
  report.total_cycles = std::max(report.total_cycles, issue_cycle);
  return report;
}

}  // namespace gmm::sim
