#include "sim/footprint.hpp"

#include "support/assert.hpp"

namespace gmm::sim {

design::Design with_trace_footprints(const design::Design& design,
                                     const std::vector<Access>& trace) {
  std::vector<std::int64_t> reads(design.size(), 0);
  std::vector<std::int64_t> writes(design.size(), 0);
  for (const Access& access : trace) {
    GMM_ASSERT(access.ds < design.size(), "trace references unknown structure");
    (access.is_write ? writes : reads)[access.ds] += 1;
  }

  design::Design result(design.name() + ".profiled");
  for (std::size_t d = 0; d < design.size(); ++d) {
    design::DataStructure ds = design.at(d);
    ds.reads = std::max<std::int64_t>(1, reads[d]);
    ds.writes = std::max<std::int64_t>(1, writes[d]);
    result.add(std::move(ds));
  }
  for (const auto& [a, b] : design.conflict_pairs()) {
    result.add_conflict(a, b);
  }
  return result;
}

}  // namespace gmm::sim
