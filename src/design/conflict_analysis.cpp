#include "design/conflict_analysis.hpp"

#include <algorithm>

namespace gmm::design {

namespace {

/// Bron-Kerbosch with pivoting on an adjacency-matrix graph.
class CliqueEnumerator {
 public:
  CliqueEnumerator(std::size_t n,
                   const std::vector<std::vector<bool>>& adjacent,
                   std::size_t max_cliques)
      : n_(n), adjacent_(adjacent), max_cliques_(max_cliques) {}

  bool run(std::vector<std::vector<std::size_t>>& out) {
    std::vector<std::size_t> r, p(n_), x;
    for (std::size_t v = 0; v < n_; ++v) p[v] = v;
    out_ = &out;
    return expand(r, p, x);
  }

 private:
  /// Returns false if the clique cap was exceeded.
  bool expand(std::vector<std::size_t>& r, std::vector<std::size_t> p,
              std::vector<std::size_t> x) {
    if (p.empty() && x.empty()) {
      if (out_->size() >= max_cliques_) return false;
      out_->push_back(r);
      return true;
    }
    // Pivot: vertex of P union X with the most neighbours in P.
    std::size_t pivot = 0;
    std::size_t best_degree = 0;
    bool have_pivot = false;
    for (const auto& set : {p, x}) {
      for (const std::size_t u : set) {
        std::size_t degree = 0;
        for (const std::size_t v : p) {
          if (adjacent_[u][v]) ++degree;
        }
        if (!have_pivot || degree > best_degree) {
          have_pivot = true;
          best_degree = degree;
          pivot = u;
        }
      }
    }
    // Candidates: P minus neighbours of the pivot.
    std::vector<std::size_t> candidates;
    for (const std::size_t v : p) {
      if (!adjacent_[pivot][v]) candidates.push_back(v);
    }
    for (const std::size_t v : candidates) {
      std::vector<std::size_t> p_next, x_next;
      for (const std::size_t u : p) {
        if (adjacent_[v][u]) p_next.push_back(u);
      }
      for (const std::size_t u : x) {
        if (adjacent_[v][u]) x_next.push_back(u);
      }
      r.push_back(v);
      if (!expand(r, std::move(p_next), std::move(x_next))) return false;
      r.pop_back();
      p.erase(std::find(p.begin(), p.end(), v));
      x.push_back(v);
    }
    return true;
  }

  std::size_t n_;
  const std::vector<std::vector<bool>>& adjacent_;
  std::size_t max_cliques_;
  std::vector<std::vector<std::size_t>>* out_ = nullptr;
};

}  // namespace

CliqueAnalysis conflict_cliques(const Design& design,
                                std::size_t max_cliques) {
  CliqueAnalysis analysis;
  const std::size_t n = design.size();
  if (n == 0) return analysis;

  std::vector<std::vector<bool>> adjacent(n, std::vector<bool>(n, false));
  for (const auto& [a, b] : design.conflict_pairs()) {
    adjacent[a][b] = true;
    adjacent[b][a] = true;
  }

  CliqueEnumerator enumerator(n, adjacent, max_cliques);
  if (!enumerator.run(analysis.cliques)) {
    // Cap hit: conservative fallback treats everything as one clique,
    // i.e. no storage overlap is assumed anywhere.
    analysis.cliques.clear();
    std::vector<std::size_t> all(n);
    for (std::size_t v = 0; v < n; ++v) all[v] = v;
    analysis.cliques.push_back(std::move(all));
    analysis.capped = true;
  }
  return analysis;
}

}  // namespace gmm::design
