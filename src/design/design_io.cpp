#include "design/design_io.hpp"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "support/string_util.hpp"

namespace gmm::design {

namespace {

using support::parse_int;
using support::split_ws;

}  // namespace

DesignParseResult parse_design(std::istream& in) {
  DesignParseResult result;
  std::map<std::string, std::size_t> by_name;
  std::string line;
  int line_no = 0;

  const auto fail = [&result](int line_number, const std::string& message) {
    result.ok = false;
    result.error =
        "line " + std::to_string(line_number) + ": " + message;
    return result;
  };

  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::vector<std::string> tokens = split_ws(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens.front();

    if (keyword == "design") {
      if (tokens.size() != 2) return fail(line_no, "design expects a name");
      result.design.set_name(tokens[1]);
    } else if (keyword == "segment") {
      if (tokens.size() < 6) {
        return fail(line_no,
                    "segment expects: name depth <D> width <W> "
                    "[reads <R>] [writes <W>] [lifetime <s> <e>]");
      }
      DataStructure ds;
      ds.name = tokens[1];
      if (by_name.contains(ds.name)) {
        return fail(line_no, "duplicate segment '" + ds.name + "'");
      }
      std::size_t k = 2;
      while (k < tokens.size()) {
        const std::string& field = tokens[k];
        std::int64_t value = 0;
        if (field == "lifetime") {
          if (k + 2 >= tokens.size()) {
            return fail(line_no, "lifetime expects start and end");
          }
          Lifetime lt;
          if (!parse_int(tokens[k + 1], lt.start) ||
              !parse_int(tokens[k + 2], lt.end) || lt.end <= lt.start) {
            return fail(line_no, "bad lifetime interval");
          }
          ds.lifetime = lt;
          k += 3;
          continue;
        }
        if (k + 1 >= tokens.size() || !parse_int(tokens[k + 1], value)) {
          return fail(line_no, "bad value for field '" + field + "'");
        }
        if (field == "depth") {
          ds.depth = value;
        } else if (field == "width") {
          ds.width = value;
        } else if (field == "reads") {
          ds.reads = value;
        } else if (field == "writes") {
          ds.writes = value;
        } else {
          return fail(line_no, "unknown segment field '" + field + "'");
        }
        k += 2;
      }
      if (ds.depth <= 0 || ds.width <= 0) {
        return fail(line_no, "segment needs positive depth and width");
      }
      // Copy the name out before the move: the assignment's right side is
      // evaluated first (C++17), which would gut ds.name.
      const std::string segment_name = ds.name;
      by_name[segment_name] = result.design.add(std::move(ds));
    } else if (keyword == "conflict") {
      if (tokens.size() != 3) {
        return fail(line_no, "conflict expects two segment names");
      }
      const auto a = by_name.find(tokens[1]);
      const auto b = by_name.find(tokens[2]);
      if (a == by_name.end() || b == by_name.end()) {
        return fail(line_no, "conflict references unknown segment");
      }
      if (a->second == b->second) {
        return fail(line_no, "segment cannot conflict with itself");
      }
      result.design.add_conflict(a->second, b->second);
    } else if (keyword == "conflicts") {
      if (tokens.size() != 2) {
        return fail(line_no, "conflicts expects 'all' or 'lifetimes'");
      }
      if (tokens[1] == "all") {
        result.design.set_all_conflicting();
      } else if (tokens[1] == "lifetimes") {
        result.design.derive_conflicts_from_lifetimes();
      } else {
        return fail(line_no, "conflicts expects 'all' or 'lifetimes'");
      }
    } else {
      return fail(line_no, "unknown directive '" + keyword + "'");
    }
  }
  result.ok = true;
  return result;
}

DesignParseResult parse_design_string(const std::string& text) {
  std::istringstream in(text);
  return parse_design(in);
}

void write_design(std::ostream& out, const Design& design) {
  // Nameless designs omit the 'design' line so the round-trip is exact
  // (see write_board for the same rule).
  if (!design.name().empty()) out << "design " << design.name() << "\n";
  for (const DataStructure& ds : design.structures()) {
    out << "segment " << ds.name << " depth " << ds.depth << " width "
        << ds.width;
    if (ds.reads > 0) out << " reads " << ds.reads;
    if (ds.writes > 0) out << " writes " << ds.writes;
    if (ds.lifetime.has_value()) {
      out << " lifetime " << ds.lifetime->start << " " << ds.lifetime->end;
    }
    out << "\n";
  }
  for (const auto& [a, b] : design.conflict_pairs()) {
    out << "conflict " << design.at(a).name << " " << design.at(b).name
        << "\n";
  }
}

std::string design_to_string(const Design& design) {
  std::ostringstream out;
  write_design(out, design);
  return out.str();
}

}  // namespace gmm::design
