// Logical data structure model (paper Section 3.2).
//
// A data structure (the paper's "data segment") is an array of `depth`
// words of `width` bits that scheduling has already formed.  The optional
// access footprint (read/write counts) refines the latency cost; the
// paper's default assumes one read and one write per word.  The optional
// lifetime interval feeds conflict derivation (Section 3.3).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace gmm::design {

/// Half-open lifetime interval [start, end) in schedule steps.
struct Lifetime {
  std::int64_t start = 0;
  std::int64_t end = 0;

  [[nodiscard]] bool overlaps(const Lifetime& other) const {
    return start < other.end && other.start < end;
  }
  friend bool operator==(const Lifetime&, const Lifetime&) = default;
};

struct DataStructure {
  std::string name;
  std::int64_t depth = 0;  // D_d: number of words
  std::int64_t width = 0;  // W_d: bits per word
  /// Access footprint; defaults (0) mean "unknown", in which case cost
  /// models fall back to the paper's reads = writes = depth assumption.
  std::int64_t reads = 0;
  std::int64_t writes = 0;
  std::optional<Lifetime> lifetime;

  [[nodiscard]] std::int64_t bits() const { return depth * width; }
  /// Effective read count for the latency cost.
  [[nodiscard]] std::int64_t effective_reads() const {
    return reads > 0 ? reads : depth;
  }
  /// Effective write count for the latency cost.
  [[nodiscard]] std::int64_t effective_writes() const {
    return writes > 0 ? writes : depth;
  }
};

}  // namespace gmm::design
