// Conflict-graph analysis for the overlap-aware capacity constraints.
//
// The paper notes that when life-cycles do not conflict the capacity
// constraint is "slightly modified to allow overlapping in the memory
// space".  We realize that as clique constraints: storage demand on a bank
// type must hold for every MAXIMAL CLIQUE of the conflict graph (each
// clique is a set of structures that must be live in storage
// simultaneously).  For lifetime-derived conflicts the graph is an
// interval graph, whose maximal cliques are few and small; for arbitrary
// conflict sets we run Bron-Kerbosch with pivoting under a cap, falling
// back to the conservative single all-structures constraint if the cap is
// hit.
#pragma once

#include <cstddef>
#include <vector>

#include "design/design.hpp"

namespace gmm::design {

struct CliqueAnalysis {
  /// Maximal cliques (vertex index lists).  With an empty conflict set
  /// this is one singleton clique per structure; with all-pairs conflicts
  /// it is a single clique of everything.
  std::vector<std::vector<std::size_t>> cliques;
  /// True when enumeration hit the cap and `cliques` was replaced by the
  /// conservative single clique containing every structure.
  bool capped = false;
};

/// Enumerate maximal cliques of the design's conflict graph.
/// `max_cliques` bounds the output before falling back to conservative.
CliqueAnalysis conflict_cliques(const Design& design,
                                std::size_t max_cliques = 4096);

}  // namespace gmm::design
