// Balanced min-cut partitioning of a design's conflict graph.
//
// The multi-device shard mapper needs the design split into one part per
// FPGA.  A conflict edge means two structures are live simultaneously —
// i.e. the design touches both in the same schedule phase — so splitting
// a conflict pair across devices implies simultaneous cross-device
// traffic.  We therefore minimize the (traffic-weighted) CUT of the
// conflict graph subject to a bit-capacity balance constraint per part:
// cut edges are exactly what the shard mapper's top-level stitch ILP
// later charges inter-device pin cost for.
//
// Algorithm (deterministic, no randomness): greedy growth — structures
// in decreasing bit-weight order, each placed on the allowed part with
// the best score of (normalized incident-edge affinity minus the most
// binding load share; ties: lightest part, then lowest index), so a
// clustered graph co-locates its clusters while a near-complete conflict
// graph, whose cut is partition-invariant, degrades to load balancing —
// followed by bounded Fiduccia–Mattheyses style refinement passes that
// relocate one structure at a time when the move strictly reduces the
// cut without violating the balance caps.
#pragma once

#include <cstdint>
#include <vector>

#include "design/design.hpp"

namespace gmm::design {

/// One additional balance dimension: a weight per structure and a hard
/// (but soft-failing, see PartitionOptions) capacity per part.
struct PartitionDimension {
  std::vector<std::int64_t> weights;     // one per structure
  std::vector<std::int64_t> capacities;  // one per part
};

struct PartitionOptions {
  /// Number of parts (devices).  1 returns the trivial partition.
  std::size_t parts = 1;
  /// Per-part weight capacity in bits; empty = uniform caps derived from
  /// `balance_tolerance`.  When given it must have `parts` entries and is
  /// treated as a hard cap per part (a structure that fits nowhere is
  /// placed on the part with the most slack — partitioning never fails;
  /// infeasibility surfaces later, in the per-device solves).
  std::vector<std::int64_t> capacities;
  /// With uniform caps, each part may hold at most
  /// (1 + balance_tolerance) * total_bits / parts.
  double balance_tolerance = 0.15;
  /// Optional extra balance dimensions beyond bits — the shard mapper
  /// passes off-chip port demand and on-chip bit demand here, with
  /// per-part caps = the per-device resource totals (bits-balance alone
  /// can pile every small structure onto one device until its scarce
  /// resources are hopelessly oversubscribed).  Each dimension carries
  /// one weight per structure and one capacity per part.  Soft like the
  /// primary caps: a structure that fits nowhere is still placed (most
  /// primary slack).
  std::vector<PartitionDimension> extra_dimensions;
  /// Refinement passes over all structures; each pass is O(E + V * parts).
  int refine_passes = 8;
};

struct PartitionResult {
  /// Part index per structure (always valid; partitioning never fails).
  std::vector<int> part_of;
  /// Total bits per part.
  std::vector<std::int64_t> part_bits;
  /// Conflict edges with endpoints in different parts, after refinement.
  std::int64_t cut_edges = 0;
  /// Sum of cut-edge traffic weights (see edge_traffic below).
  std::int64_t cut_traffic = 0;
};

/// Traffic weight of conflict edge (a, b): the smaller endpoint's
/// effective access count — the cheapest end bounds how much data the
/// simultaneous phase actually moves.  Shared by the partitioner's cut
/// objective and the shard mapper's stitch cost so both optimize the same
/// quantity.
std::int64_t edge_traffic(const Design& design, std::size_t a,
                          std::size_t b);

PartitionResult partition_design(const Design& design,
                                 const PartitionOptions& options);

}  // namespace gmm::design
