#include "design/partition.hpp"

#include <algorithm>
#include <numeric>

#include "support/assert.hpp"

namespace gmm::design {

namespace {

/// Weight of a structure for the balance constraint: its storage bits,
/// floored at 1 so zero-sized structures still occupy a slot.
std::int64_t weight_of(const Design& design, std::size_t d) {
  return std::max<std::int64_t>(design.at(d).bits(), 1);
}

struct Edge {
  std::size_t to;
  std::int64_t traffic;
};

}  // namespace

std::int64_t edge_traffic(const Design& design, std::size_t a,
                          std::size_t b) {
  const DataStructure& x = design.at(a);
  const DataStructure& y = design.at(b);
  const std::int64_t ax = x.effective_reads() + x.effective_writes();
  const std::int64_t ay = y.effective_reads() + y.effective_writes();
  return std::max<std::int64_t>(std::min(ax, ay), 1);
}

PartitionResult partition_design(const Design& design,
                                 const PartitionOptions& options) {
  const std::size_t n = design.size();
  const std::size_t parts = options.parts;
  GMM_ASSERT(parts >= 1, "partition_design needs >= 1 part");
  GMM_ASSERT(options.capacities.empty() || options.capacities.size() == parts,
             "capacities must be empty or one entry per part");

  for (const PartitionDimension& dim : options.extra_dimensions) {
    GMM_ASSERT(dim.weights.size() == n && dim.capacities.size() == parts,
               "extra dimension weights/capacities must match "
               "structures/parts");
  }

  PartitionResult result;
  result.part_of.assign(n, 0);
  result.part_bits.assign(parts, 0);
  if (n == 0) return result;
  if (parts == 1) {
    for (std::size_t d = 0; d < n; ++d) {
      result.part_bits[0] += weight_of(design, d);
    }
    return result;
  }

  // Adjacency of the conflict graph, traffic-weighted.
  std::vector<std::vector<Edge>> adjacent(n);
  for (const auto& [a, b] : design.conflict_pairs()) {
    const std::int64_t traffic = edge_traffic(design, a, b);
    adjacent[a].push_back({b, traffic});
    adjacent[b].push_back({a, traffic});
  }

  // Per-part hard caps: explicit capacities, or uniform balanced caps.
  std::vector<std::int64_t> caps = options.capacities;
  if (caps.empty()) {
    std::int64_t total = 0;
    for (std::size_t d = 0; d < n; ++d) total += weight_of(design, d);
    const double ideal =
        static_cast<double>(total) / static_cast<double>(parts);
    caps.assign(parts, static_cast<std::int64_t>(
                           ideal * (1.0 + options.balance_tolerance)) +
                           1);
  }

  // ---- greedy affinity growth -------------------------------------------
  // Heaviest structures first so the balance caps see them while there is
  // still slack everywhere; ties broken by index for determinism.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return weight_of(design, a) > weight_of(design, b);
                   });

  std::vector<int> part_of(n, -1);
  std::vector<std::int64_t> load(parts, 0);
  const std::size_t dims = options.extra_dimensions.size();
  // extra_load[k * parts + p]: dimension k's load on part p.
  std::vector<std::int64_t> extra_load(dims * parts, 0);
  std::vector<std::int64_t> affinity(parts, 0);
  const auto fits = [&](std::size_t p, std::size_t d) {
    if (load[p] + weight_of(design, d) > caps[p]) return false;
    for (std::size_t k = 0; k < dims; ++k) {
      const PartitionDimension& dim = options.extra_dimensions[k];
      if (extra_load[k * parts + p] + dim.weights[d] > dim.capacities[p]) {
        return false;
      }
    }
    return true;
  };
  const auto place = [&](std::size_t d, int p, int previous) {
    part_of[d] = p;
    load[p] += weight_of(design, d);
    if (previous >= 0) load[previous] -= weight_of(design, d);
    for (std::size_t k = 0; k < dims; ++k) {
      const std::int64_t w = options.extra_dimensions[k].weights[d];
      extra_load[k * parts + static_cast<std::size_t>(p)] += w;
      if (previous >= 0) {
        extra_load[k * parts + static_cast<std::size_t>(previous)] -= w;
      }
    }
  };
  for (const std::size_t d : order) {
    std::fill(affinity.begin(), affinity.end(), 0);
    std::int64_t incident = 0;
    for (const Edge& e : adjacent[d]) {
      if (part_of[e.to] >= 0) affinity[part_of[e.to]] += e.traffic;
      incident += e.traffic;
    }
    // Score = normalized affinity minus the most-binding load share.  On
    // a near-complete conflict graph every partition has (almost) the
    // same cut, and raw affinity would just snowball everything into one
    // part until its cap — the two normalized terms then cancel and the
    // choice degrades to load balancing, while a genuinely clustered
    // graph still sees affinity dominate.
    const auto score = [&](std::size_t p) {
      const double value = incident > 0 ? static_cast<double>(affinity[p]) /
                                              static_cast<double>(incident)
                                        : 0.0;
      double share = caps[p] > 0
                         ? static_cast<double>(load[p] + weight_of(design, d)) /
                               static_cast<double>(caps[p])
                         : 1.0;
      for (std::size_t k = 0; k < dims; ++k) {
        const PartitionDimension& dim = options.extra_dimensions[k];
        if (dim.capacities[p] > 0 && dim.weights[d] > 0) {
          share = std::max(
              share, static_cast<double>(extra_load[k * parts + p] +
                                         dim.weights[d]) /
                         static_cast<double>(dim.capacities[p]));
        }
      }
      return value - share;
    };
    int best = -1;
    for (std::size_t p = 0; p < parts; ++p) {
      if (!fits(p, d)) continue;
      if (best < 0 || score(p) > score(best) ||
          (score(p) == score(best) && load[p] < load[best])) {
        best = static_cast<int>(p);
      }
    }
    if (best < 0) {
      // Fits nowhere: take the part with the most remaining slack; the
      // per-device solve will report infeasibility if it truly cannot fit.
      for (std::size_t p = 0; p < parts; ++p) {
        if (best < 0 || caps[p] - load[p] > caps[best] - load[best]) {
          best = static_cast<int>(p);
        }
      }
    }
    place(d, best, -1);
  }

  // ---- FM-style refinement ----------------------------------------------
  // Relocate single structures while a move strictly reduces the
  // traffic-weighted cut and respects the caps.  Index order + first
  // improvement keeps it deterministic.
  for (int pass = 0; pass < options.refine_passes; ++pass) {
    bool moved = false;
    for (std::size_t d = 0; d < n; ++d) {
      std::fill(affinity.begin(), affinity.end(), 0);
      for (const Edge& e : adjacent[d]) {
        affinity[part_of[e.to]] += e.traffic;
      }
      const int cur = part_of[d];
      int best = cur;
      for (std::size_t p = 0; p < parts; ++p) {
        if (static_cast<int>(p) == cur || !fits(p, d)) continue;
        const std::int64_t gain = affinity[p] - affinity[best];
        if (gain > 0 ||
            (gain == 0 && best != cur && load[p] < load[best])) {
          best = static_cast<int>(p);
        }
      }
      if (best != cur && affinity[best] > affinity[cur]) {
        place(d, best, cur);
        moved = true;
      }
    }
    if (!moved) break;
  }

  result.part_of = std::move(part_of);
  result.part_bits = std::move(load);
  for (const auto& [a, b] : design.conflict_pairs()) {
    if (result.part_of[a] != result.part_of[b]) {
      ++result.cut_edges;
      result.cut_traffic += edge_traffic(design, a, b);
    }
  }
  return result;
}

}  // namespace gmm::design
