#include "design/design.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace gmm::design {

std::size_t Design::add(DataStructure ds) {
  GMM_ASSERT(ds.depth > 0 && ds.width > 0,
             "data structure dimensions must be positive");
  structures_.push_back(std::move(ds));
  return structures_.size() - 1;
}

void Design::add_conflict(std::size_t a, std::size_t b) {
  GMM_ASSERT(a < size() && b < size() && a != b,
             "conflict references unknown structures");
  if (a > b) std::swap(a, b);
  if (!conflicts(a, b)) pairs_.emplace_back(a, b);
}

void Design::set_all_conflicting() {
  pairs_.clear();
  for (std::size_t a = 0; a < size(); ++a) {
    for (std::size_t b = a + 1; b < size(); ++b) pairs_.emplace_back(a, b);
  }
}

void Design::derive_conflicts_from_lifetimes() {
  pairs_.clear();
  for (std::size_t a = 0; a < size(); ++a) {
    for (std::size_t b = a + 1; b < size(); ++b) {
      const auto& la = structures_[a].lifetime;
      const auto& lb = structures_[b].lifetime;
      // Unknown lifetimes conflict with everything (safe default).
      if (!la.has_value() || !lb.has_value() || la->overlaps(*lb)) {
        pairs_.emplace_back(a, b);
      }
    }
  }
}

bool Design::conflicts(std::size_t a, std::size_t b) const {
  if (a > b) std::swap(a, b);
  return std::find(pairs_.begin(), pairs_.end(), std::make_pair(a, b)) !=
         pairs_.end();
}

std::int64_t Design::total_bits() const {
  std::int64_t total = 0;
  for (const DataStructure& ds : structures_) total += ds.bits();
  return total;
}

}  // namespace gmm::design
