// Plain-text serialization of designs.
//
// Format (one directive per line, '#' comments):
//
//   design <name>
//   segment <name> depth <D> width <W> [reads <R>] [writes <W>]
//           [lifetime <start> <end>]
//   conflict <name_a> <name_b>
//   conflicts all               # every pair conflicts
//   conflicts lifetimes         # derive from lifetime intervals
#pragma once

#include <iosfwd>
#include <string>

#include "design/design.hpp"

namespace gmm::design {

struct DesignParseResult {
  bool ok = false;
  std::string error;
  Design design;
};

DesignParseResult parse_design(std::istream& in);
DesignParseResult parse_design_string(const std::string& text);

void write_design(std::ostream& out, const Design& design);
std::string design_to_string(const Design& design);

}  // namespace gmm::design
