// A design: the set of data structures to map, plus the conflict relation
// (pairs whose lifetimes overlap and therefore cannot share storage).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "design/data_structure.hpp"

namespace gmm::design {

class Design {
 public:
  Design() = default;
  explicit Design(std::string name) : name_(std::move(name)) {}

  /// Add a structure; returns its index.
  std::size_t add(DataStructure ds);

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] std::size_t size() const { return structures_.size(); }
  [[nodiscard]] const DataStructure& at(std::size_t d) const {
    return structures_[d];
  }
  [[nodiscard]] const std::vector<DataStructure>& structures() const {
    return structures_;
  }

  /// Declare that structures a and b may NOT share storage.
  void add_conflict(std::size_t a, std::size_t b);
  /// Declare every pair conflicting (no storage overlap anywhere); this is
  /// the conservative default the Table-3 experiments use.
  void set_all_conflicting();
  /// Derive the conflict set from the structures' lifetime intervals;
  /// structures without a lifetime conflict with everything.
  void derive_conflicts_from_lifetimes();

  [[nodiscard]] bool conflicts(std::size_t a, std::size_t b) const;
  [[nodiscard]] const std::vector<std::pair<std::size_t, std::size_t>>&
  conflict_pairs() const {
    return pairs_;
  }
  [[nodiscard]] std::size_t num_conflicts() const { return pairs_.size(); }

  /// Total bits over all structures.
  [[nodiscard]] std::int64_t total_bits() const;

 private:
  std::string name_;
  std::vector<DataStructure> structures_;
  std::vector<std::pair<std::size_t, std::size_t>> pairs_;  // a < b
};

}  // namespace gmm::design
