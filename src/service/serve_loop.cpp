#include "service/serve_loop.hpp"

#include <istream>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>

#include "service/protocol.hpp"
#include "support/log.hpp"
#include "support/string_util.hpp"

namespace gmm::service {

int run_serve_loop(std::istream& in, std::ostream& out,
                   std::vector<arch::Board> boards,
                   const ServiceOptions& options) {
  std::mutex write_mutex;
  const auto sink = [&out, &write_mutex](const Response& response) {
    const std::scoped_lock lock(write_mutex);
    out << response.to_line() << '\n';
    out.flush();  // jsonl consumers read line-by-line; never buffer
  };

  MappingService service(std::move(boards), options, sink);
  GMM_LOG(kInfo) << "service: serving (workers=" << options.workers
                 << ", max_pending=" << options.max_pending << ")";

  std::string line;
  bool shutdown_requested = false;
  while (!shutdown_requested && std::getline(in, line)) {
    if (support::trim(line).empty()) continue;
    const Request request = parse_request_line(line);
    if (request.method == Method::kShutdown) {
      // Stop reading BEFORE draining so nothing new is admitted, then let
      // the service ack once every in-flight response is on the wire.
      shutdown_requested = true;
      service.drain();
    }
    service.handle(request);
  }
  if (!shutdown_requested) service.drain();  // EOF: same graceful drain
  const ServiceStats stats = service.stats();
  GMM_LOG(kInfo) << "service: drained (accepted=" << stats.accepted
                 << ", completed=" << stats.completed
                 << ", rejected=" << stats.rejected
                 << ", cancelled=" << stats.cancelled
                 << ", timed_out=" << stats.timed_out << ")";
  return 0;
}

}  // namespace gmm::service
