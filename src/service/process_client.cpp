#include "service/process_client.hpp"

#ifndef _WIN32

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "service/socket_server.hpp"
#include "support/rng.hpp"

namespace gmm::service {

namespace {

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

ProcessClient::~ProcessClient() {
  kill_child();
  close_fd(to_child_);
  close_fd(from_child_);
}

bool ProcessClient::start(const std::string& exe,
                          const std::vector<std::string>& args) {
  int in_pipe[2];   // parent -> child stdin
  int out_pipe[2];  // child stdout -> parent
  if (::pipe(in_pipe) != 0) return false;
  if (::pipe(out_pipe) != 0) {
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    return false;
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    for (const int fd : {in_pipe[0], in_pipe[1], out_pipe[0], out_pipe[1]}) {
      ::close(fd);
    }
    return false;
  }
  if (pid == 0) {
    // Child: wire the pipes to stdio and exec.  stderr passes through.
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    for (const int fd : {in_pipe[0], in_pipe[1], out_pipe[0], out_pipe[1]}) {
      ::close(fd);
    }
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(exe.c_str()));
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(exe.c_str(), argv.data());
    ::_exit(127);  // exec failed
  }

  // Parent.
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  to_child_ = in_pipe[1];
  from_child_ = out_pipe[0];
  pid_ = pid;
  // A dead child must surface as a failed send_line (EPIPE), not kill
  // the test/tool with SIGPIPE.  Only override the DEFAULT disposition:
  // a host program that installed its own handler keeps it (see the
  // header's note on this process-global effect).
  struct sigaction current = {};
  if (::sigaction(SIGPIPE, nullptr, &current) == 0 &&
      current.sa_handler == SIG_DFL) {
    ::signal(SIGPIPE, SIG_IGN);
  }
  return true;
}

bool ProcessClient::connect(const std::string& spec, double timeout_seconds) {
  if (to_child_ >= 0 || from_child_ >= 0) return false;  // already wired
  const SocketEndpoint endpoint = parse_socket_endpoint(spec);
  if (!endpoint.ok) return false;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  // Bounded exponential backoff with jitter between attempts: doubling
  // from 2ms up to a 100ms cap, each sleep drawn uniformly from
  // [base/2, base] so a storm of clients racing one server's bind does
  // not retry in lockstep.
  support::Rng rng(static_cast<std::uint64_t>(::getpid()) ^
                   static_cast<std::uint64_t>(
                       std::chrono::steady_clock::now().time_since_epoch()
                           .count()));
  double backoff_ms = 2.0;
  while (true) {
    std::string error;
    const int fd = connect_socket_endpoint(endpoint, error);
    if (fd >= 0) {
      to_child_ = fd;
      from_child_ = ::dup(fd);  // separate fds, one stream: close_stdin
                                // may release the write side alone
      if (from_child_ < 0) {
        ::close(fd);
        to_child_ = -1;
        return false;
      }
      socket_ = true;
      return true;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const double jittered =
        backoff_ms / 2.0 + rng.uniform_real() * (backoff_ms / 2.0);
    const double sleep_ms = std::min(
        jittered,
        std::chrono::duration<double, std::milli>(deadline - now).count());
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(std::max(sleep_ms, 0.5)));
    backoff_ms = std::min(backoff_ms * 2.0, 100.0);
  }
}

bool ProcessClient::send_line(const std::string& line) {
  if (to_child_ < 0) return false;
  std::string data = line;
  data.push_back('\n');
  std::size_t written = 0;
  while (written < data.size()) {
    // MSG_NOSIGNAL on the socket path: a dropped connection must fail
    // the send, not raise SIGPIPE (pipe mode relies on the SIG_IGN set
    // in start()).
    const ssize_t n =
        socket_ ? ::send(to_child_, data.data() + written,
                         data.size() - written, MSG_NOSIGNAL)
                : ::write(to_child_, data.data() + written,
                          data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> ProcessClient::read_line(double timeout_seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    if (from_child_ < 0) return std::nullopt;
    const auto remaining = deadline - std::chrono::steady_clock::now();
    const auto remaining_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
            .count();
    if (remaining_ms <= 0) return std::nullopt;
    struct pollfd pfd = {};
    pfd.fd = from_child_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining_ms));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (ready == 0) return std::nullopt;  // timeout
    char chunk[4096];
    const ssize_t n = ::read(from_child_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return std::nullopt;
    }
    if (n == 0) {  // EOF: drain whatever is left as a final partial line
      close_fd(from_child_);
      if (!buffer_.empty()) {
        std::string line = std::move(buffer_);
        buffer_.clear();
        return line;
      }
      return std::nullopt;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void ProcessClient::close_stdin() {
  // In connect() mode the write side is half of one socket: shut it down
  // so the server sees EOF (its graceful-linger trigger) while our read
  // side (a dup) keeps delivering in-flight responses.
  if (socket_ && to_child_ >= 0) ::shutdown(to_child_, SHUT_WR);
  close_fd(to_child_);
}

int ProcessClient::wait_exit(double timeout_seconds) {
  if (pid_ <= 0) return -1;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  while (true) {
    int status = 0;
    const pid_t done = ::waitpid(static_cast<pid_t>(pid_), &status, WNOHANG);
    if (done == static_cast<pid_t>(pid_)) {
      pid_ = -1;
      if (WIFEXITED(status)) return WEXITSTATUS(status);
      return -1;
    }
    if (done < 0) {
      pid_ = -1;
      return -1;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      kill_child();
      return -1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void ProcessClient::kill_child() {
  if (pid_ <= 0) return;
  ::kill(static_cast<pid_t>(pid_), SIGKILL);
  int status = 0;
  ::waitpid(static_cast<pid_t>(pid_), &status, 0);
  pid_ = -1;
}

}  // namespace gmm::service

#else  // _WIN32

namespace gmm::service {

ProcessClient::~ProcessClient() = default;
bool ProcessClient::start(const std::string&,
                          const std::vector<std::string>&) {
  return false;
}
bool ProcessClient::connect(const std::string&, double) { return false; }
bool ProcessClient::send_line(const std::string&) { return false; }
std::optional<std::string> ProcessClient::read_line(double) {
  return std::nullopt;
}
void ProcessClient::close_stdin() {}
int ProcessClient::wait_exit(double) { return -1; }
void ProcessClient::kill_child() {}

}  // namespace gmm::service

#endif
