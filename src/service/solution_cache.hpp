// Fingerprint-keyed solution cache for the mapping service.
//
// Serving workloads repeat themselves: CAD flows re-submit the same
// design/board pair while iterating on unrelated parts of a system, and
// profile-driven flows re-submit the same STRUCTURE with updated traffic
// counts.  Both patterns pay a full branch & bound per request unless the
// service remembers what it already proved.  This cache closes that gap
// with two lookups:
//
//   * EXACT HIT — a canonical 128-bit fingerprint over everything that
//     can influence the mapping objective: per-structure parameters
//     (depth, width, effective reads/writes — names excluded), the
//     conflict graph (via Weisfeiler-Leman refinement, so the key is
//     invariant under structure reordering and renaming), the board's
//     bank types and device grouping (invariant under type reordering;
//     config LISTS hash in order, because config_index and the placement
//     planner's config choice depend on list position), the formulation,
//     and the effective relative gap.  A hit replays the cached mapping
//     through the canonical permutations back into the request's own
//     index space — and is then RE-VERIFIED (validate_mapping + a cost
//     recompute against the cached objective) before being served, so a
//     fingerprint collision degrades to a miss, never a wrong answer.
//
//   * NEAR MISS — a second, traffic-excluded STRUCTURAL fingerprint
//     indexes entries by shape alone.  A request that matches an entry
//     structurally but not exactly changed only access counts; the
//     service then runs mapping::remap seeded with the cached assignment
//     (MIP start) and pins the structures whose full parameter hashes
//     still match, instead of solving cold.  Placement feasibility never
//     depends on traffic, so the warm start is always valid.
//
// Only PROVED results are inserted (solve status kOptimal with B&B stop
// reason kOptimal): node/time budgets then never need to be part of the
// key, and a replayed answer is exactly what a fresh solve would return.
// Entries live in an LRU list under an internal mutex; capacity 0
// disables the cache entirely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "arch/board.hpp"
#include "design/design.hpp"
#include "mapping/types.hpp"

namespace gmm::service {

/// 128-bit cache key; two independently mixed 64-bit lanes keep the
/// collision probability negligible at serving scale (and a collision is
/// caught by replay re-verification anyway).
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
  friend auto operator<=>(const Fingerprint&, const Fingerprint&) = default;
};

/// The fingerprints and canonical orderings of one map request.
struct RequestFingerprint {
  /// Everything objective-relevant (see file comment) — the exact-hit key.
  Fingerprint full;
  /// `full` minus the per-structure traffic (effective reads/writes) —
  /// the near-miss index.  Depth/width/lifetime-derived conflicts stay.
  Fingerprint structural;
  /// Canonical rank of each structure (a permutation of [0, size)),
  /// ordered by traffic-EXCLUDED refinement hashes so the ranks of
  /// traffic-mutated resubmissions still line up with the cached entry.
  std::vector<std::size_t> structure_rank;
  /// Canonical rank of each flat bank-type index.
  std::vector<std::size_t> type_rank;
  /// Per-structure FULL parameter hash (traffic included), indexed by
  /// canonical rank — the near-miss path pins exactly the ranks whose
  /// hashes are unchanged.
  std::vector<std::uint64_t> param_hash_by_rank;
};

/// Formulation tag folded into both fingerprints.  Sharded solves are
/// never cached (their objective includes a stitch term the replay
/// verifier cannot recompute), so only the first two appear in practice.
enum class CachedFormulation : int {
  kGlobal = 0,
  kComplete = 1,
};

/// Compute both fingerprints and the canonical orderings for a request.
/// `rel_gap` must be the EFFECTIVE gap the solve will run with (knob
/// default already applied) — two requests at different gaps are
/// different quality contracts and must never share an entry.
RequestFingerprint fingerprint_request(const design::Design& design,
                                       const arch::Board& board,
                                       CachedFormulation formulation,
                                       double rel_gap);

/// One cached proved mapping, stored entirely in CANONICAL index space
/// (structure ranks / type ranks) so any permutation of the same request
/// replays it.
struct CacheEntry {
  Fingerprint key;         // full fingerprint
  Fingerprint structural;  // traffic-excluded fingerprint
  std::size_t num_structures = 0;
  std::size_t num_types = 0;
  /// Canonical structure rank -> canonical type rank.
  std::vector<int> type_of_by_rank;
  /// Placed fragments with ds/type rewritten to canonical ranks.
  std::vector<mapping::PlacedFragment> fragments_by_rank;
  /// Full per-structure parameter hashes by rank (for near-miss pinning).
  std::vector<std::uint64_t> param_hash_by_rank;
  double objective = 0.0;
  int retries = 0;
  std::string solve_status;  // wire "solve_status" of the original solve
};

/// Thread-safe LRU store.  Lookups copy the entry out (a reference could
/// be evicted by a concurrent insert while the caller replays it).
class SolutionCache {
 public:
  /// `capacity` = maximum entries; 0 disables every operation.
  explicit SolutionCache(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] bool enabled() const { return capacity_ > 0; }

  /// Exact lookup; refreshes LRU recency on hit.
  [[nodiscard]] std::optional<CacheEntry> find(const Fingerprint& key);

  /// Near-miss lookup: the most recently used entry with this structural
  /// fingerprint.  Does NOT refresh recency (the caller is about to
  /// re-solve and insert the fresh result under its own key).
  [[nodiscard]] std::optional<CacheEntry> find_structural(
      const Fingerprint& structural);

  /// Insert (or refresh) an entry; evicts the least recently used entry
  /// beyond capacity.
  void insert(CacheEntry entry);

  /// Drop an entry — the verify-fail path poisons the colliding key so
  /// it cannot fail again on every future request.
  void erase(const Fingerprint& key);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::int64_t insertions() const;
  [[nodiscard]] std::int64_t evictions() const;

 private:
  using Lru = std::list<CacheEntry>;

  void unindex_structural(const Lru::iterator it);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  Lru lru_;  // front = most recently used
  std::map<Fingerprint, Lru::iterator> index_;
  /// structural fingerprint -> full key of the most recent entry with it.
  std::map<Fingerprint, Fingerprint> structural_index_;
  std::int64_t insertions_ = 0;
  std::int64_t evictions_ = 0;
};

}  // namespace gmm::service
