// Multi-client socket front end for the jsonl mapping service.
//
// run_socket_server() puts a poll(2)-driven accept loop in front of the
// same MappingService the stdin/stdout pipe mode uses: Unix-domain
// (`--listen /path/sock`) or TCP (`--listen host:port`) stream sockets,
// any number of concurrent clients, one jsonl protocol session per
// connection.  Design:
//
//   * NON-BLOCKING I/O everywhere: per-connection read reassembly
//     (LineSplitter — jsonl lines arrive split at arbitrary read()
//     boundaries) and per-connection write buffers with partial-write
//     carry, so one slow or bursty client never stalls the others;
//   * FAIR DISPATCH: each loop iteration round-robins one buffered
//     request per connection (rotating start), so a client that batched
//     100 requests cannot starve the client that sent 1;
//   * RESPONSE ROUTING: map requests are answered asynchronously by
//     MappingService workers; the server routes each terminal response
//     back to its connection by request id (ids are server-global:
//     a duplicate id across connections is rejected exactly like a
//     duplicate on one connection).  Worker responses are handed to the
//     event loop through a queue + self-pipe wakeup, never written from
//     a worker thread;
//   * HALF-CLOSE LINGER: a client may send its batch and shutdown(WR);
//     the connection stays alive until every in-flight request has
//     answered, preserving the pipe mode's write-EOF-then-read idiom.
//     A fully dropped connection (POLLHUP/POLLERR or a failed write)
//     cancels its in-flight requests and drops their responses
//     (counted: transport.responses_dropped);
//   * PER-CLIENT ACCOUNTING: requests, bytes in/out, and shed
//     (admission-rejected) counts per connection, logged at disconnect
//     and folded into the `stats` response's "transport" object;
//   * SHUTDOWN: a "shutdown" request from any client stops accepting,
//     drains the service, flushes every connection, and exits 0 — the
//     same drain contract as the pipe mode.
//
// POSIX-only, like ProcessClient; on other platforms run_socket_server
// returns an error exit code.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "arch/board.hpp"
#include "service/mapping_service.hpp"

namespace gmm::service {

/// Incremental jsonl reassembly: feed() arbitrary byte chunks, pop
/// complete '\n'-terminated lines (the '\n' stripped, a trailing '\r'
/// tolerated for telnet-style clients).  Bytes after the last newline
/// stay buffered until the next feed.  Content-agnostic: framing never
/// inspects the JSON.
class LineSplitter {
 public:
  void feed(const char* data, std::size_t n) { buffer_.append(data, n); }

  /// Next complete line, or nullopt when none is buffered.
  std::optional<std::string> next_line();

  /// True when a complete line is buffered (cheap peek for fair
  /// round-robin dispatch).
  [[nodiscard]] bool has_line() const {
    return buffer_.find('\n', scanned_) != std::string::npos;
  }

  /// Bytes buffered beyond the last complete line (the partial tail).
  [[nodiscard]] std::size_t pending_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
  std::size_t scanned_ = 0;  // prefix known to hold no '\n'
};

/// A parsed `--listen` / `--connect` endpoint.  Specs containing a '/'
/// (or no ':') are Unix-domain socket paths; "host:port" is TCP
/// ("localhost:0" asks the kernel for a free port).
struct SocketEndpoint {
  bool ok = false;
  std::string error;
  bool is_unix = false;
  std::string path;  // unix: filesystem path
  std::string host;  // tcp: node name / numeric address ("" = loopback)
  int port = 0;      // tcp: 0 = kernel-assigned
};

SocketEndpoint parse_socket_endpoint(const std::string& spec);

struct SocketServerOptions {
  std::string listen;  // endpoint spec, see parse_socket_endpoint
  std::size_t max_clients = 256;
  /// A connection whose unterminated line exceeds this is dropped (a
  /// client streaming garbage without newlines must not grow server
  /// memory without bound).
  std::size_t max_line_bytes = 8u << 20;
  /// A connection whose unflushed response backlog exceeds this is
  /// dropped as a slow consumer (its in-flight requests are cancelled).
  std::size_t max_write_buffer_bytes = 64u << 20;
  /// Per-client in-flight quota: a map request arriving while this many
  /// of the SAME connection's map requests are still unanswered is
  /// rejected at the transport layer (status "rejected", retryable, with
  /// a retry_after_ms hint) without ever reaching the service — one
  /// firehosing client cannot monopolize the shared admission queue.
  /// 0 (the default) disables the quota; the service-wide max_pending
  /// bound still applies.
  std::size_t max_inflight_per_client = 0;
};

/// Serve until a "shutdown" request; returns a process exit code (0 on a
/// clean drain).  Prints one `{"event":"listening","endpoint":...}` line
/// to stdout once the socket is bound — for TCP with port 0 the endpoint
/// carries the kernel-assigned port, so spawners can connect without
/// racing the bind.
int run_socket_server(const SocketServerOptions& socket_options,
                      std::vector<arch::Board> boards,
                      const ServiceOptions& service_options);

/// Client side: blocking connect to a parsed endpoint.  Returns the
/// connected fd, or -1 with `error` describing why.  Used by
/// `mapper_serve --connect` and ProcessClient::connect, so tests and
/// demos need no external netcat.
int connect_socket_endpoint(const SocketEndpoint& endpoint,
                            std::string& error);

/// `mapper_serve --connect <spec>`: bridge stdin/stdout jsonl onto a
/// server socket — stdin EOF half-closes the socket (shutdown(WR)) and
/// the bridge keeps relaying responses until the server closes, exactly
/// the pipe mode's batch-then-read idiom over a socket.
int run_socket_client(const std::string& spec);

}  // namespace gmm::service
