// Long-lived asynchronous mapping service.
//
// The serving-path layer above mapping::map_batch: boards are parsed once
// at startup (plus optional per-request inline boards) and shared
// read-only, while map requests fan out over a ThreadPool.  On top of the
// batch driver's design it adds what a long-lived server needs:
//
//   * a BOUNDED admission queue — requests beyond `max_pending`
//     (queued + in-flight) are rejected immediately instead of building
//     unbounded memory pressure under overload;
//   * per-request DEADLINES — "deadline_ms" arms a CancelToken deadline
//     at admission, so queue wait counts against the budget and the
//     branch & bound's LP time limits are clamped to what remains;
//   * cooperative CANCELLATION — a cancel request flips the token, which
//     aborts an in-flight solve at its next node boundary and keeps a
//     queued request from ever starting;
//   * a fingerprint-keyed SOLUTION CACHE — an exact resubmission replays
//     a previously PROVED mapping (re-verified against this request)
//     instead of solving, and a traffic-only mutation re-solves
//     incrementally from the cached assignment via mapping::remap
//     (see service/solution_cache.hpp; per-request opt-out with
//     options.no_cache, disable with cache_capacity = 0);
//   * adaptive OVERLOAD SHEDDING — when the smoothed OBSERVED queue
//     delay (admission to worker pickup) exceeds shed_queue_delay_ms,
//     new requests are rejected at admission with a retry_after_ms
//     backoff hint instead of silently queuing toward their deadlines;
//   * a stall WATCHDOG — a running solve whose progress counter stops
//     advancing for watchdog_window_ms is force-cancelled and its
//     request terminates with status "stalled" (retryable);
//   * graceful DRAIN — drain() blocks until every admitted request has
//     emitted its terminal response, which is also the shutdown path.
//
// Threading: handle() may be called from one dispatcher thread (the serve
// loop); responses are delivered through the ResponseSink from worker
// threads and from handle() itself, concurrently — the sink must be
// thread-safe (the serve loop serializes writes with a mutex).  Every
// admitted map request produces exactly ONE terminal response, whatever
// races cancel/deadline/completion run into each other.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "arch/board.hpp"
#include "service/protocol.hpp"
#include "service/solution_cache.hpp"
#include "support/cancellation.hpp"
#include "support/thread_pool.hpp"

namespace gmm::service {

struct ServiceOptions {
  /// Concurrent mapping workers (0 = hardware concurrency).
  std::size_t workers = 1;
  /// Admission bound: queued + in-flight map requests.  Requests arriving
  /// beyond it get status "rejected".
  std::size_t max_pending = 64;
  /// Upper bound accepted for a request's "threads" field.
  int max_threads_per_solve = 8;
  /// Solution-cache capacity in entries (LRU); 0 disables the cache —
  /// every request then solves cold and counts as a bypass.
  std::size_t cache_capacity = 128;
  /// Migration-cost term for near-miss incremental re-solves: structures
  /// pay this much for leaving their cached bank type, biasing the delta
  /// solve toward the stable prior assignment.  The REPORTED objective
  /// stays pure (the penalty only steers the search); 0 disables it.
  double near_miss_migration_penalty = 1e-3;
  /// Adaptive overload shedding: when the EWMA of the OBSERVED queue
  /// delay (admission to worker pickup) exceeds this many milliseconds,
  /// new map requests are rejected at admission with a retry_after_ms
  /// hint.  Keyed on delay rather than depth: a queue of 60 sub-ms
  /// replays is healthy while a queue of 3 ten-second solves is not.
  /// Only requests that would actually wait (>= worker_count already
  /// pending) are shed — an idle server always admits, which is also how
  /// the smoothed signal recovers after an overload spike.
  /// 0 (the default) disables delay-keyed shedding; the bounded
  /// max_pending queue still applies.
  double shed_queue_delay_ms = 0.0;
  /// Stall watchdog window in milliseconds: a RUNNING solve whose
  /// progress counter (MipOptions::progress, bumped at node boundaries)
  /// does not advance for this long is force-cancelled and its request
  /// terminates with status "stalled".  Queued requests are exempt.  The
  /// window must comfortably exceed the longest single node LP the
  /// deployment expects (a legitimate solve bumps progress between
  /// nodes, but not during one).  0 (the default) disables the watchdog.
  double watchdog_window_ms = 0.0;
};

// ServiceStats (request accounting + aggregate solver counters) lives in
// service/protocol.hpp: it is also the `stats` method's wire payload.

class MappingService {
 public:
  using ResponseSink = std::function<void(const Response&)>;

  /// `boards` is the named catalog requests select with "board"; the first
  /// entry is the default.  May be empty, in which case every request must
  /// carry an inline "board_text".  Names should be unique — on a
  /// duplicate the FIRST board wins (mapper_serve refuses duplicates at
  /// startup).
  MappingService(std::vector<arch::Board> boards, ServiceOptions options,
                 ResponseSink sink);

  /// Drains outstanding requests before destruction.
  ~MappingService();

  MappingService(const MappingService&) = delete;
  MappingService& operator=(const MappingService&) = delete;

  /// Dispatch one parsed request.  kMap is answered asynchronously from a
  /// worker; kCancel/kPing/kStats (and kInvalid) are answered
  /// synchronously on the calling thread.  kShutdown is the caller's job
  /// (drain + exit) — passing it here just acks it without draining.
  void handle(const Request& request);

  /// Block until every admitted request has emitted its terminal response.
  /// New requests may still be admitted afterwards; the serve loop stops
  /// feeding handle() before draining for shutdown.
  void drain();

  [[nodiscard]] const arch::Board* find_board(const std::string& name) const;
  [[nodiscard]] ServiceStats stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// Registry slot of one admitted, not-yet-terminal map request.
  struct ActiveRequest {
    support::CancelTokenPtr token;
    /// Solver liveness counter; registered by run_map when the worker
    /// picks the request up, nullptr while it waits in the queue (the
    /// watchdog only ever judges running solves).
    std::shared_ptr<std::atomic<std::int64_t>> progress;
    std::int64_t last_progress = 0;
    Clock::time_point last_change{};
  };

  void handle_map(const Request& request);
  void run_map(const std::string& id, int version, const MapRequest& request,
               const support::CancelTokenPtr& token, Clock::time_point admitted);
  /// Emit the terminal response for `id` and release its registry slot.
  void finish(Response response);
  /// Watchdog thread body: periodically sweep active_ for running solves
  /// whose progress counter has been flat for a full window and
  /// force-cancel them with the stalled cause.
  void watchdog_loop();

  std::vector<arch::Board> boards_;
  std::map<std::string, std::size_t> board_index_;
  ServiceOptions options_;
  ResponseSink sink_;
  /// Fingerprint-keyed store of proved mappings (internally locked; never
  /// taken while holding mutex_'s critical sections that sink responses).
  SolutionCache cache_;

  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  std::map<std::string, ActiveRequest> active_;  // id -> registry slot
  std::size_t pending_ = 0;  // admitted, terminal response not yet emitted
  ServiceStats stats_;
  /// Smoothed admission-to-pickup delay in ms (guarded by mutex_), the
  /// overload signal the shedding threshold compares against.
  double queue_delay_ewma_ms_ = 0.0;
  /// Fingerprints whose poisoned cache entries were already logged: the
  /// alert fires once per fingerprint, not once per corrupted replay —
  /// repeated corruption must not become a log storm.
  std::set<Fingerprint> logged_poisoned_;

  /// Watchdog thread state; the thread only exists when
  /// options_.watchdog_window_ms > 0.
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;  // guarded by mutex_
  std::thread watchdog_;

  /// Last so its destructor (which joins workers running run_map) fires
  /// before the members those workers touch are torn down.
  std::unique_ptr<support::ThreadPool> pool_;
};

}  // namespace gmm::service
