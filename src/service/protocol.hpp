// The jsonl mapping-service wire protocol (one JSON object per line).
//
// Versioning: requests may carry "v" (1 or 2; absent means 1).  The v2
// envelope moves the solver knobs into a nested "options" object; v1
// flat requests keep working unchanged and are canonicalized onto the
// same internal form.  Responses echo the request's explicit "v" and
// omit it for unversioned requests, so legacy clients see byte-identical
// traffic.  Unknown request fields are ignored but COUNTED (the stats
// counter `unknown_field_requests`), so a misspelled field shows up in
// monitoring instead of vanishing; unknown keys INSIDE "options" are
// rejected outright — a silently dropped solver knob would return an
// answer under the wrong quality contract.
//
// Requests:
//   {"v":2,"id":"r1","method":"map","design_text":"...",
//    "options":{"gap":0.01,"max_nodes":100000,"time_limit_ms":5000,
//               "threads":2,"max_stored_bases":1024,"no_cache":true}, ...}
//     fields: "board" (catalog name; default = first loaded board),
//             "board_text" (inline board, overrides "board"),
//             "design_text" | "design_path" (exactly one required),
//             "formulation" ("global" — the paper's global/detailed
//             pipeline, default — "complete", the flat one-ILP
//             baseline; far slower on big boards — "sharded", the
//             multi-device partition/fan-out/stitch mapper; on
//             single-device boards it degenerates to "global" — or
//             "portfolio", which races options.lanes solver
//             configurations concurrently and returns the first lane
//             to prove; see mapping/portfolio.hpp),
//             "options" (per-request solver knobs, see
//             service/solver_knobs.hpp; out-of-range values terminate
//             the request with status "rejected"),
//             "deadline_ms" (request deadline incl. queue wait; absent =
//             none; 0 = already expired, i.e. reject unless trivial).
//     Legacy v1 flat fields, still accepted in any version:
//             "threads" (= options.threads; options wins when both
//             appear), "complete":true (= "formulation":"complete").
//   {"id":"c1","method":"cancel","target":"r1"}           cancel a request
//   {"id":"p1","method":"ping"}                           liveness probe
//   {"id":"s1","method":"stats"}                          service counters
//   {"method":"shutdown"}                                 drain and exit
//
// Responses (exactly one terminal response per map request, correlated by
// "id"; cancel/ping/shutdown are acknowledged synchronously):
//   {"id":"r1","method":"map","status":"ok","solve_status":"optimal",
//    "objective":123,"nodes":17,"seconds":0.04,"retries":0,
//    "placements":[{"segment":"s0","type":"blockram","instance":0,
//                   "first_port":0,"ports":1,"config":"256x16",
//                   "offset_bits":0,"block_bits":4096,"kind":"full"}, ...]}
//   status is one of: ok | timeout | cancelled | stalled | infeasible |
//   rejected | error.  timeout / cancelled responses still carry the
//   best-effort partial result when the stopped solve had an incumbent.
//   Every non-ok response carries "retryable" (true = transient
//   server-side condition, retrying may succeed; false = deterministic
//   outcome, retrying unchanged will fail again), and overload
//   rejections add "retry_after_ms", a backoff hint derived from the
//   observed queue delay.  "stalled" means the service watchdog
//   force-cancelled a solve that stopped making progress.  A "sharded"
//   map additionally reports "shards" (per-device sub-mappings stitched
//   together) and "stitch_cost" (the weighted inter-device transfer term
//   included in "objective").  A map answered from the solution cache
//   A "portfolio" map reports "winner" (the name of the lane whose
//   proof is returned; absent when no lane proved), "lanes" (how many
//   raced), and "lanes_cancelled" (losers stopped by the winner).  A
//   map answered from the solution cache
//   carries "cached":true (absent otherwise): the mapping replays a
//   previously PROVED solve of a fingerprint-identical request,
//   re-verified against this request's design and board, so "objective"
//   and "placements" are exactly what a fresh solve would return while
//   "nodes"/"seconds" report the (near-zero) replay work.  Requests opt
//   out with options.no_cache — solve cold, insert nothing.
//
//   {"id":"s1","method":"stats","status":"ok","accepted":3,"rejected":0,
//    "completed":3,"cancelled":0,"timed_out":1,"stalled":0,
//    "shed_overload":0,"unknown_field_requests":0,
//    "solver":{"solves":3,"nodes":120,"lp_iterations":987,
//              "sharded_requests":1,"shard_solves":4,
//              "bases_stored":64,"bases_loaded":60,"bases_evicted":0,
//              "cold_pops":4,"warm_pop_pivots":95,"cold_pop_pivots":310,
//              "basis_hit_rate":0.9375},
//    "cache":{"hits":9,"misses":3,"bypasses":1,"near_misses":2,
//             "verify_fails":0,"insertions":3,"evictions":0,"entries":3},
//    "transport":{"connections_opened":9,"connections_closed":1,
//                 "requests":120,"bytes_received":48213,
//                 "bytes_sent":391245,"responses_dropped":0,"shed":4},
//    "portfolio":{"requests":2,"lanes_launched":6,"lanes_cancelled":4,
//                 "winners":{"global":1,"complete":1}}}
//   stats is answered synchronously: request accounting plus the solver
//   counters summed over every solve the service has completed.  The
//   "transport" object appears only when the server fronts socket
//   clients (see service/socket_server.hpp); the stdin/stdout pipe mode
//   never emits it.
//
// Deadline semantics: the clock starts when the request is accepted, so
// queue wait counts against it (options.time_limit_ms, by contrast,
// budgets the solve alone).  Cancel semantics: cancelling an in-flight
// request stops the branch & bound at its next node boundary; cancelling
// a queued request prevents it from starting.  Either way the request
// terminates with status "cancelled".  Cancelling an unknown or already
// finished id is acknowledged with "found":false.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lp/basis.hpp"
#include "service/json.hpp"
#include "service/solver_knobs.hpp"

namespace gmm::service {

enum class Method : std::uint8_t {
  kMap,
  kCancel,
  kPing,
  kStats,
  kShutdown,
  kInvalid,  // unparseable line or unknown method; `error` says why
};

/// Protocol versions the parser accepts ("v" absent parses as 1).
inline constexpr int kProtocolVersionMax = 2;

/// Monotonic counters for monitoring, the `stats` protocol method, and
/// the stress tests: request accounting plus the solver effort
/// aggregated over every completed solve (the `solver` wire object).
struct ServiceStats {
  std::int64_t accepted = 0;
  std::int64_t rejected = 0;
  std::int64_t completed = 0;  // terminal responses emitted, any status
  std::int64_t cancelled = 0;
  std::int64_t timed_out = 0;
  /// Solves the watchdog force-cancelled for making no progress; the
  /// request terminated with status "stalled".
  std::int64_t stalled = 0;
  /// Subset of `rejected`: requests shed by the adaptive overload control
  /// (observed queue delay above the shed threshold), not by a full
  /// queue or a bad request.  These all carried a retry_after_ms hint.
  std::int64_t shed_overload = 0;
  /// Requests (any method) that carried at least one unknown top-level
  /// field — ignored for compatibility, counted for monitoring.
  std::int64_t unknown_field_requests = 0;

  // Aggregate solver counters, summed over completed solves (requests
  // that reached the solver; rejected/queue-cancelled ones never do).
  std::int64_t solves = 0;
  std::int64_t nodes = 0;          // branch & bound nodes
  std::int64_t lp_iterations = 0;  // dual-simplex pivots
  std::int64_t refactorizations = 0;  // LP basis (re)factorizations
  // Multi-device sharding: "sharded"-formulation requests solved, and
  // the per-device candidate pipelines they fanned out in total.
  std::int64_t sharded_requests = 0;
  std::int64_t shard_solves = 0;
  lp::BasisCacheStats basis;       // warm-start cache counters

  /// Solution-cache counters (the `cache` wire object).  Every ACCEPTED
  /// map request lands in exactly one of hits/misses/bypasses at its
  /// terminal response, so hits + misses + bypasses == completed map
  /// requests once the service is idle — the invariant the stress tests
  /// audit.
  struct Cache {
    std::int64_t hits = 0;    // exact replays served without a solve
    /// Cache consulted, no replay served: plain misses, near-miss warm
    /// re-solves, and verify failures all solve (warm or cold) and land
    /// here.
    std::int64_t misses = 0;
    /// Never consulted: options.no_cache, cache disabled (capacity 0),
    /// sharded formulation (its stitched objective cannot be re-verified
    /// by replay), or the request errored/cancelled before fingerprinting.
    std::int64_t bypasses = 0;
    std::int64_t near_misses = 0;   // subset of misses: warm remap ran
    std::int64_t verify_fails = 0;  // subset of misses: replay failed check
    std::int64_t insertions = 0;
    std::int64_t evictions = 0;
    std::int64_t entries = 0;       // gauge: entries currently stored
  };
  Cache cache;

  /// Socket-transport counters, folded in by the socket server (all zero
  /// in stdin/stdout mode; the wire omits the "transport" object then).
  struct Transport {
    std::int64_t connections_opened = 0;
    std::int64_t connections_closed = 0;
    std::int64_t requests = 0;        // protocol lines dispatched
    std::int64_t bytes_received = 0;
    std::int64_t bytes_sent = 0;
    /// Terminal responses whose client had already disconnected.
    std::int64_t responses_dropped = 0;
    /// Requests shed at admission (status "rejected") over sockets.
    std::int64_t shed = 0;
  };
  Transport transport;

  /// Portfolio-racing counters (the `portfolio` wire object, emitted only
  /// after at least one "portfolio"-formulation request ran).
  struct Portfolio {
    std::int64_t requests = 0;         // portfolio solves executed
    std::int64_t lanes_launched = 0;   // lanes configured across them
    std::int64_t lanes_cancelled = 0;  // losers stopped by a winner/parent
    /// Wins per lane name — which configurations actually pay off.
    std::map<std::string, std::int64_t> winners;
  };
  Portfolio portfolio;
};

/// A "map" request body.  Defaults chosen so an empty object is invalid
/// (no design) rather than accidentally expensive.
struct MapRequest {
  std::string board_name;   // catalog lookup; "" = first loaded board
  std::string board_text;   // inline board description; overrides the name
  std::string design_text;  // inline design description
  std::string design_path;  // or a file path the server reads
  bool complete = false;    // solve the flat "complete" formulation
  bool sharded = false;     // multi-device partition/fan-out/stitch mapper
  bool portfolio = false;   // race options.lanes configurations, first prover wins
  SolverKnobs knobs;        // per-request solver controls ("options")
  double deadline_ms = -1.0;  // < 0 = no deadline
};

struct Request {
  Method method = Method::kInvalid;
  /// Explicit protocol version: 0 when the request carried no "v"
  /// (semantically v1); responses echo it (and omit "v" for 0).
  int version = 0;
  std::string id;      // request correlation id ("" allowed except for map)
  std::string target;  // cancel: the id to cancel
  MapRequest map;      // valid when method == kMap
  std::string error;   // parse failure message when method == kInvalid
  /// Structurally valid map request whose solver knobs were out of
  /// range: the service terminates it with status "rejected" and this
  /// message instead of solving under a contract the client never asked
  /// for.  Empty otherwise.
  std::string reject_reason;
  /// Unknown top-level fields seen (ignored-but-counted).
  int unknown_fields = 0;
};

/// Parse one protocol line.  Never throws; malformed input yields
/// Method::kInvalid with `error` set (and `id` recovered when possible so
/// the error response can still be correlated).
Request parse_request_line(const std::string& line);

enum class ResponseStatus : std::uint8_t {
  kOk,
  kTimeout,
  kCancelled,
  /// The service watchdog force-cancelled the solve because it stopped
  /// making progress for the configured window (wedged worker, injected
  /// stall).  Retryable: the wedge is a server-side condition, not a
  /// property of the request.
  kStalled,
  kInfeasible,
  /// Admission refused — bounded queue full, overload shedding, a
  /// per-client quota, the id is still active (duplicate submission), or
  /// a solver knob was out of range.  Never a solve outcome: an in-flight
  /// request with the same id is unaffected and will still emit its own
  /// terminal response.  Overload rejections carry retry_after_ms.
  kRejected,
  kError,  // bad request, unknown board, parse failure, solver failure
};

const char* to_string(ResponseStatus status);

/// One placed fragment, the service-side mirror of mapping::PlacedFragment
/// with names resolved so clients need no board/design lookup tables.
struct PlacementEntry {
  std::string segment;
  std::string type;
  std::int64_t instance = 0;
  std::int64_t first_port = 0;
  std::int64_t ports = 0;
  std::string config;
  std::int64_t offset_bits = 0;
  std::int64_t block_bits = 0;
  std::string kind;
};

struct Response {
  std::string id;
  std::string method;  // echoes the request method
  /// Echo of the request's explicit "v"; 0 = omit from the wire (the
  /// request was unversioned, so the response stays byte-compatible).
  int v = 0;
  ResponseStatus status = ResponseStatus::kError;
  std::string error;   // set for error/rejected
  std::string target;  // cancel acks: the cancelled id
  bool found = false;  // cancel acks: target was active

  /// Error taxonomy, serialized on every non-ok response so clients can
  /// implement correct backoff without pattern-matching error strings:
  /// true = transient server-side condition (overload shed, queue full,
  /// quota, timeout, stall, internal solver failure) — retrying the same
  /// request may succeed; false = deterministic outcome (bad request,
  /// infeasible, cancelled, duplicate id, out-of-range knob) — retrying
  /// unchanged will fail again.
  bool retryable = false;
  /// Backoff hint on overload rejections, derived from the observed queue
  /// delay; serialized only when > 0.
  std::int64_t retry_after_ms = 0;
  /// Tri-state degradation marker: -1 = absent from the wire (the normal
  /// case), 0 = "degraded":false, 1 = "degraded":true.  A cache replay
  /// that failed re-verification answers with a fresh cold solve marked
  /// "degraded":false — corruption was detected and did NOT degrade the
  /// result.
  int degraded = -1;

  // Mapping payload (has_result == true when a solve produced a mapping;
  // timeout/cancelled responses may carry a partial incumbent's mapping).
  bool has_result = false;
  std::string solve_status;  // lp::to_string of the pipeline status
  std::string stop_reason;   // why the solve stopped early; "" when it ran out
  double objective = 0.0;
  std::int64_t nodes = 0;
  double seconds = 0.0;
  int retries = 0;
  /// True when the mapping was replayed from the solution cache instead
  /// of solved; serialized as "cached":true and omitted otherwise.
  bool cached = false;
  // Sharded-formulation extras (serialized only when shards > 0): number
  // of per-device sub-mappings stitched, and the inter-device transfer
  // cost already included in `objective`.
  int shards = 0;
  double stitch_cost = 0.0;
  // Portfolio-formulation extras (serialized only when lanes > 0): how
  // many lanes raced, which lane's proof is returned ("" = no prover),
  // and how many losers the winner cancelled.
  int lanes = 0;
  std::string winner;
  int lanes_cancelled = 0;
  std::vector<PlacementEntry> placements;

  // Stats payload (has_stats == true on a `stats` response).
  bool has_stats = false;
  ServiceStats stats;

  [[nodiscard]] Json to_json() const;
  /// Single protocol line (no trailing newline).
  [[nodiscard]] std::string to_line() const;
  /// Client-side decode; returns false on a structurally invalid response.
  static bool from_json(const Json& value, Response& out);
};

}  // namespace gmm::service
