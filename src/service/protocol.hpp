// The jsonl mapping-service wire protocol (one JSON object per line).
//
// Requests:
//   {"id":"r1","method":"map","design_text":"...", ...}   map a design
//     fields: "board" (catalog name; default = first loaded board),
//             "board_text" (inline board, overrides "board"),
//             "design_text" | "design_path" (exactly one required),
//             "formulation" ("global" — the paper's global/detailed
//             pipeline, default — "complete", the flat one-ILP
//             baseline; far slower on big boards — or "sharded", the
//             multi-device partition/fan-out/stitch mapper; on
//             single-device boards it degenerates to "global"),
//             "threads" (B&B workers per solve, default 1; 0 = the
//             server's per-solve cap, see --threads),
//             "deadline_ms" (request deadline incl. queue wait; absent =
//             none; 0 = already expired, i.e. reject unless trivial)
//   {"id":"c1","method":"cancel","target":"r1"}           cancel a request
//   {"id":"p1","method":"ping"}                           liveness probe
//   {"id":"s1","method":"stats"}                          service counters
//   {"method":"shutdown"}                                 drain and exit
//
// Responses (exactly one terminal response per map request, correlated by
// "id"; cancel/ping/shutdown are acknowledged synchronously):
//   {"id":"r1","method":"map","status":"ok","solve_status":"optimal",
//    "objective":123,"nodes":17,"seconds":0.04,"retries":0,
//    "placements":[{"segment":"s0","type":"blockram","instance":0,
//                   "first_port":0,"ports":1,"config":"256x16",
//                   "offset_bits":0,"block_bits":4096,"kind":"full"}, ...]}
//   status is one of: ok | timeout | cancelled | infeasible | rejected |
//   error.  timeout / cancelled responses still carry the best-effort
//   partial result when the stopped solve had an incumbent.  A "sharded"
//   map additionally reports "shards" (per-device sub-mappings stitched
//   together) and "stitch_cost" (the weighted inter-device transfer term
//   included in "objective").
//
//   {"id":"s1","method":"stats","status":"ok","accepted":3,"rejected":0,
//    "completed":3,"cancelled":0,"timed_out":1,
//    "solver":{"solves":3,"nodes":120,"lp_iterations":987,
//              "sharded_requests":1,"shard_solves":4,
//              "bases_stored":64,"bases_loaded":60,"bases_evicted":0,
//              "cold_pops":4,"warm_pop_pivots":95,"cold_pop_pivots":310,
//              "basis_hit_rate":0.9375}}
//   stats is answered synchronously: request accounting plus the solver
//   counters (branch & bound nodes, LP pivots, basis warm-start cache)
//   summed over every solve the service has completed.
//
// Deadline semantics: the clock starts when the request is accepted, so
// queue wait counts against it.  Cancel semantics: cancelling an in-flight
// request stops the branch & bound at its next node boundary; cancelling
// a queued request prevents it from starting.  Either way the request
// terminates with status "cancelled".  Cancelling an unknown or already
// finished id is acknowledged with "found":false.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lp/basis.hpp"
#include "service/json.hpp"

namespace gmm::service {

enum class Method : std::uint8_t {
  kMap,
  kCancel,
  kPing,
  kStats,
  kShutdown,
  kInvalid,  // unparseable line or unknown method; `error` says why
};

/// Monotonic counters for monitoring, the `stats` protocol method, and
/// the stress tests: request accounting plus the solver effort
/// aggregated over every completed solve (the `solver` wire object).
struct ServiceStats {
  std::int64_t accepted = 0;
  std::int64_t rejected = 0;
  std::int64_t completed = 0;  // terminal responses emitted, any status
  std::int64_t cancelled = 0;
  std::int64_t timed_out = 0;

  // Aggregate solver counters, summed over completed solves (requests
  // that reached the solver; rejected/queue-cancelled ones never do).
  std::int64_t solves = 0;
  std::int64_t nodes = 0;          // branch & bound nodes
  std::int64_t lp_iterations = 0;  // dual-simplex pivots
  // Multi-device sharding: "sharded"-formulation requests solved, and
  // the per-device candidate pipelines they fanned out in total.
  std::int64_t sharded_requests = 0;
  std::int64_t shard_solves = 0;
  lp::BasisCacheStats basis;       // warm-start cache counters
};

/// A "map" request body.  Defaults chosen so an empty object is invalid
/// (no design) rather than accidentally expensive.
struct MapRequest {
  std::string board_name;   // catalog lookup; "" = first loaded board
  std::string board_text;   // inline board description; overrides the name
  std::string design_text;  // inline design description
  std::string design_path;  // or a file path the server reads
  bool complete = false;    // solve the flat "complete" formulation
  bool sharded = false;     // multi-device partition/fan-out/stitch mapper
  int threads = 1;          // B&B workers for this solve (0 = server cap)
  double deadline_ms = -1.0;  // < 0 = no deadline
};

struct Request {
  Method method = Method::kInvalid;
  std::string id;      // request correlation id ("" allowed except for map)
  std::string target;  // cancel: the id to cancel
  MapRequest map;      // valid when method == kMap
  std::string error;   // parse failure message when method == kInvalid
};

/// Parse one protocol line.  Never throws; malformed input yields
/// Method::kInvalid with `error` set (and `id` recovered when possible so
/// the error response can still be correlated).
Request parse_request_line(const std::string& line);

enum class ResponseStatus : std::uint8_t {
  kOk,
  kTimeout,
  kCancelled,
  kInfeasible,
  /// Admission refused — bounded queue full, or the id is still active
  /// (duplicate submission).  Never a solve outcome: an in-flight
  /// request with the same id is unaffected and will still emit its own
  /// terminal response.  Resubmit later / with a fresh id.
  kRejected,
  kError,  // bad request, unknown board, parse failure, solver failure
};

const char* to_string(ResponseStatus status);

/// One placed fragment, the service-side mirror of mapping::PlacedFragment
/// with names resolved so clients need no board/design lookup tables.
struct PlacementEntry {
  std::string segment;
  std::string type;
  std::int64_t instance = 0;
  std::int64_t first_port = 0;
  std::int64_t ports = 0;
  std::string config;
  std::int64_t offset_bits = 0;
  std::int64_t block_bits = 0;
  std::string kind;
};

struct Response {
  std::string id;
  std::string method;  // echoes the request method
  ResponseStatus status = ResponseStatus::kError;
  std::string error;   // set for error/rejected
  std::string target;  // cancel acks: the cancelled id
  bool found = false;  // cancel acks: target was active

  // Mapping payload (has_result == true when a solve produced a mapping;
  // timeout/cancelled responses may carry a partial incumbent's mapping).
  bool has_result = false;
  std::string solve_status;  // lp::to_string of the pipeline status
  std::string stop_reason;   // why the solve stopped early; "" when it ran out
  double objective = 0.0;
  std::int64_t nodes = 0;
  double seconds = 0.0;
  int retries = 0;
  // Sharded-formulation extras (serialized only when shards > 0): number
  // of per-device sub-mappings stitched, and the inter-device transfer
  // cost already included in `objective`.
  int shards = 0;
  double stitch_cost = 0.0;
  std::vector<PlacementEntry> placements;

  // Stats payload (has_stats == true on a `stats` response).
  bool has_stats = false;
  ServiceStats stats;

  [[nodiscard]] Json to_json() const;
  /// Single protocol line (no trailing newline).
  [[nodiscard]] std::string to_line() const;
  /// Client-side decode; returns false on a structurally invalid response.
  static bool from_json(const Json& value, Response& out);
};

}  // namespace gmm::service
