#include "service/solver_knobs.hpp"

#include <algorithm>

namespace gmm::service {

namespace {

/// Read one numeric knob; false (with `reason` set, quoting `range_text`)
/// when present but mistyped or outside [lo, hi].
bool knob_number(const Json& object, const char* key, double lo, double hi,
                 const char* range_text, bool& present, double& out,
                 std::string& reason) {
  const Json* field = object.find(key);
  if (field == nullptr) {
    present = false;
    return true;
  }
  if (!field->is_number() || field->as_number() < lo ||
      field->as_number() > hi) {
    reason = std::string("'") + key + "' must be a number in " + range_text;
    return false;
  }
  present = true;
  out = field->as_number();
  return true;
}

bool knob_int(const Json& object, const char* key, std::int64_t lo,
              std::int64_t hi, const char* range_text, bool& present,
              std::int64_t& out, std::string& reason) {
  double value = 0.0;
  if (!knob_number(object, key, static_cast<double>(lo),
                   static_cast<double>(hi), range_text, present, value,
                   reason)) {
    reason = std::string("'") + key + "' must be an integer in " + range_text;
    return false;
  }
  if (present) {
    if (value != static_cast<double>(static_cast<std::int64_t>(value))) {
      reason =
          std::string("'") + key + "' must be an integer in " + range_text;
      return false;
    }
    out = static_cast<std::int64_t>(value);
  }
  return true;
}

}  // namespace

bool parse_solver_knobs(const Json& request, SolverKnobs& out,
                        std::string& reject_reason) {
  out = SolverKnobs{};
  bool present = false;

  // Legacy flat v1 field first, so a v2 "options" ask overrides it.
  std::int64_t flat_threads = 0;
  if (!knob_int(request, "threads", 0, SolverKnobs::kMaxThreads, "[0, 1024]",
                present, flat_threads, reject_reason)) {
    return false;
  }
  if (present) out.threads = static_cast<int>(flat_threads);

  const Json* options = request.find("options");
  if (options == nullptr) return true;
  if (!options->is_object()) {
    reject_reason = "'options' must be an object of solver knobs";
    return false;
  }
  // A misspelled knob silently ignored would hand back an answer under
  // the wrong quality contract; unknown keys inside "options" reject.
  for (const auto& [key, value] : options->as_object()) {
    (void)value;
    if (key != "gap" && key != "max_nodes" && key != "time_limit_ms" &&
        key != "threads" && key != "max_stored_bases" && key != "no_cache" &&
        key != "lanes" && key != "lp_engine") {
      reject_reason = "unknown solver knob '" + key + "' in 'options'";
      return false;
    }
  }
  if (!knob_number(*options, "gap", 0.0, 1.0, "[0, 1]", present, out.gap,
                   reject_reason)) {
    return false;
  }
  if (!knob_int(*options, "max_nodes", 1, SolverKnobs::kMaxNodes,
                "[1, 50000000]", present, out.max_nodes, reject_reason)) {
    return false;
  }
  // The lower bound is kMinTimeLimitMs, not 0: time_limit_ms = 0 is
  // ambiguous on the wire ("no time" vs "no limit") and a knob that
  // silently became "unlimited" would be the worst failure mode, so the
  // boundary is reject-not-clamp like every other knob.
  double time_limit = 0.0;
  if (!knob_number(*options, "time_limit_ms", SolverKnobs::kMinTimeLimitMs,
                   SolverKnobs::kMaxTimeLimitMs, "[1, 3600000]", present,
                   time_limit, reject_reason)) {
    return false;
  }
  if (present) out.time_limit_ms = time_limit;
  std::int64_t threads = 0;
  if (!knob_int(*options, "threads", 0, SolverKnobs::kMaxThreads, "[0, 1024]",
                present, threads, reject_reason)) {
    return false;
  }
  if (present) out.threads = static_cast<int>(threads);
  if (!knob_int(*options, "max_stored_bases", 0, SolverKnobs::kMaxStoredBases,
                "[0, 1048576]", present, out.max_stored_bases,
                reject_reason)) {
    return false;
  }
  const Json* no_cache = options->find("no_cache");
  if (no_cache != nullptr) {
    if (!no_cache->is_bool()) {
      reject_reason = "'no_cache' must be a boolean";
      return false;
    }
    out.no_cache = no_cache->as_bool();
  }
  std::int64_t lanes = 0;
  if (!knob_int(*options, "lanes", 1, SolverKnobs::kMaxLanes, "[1, 6]",
                present, lanes, reject_reason)) {
    return false;
  }
  if (present) out.lanes = static_cast<int>(lanes);
  const Json* lp_engine = options->find("lp_engine");
  if (lp_engine != nullptr) {
    lp::LpEngine parsed = lp::LpEngine::kDense;
    if (!lp_engine->is_string() ||
        !lp::parse_lp_engine(lp_engine->as_string(), parsed)) {
      reject_reason = "'lp_engine' must be \"dense\" or \"sparse\"";
      return false;
    }
    out.lp_engine = lp_engine->as_string();
  }
  return true;
}

void apply_solver_knobs(const SolverKnobs& knobs, int max_threads_per_solve,
                        ilp::MipOptions& mip) {
  if (knobs.gap >= 0.0) mip.rel_gap = knobs.gap;
  if (knobs.max_nodes >= 0) mip.node_limit = knobs.max_nodes;
  if (knobs.time_limit_ms >= 0.0) {
    // Boundary contract: any SET value — including a programmatic 0.0,
    // which the wire parser never admits — becomes a finite budget.
    // time_limit_seconds = 0.0 is an already-expired budget (the solver
    // stops with kTimeLimit at its first limits check); it must never
    // silently fall through to MipOptions' "no limit" default (kInf).
    // Only the unset sentinel (< 0) keeps the infinite default.
    mip.time_limit_seconds = knobs.time_limit_ms / 1000.0;
  }
  if (knobs.max_stored_bases >= 0) {
    mip.max_stored_bases = static_cast<std::size_t>(knobs.max_stored_bases);
  }
  mip.num_threads =
      std::min(knobs.threads <= 0 ? max_threads_per_solve : knobs.threads,
               max_threads_per_solve);
  if (!knobs.lp_engine.empty()) {
    // Parse failure is impossible for knobs the wire parser admitted;
    // a programmatic typo keeps the default rather than crashing.
    lp::LpEngine engine = mip.lp_engine;
    if (lp::parse_lp_engine(knobs.lp_engine, engine)) {
      mip.lp_engine = engine;
    }
  }
}

Json solver_knobs_to_json(const SolverKnobs& knobs) {
  JsonObject object;
  if (knobs.gap >= 0.0) object["gap"] = knobs.gap;
  if (knobs.max_nodes >= 0) object["max_nodes"] = knobs.max_nodes;
  if (knobs.time_limit_ms >= 0.0) object["time_limit_ms"] = knobs.time_limit_ms;
  if (knobs.threads != 1) object["threads"] = knobs.threads;
  if (knobs.max_stored_bases >= 0) {
    object["max_stored_bases"] = knobs.max_stored_bases;
  }
  if (knobs.no_cache) object["no_cache"] = true;
  if (knobs.lanes >= 1) object["lanes"] = knobs.lanes;
  if (!knobs.lp_engine.empty()) object["lp_engine"] = knobs.lp_engine;
  return Json(std::move(object));
}

}  // namespace gmm::service
