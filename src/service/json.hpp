// Minimal self-contained JSON value type for the jsonl mapping service.
//
// The container has no third-party JSON dependency, so the service ships
// its own ~300-line parser/writer covering exactly what the line protocol
// needs: null/bool/number/string/array/object, UTF-8 pass-through with
// \uXXXX escapes, a recursion-depth cap against adversarial input, and
// deterministic (sorted-key, minimal-escape) single-line output so
// responses diff cleanly in tests and logs.
//
// Numbers are doubles — the protocol's integers (ids are strings; counts,
// milliseconds) all fit the 2^53 exact-integer range, and the writer
// prints integral doubles without a fractional part so they round-trip
// as integers.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gmm::service {

class Json;

using JsonArray = std::vector<Json>;
/// std::map: deterministic (sorted) key order in the writer for free.
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Json() = default;  // null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double n) : type_(Type::kNumber), number_(n) {}
  Json(std::int64_t n)
      : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Json(int n) : type_(Type::kNumber), number_(n) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(JsonArray a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(JsonObject o) : type_(Type::kObject), object_(std::move(o)) {}

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return number_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const JsonArray& as_array() const { return array_; }
  [[nodiscard]] JsonArray& as_array() { return array_; }
  [[nodiscard]] const JsonObject& as_object() const { return object_; }
  [[nodiscard]] JsonObject& as_object() { return object_; }

  /// Object field lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const;

  /// Typed field accessors with defaults, for tolerant request parsing.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback = {}) const;
  [[nodiscard]] double get_number(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Serialize as a single line (no trailing newline).
  [[nodiscard]] std::string dump() const;

  friend bool operator==(const Json& a, const Json& b);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

struct JsonParseResult {
  bool ok = false;
  std::string error;  // message with byte offset when !ok
  Json value;
};

/// Parse one complete JSON document; trailing non-whitespace is an error.
JsonParseResult parse_json(const std::string& text);

}  // namespace gmm::service
