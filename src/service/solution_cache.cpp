#include "service/solution_cache.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <numeric>

namespace gmm::service {

namespace {

// splitmix64 finalizer — the mixing step behind every hash here.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-SENSITIVE accumulator; order-invariance is obtained by feeding
/// sorted sequences, never by a commutative combine (xor-folding loses
/// multiplicities).
constexpr std::uint64_t combine(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

std::uint64_t double_bits(double x) {
  // -0.0 and 0.0 compare equal but differ in bits; normalize.
  if (x == 0.0) x = 0.0;
  return std::bit_cast<std::uint64_t>(x);
}

/// Per-structure parameter hash with traffic (the exact-key seed and the
/// near-miss pin comparison).  Names and lifetimes are EXCLUDED: names
/// never reach the cost model, and lifetimes act only through the
/// conflict pairs, which the graph refinement hashes separately.
std::uint64_t param_hash_full(const design::DataStructure& ds) {
  std::uint64_t h = 0x5157f3a1c0ffee01ULL;
  h = combine(h, static_cast<std::uint64_t>(ds.depth));
  h = combine(h, static_cast<std::uint64_t>(ds.width));
  h = combine(h, static_cast<std::uint64_t>(ds.effective_reads()));
  h = combine(h, static_cast<std::uint64_t>(ds.effective_writes()));
  return h;
}

/// Traffic-excluded parameter hash (the structural/near-miss seed).
/// Depth and width stay: they decide placement feasibility, so two
/// designs differing in them are never remap candidates for each other.
std::uint64_t param_hash_structural(const design::DataStructure& ds) {
  std::uint64_t h = 0x5157f3a1c0ffee02ULL;
  h = combine(h, static_cast<std::uint64_t>(ds.depth));
  h = combine(h, static_cast<std::uint64_t>(ds.width));
  return h;
}

/// Weisfeiler-Leman refinement over the conflict graph: each round folds
/// the sorted multiset of neighbor hashes into every structure's hash.
/// After a few rounds two structures hash equal only when their local
/// graph neighborhoods are indistinguishable — which makes the sorted
/// hash multiset invariant under any reordering/renaming of the design.
std::vector<std::uint64_t> wl_refine(
    std::vector<std::uint64_t> hash,
    const std::vector<std::vector<std::size_t>>& adjacency) {
  constexpr int kRounds = 3;
  const std::size_t n = hash.size();
  std::vector<std::uint64_t> next(n);
  std::vector<std::uint64_t> neighborhood;
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t d = 0; d < n; ++d) {
      neighborhood.clear();
      neighborhood.reserve(adjacency[d].size());
      for (const std::size_t peer : adjacency[d]) {
        neighborhood.push_back(hash[peer]);
      }
      std::sort(neighborhood.begin(), neighborhood.end());
      std::uint64_t h = mix64(hash[d]);
      for (const std::uint64_t peer : neighborhood) h = combine(h, peer);
      next[d] = h;
    }
    hash.swap(next);
  }
  return hash;
}

/// Content hash of one bank type.  Configs hash IN LIST ORDER:
/// config_index in placements and the planner's alpha/beta choice depend
/// on list position, so two boards differing only in config order are
/// (conservatively) distinct keys.  Bank-TYPE order, by contrast, is
/// canonicalized away by the caller sorting these hashes.
std::uint64_t type_hash(const arch::BankType& type) {
  std::uint64_t h = 0x5157f3a1c0ffee03ULL;
  h = combine(h, static_cast<std::uint64_t>(type.instances));
  h = combine(h, static_cast<std::uint64_t>(type.ports));
  h = combine(h, static_cast<std::uint64_t>(type.read_latency));
  h = combine(h, static_cast<std::uint64_t>(type.write_latency));
  h = combine(h, static_cast<std::uint64_t>(type.pins_traversed));
  h = combine(h, type.configs.size());
  for (const arch::BankConfig& config : type.configs) {
    h = combine(h, static_cast<std::uint64_t>(config.depth));
    h = combine(h, static_cast<std::uint64_t>(config.width));
  }
  return h;
}

/// Board hash: sorted multiset of per-device hashes, each the device's
/// pin count plus the sorted multiset of its types' content hashes —
/// invariant under type AND device reordering, sensitive to grouping.
std::uint64_t board_hash(const arch::Board& board,
                         const std::vector<std::uint64_t>& th) {
  std::vector<std::uint64_t> devices;
  devices.reserve(board.num_devices());
  for (std::size_t k = 0; k < board.num_devices(); ++k) {
    std::uint64_t h = 0x5157f3a1c0ffee04ULL;
    h = combine(h, static_cast<std::uint64_t>(board.device(k).inter_device_pins));
    std::vector<std::size_t> members = board.device_type_indices(k);
    std::vector<std::uint64_t> hashes;
    hashes.reserve(members.size());
    for (const std::size_t t : members) hashes.push_back(th[t]);
    std::sort(hashes.begin(), hashes.end());
    h = combine(h, hashes.size());
    for (const std::uint64_t v : hashes) h = combine(h, v);
    devices.push_back(h);
  }
  std::sort(devices.begin(), devices.end());
  std::uint64_t h = combine(0x5157f3a1c0ffee05ULL,
                            board.has_explicit_devices() ? 1u : 0u);
  h = combine(h, devices.size());
  for (const std::uint64_t v : devices) h = combine(h, v);
  return h;
}

/// Fold one lane of a fingerprint over the request's component hashes.
/// Both lanes fold the same components under different seeds.
std::uint64_t assemble_lane(std::uint64_t seed,
                            const std::vector<std::uint64_t>& node_hashes,
                            const std::vector<std::uint64_t>& edge_hashes,
                            std::uint64_t board, int formulation,
                            double rel_gap) {
  std::uint64_t h = mix64(seed);
  h = combine(h, node_hashes.size());
  for (const std::uint64_t v : node_hashes) h = combine(h, v);
  h = combine(h, edge_hashes.size());
  for (const std::uint64_t v : edge_hashes) h = combine(h, v);
  h = combine(h, board);
  h = combine(h, static_cast<std::uint64_t>(formulation));
  h = combine(h, double_bits(rel_gap));
  return h;
}

Fingerprint assemble(const std::vector<std::uint64_t>& wl,
                     const std::vector<std::pair<std::size_t, std::size_t>>&
                         conflict_pairs,
                     std::uint64_t board, int formulation, double rel_gap) {
  std::vector<std::uint64_t> nodes = wl;
  std::sort(nodes.begin(), nodes.end());
  std::vector<std::uint64_t> edges;
  edges.reserve(conflict_pairs.size());
  for (const auto& [a, b] : conflict_pairs) {
    const std::uint64_t lo = std::min(wl[a], wl[b]);
    const std::uint64_t hi = std::max(wl[a], wl[b]);
    edges.push_back(combine(combine(0x5157f3a1c0ffee06ULL, lo), hi));
  }
  std::sort(edges.begin(), edges.end());
  Fingerprint fp;
  fp.hi = assemble_lane(0x8badf00ddeadbeefULL, nodes, edges, board,
                        formulation, rel_gap);
  fp.lo = assemble_lane(0x0123456789abcdefULL, nodes, edges, board,
                        formulation, rel_gap);
  return fp;
}

}  // namespace

RequestFingerprint fingerprint_request(const design::Design& design,
                                       const arch::Board& board,
                                       CachedFormulation formulation,
                                       double rel_gap) {
  const std::size_t n = design.size();
  std::vector<std::vector<std::size_t>> adjacency(n);
  for (const auto& [a, b] : design.conflict_pairs()) {
    adjacency[a].push_back(b);
    adjacency[b].push_back(a);
  }

  std::vector<std::uint64_t> full_seed(n);
  std::vector<std::uint64_t> structural_seed(n);
  for (std::size_t d = 0; d < n; ++d) {
    full_seed[d] = param_hash_full(design.at(d));
    structural_seed[d] = param_hash_structural(design.at(d));
  }
  const std::vector<std::uint64_t> fwl = wl_refine(full_seed, adjacency);
  const std::vector<std::uint64_t> swl =
      wl_refine(structural_seed, adjacency);

  std::vector<std::uint64_t> th(board.num_types());
  for (std::size_t t = 0; t < board.num_types(); ++t) {
    th[t] = type_hash(board.type(t));
  }
  const std::uint64_t bh = board_hash(board, th);
  const int form = static_cast<int>(formulation);

  RequestFingerprint out;
  out.full = assemble(fwl, design.conflict_pairs(), bh, form, rel_gap);
  out.structural =
      assemble(swl, design.conflict_pairs(), bh, form, rel_gap);

  // Canonical structure order: traffic-excluded keys FIRST so the ranks
  // of a traffic-mutated resubmission still align with the cached entry;
  // the full hash only breaks structural ties, and residual ties (fully
  // WL-equivalent structures) are interchangeable by construction — any
  // remaining wrongness is caught by replay re-verification.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](const std::size_t a, const std::size_t b) {
              if (swl[a] != swl[b]) return swl[a] < swl[b];
              if (fwl[a] != fwl[b]) return fwl[a] < fwl[b];
              return a < b;
            });
  out.structure_rank.resize(n);
  out.param_hash_by_rank.resize(n);
  for (std::size_t rank = 0; rank < n; ++rank) {
    out.structure_rank[order[rank]] = rank;
    out.param_hash_by_rank[rank] = param_hash_full(design.at(order[rank]));
  }

  std::vector<std::size_t> type_order(board.num_types());
  std::iota(type_order.begin(), type_order.end(), std::size_t{0});
  std::sort(type_order.begin(), type_order.end(),
            [&](const std::size_t a, const std::size_t b) {
              if (th[a] != th[b]) return th[a] < th[b];
              return a < b;
            });
  out.type_rank.resize(board.num_types());
  for (std::size_t rank = 0; rank < board.num_types(); ++rank) {
    out.type_rank[type_order[rank]] = rank;
  }
  return out;
}

std::optional<CacheEntry> SolutionCache::find(const Fingerprint& key) {
  if (capacity_ == 0) return std::nullopt;
  const std::scoped_lock lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);
  return *it->second;
}

std::optional<CacheEntry> SolutionCache::find_structural(
    const Fingerprint& structural) {
  if (capacity_ == 0) return std::nullopt;
  const std::scoped_lock lock(mutex_);
  const auto st = structural_index_.find(structural);
  if (st == structural_index_.end()) return std::nullopt;
  const auto it = index_.find(st->second);
  if (it == index_.end()) return std::nullopt;
  return *it->second;
}

void SolutionCache::insert(CacheEntry entry) {
  if (capacity_ == 0) return;
  const std::scoped_lock lock(mutex_);
  const auto it = index_.find(entry.key);
  if (it != index_.end()) {
    // Refresh: same key means same proved problem; keep the newer entry.
    unindex_structural(it->second);
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(std::move(entry));
  index_[lru_.front().key] = lru_.begin();
  structural_index_[lru_.front().structural] = lru_.front().key;
  ++insertions_;
  while (lru_.size() > capacity_) {
    const auto victim = std::prev(lru_.end());
    unindex_structural(victim);
    index_.erase(victim->key);
    lru_.erase(victim);
    ++evictions_;
  }
}

void SolutionCache::erase(const Fingerprint& key) {
  if (capacity_ == 0) return;
  const std::scoped_lock lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  unindex_structural(it->second);
  lru_.erase(it->second);
  index_.erase(it);
}

void SolutionCache::unindex_structural(const Lru::iterator it) {
  const auto st = structural_index_.find(it->structural);
  if (st == structural_index_.end() || st->second != it->key) return;
  // The departing entry owns the structural slot.  Erasing the slot
  // outright would orphan any *surviving* entries that share the same
  // structural fingerprint (same conflict graph, different traffic):
  // a near-miss lookup after an eviction or a poisoning erase would
  // then miss even though a usable prior mapping is still cached.
  // Repoint the slot at the most-recently-used survivor instead, and
  // erase it only when no entry with this structural fingerprint
  // remains.
  for (auto other = lru_.begin(); other != lru_.end(); ++other) {
    if (other == it) continue;
    if (other->structural == it->structural) {
      st->second = other->key;
      return;
    }
  }
  structural_index_.erase(st);
}

std::size_t SolutionCache::size() const {
  const std::scoped_lock lock(mutex_);
  return lru_.size();
}

std::int64_t SolutionCache::insertions() const {
  const std::scoped_lock lock(mutex_);
  return insertions_;
}

std::int64_t SolutionCache::evictions() const {
  const std::scoped_lock lock(mutex_);
  return evictions_;
}

}  // namespace gmm::service
