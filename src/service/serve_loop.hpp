// Blocking jsonl dispatch loop: line-delimited requests on an istream,
// line-delimited responses on an ostream (the mapper_serve binary binds
// these to stdin/stdout; tests bind stringstreams or pipes).
//
// The loop owns the MappingService for its lifetime, writes every
// response as exactly one '\n'-terminated, immediately-flushed line
// under a mutex (responses from concurrent workers never interleave),
// and exits after draining on either a "shutdown" request or EOF — the
// graceful-shutdown path: stop reading, finish everything admitted, ack,
// leave.
#pragma once

#include <iosfwd>
#include <vector>

#include "arch/board.hpp"
#include "service/mapping_service.hpp"

namespace gmm::service {

/// Run until EOF or a shutdown request; returns a process exit code
/// (0 on a clean drain).
int run_serve_loop(std::istream& in, std::ostream& out,
                   std::vector<arch::Board> boards,
                   const ServiceOptions& options);

}  // namespace gmm::service
