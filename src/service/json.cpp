#include "service/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gmm::service {

namespace {

/// Recursion cap: the protocol nests 3-4 levels; 64 tolerates any sane
/// client while bounding stack use on hostile input.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult result;
    Json value;
    if (!parse_value(value, 0)) {
      result.error = error_ + " at byte " + std::to_string(pos_);
      return result;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      result.error =
          "trailing characters at byte " + std::to_string(pos_);
      return result;
    }
    result.ok = true;
    result.value = std::move(value);
    return result;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool fail(std::string message) {
    error_ = std::move(message);
    return false;
  }

  bool literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return fail("bad literal");
    pos_ += len;
    return true;
  }

  bool parse_value(Json& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        if (!literal("null", 4)) return false;
        out = Json();
        return true;
      case 't':
        if (!literal("true", 4)) return false;
        out = Json(true);
        return true;
      case 'f':
        if (!literal("false", 5)) return false;
        out = Json(false);
        return true;
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Json(std::move(s));
        return true;
      }
      case '[':
        return parse_array(out, depth);
      case '{':
        return parse_object(out, depth);
      default:
        return parse_number(out);
    }
  }

  bool parse_number(Json& out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start) return fail("invalid value");
    // strtod accepts hex/inf/nan forms JSON forbids; re-check the charset.
    for (const char* p = start; p < end; ++p) {
      const char c = *p;
      const bool ok = (c >= '0' && c <= '9') || c == '-' || c == '+' ||
                      c == '.' || c == 'e' || c == 'E';
      if (!ok) return fail("invalid number");
    }
    if (!std::isfinite(value)) return fail("number out of range");
    pos_ += static_cast<std::size_t>(end - start);
    out = Json(value);
    return true;
  }

  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("bad \\u escape");
      }
    }
    pos_ += 4;
    return true;
  }

  static void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      s.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the paired low surrogate.
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              unsigned lo = 0;
              if (!parse_hex4(lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF) {
                return fail("invalid surrogate pair");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              return fail("unpaired surrogate");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
  }

  bool parse_array(Json& out, int depth) {
    ++pos_;  // '['
    JsonArray items;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      out = Json(std::move(items));
      return true;
    }
    while (true) {
      Json item;
      if (!parse_value(item, depth + 1)) return false;
      items.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') break;
      if (c != ',') return fail("expected ',' or ']'");
    }
    out = Json(std::move(items));
    return true;
  }

  bool parse_object(Json& out, int depth) {
    ++pos_;  // '{'
    JsonObject fields;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      out = Json(std::move(fields));
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':'");
      }
      ++pos_;
      Json value;
      if (!parse_value(value, depth + 1)) return false;
      fields[std::move(key)] = std::move(value);
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') break;
      if (c != ',') return fail("expected ',' or '}'");
    }
    out = Json(std::move(fields));
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(raw);  // UTF-8 bytes pass through untouched
        }
    }
  }
  out.push_back('"');
}

void dump_number(double value, std::string& out) {
  // JSON has no NaN/Inf literal; "%.17g" would print "nan"/"inf" and
  // corrupt the whole line.  A non-finite ratio (e.g. a 0/0 stat) dumps
  // as null, which readers decode as absent/0 instead of a parse error.
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  // Integral doubles in the exact range print as integers so counts and
  // ids round-trip without a spurious ".0"/exponent.
  if (value == std::floor(value) && std::abs(value) < 9.007199254740992e15) {
    out += std::to_string(static_cast<long long>(value));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

void dump_value(const Json& v, std::string& out) {
  switch (v.type()) {
    case Json::Type::kNull:
      out += "null";
      break;
    case Json::Type::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Json::Type::kNumber:
      dump_number(v.as_number(), out);
      break;
    case Json::Type::kString:
      dump_string(v.as_string(), out);
      break;
    case Json::Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Json& item : v.as_array()) {
        if (!first) out.push_back(',');
        first = false;
        dump_value(item, out);
      }
      out.push_back(']');
      break;
    }
    case Json::Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.as_object()) {
        if (!first) out.push_back(',');
        first = false;
        dump_string(key, out);
        out.push_back(':');
        dump_value(value, out);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::string Json::get_string(const std::string& key,
                             const std::string& fallback) const {
  const Json* field = find(key);
  return field != nullptr && field->is_string() ? field->as_string()
                                                : fallback;
}

double Json::get_number(const std::string& key, double fallback) const {
  const Json* field = find(key);
  return field != nullptr && field->is_number() ? field->as_number()
                                                : fallback;
}

bool Json::get_bool(const std::string& key, bool fallback) const {
  const Json* field = find(key);
  return field != nullptr && field->is_bool() ? field->as_bool() : fallback;
}

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull:
      return true;
    case Json::Type::kBool:
      return a.bool_ == b.bool_;
    case Json::Type::kNumber:
      return a.number_ == b.number_;
    case Json::Type::kString:
      return a.string_ == b.string_;
    case Json::Type::kArray:
      return a.array_ == b.array_;
    case Json::Type::kObject:
      return a.object_ == b.object_;
  }
  return false;
}

JsonParseResult parse_json(const std::string& text) {
  return Parser(text).run();
}

}  // namespace gmm::service
