// Small jsonl client driving a mapper_serve subprocess over pipes.
//
// Used by the integration tests (and usable from tools) to exercise the
// service exactly as a real client would: spawn the binary, write request
// lines to its stdin, read response lines from its stdout with a timeout
// so a hung server fails the test instead of wedging it.
//
// POSIX-only (fork/exec/poll); on other platforms start() returns false
// and callers should skip.  Not thread-safe: one thread drives a client.
//
// Process-global side effect: start() sets SIGPIPE to SIG_IGN (only when
// the disposition is still SIG_DFL) so a dead child surfaces as a failed
// send_line instead of killing the process.  A host that wants default
// SIGPIPE termination should not use ProcessClient.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace gmm::service {

class ProcessClient {
 public:
  ProcessClient() = default;
  /// Kills the child if it is still running.
  ~ProcessClient();

  ProcessClient(const ProcessClient&) = delete;
  ProcessClient& operator=(const ProcessClient&) = delete;

  /// Spawn `exe` with `args` (argv[0] is derived from exe).  The child's
  /// stderr passes through to ours so server logs show up in test output.
  bool start(const std::string& exe, const std::vector<std::string>& args);

  /// Connect to a listening `mapper_serve --listen` socket instead of
  /// spawning a child — send_line / read_line / close_stdin then behave
  /// exactly as in pipe mode (close_stdin half-closes the socket; the
  /// server lingers until in-flight requests answer).  Retries the
  /// connect until `timeout_seconds` so tests may race a just-spawned
  /// server's bind.  `spec` as in parse_socket_endpoint (path or
  /// host:port).  wait_exit does not apply (no child): returns -1.
  bool connect(const std::string& spec, double timeout_seconds = 5.0);

  /// Write one line (a '\n' is appended).  False once the pipe is broken.
  bool send_line(const std::string& line);

  /// Next full line from the child's stdout, or nullopt on timeout / EOF.
  std::optional<std::string> read_line(double timeout_seconds);

  /// Close the child's stdin (EOF — the server's graceful-drain trigger).
  void close_stdin();

  /// Wait for the child to exit; returns its exit code, or -1 on timeout
  /// (the child is then SIGKILLed and reaped).
  int wait_exit(double timeout_seconds);

  [[nodiscard]] bool started() const { return pid_ > 0; }

 private:
  void kill_child();

  long pid_ = -1;       // pid_t, kept as long to stay header-portable
  int to_child_ = -1;   // write end of the child's stdin (or the socket)
  int from_child_ = -1; // read end of the child's stdout (or a dup of it)
  bool socket_ = false; // connect() mode: fds are one stream socket
  std::string buffer_;  // bytes read but not yet returned as a line
};

}  // namespace gmm::service
