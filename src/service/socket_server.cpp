#include "service/socket_server.hpp"

#include <utility>

#include "service/protocol.hpp"
#include "support/fault.hpp"
#include "support/log.hpp"

namespace gmm::service {

std::optional<std::string> LineSplitter::next_line() {
  const std::size_t newline = buffer_.find('\n', scanned_);
  if (newline == std::string::npos) {
    // Remember the scanned prefix so repeated polls on a growing partial
    // line stay O(new bytes), not O(buffer).
    scanned_ = buffer_.size();
    return std::nullopt;
  }
  std::string line = buffer_.substr(0, newline);
  buffer_.erase(0, newline + 1);
  scanned_ = 0;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

SocketEndpoint parse_socket_endpoint(const std::string& spec) {
  SocketEndpoint endpoint;
  if (spec.empty()) {
    endpoint.error = "empty socket endpoint";
    return endpoint;
  }
  const std::size_t colon = spec.rfind(':');
  if (spec.find('/') != std::string::npos || colon == std::string::npos) {
    endpoint.ok = true;
    endpoint.is_unix = true;
    endpoint.path = spec;
    return endpoint;
  }
  const std::string host = spec.substr(0, colon);
  const std::string port_text = spec.substr(colon + 1);
  if (host.empty()) {
    endpoint.error = "tcp endpoint needs a host before ':'";
    return endpoint;
  }
  std::int64_t port = -1;
  for (const char c : port_text) {
    if (c < '0' || c > '9') {
      port = -1;
      break;
    }
    port = (port < 0 ? 0 : port) * 10 + (c - '0');
    if (port > 65535) break;
  }
  if (port_text.empty() || port < 0 || port > 65535) {
    endpoint.error = "tcp port must be an integer in [0, 65535]";
    return endpoint;
  }
  endpoint.ok = true;
  endpoint.host = host;
  endpoint.port = static_cast<int>(port);
  return endpoint;
}

}  // namespace gmm::service

#ifndef _WIN32

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <thread>

namespace gmm::service {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// One connected jsonl client.
struct Connection {
  int fd = -1;
  std::uint64_t id = 0;       // stable key (fds are reused by the kernel)
  LineSplitter in;
  std::string out;            // unflushed response bytes
  std::size_t out_offset = 0; // bytes of `out` already written
  std::set<std::string> inflight;  // map ids awaiting terminal responses
  bool read_eof = false;      // half-closed: no more requests, still owed
                              // responses for `inflight`
  bool dead = false;          // marked for removal at the next sweep
  // Per-client accounting (logged at disconnect, summed into the stats
  // response's "transport" object as it accrues).
  std::int64_t requests = 0;
  std::int64_t bytes_in = 0;
  std::int64_t bytes_out = 0;
  std::int64_t shed = 0;
};

class SocketServer {
 public:
  SocketServer(const SocketServerOptions& options,
               std::vector<arch::Board> boards,
               const ServiceOptions& service_options)
      : options_(options),
        service_(std::move(boards), service_options,
                 [this](const Response& r) { on_response(r); }) {}

  int run();

 private:
  // ---- setup -------------------------------------------------------------
  int bind_and_listen(const SocketEndpoint& endpoint);
  int bind_unix(const std::string& path);
  int bind_tcp(const std::string& host, int port);

  // ---- event-loop steps --------------------------------------------------
  void accept_clients();
  void read_client(Connection& conn);
  void dispatch_buffered_lines();
  void dispatch_line(Connection& conn, const std::string& line);
  void drain_worker_responses();
  void flush(Connection& conn);
  void sweep_closed();
  void finish_shutdown();

  // ---- response delivery -------------------------------------------------
  void on_response(const Response& response);  // MappingService sink
  void deliver(Connection& conn, const Response& response);
  void route_terminal(const Response& response);
  void drop(Connection& conn, const char* why);

  SocketServerOptions options_;
  int listen_fd_ = -1;
  std::string unix_path_;  // unlinked on exit when non-empty
  int wake_read_ = -1;     // self-pipe: workers nudge the poll loop
  int wake_write_ = -1;
  std::thread::id loop_thread_;

  std::map<std::uint64_t, Connection> conns_;
  std::uint64_t next_conn_id_ = 1;
  std::uint64_t next_turn_ = 0;  // fair-dispatch rotation cursor
  /// map id -> owning connection, maintained only on the loop thread.
  std::map<std::string, std::uint64_t> route_;

  // Dispatch context for synchronous sink calls (loop thread only).
  Connection* current_ = nullptr;
  std::string current_map_id_;
  bool current_inserted_route_ = false;

  std::mutex queue_mutex_;
  std::vector<Response> queue_;  // worker responses awaiting routing

  ServiceStats::Transport transport_;
  bool shutting_down_ = false;

  MappingService service_;  // last: its workers call on_response()
};

int SocketServer::bind_unix(const std::string& path) {
  sockaddr_un addr = {};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "socket path too long (max %zu): %s\n",
                 sizeof(addr.sun_path) - 1, path.c_str());
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  ::unlink(path.c_str());  // a stale socket file from a dead server
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    std::fprintf(stderr, "cannot listen on %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(fd);
    return -1;
  }
  unix_path_ = path;
  return fd;
}

int SocketServer::bind_tcp(const std::string& host, int port) {
  addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const std::string port_text = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_text.c_str(), &hints, &result) != 0 ||
      result == nullptr) {
    std::fprintf(stderr, "cannot resolve %s:%d\n", host.c_str(), port);
    return -1;
  }
  int fd = -1;
  for (const addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, 64) == 0) {
      break;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) {
    std::fprintf(stderr, "cannot listen on %s:%d: %s\n", host.c_str(), port,
                 std::strerror(errno));
  }
  return fd;
}

int SocketServer::bind_and_listen(const SocketEndpoint& endpoint) {
  const int fd = endpoint.is_unix ? bind_unix(endpoint.path)
                                  : bind_tcp(endpoint.host, endpoint.port);
  if (fd < 0) return -1;
  if (!set_nonblocking(fd)) {
    ::close(fd);
    return -1;
  }
  // Announce the BOUND endpoint on stdout — for "host:0" the kernel
  // picked the port, and spawners need it to connect.
  std::string bound;
  if (endpoint.is_unix) {
    bound = endpoint.path;
  } else {
    sockaddr_storage addr = {};
    socklen_t len = sizeof(addr);
    int bound_port = endpoint.port;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      if (addr.ss_family == AF_INET) {
        bound_port =
            ntohs(reinterpret_cast<const sockaddr_in*>(&addr)->sin_port);
      } else if (addr.ss_family == AF_INET6) {
        bound_port =
            ntohs(reinterpret_cast<const sockaddr_in6*>(&addr)->sin6_port);
      }
    }
    bound = endpoint.host + ":" + std::to_string(bound_port);
  }
  JsonObject event;
  event["event"] = std::string("listening");
  event["endpoint"] = bound;
  std::fprintf(stdout, "%s\n", Json(std::move(event)).dump().c_str());
  std::fflush(stdout);
  GMM_LOG(kInfo) << "socket_server: listening on " << bound;
  return fd;
}

int SocketServer::run() {
  const SocketEndpoint endpoint = parse_socket_endpoint(options_.listen);
  if (!endpoint.ok) {
    std::fprintf(stderr, "bad --listen endpoint: %s\n",
                 endpoint.error.c_str());
    return 2;
  }
  listen_fd_ = bind_and_listen(endpoint);
  if (listen_fd_ < 0) return 1;
  int wake[2] = {-1, -1};
  if (::pipe(wake) != 0 || !set_nonblocking(wake[0]) ||
      !set_nonblocking(wake[1])) {
    std::fprintf(stderr, "cannot create wakeup pipe\n");
    ::close(listen_fd_);
    return 1;
  }
  wake_read_ = wake[0];
  wake_write_ = wake[1];
  loop_thread_ = std::this_thread::get_id();

  std::vector<pollfd> pfds;
  std::vector<std::uint64_t> pfd_conn;  // conn id per pollfd (0 = none)
  while (!shutting_down_) {
    pfds.clear();
    pfd_conn.clear();
    pfds.push_back({wake_read_, POLLIN, 0});
    pfd_conn.push_back(0);
    if (conns_.size() < options_.max_clients) {
      pfds.push_back({listen_fd_, POLLIN, 0});
      pfd_conn.push_back(0);
    }
    for (auto& [id, conn] : conns_) {
      short events = 0;
      if (!conn.read_eof) events |= POLLIN;
      if (conn.out_offset < conn.out.size()) events |= POLLOUT;
      if (events == 0) continue;  // half-closed, idle: wake via inflight
      pfds.push_back({conn.fd, events, 0});
      pfd_conn.push_back(id);
    }
    // Requests can outlast the dispatch budget of one wake (a client
    // batch bigger than kMaxLinesPerWake): when complete lines are still
    // buffered, poll must not block — only gather new events and go
    // straight back to dispatching.
    int timeout = -1;
    for (const auto& [id, conn] : conns_) {
      if (!conn.dead && conn.in.has_line()) {
        timeout = 0;
        break;
      }
    }
    if (::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout) < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "poll failed: %s\n", std::strerror(errno));
      break;
    }
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      const pollfd& pfd = pfds[i];
      if (pfd.revents == 0) continue;
      if (pfd.fd == wake_read_) {
        char sink[256];
        while (::read(wake_read_, sink, sizeof(sink)) > 0) {
        }
        continue;
      }
      if (pfd.fd == listen_fd_) {
        accept_clients();
        continue;
      }
      const auto it = conns_.find(pfd_conn[i]);
      if (it == conns_.end()) continue;
      Connection& conn = it->second;
      if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (pfd.revents & POLLIN) == 0) {
        // Fully torn down (reset / both directions closed) with nothing
        // left to read: cancel what it had in flight and drop it.  A
        // plain read-EOF instead lingers until `inflight` drains.
        drop(conn, "connection reset");
        continue;
      }
      if ((pfd.revents & POLLIN) != 0) read_client(conn);
      if ((pfd.revents & POLLOUT) != 0 && !conn.dead) flush(conn);
    }
    drain_worker_responses();
    dispatch_buffered_lines();
    drain_worker_responses();
    sweep_closed();
  }

  if (shutting_down_) finish_shutdown();
  for (auto& [id, conn] : conns_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  conns_.clear();
  ::close(listen_fd_);
  ::close(wake_read_);
  ::close(wake_write_);
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
  const ServiceStats stats = service_.stats();
  GMM_LOG(kInfo) << "socket_server: drained (connections="
                 << transport_.connections_opened
                 << ", requests=" << transport_.requests
                 << ", accepted=" << stats.accepted
                 << ", completed=" << stats.completed
                 << ", rejected=" << stats.rejected
                 << ", dropped_responses=" << transport_.responses_dropped
                 << ")";
  return 0;
}

void SocketServer::accept_clients() {
  while (conns_.size() < options_.max_clients) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      // A signal between poll and accept must not orphan the pending
      // connection until the next poll round: retry now.
      if (errno == EINTR) continue;
      // EAGAIN: accepted everything pending.  Other errors (e.g. a
      // client that disconnected between poll and accept) are per-client
      // and must not stop the server.
      return;
    }
    if (GMM_FAULT("socket.accept", "fail")) {
      // Injected accept failure: tear the connection down before it ever
      // becomes a Connection, as if the client vanished mid-handshake.
      ::close(fd);
      continue;
    }
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    // Harmless ENOTSUP on unix sockets; a real latency win on TCP.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Connection conn;
    conn.fd = fd;
    conn.id = next_conn_id_++;
    ++transport_.connections_opened;
    GMM_LOG(kInfo) << "socket_server: client #" << conn.id << " connected";
    conns_.emplace(conn.id, std::move(conn));
  }
}

void SocketServer::read_client(Connection& conn) {
  char chunk[65536];
  while (true) {
    // Fault shims ahead of the real read: a forced EINTR exercises the
    // retry below, a forced ECONNRESET the drop path, and a short read
    // (1 byte) the partial-line reassembly in LineSplitter.
    ssize_t n;
    if (GMM_FAULT("socket.read", "eintr")) {
      n = -1;
      errno = EINTR;
    } else if (GMM_FAULT("socket.read", "econnreset")) {
      n = -1;
      errno = ECONNRESET;
    } else if (GMM_FAULT("socket.read", "short")) {
      n = ::read(conn.fd, chunk, 1);
    } else {
      n = ::read(conn.fd, chunk, sizeof(chunk));
    }
    if (n > 0) {
      conn.in.feed(chunk, static_cast<std::size_t>(n));
      conn.bytes_in += n;
      transport_.bytes_received += n;
      if (!conn.in.has_line() &&
          conn.in.pending_bytes() > options_.max_line_bytes) {
        drop(conn, "unterminated line exceeds max_line_bytes");
        return;
      }
      continue;
    }
    if (n == 0) {
      // Half-close: the client is done sending (the pipe mode's
      // write-EOF-then-read idiom).  Keep the connection until its
      // in-flight requests have answered and the buffer flushed.
      conn.read_eof = true;
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    drop(conn, "read failed");
    return;
  }
}

void SocketServer::dispatch_buffered_lines() {
  // Fair round-robin: each pass serves ONE buffered line per connection,
  // starting after the connection served first last time, so a client
  // that batched hundreds of requests cannot starve anyone.  The per-call
  // budget bounds time away from poll() under sustained load.
  constexpr int kMaxLinesPerWake = 256;
  int budget = kMaxLinesPerWake;
  bool any = true;
  while (any && budget > 0 && !shutting_down_) {
    any = false;
    // One rotation over all connections, starting at next_turn_.
    //
    // Cursor-safety audit (disconnect during a connection's own
    // dispatch slot): dispatch_line can mark ANY connection dead —
    // its own (write failure in a synchronous response) or a peer's
    // (shutdown broadcast) — but never erases from conns_; erasure
    // happens only in sweep_closed(), which run() calls strictly after
    // this function returns.  The id snapshot below therefore stays
    // valid for the whole rotation, the conns_.find(id) re-lookup per
    // slot skips anything that died mid-rotation instead of touching a
    // dangling iterator, and next_turn_ = id + 1 advances past the
    // served id even when that very connection drops in its own slot —
    // no id is visited twice in a rotation and none is skipped, so
    // per-client request accounting stays exact under disconnect
    // storms (pinned by SocketStress.DisconnectStormAccountingExact).
    std::vector<std::uint64_t> order;
    order.reserve(conns_.size());
    for (auto it = conns_.lower_bound(next_turn_); it != conns_.end(); ++it) {
      order.push_back(it->first);
    }
    for (auto it = conns_.begin();
         it != conns_.end() && it->first < next_turn_; ++it) {
      order.push_back(it->first);
    }
    for (const std::uint64_t id : order) {
      if (budget <= 0 || shutting_down_) break;
      const auto it = conns_.find(id);
      if (it == conns_.end() || it->second.dead) continue;
      const std::optional<std::string> line = it->second.in.next_line();
      if (!line.has_value()) continue;
      any = true;
      --budget;
      next_turn_ = id + 1;
      dispatch_line(it->second, *line);
    }
  }
}

void SocketServer::dispatch_line(Connection& conn, const std::string& line) {
  if (line.find_first_not_of(" \t\r") == std::string::npos) return;
  ++conn.requests;
  ++transport_.requests;
  const Request request = parse_request_line(line);
  if (request.method == Method::kMap &&
      options_.max_inflight_per_client > 0 &&
      conn.inflight.size() >= options_.max_inflight_per_client) {
    // Per-client quota: rejected at the transport layer, never reaching
    // the service — the shared admission queue stays available to other
    // clients while this one firehoses.
    ++conn.shed;
    ++transport_.shed;
    Response reject;
    reject.id = request.id;
    reject.method = "map";
    reject.v = request.version;
    reject.status = ResponseStatus::kRejected;
    reject.error = "rejected: client in-flight quota reached (" +
                   std::to_string(options_.max_inflight_per_client) + ")";
    reject.retryable = true;
    reject.retry_after_ms = 50;
    deliver(conn, reject);
    return;
  }
  current_ = &conn;
  current_map_id_.clear();
  current_inserted_route_ = false;
  if (request.method == Method::kMap) {
    // Optimistically route the id to this connection; a synchronous
    // rejection (duplicate id, full queue, bad knobs) takes it back in
    // on_response.  Ids are server-global: when the insert fails the id
    // belongs to another live request and the service will reject this
    // submission — routed to US, while the original keeps its route.
    current_inserted_route_ =
        route_.try_emplace(request.id, conn.id).second;
    if (current_inserted_route_) {
      conn.inflight.insert(request.id);
      current_map_id_ = request.id;
    }
  }
  if (request.method == Method::kShutdown) {
    // Stop admitting BEFORE draining (no further lines are dispatched),
    // then let the service ack through the normal sink path so the
    // requesting client sees the ack after every terminal response.
    shutting_down_ = true;
    service_.drain();
  }
  service_.handle(request);
  current_ = nullptr;
}

void SocketServer::on_response(const Response& response) {
  if (std::this_thread::get_id() == loop_thread_) {
    // Synchronous response to the request being dispatched (acks,
    // errors, admission rejections) — it belongs to the current
    // connection, not to whatever the id routes to.
    if (current_ == nullptr) return;  // defensive: no dispatch context
    if (response.method == "map" &&
        response.status == ResponseStatus::kRejected) {
      ++current_->shed;
      ++transport_.shed;
      // The optimistic route was for the admitted request this line
      // hoped to become; admission refused it, so take the route back
      // (a duplicate-id rejection never inserted one — the route
      // belongs to the original request).
      if (current_inserted_route_ && response.id == current_map_id_) {
        route_.erase(response.id);
        current_->inflight.erase(response.id);
      }
    }
    Response annotated = response;
    if (annotated.has_stats) annotated.stats.transport = transport_;
    deliver(*current_, annotated);
    return;
  }
  // Worker thread: queue for the loop and nudge poll().  A full pipe is
  // fine — one pending byte is enough to wake it.
  {
    const std::scoped_lock lock(queue_mutex_);
    queue_.push_back(response);
  }
  const char nudge = 'x';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_, &nudge, 1);
}

void SocketServer::drain_worker_responses() {
  std::vector<Response> batch;
  {
    const std::scoped_lock lock(queue_mutex_);
    batch.swap(queue_);
  }
  for (const Response& response : batch) route_terminal(response);
}

void SocketServer::route_terminal(const Response& response) {
  const auto route = route_.find(response.id);
  if (route == route_.end()) {
    // The client disconnected while its solve ran; the work is done but
    // nobody is listening.
    ++transport_.responses_dropped;
    return;
  }
  const std::uint64_t conn_id = route->second;
  route_.erase(route);
  const auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second.dead) {
    ++transport_.responses_dropped;
    return;
  }
  it->second.inflight.erase(response.id);
  deliver(it->second, response);
}

void SocketServer::deliver(Connection& conn, const Response& response) {
  if (conn.dead) {
    ++transport_.responses_dropped;
    return;
  }
  conn.out += response.to_line();
  conn.out.push_back('\n');
  if (conn.out.size() - conn.out_offset > options_.max_write_buffer_bytes) {
    drop(conn, "write backlog exceeds max_write_buffer_bytes");
    return;
  }
  flush(conn);
}

void SocketServer::flush(Connection& conn) {
  while (conn.out_offset < conn.out.size()) {
    // Fault shims mirroring read_client's: partial (1-byte) writes prove
    // the out_offset carry logic, EINTR the retry, ECONNRESET the drop.
    ssize_t n;
    if (GMM_FAULT("socket.write", "eintr")) {
      n = -1;
      errno = EINTR;
    } else if (GMM_FAULT("socket.write", "econnreset")) {
      n = -1;
      errno = ECONNRESET;
    } else if (GMM_FAULT("socket.write", "partial")) {
      n = ::send(conn.fd, conn.out.data() + conn.out_offset, 1, MSG_NOSIGNAL);
    } else {
      n = ::send(conn.fd, conn.out.data() + conn.out_offset,
                 conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    }
    if (n > 0) {
      conn.out_offset += static_cast<std::size_t>(n);
      conn.bytes_out += n;
      transport_.bytes_sent += n;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    drop(conn, "write failed");  // EPIPE: the client is gone for real
    return;
  }
  conn.out.clear();
  conn.out_offset = 0;
}

void SocketServer::drop(Connection& conn, const char* why) {
  if (conn.dead) return;
  conn.dead = true;
  GMM_LOG(kInfo) << "socket_server: dropping client #" << conn.id << " ("
                 << why << "; requests=" << conn.requests
                 << ", bytes_in=" << conn.bytes_in
                 << ", bytes_out=" << conn.bytes_out
                 << ", shed=" << conn.shed
                 << ", inflight=" << conn.inflight.size() << ")";
  // Nobody will read the answers: cancel the solves to free workers.
  // The cancel acks (and the eventual terminal responses) route to this
  // dead connection and are counted as dropped.
  for (const std::string& id : conn.inflight) {
    route_.erase(id);
    Request cancel;
    cancel.method = Method::kCancel;
    cancel.target = id;
    Connection* const saved = current_;
    current_ = &conn;
    service_.handle(cancel);
    current_ = saved;
  }
  conn.inflight.clear();
}

void SocketServer::sweep_closed() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    Connection& conn = it->second;
    const bool drained = conn.read_eof && conn.inflight.empty() &&
                         !conn.in.has_line() &&
                         conn.out_offset >= conn.out.size();
    if (conn.dead || drained) {
      GMM_LOG(kInfo) << "socket_server: client #" << conn.id
                     << " closed (requests=" << conn.requests
                     << ", bytes_in=" << conn.bytes_in
                     << ", bytes_out=" << conn.bytes_out
                     << ", shed=" << conn.shed << ")";
      ::close(conn.fd);
      ++transport_.connections_closed;
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void SocketServer::finish_shutdown() {
  // The service has drained (dispatch_line blocked on it), so every
  // terminal response is either delivered or queued.  Route the queue,
  // then give sockets a bounded window to take the remaining bytes.
  drain_worker_responses();
  const int kFlushRounds = 500;  // x 10 ms = 5 s cap
  for (int round = 0; round < kFlushRounds; ++round) {
    bool pending = false;
    for (auto& [id, conn] : conns_) {
      if (conn.dead) continue;
      flush(conn);
      if (conn.out_offset < conn.out.size()) pending = true;
    }
    if (!pending) break;
    ::poll(nullptr, 0, 10);
  }
}

}  // namespace

int run_socket_server(const SocketServerOptions& socket_options,
                      std::vector<arch::Board> boards,
                      const ServiceOptions& service_options) {
  SocketServer server(socket_options, std::move(boards), service_options);
  return server.run();
}

namespace {

/// A blocking connect(2) interrupted by a signal keeps completing in the
/// background — retrying connect() would yield EALREADY.  The portable
/// finish is to wait for writability and read SO_ERROR.
bool finish_interrupted_connect(int fd, std::string& error) {
  pollfd pfd = {fd, POLLOUT, 0};
  while (::poll(&pfd, 1, -1) < 0) {
    if (errno != EINTR) {
      error = std::strerror(errno);
      return false;
    }
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    error = std::strerror(errno);
    return false;
  }
  if (err != 0) {
    error = std::strerror(err);
    return false;
  }
  return true;
}

}  // namespace

int connect_socket_endpoint(const SocketEndpoint& endpoint,
                            std::string& error) {
  if (!endpoint.ok) {
    error = endpoint.error;
    return -1;
  }
  if (endpoint.is_unix) {
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (endpoint.path.size() >= sizeof(addr.sun_path)) {
      error = "socket path too long";
      return -1;
    }
    std::memcpy(addr.sun_path, endpoint.path.c_str(),
                endpoint.path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      error = std::strerror(errno);
      return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const int saved = errno;
      if (saved == EINTR && finish_interrupted_connect(fd, error)) return fd;
      if (saved != EINTR) error = std::strerror(saved);
      ::close(fd);
      return -1;
    }
    return fd;
  }
  addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const std::string port_text = std::to_string(endpoint.port);
  if (::getaddrinfo(endpoint.host.c_str(), port_text.c_str(), &hints,
                    &result) != 0 ||
      result == nullptr) {
    error = "cannot resolve host";
    return -1;
  }
  int fd = -1;
  for (const addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    bool connected = ::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0;
    if (!connected) {
      if (errno == EINTR) {
        connected = finish_interrupted_connect(fd, error);
      } else {
        error = std::strerror(errno);
      }
    }
    if (connected) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      break;
    }
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0 && error.empty()) error = "no usable address";
  return fd;
}

int run_socket_client(const std::string& spec) {
  const SocketEndpoint endpoint = parse_socket_endpoint(spec);
  std::string error;
  const int fd = connect_socket_endpoint(endpoint, error);
  if (fd < 0) {
    std::fprintf(stderr, "cannot connect to %s: %s\n", spec.c_str(),
                 error.c_str());
    return endpoint.ok ? 1 : 2;
  }
  bool stdin_open = true;
  int exit_code = 0;
  while (true) {
    pollfd pfds[2] = {{fd, POLLIN, 0}, {0, POLLIN, 0}};
    const nfds_t nfds = stdin_open ? 2 : 1;
    if (::poll(pfds, nfds, -1) < 0) {
      if (errno == EINTR) continue;
      exit_code = 1;
      break;
    }
    if ((pfds[0].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      char buf[65536];
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0 && errno == EINTR) continue;  // interrupted, not closed
      if (n <= 0) break;  // server closed: the session is over
      if (std::fwrite(buf, 1, static_cast<std::size_t>(n), stdout) !=
          static_cast<std::size_t>(n)) {
        exit_code = 1;
        break;
      }
      std::fflush(stdout);
    }
    if (stdin_open && (pfds[1].revents & (POLLIN | POLLHUP)) != 0) {
      char buf[65536];
      const ssize_t n = ::read(0, buf, sizeof(buf));
      if (n < 0 && errno == EINTR) continue;  // interrupted, not EOF
      if (n <= 0) {
        // Batch sent: half-close and keep reading responses.
        stdin_open = false;
        ::shutdown(fd, SHUT_WR);
        continue;
      }
      std::size_t sent = 0;
      while (sent < static_cast<std::size_t>(n)) {
        const ssize_t w =
            ::send(fd, buf + sent, static_cast<std::size_t>(n) - sent,
                   MSG_NOSIGNAL);
        if (w < 0 && errno == EINTR) continue;
        if (w <= 0) {
          std::fprintf(stderr, "connection lost while sending\n");
          ::close(fd);
          return 1;
        }
        sent += static_cast<std::size_t>(w);
      }
    }
  }
  ::close(fd);
  return exit_code;
}

}  // namespace gmm::service

#else  // _WIN32

namespace gmm::service {

int run_socket_server(const SocketServerOptions&, std::vector<arch::Board>,
                      const ServiceOptions&) {
  return 2;  // socket serving is POSIX-only, like ProcessClient
}

int connect_socket_endpoint(const SocketEndpoint&, std::string& error) {
  error = "sockets are POSIX-only";
  return -1;
}

int run_socket_client(const std::string&) { return 2; }

}  // namespace gmm::service

#endif
