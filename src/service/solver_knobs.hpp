// Per-request solver knobs: the single place where the wire protocol's
// solver controls are defined, validated, and mapped onto ilp::MipOptions.
//
// The v2 request envelope carries them in a nested "options" object
// ({"gap":0.01,"max_nodes":100000,"time_limit_ms":5000,"threads":2,
//   "max_stored_bases":1024}); the legacy v1 flat field "threads" is
// canonicalized into the same struct, so protocol parsing and
// MipOptions construction never drift apart.  Every knob has a sentinel
// "unset" value meaning "keep the solver default" — an empty options
// object changes nothing.
//
// Validation REJECTS out-of-range values (the request terminates with
// wire status "rejected" and a message naming the knob) instead of
// silently clamping: a client asking for gap 5.0 or -3 threads has a
// bug, and a clamped solve would return an answer whose quality
// contract the client never agreed to.
#pragma once

#include <cstdint>
#include <string>

#include "ilp/mip_solver.hpp"
#include "service/json.hpp"

namespace gmm::service {

/// One request's solver controls.  Sentinels (< 0) mean "unset — keep
/// the MipOptions default"; `threads` uses 0 for "the server's per-solve
/// cap" to match the v1 wire contract.
struct SolverKnobs {
  /// Relative optimality gap, in [0, 1].  Unset keeps MipOptions'
  /// 1e-4 (the paper's CPLEX default).
  double gap = -1.0;
  /// Branch & bound node budget, in [1, kMaxNodes].
  std::int64_t max_nodes = -1;
  /// Solve wall-clock budget in milliseconds, in
  /// [kMinTimeLimitMs, kMaxTimeLimitMs].  Unlike the request-level
  /// "deadline_ms" (whose clock starts at admission, so queue wait
  /// counts), this budgets the SOLVE only.  The wire parser REJECTS
  /// values below kMinTimeLimitMs — 0 in particular is ambiguous
  /// ("no time" vs "no limit") and is never accepted.  Programmatic
  /// callers that set 0.0 directly get an already-expired budget
  /// (time_limit_seconds = 0.0 → the solver stops with kTimeLimit at
  /// its first check); only the unset sentinel (< 0) keeps MipOptions'
  /// infinite default.
  double time_limit_ms = -1.0;
  /// B&B workers for this solve, in [0, kMaxThreads]; 0 = the server's
  /// per-solve cap.  Always further clamped to that cap.
  int threads = 1;
  /// LP basis warm-start cache size, in [0, kMaxStoredBases]; 0 disables
  /// the cache.  Unset keeps MipOptions' 4096.
  std::int64_t max_stored_bases = -1;
  /// Bypass the service's solution cache for this request: always solve
  /// cold, never insert the result.  A service-layer knob — it does not
  /// touch MipOptions (apply_solver_knobs ignores it).
  bool no_cache = false;
  /// LP engine for every node relaxation: "" (unset — keep MipOptions'
  /// default, dense), "dense", or "sparse".  Anything else is rejected
  /// with a message naming the knob, like every other knob.  Purely a
  /// speed control: both engines prove identical objectives (see
  /// lp::LpBackend), so it never changes the answer's quality contract.
  std::string lp_engine;
  /// Portfolio lane count for the "portfolio" formulation, in
  /// [1, kMaxLanes].  Rejected (not clamped) out of range; ignored by
  /// the other formulations.  A service-layer knob — apply_solver_knobs
  /// ignores it.  Unset (< 0) means the service default (3 lanes).
  int lanes = -1;

  /// Accepted ranges (rejecting, not clamping, beyond them).
  static constexpr std::int64_t kMaxNodes = 50'000'000;
  static constexpr double kMinTimeLimitMs = 1.0;
  static constexpr double kMaxTimeLimitMs = 3'600'000.0;  // one hour
  static constexpr int kMaxThreads = 1024;
  static constexpr std::int64_t kMaxStoredBases = 1'048'576;
  static constexpr int kMaxLanes = 6;
};

/// Parse the knobs a map request carries: the nested "options" object
/// when present, plus the legacy flat "threads" field (options wins when
/// both name the same knob).  Returns false with `reject_reason` naming
/// the offending knob on any out-of-range or mistyped value; unknown
/// keys INSIDE "options" are also rejected (a misspelled knob silently
/// ignored would hand back an answer under the wrong quality contract).
bool parse_solver_knobs(const Json& request, SolverKnobs& out,
                        std::string& reject_reason);

/// Map the knobs onto a solve's MipOptions.  `max_threads_per_solve` is
/// the server's per-solve parallelism cap (ServiceOptions): a thread ask
/// of 0 means "the cap", and any explicit ask is clamped to it — the cap
/// is operator policy, not a client error.
void apply_solver_knobs(const SolverKnobs& knobs, int max_threads_per_solve,
                        ilp::MipOptions& mip);

/// The canonical v2 wire form: an "options" JsonObject holding exactly
/// the knobs that are set (empty when all are defaults).
[[nodiscard]] Json solver_knobs_to_json(const SolverKnobs& knobs);

}  // namespace gmm::service
