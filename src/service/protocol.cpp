#include "service/protocol.hpp"

namespace gmm::service {

namespace {

bool field_as_positive_int(const Json& object, const std::string& key,
                           int fallback, int max, int& out,
                           std::string& error) {
  const Json* field = object.find(key);
  if (field == nullptr) {
    out = fallback;
    return true;
  }
  if (!field->is_number() || field->as_number() < 0 ||
      field->as_number() > max) {
    error = "'" + key + "' must be a number in [0, " + std::to_string(max) +
            "]";
    return false;
  }
  out = static_cast<int>(field->as_number());
  return true;
}

}  // namespace

Request parse_request_line(const std::string& line) {
  Request request;
  const JsonParseResult parsed = parse_json(line);
  if (!parsed.ok) {
    request.error = "bad json: " + parsed.error;
    return request;
  }
  const Json& object = parsed.value;
  if (!object.is_object()) {
    request.error = "request must be a json object";
    return request;
  }
  // Recover the id first so even a malformed request gets a correlated
  // error response.
  request.id = object.get_string("id");

  const std::string method = object.get_string("method");
  if (method == "map") {
    request.map.board_name = object.get_string("board");
    request.map.board_text = object.get_string("board_text");
    request.map.design_text = object.get_string("design_text");
    request.map.design_path = object.get_string("design_path");
    if (request.id.empty()) {
      request.error = "map requests need an 'id' to correlate the response";
      return request;
    }
    if (request.map.design_text.empty() == request.map.design_path.empty()) {
      request.error =
          "map requests need exactly one of 'design_text' or 'design_path'";
      return request;
    }
    const std::string formulation =
        object.get_string("formulation", "global");
    if (formulation == "complete") {
      request.map.complete = true;
    } else if (formulation == "sharded") {
      request.map.sharded = true;
    } else if (formulation != "global") {
      request.error =
          "'formulation' must be 'global', 'complete' or 'sharded'";
      return request;
    }
    // 1024 matches mapper_cli's thread-count sanity bound.
    if (!field_as_positive_int(object, "threads", 1, 1024,
                               request.map.threads, request.error)) {
      return request;
    }
    const Json* deadline = object.find("deadline_ms");
    if (deadline != nullptr) {
      if (!deadline->is_number() || deadline->as_number() < 0) {
        request.error = "'deadline_ms' must be a non-negative number";
        return request;
      }
      request.map.deadline_ms = deadline->as_number();
    }
    request.method = Method::kMap;
  } else if (method == "cancel") {
    request.target = object.get_string("target");
    if (request.target.empty()) {
      request.error = "cancel requests need a 'target' id";
      return request;
    }
    request.method = Method::kCancel;
  } else if (method == "ping") {
    request.method = Method::kPing;
  } else if (method == "stats") {
    request.method = Method::kStats;
  } else if (method == "shutdown") {
    request.method = Method::kShutdown;
  } else if (method.empty()) {
    request.error = "missing 'method'";
  } else {
    request.error = "unknown method '" + method + "'";
  }
  return request;
}

const char* to_string(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk:
      return "ok";
    case ResponseStatus::kTimeout:
      return "timeout";
    case ResponseStatus::kCancelled:
      return "cancelled";
    case ResponseStatus::kInfeasible:
      return "infeasible";
    case ResponseStatus::kRejected:
      return "rejected";
    case ResponseStatus::kError:
      return "error";
  }
  return "?";
}

Json Response::to_json() const {
  JsonObject object;
  if (!id.empty()) object["id"] = id;
  if (!method.empty()) object["method"] = method;
  object["status"] = std::string(to_string(status));
  if (!error.empty()) object["error"] = error;
  if (!target.empty()) {
    object["target"] = target;
    object["found"] = found;
  }
  if (has_result) {
    object["solve_status"] = solve_status;
    if (!stop_reason.empty()) object["stop_reason"] = stop_reason;
    object["objective"] = objective;
    object["nodes"] = nodes;
    object["seconds"] = seconds;
    object["retries"] = retries;
    if (shards > 0) {
      object["shards"] = static_cast<std::int64_t>(shards);
      object["stitch_cost"] = stitch_cost;
    }
    JsonArray rows;
    rows.reserve(placements.size());
    for (const PlacementEntry& p : placements) {
      JsonObject row;
      row["segment"] = p.segment;
      row["type"] = p.type;
      row["instance"] = p.instance;
      row["first_port"] = p.first_port;
      row["ports"] = p.ports;
      row["config"] = p.config;
      row["offset_bits"] = p.offset_bits;
      row["block_bits"] = p.block_bits;
      row["kind"] = p.kind;
      rows.emplace_back(std::move(row));
    }
    object["placements"] = std::move(rows);
  }
  if (has_stats) {
    object["accepted"] = stats.accepted;
    object["rejected"] = stats.rejected;
    object["completed"] = stats.completed;
    object["cancelled"] = stats.cancelled;
    object["timed_out"] = stats.timed_out;
    JsonObject solver;
    solver["solves"] = stats.solves;
    solver["nodes"] = stats.nodes;
    solver["lp_iterations"] = stats.lp_iterations;
    solver["sharded_requests"] = stats.sharded_requests;
    solver["shard_solves"] = stats.shard_solves;
    solver["bases_stored"] = stats.basis.stored;
    solver["bases_loaded"] = stats.basis.loaded;
    solver["bases_evicted"] = stats.basis.evicted;
    solver["cold_pops"] = stats.basis.cold_pops;
    solver["warm_pop_pivots"] = stats.basis.warm_pop_pivots;
    solver["cold_pop_pivots"] = stats.basis.cold_pop_pivots;
    solver["basis_hit_rate"] = stats.basis.hit_rate();
    object["solver"] = std::move(solver);
  }
  return Json(std::move(object));
}

std::string Response::to_line() const { return to_json().dump(); }

bool Response::from_json(const Json& value, Response& out) {
  if (!value.is_object()) return false;
  out = Response{};
  out.id = value.get_string("id");
  out.method = value.get_string("method");
  const std::string status = value.get_string("status");
  bool known = false;
  for (const ResponseStatus s :
       {ResponseStatus::kOk, ResponseStatus::kTimeout,
        ResponseStatus::kCancelled, ResponseStatus::kInfeasible,
        ResponseStatus::kRejected, ResponseStatus::kError}) {
    if (status == to_string(s)) {
      out.status = s;
      known = true;
      break;
    }
  }
  if (!known) return false;
  out.error = value.get_string("error");
  out.target = value.get_string("target");
  out.found = value.get_bool("found", false);
  const Json* solve_status = value.find("solve_status");
  if (solve_status != nullptr && solve_status->is_string()) {
    out.has_result = true;
    out.solve_status = solve_status->as_string();
    out.stop_reason = value.get_string("stop_reason");
    out.objective = value.get_number("objective", 0.0);
    out.nodes = static_cast<std::int64_t>(value.get_number("nodes", 0.0));
    out.seconds = value.get_number("seconds", 0.0);
    out.retries = static_cast<int>(value.get_number("retries", 0.0));
    out.shards = static_cast<int>(value.get_number("shards", 0.0));
    out.stitch_cost = value.get_number("stitch_cost", 0.0);
    const Json* rows = value.find("placements");
    if (rows != nullptr && rows->is_array()) {
      for (const Json& row : rows->as_array()) {
        if (!row.is_object()) return false;
        PlacementEntry p;
        p.segment = row.get_string("segment");
        p.type = row.get_string("type");
        p.instance =
            static_cast<std::int64_t>(row.get_number("instance", 0.0));
        p.first_port =
            static_cast<std::int64_t>(row.get_number("first_port", 0.0));
        p.ports = static_cast<std::int64_t>(row.get_number("ports", 0.0));
        p.config = row.get_string("config");
        p.offset_bits =
            static_cast<std::int64_t>(row.get_number("offset_bits", 0.0));
        p.block_bits =
            static_cast<std::int64_t>(row.get_number("block_bits", 0.0));
        p.kind = row.get_string("kind");
        out.placements.push_back(std::move(p));
      }
    }
  }
  if (out.method == "stats" && value.find("accepted") != nullptr) {
    out.has_stats = true;
    const auto count = [&value](const char* key) {
      return static_cast<std::int64_t>(value.get_number(key, 0.0));
    };
    out.stats.accepted = count("accepted");
    out.stats.rejected = count("rejected");
    out.stats.completed = count("completed");
    out.stats.cancelled = count("cancelled");
    out.stats.timed_out = count("timed_out");
    const Json* solver = value.find("solver");
    if (solver != nullptr && solver->is_object()) {
      const auto scount = [solver](const char* key) {
        return static_cast<std::int64_t>(solver->get_number(key, 0.0));
      };
      out.stats.solves = scount("solves");
      out.stats.nodes = scount("nodes");
      out.stats.lp_iterations = scount("lp_iterations");
      out.stats.sharded_requests = scount("sharded_requests");
      out.stats.shard_solves = scount("shard_solves");
      out.stats.basis.stored = scount("bases_stored");
      out.stats.basis.loaded = scount("bases_loaded");
      out.stats.basis.evicted = scount("bases_evicted");
      out.stats.basis.cold_pops = scount("cold_pops");
      out.stats.basis.warm_pop_pivots = scount("warm_pop_pivots");
      out.stats.basis.cold_pop_pivots = scount("cold_pop_pivots");
    }
  }
  return true;
}

}  // namespace gmm::service
