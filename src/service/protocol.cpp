#include "service/protocol.hpp"

#include <array>
#include <string_view>

#include "support/fault.hpp"

namespace gmm::service {

namespace {

/// Count the top-level fields of `object` that are not in `known`.
/// Unknown fields are tolerated (forward compatibility: a v3 client
/// talking to a v2 server should degrade, not break) but surfaced
/// through the `unknown_field_requests` stat so drift is visible.
template <std::size_t N>
int count_unknown_fields(const Json& object,
                         const std::array<std::string_view, N>& known) {
  int unknown = 0;
  for (const auto& [key, value] : object.as_object()) {
    (void)value;
    bool found = false;
    for (const std::string_view k : known) {
      if (key == k) {
        found = true;
        break;
      }
    }
    if (!found) ++unknown;
  }
  return unknown;
}

}  // namespace

Request parse_request_line(const std::string& line) {
  Request request;
  if (GMM_FAULT("service.json", "fail")) {
    request.error = "injected fault: json parse failure";
    return request;
  }
  const JsonParseResult parsed = parse_json(line);
  if (!parsed.ok) {
    request.error = "bad json: " + parsed.error;
    return request;
  }
  const Json& object = parsed.value;
  if (!object.is_object()) {
    request.error = "request must be a json object";
    return request;
  }
  // Recover the id and version first so even a malformed request gets a
  // correlated, version-echoing error response.
  request.id = object.get_string("id");
  const Json* version = object.find("v");
  if (version != nullptr) {
    if (!version->is_number() || version->as_number() < 1 ||
        version->as_number() > kProtocolVersionMax ||
        version->as_number() !=
            static_cast<double>(static_cast<int>(version->as_number()))) {
      request.error = "'v' must be an integer in [1, " +
                      std::to_string(kProtocolVersionMax) + "]";
      return request;
    }
    request.version = static_cast<int>(version->as_number());
  }

  const std::string method = object.get_string("method");
  if (method == "map") {
    static constexpr std::array<std::string_view, 12> kKnown = {
        "v",           "id",          "method",  "board",
        "board_text",  "design_text", "design_path", "formulation",
        "complete",    "threads",     "deadline_ms", "options"};
    request.unknown_fields = count_unknown_fields(object, kKnown);
    request.map.board_name = object.get_string("board");
    request.map.board_text = object.get_string("board_text");
    request.map.design_text = object.get_string("design_text");
    request.map.design_path = object.get_string("design_path");
    if (request.id.empty()) {
      request.error = "map requests need an 'id' to correlate the response";
      return request;
    }
    if (request.map.design_text.empty() == request.map.design_path.empty()) {
      request.error =
          "map requests need exactly one of 'design_text' or 'design_path'";
      return request;
    }
    // "formulation" wins over the oldest-style flat "complete":true flag;
    // both canonicalize onto the same booleans.
    const std::string formulation =
        object.get_string("formulation", object.get_bool("complete", false)
                                             ? "complete"
                                             : "global");
    if (formulation == "complete") {
      request.map.complete = true;
    } else if (formulation == "sharded") {
      request.map.sharded = true;
    } else if (formulation == "portfolio") {
      request.map.portfolio = true;
    } else if (formulation != "global") {
      request.error =
          "'formulation' must be 'global', 'complete', 'sharded' or "
          "'portfolio'";
      return request;
    }
    const Json* deadline = object.find("deadline_ms");
    if (deadline != nullptr) {
      if (!deadline->is_number() || deadline->as_number() < 0) {
        request.error = "'deadline_ms' must be a non-negative number";
        return request;
      }
      request.map.deadline_ms = deadline->as_number();
    }
    // Solver knobs last: the request is structurally valid by now, so an
    // out-of-range knob is a REJECTION (kMap + reject_reason), not a
    // protocol error — the client spoke the protocol fine and asked for
    // a contract the server refuses.
    request.method = Method::kMap;
    std::string reject;
    if (!parse_solver_knobs(object, request.map.knobs, reject)) {
      request.reject_reason = std::move(reject);
    }
  } else if (method == "cancel") {
    static constexpr std::array<std::string_view, 4> kKnown = {
        "v", "id", "method", "target"};
    request.unknown_fields = count_unknown_fields(object, kKnown);
    request.target = object.get_string("target");
    if (request.target.empty()) {
      request.error = "cancel requests need a 'target' id";
      return request;
    }
    request.method = Method::kCancel;
  } else if (method == "ping" || method == "stats" || method == "shutdown") {
    static constexpr std::array<std::string_view, 3> kKnown = {"v", "id",
                                                              "method"};
    request.unknown_fields = count_unknown_fields(object, kKnown);
    request.method = method == "ping"    ? Method::kPing
                     : method == "stats" ? Method::kStats
                                         : Method::kShutdown;
  } else if (method.empty()) {
    request.error = "missing 'method'";
  } else {
    request.error = "unknown method '" + method + "'";
  }
  return request;
}

const char* to_string(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk:
      return "ok";
    case ResponseStatus::kTimeout:
      return "timeout";
    case ResponseStatus::kCancelled:
      return "cancelled";
    case ResponseStatus::kStalled:
      return "stalled";
    case ResponseStatus::kInfeasible:
      return "infeasible";
    case ResponseStatus::kRejected:
      return "rejected";
    case ResponseStatus::kError:
      return "error";
  }
  return "?";
}

Json Response::to_json() const {
  JsonObject object;
  if (!id.empty()) object["id"] = id;
  if (!method.empty()) object["method"] = method;
  if (v > 0) object["v"] = v;
  object["status"] = std::string(to_string(status));
  if (!error.empty()) object["error"] = error;
  // The taxonomy rides on every non-ok response; ok responses (and the
  // synchronous acks, which are always ok) keep their legacy shape.
  if (status != ResponseStatus::kOk) object["retryable"] = retryable;
  if (retry_after_ms > 0) object["retry_after_ms"] = retry_after_ms;
  if (degraded >= 0) object["degraded"] = degraded > 0;
  // Outside the has_result block: a stalled solve with no incumbent has
  // no result payload but still owes the client its stop reason.
  if (!stop_reason.empty()) object["stop_reason"] = stop_reason;
  if (!target.empty()) {
    object["target"] = target;
    object["found"] = found;
  }
  if (has_result) {
    object["solve_status"] = solve_status;
    object["objective"] = objective;
    object["nodes"] = nodes;
    object["seconds"] = seconds;
    object["retries"] = retries;
    if (cached) object["cached"] = true;
    if (shards > 0) {
      object["shards"] = static_cast<std::int64_t>(shards);
      object["stitch_cost"] = stitch_cost;
    }
    if (lanes > 0) {
      object["lanes"] = static_cast<std::int64_t>(lanes);
      if (!winner.empty()) object["winner"] = winner;
      object["lanes_cancelled"] = static_cast<std::int64_t>(lanes_cancelled);
    }
    JsonArray rows;
    rows.reserve(placements.size());
    for (const PlacementEntry& p : placements) {
      JsonObject row;
      row["segment"] = p.segment;
      row["type"] = p.type;
      row["instance"] = p.instance;
      row["first_port"] = p.first_port;
      row["ports"] = p.ports;
      row["config"] = p.config;
      row["offset_bits"] = p.offset_bits;
      row["block_bits"] = p.block_bits;
      row["kind"] = p.kind;
      rows.emplace_back(std::move(row));
    }
    object["placements"] = std::move(rows);
  }
  if (has_stats) {
    object["accepted"] = stats.accepted;
    object["rejected"] = stats.rejected;
    object["completed"] = stats.completed;
    object["cancelled"] = stats.cancelled;
    object["timed_out"] = stats.timed_out;
    object["stalled"] = stats.stalled;
    object["shed_overload"] = stats.shed_overload;
    object["unknown_field_requests"] = stats.unknown_field_requests;
    JsonObject solver;
    solver["solves"] = stats.solves;
    solver["nodes"] = stats.nodes;
    solver["lp_iterations"] = stats.lp_iterations;
    solver["refactorizations"] = stats.refactorizations;
    solver["sharded_requests"] = stats.sharded_requests;
    solver["shard_solves"] = stats.shard_solves;
    solver["bases_stored"] = stats.basis.stored;
    solver["bases_loaded"] = stats.basis.loaded;
    solver["bases_evicted"] = stats.basis.evicted;
    solver["cold_pops"] = stats.basis.cold_pops;
    solver["warm_pop_pivots"] = stats.basis.warm_pop_pivots;
    solver["cold_pop_pivots"] = stats.basis.cold_pop_pivots;
    solver["basis_hit_rate"] = stats.basis.hit_rate();
    object["solver"] = std::move(solver);
    JsonObject cache;
    cache["hits"] = stats.cache.hits;
    cache["misses"] = stats.cache.misses;
    cache["bypasses"] = stats.cache.bypasses;
    cache["near_misses"] = stats.cache.near_misses;
    cache["verify_fails"] = stats.cache.verify_fails;
    cache["insertions"] = stats.cache.insertions;
    cache["evictions"] = stats.cache.evictions;
    cache["entries"] = stats.cache.entries;
    object["cache"] = std::move(cache);
    // Only a socket-fronted server has transport traffic; the pipe mode
    // keeps its legacy wire shape.
    if (stats.transport.connections_opened > 0) {
      JsonObject transport;
      transport["connections_opened"] = stats.transport.connections_opened;
      transport["connections_closed"] = stats.transport.connections_closed;
      transport["requests"] = stats.transport.requests;
      transport["bytes_received"] = stats.transport.bytes_received;
      transport["bytes_sent"] = stats.transport.bytes_sent;
      transport["responses_dropped"] = stats.transport.responses_dropped;
      transport["shed"] = stats.transport.shed;
      object["transport"] = std::move(transport);
    }
    // Likewise emitted only once a portfolio request has actually run.
    if (stats.portfolio.requests > 0) {
      JsonObject portfolio;
      portfolio["requests"] = stats.portfolio.requests;
      portfolio["lanes_launched"] = stats.portfolio.lanes_launched;
      portfolio["lanes_cancelled"] = stats.portfolio.lanes_cancelled;
      JsonObject winners;
      for (const auto& [name, wins] : stats.portfolio.winners) {
        winners[name] = wins;
      }
      portfolio["winners"] = std::move(winners);
      object["portfolio"] = std::move(portfolio);
    }
  }
  return Json(std::move(object));
}

std::string Response::to_line() const { return to_json().dump(); }

bool Response::from_json(const Json& value, Response& out) {
  if (!value.is_object()) return false;
  out = Response{};
  out.id = value.get_string("id");
  out.method = value.get_string("method");
  out.v = static_cast<int>(value.get_number("v", 0.0));
  const std::string status = value.get_string("status");
  bool known = false;
  for (const ResponseStatus s :
       {ResponseStatus::kOk, ResponseStatus::kTimeout,
        ResponseStatus::kCancelled, ResponseStatus::kStalled,
        ResponseStatus::kInfeasible, ResponseStatus::kRejected,
        ResponseStatus::kError}) {
    if (status == to_string(s)) {
      out.status = s;
      known = true;
      break;
    }
  }
  if (!known) return false;
  out.error = value.get_string("error");
  out.target = value.get_string("target");
  out.found = value.get_bool("found", false);
  out.retryable = value.get_bool("retryable", false);
  out.retry_after_ms =
      static_cast<std::int64_t>(value.get_number("retry_after_ms", 0.0));
  const Json* degraded = value.find("degraded");
  if (degraded != nullptr && degraded->is_bool()) {
    out.degraded = degraded->as_bool() ? 1 : 0;
  }
  out.stop_reason = value.get_string("stop_reason");
  const Json* solve_status = value.find("solve_status");
  if (solve_status != nullptr && solve_status->is_string()) {
    out.has_result = true;
    out.solve_status = solve_status->as_string();
    out.stop_reason = value.get_string("stop_reason");
    out.objective = value.get_number("objective", 0.0);
    out.nodes = static_cast<std::int64_t>(value.get_number("nodes", 0.0));
    out.seconds = value.get_number("seconds", 0.0);
    out.retries = static_cast<int>(value.get_number("retries", 0.0));
    out.cached = value.get_bool("cached", false);
    out.shards = static_cast<int>(value.get_number("shards", 0.0));
    out.stitch_cost = value.get_number("stitch_cost", 0.0);
    out.lanes = static_cast<int>(value.get_number("lanes", 0.0));
    out.winner = value.get_string("winner");
    out.lanes_cancelled =
        static_cast<int>(value.get_number("lanes_cancelled", 0.0));
    const Json* rows = value.find("placements");
    if (rows != nullptr && rows->is_array()) {
      for (const Json& row : rows->as_array()) {
        if (!row.is_object()) return false;
        PlacementEntry p;
        p.segment = row.get_string("segment");
        p.type = row.get_string("type");
        p.instance =
            static_cast<std::int64_t>(row.get_number("instance", 0.0));
        p.first_port =
            static_cast<std::int64_t>(row.get_number("first_port", 0.0));
        p.ports = static_cast<std::int64_t>(row.get_number("ports", 0.0));
        p.config = row.get_string("config");
        p.offset_bits =
            static_cast<std::int64_t>(row.get_number("offset_bits", 0.0));
        p.block_bits =
            static_cast<std::int64_t>(row.get_number("block_bits", 0.0));
        p.kind = row.get_string("kind");
        out.placements.push_back(std::move(p));
      }
    }
  }
  if (out.method == "stats" && value.find("accepted") != nullptr) {
    out.has_stats = true;
    const auto count = [&value](const char* key) {
      return static_cast<std::int64_t>(value.get_number(key, 0.0));
    };
    out.stats.accepted = count("accepted");
    out.stats.rejected = count("rejected");
    out.stats.completed = count("completed");
    out.stats.cancelled = count("cancelled");
    out.stats.timed_out = count("timed_out");
    out.stats.stalled = count("stalled");
    out.stats.shed_overload = count("shed_overload");
    out.stats.unknown_field_requests = count("unknown_field_requests");
    const Json* solver = value.find("solver");
    if (solver != nullptr && solver->is_object()) {
      const auto scount = [solver](const char* key) {
        return static_cast<std::int64_t>(solver->get_number(key, 0.0));
      };
      out.stats.solves = scount("solves");
      out.stats.nodes = scount("nodes");
      out.stats.lp_iterations = scount("lp_iterations");
      out.stats.refactorizations = scount("refactorizations");
      out.stats.sharded_requests = scount("sharded_requests");
      out.stats.shard_solves = scount("shard_solves");
      out.stats.basis.stored = scount("bases_stored");
      out.stats.basis.loaded = scount("bases_loaded");
      out.stats.basis.evicted = scount("bases_evicted");
      out.stats.basis.cold_pops = scount("cold_pops");
      out.stats.basis.warm_pop_pivots = scount("warm_pop_pivots");
      out.stats.basis.cold_pop_pivots = scount("cold_pop_pivots");
    }
    const Json* cache = value.find("cache");
    if (cache != nullptr && cache->is_object()) {
      const auto ccount = [cache](const char* key) {
        return static_cast<std::int64_t>(cache->get_number(key, 0.0));
      };
      out.stats.cache.hits = ccount("hits");
      out.stats.cache.misses = ccount("misses");
      out.stats.cache.bypasses = ccount("bypasses");
      out.stats.cache.near_misses = ccount("near_misses");
      out.stats.cache.verify_fails = ccount("verify_fails");
      out.stats.cache.insertions = ccount("insertions");
      out.stats.cache.evictions = ccount("evictions");
      out.stats.cache.entries = ccount("entries");
    }
    const Json* transport = value.find("transport");
    if (transport != nullptr && transport->is_object()) {
      const auto tcount = [transport](const char* key) {
        return static_cast<std::int64_t>(transport->get_number(key, 0.0));
      };
      out.stats.transport.connections_opened = tcount("connections_opened");
      out.stats.transport.connections_closed = tcount("connections_closed");
      out.stats.transport.requests = tcount("requests");
      out.stats.transport.bytes_received = tcount("bytes_received");
      out.stats.transport.bytes_sent = tcount("bytes_sent");
      out.stats.transport.responses_dropped = tcount("responses_dropped");
      out.stats.transport.shed = tcount("shed");
    }
    const Json* portfolio = value.find("portfolio");
    if (portfolio != nullptr && portfolio->is_object()) {
      const auto pcount = [portfolio](const char* key) {
        return static_cast<std::int64_t>(portfolio->get_number(key, 0.0));
      };
      out.stats.portfolio.requests = pcount("requests");
      out.stats.portfolio.lanes_launched = pcount("lanes_launched");
      out.stats.portfolio.lanes_cancelled = pcount("lanes_cancelled");
      const Json* winners = portfolio->find("winners");
      if (winners != nullptr && winners->is_object()) {
        for (const auto& [name, wins] : winners->as_object()) {
          if (wins.is_number()) {
            out.stats.portfolio.winners[name] =
                static_cast<std::int64_t>(wins.as_number());
          }
        }
      }
    }
  }
  return true;
}

}  // namespace gmm::service
