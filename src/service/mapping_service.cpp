#include "service/mapping_service.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include <cmath>

#include "arch/arch_io.hpp"
#include "design/design_io.hpp"
#include "mapping/complete_mapper.hpp"
#include "mapping/cost_model.hpp"
#include "mapping/pipeline.hpp"
#include "mapping/portfolio.hpp"
#include "mapping/remap.hpp"
#include "mapping/shard_mapper.hpp"
#include "mapping/validate.hpp"
#include "support/assert.hpp"
#include "support/fault.hpp"
#include "support/log.hpp"
#include "support/timer.hpp"

namespace gmm::service {

namespace {

using lp::SolveStatus;

/// Map a finished pipeline run onto a wire status.  The mip stop_reason
/// disambiguates kFeasible results: an incumbent that survived a cancel
/// or deadline is still reported under the stopping status (with the
/// partial result attached) so clients see WHY their request ended.
ResponseStatus classify(lp::SolveStatus status,
                        const ilp::MipResult& mip) {
  switch (status) {
    case SolveStatus::kOptimal:
      return ResponseStatus::kOk;
    case SolveStatus::kFeasible:
      if (mip.stop_reason == SolveStatus::kCancelled) {
        return ResponseStatus::kCancelled;
      }
      if (mip.stop_reason == SolveStatus::kTimeLimit) {
        return ResponseStatus::kTimeout;
      }
      return ResponseStatus::kOk;
    case SolveStatus::kCancelled:
      return ResponseStatus::kCancelled;
    case SolveStatus::kTimeLimit:
      return ResponseStatus::kTimeout;
    case SolveStatus::kInfeasible:
      return ResponseStatus::kInfeasible;
    default:
      return ResponseStatus::kError;
  }
}

/// Resolve a detailed mapping's fragments into wire placement rows.
void append_placements(Response& response, const design::Design& design,
                       const arch::Board& board,
                       const mapping::DetailedMapping& detailed) {
  response.placements.reserve(detailed.fragments.size());
  for (const mapping::PlacedFragment& f : detailed.fragments) {
    const arch::BankType& type = board.type(f.type);
    PlacementEntry entry;
    entry.segment = design.at(f.ds).name;
    entry.type = type.name;
    entry.instance = f.instance;
    entry.first_port = f.first_port;
    entry.ports = f.ports;
    if (f.config_index >= 0 &&
        f.config_index < static_cast<int>(type.configs.size())) {
      entry.config =
          type.configs[static_cast<std::size_t>(f.config_index)].to_string();
    }
    entry.offset_bits = f.offset_bits;
    entry.block_bits = f.block_bits;
    entry.kind = mapping::to_string(f.kind);
    response.placements.push_back(std::move(entry));
  }
}

}  // namespace

MappingService::MappingService(std::vector<arch::Board> boards,
                               ServiceOptions options, ResponseSink sink)
    : boards_(std::move(boards)),
      options_(options),
      sink_(std::move(sink)),
      cache_(options.cache_capacity) {
  GMM_ASSERT(sink_ != nullptr, "MappingService needs a response sink");
  for (std::size_t i = 0; i < boards_.size(); ++i) {
    board_index_.emplace(boards_[i].name(), i);
  }
  if (options_.watchdog_window_ms > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
  pool_ = std::make_unique<support::ThreadPool>(options_.workers);
}

MappingService::~MappingService() {
  drain();
  if (watchdog_.joinable()) {
    {
      const std::scoped_lock lock(mutex_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
}

void MappingService::watchdog_loop() {
  const auto window = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(options_.watchdog_window_ms));
  // Sampling at a quarter window bounds detection latency by 1.25x the
  // window — comfortably inside the documented 2x-window guarantee even
  // with cancellation latency on top.
  const auto tick = std::max<Clock::duration>(
      window / 4, std::chrono::milliseconds(1));
  std::unique_lock lock(mutex_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(lock, tick, [this] { return watchdog_stop_; });
    if (watchdog_stop_) break;
    const Clock::time_point now = Clock::now();
    for (auto& [id, entry] : active_) {
      if (entry.progress == nullptr) continue;  // still queued
      const std::int64_t value =
          entry.progress->load(std::memory_order_relaxed);
      if (value != entry.last_progress) {
        entry.last_progress = value;
        entry.last_change = now;
        continue;
      }
      if (now - entry.last_change >= window && !entry.token->cancelled()) {
        GMM_LOG(kWarn) << "watchdog: request '" << id
                       << "' made no progress for "
                       << options_.watchdog_window_ms
                       << " ms, force-cancelling as stalled";
        entry.token->cancel_stalled();
      }
    }
  }
}

const arch::Board* MappingService::find_board(const std::string& name) const {
  if (name.empty()) return boards_.empty() ? nullptr : &boards_.front();
  const auto it = board_index_.find(name);
  return it == board_index_.end() ? nullptr : &boards_[it->second];
}

ServiceStats MappingService::stats() const {
  ServiceStats out;
  {
    const std::scoped_lock lock(mutex_);
    out = stats_;
  }
  // Gauges owned by the cache itself (its own lock; read after mutex_ so
  // they can only run AHEAD of the outcome counters, never behind).
  out.cache.insertions = cache_.insertions();
  out.cache.evictions = cache_.evictions();
  out.cache.entries = static_cast<std::int64_t>(cache_.size());
  return out;
}

void MappingService::drain() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

void MappingService::handle(const Request& request) {
  if (request.unknown_fields > 0) {
    const std::scoped_lock lock(mutex_);
    ++stats_.unknown_field_requests;
  }
  switch (request.method) {
    case Method::kMap:
      handle_map(request);
      return;
    case Method::kCancel: {
      Response ack;
      ack.id = request.id;
      ack.method = "cancel";
      ack.v = request.version;
      ack.status = ResponseStatus::kOk;
      ack.target = request.target;
      {
        const std::scoped_lock lock(mutex_);
        const auto it = active_.find(request.target);
        ack.found = it != active_.end();
        if (ack.found) it->second.token->cancel();
      }
      sink_(ack);
      return;
    }
    case Method::kPing: {
      Response pong;
      pong.id = request.id;
      pong.method = "ping";
      pong.v = request.version;
      pong.status = ResponseStatus::kOk;
      sink_(pong);
      return;
    }
    case Method::kStats: {
      Response snapshot;
      snapshot.id = request.id;
      snapshot.method = "stats";
      snapshot.v = request.version;
      snapshot.status = ResponseStatus::kOk;
      snapshot.has_stats = true;
      snapshot.stats = stats();
      sink_(snapshot);
      return;
    }
    case Method::kShutdown: {
      // Draining is the serve loop's job (it must stop feeding requests
      // first); acknowledge so a bare service user still gets a reply.
      Response ack;
      ack.id = request.id;
      ack.method = "shutdown";
      ack.v = request.version;
      ack.status = ResponseStatus::kOk;
      sink_(ack);
      return;
    }
    case Method::kInvalid: {
      Response err;
      err.id = request.id;
      err.v = request.version;
      err.status = ResponseStatus::kError;
      err.error = request.error.empty() ? "invalid request" : request.error;
      sink_(err);
      return;
    }
  }
}

void MappingService::handle_map(const Request& request) {
  Response reject;
  reject.id = request.id;
  reject.method = "map";
  reject.v = request.version;
  // Out-of-range solver knobs terminate the request here with status
  // "rejected" — never a silent clamp into a quality/effort contract the
  // client did not ask for (the per-solve thread CAP is the exception:
  // that is operator policy, applied in apply_solver_knobs).
  if (!request.reject_reason.empty()) {
    {
      const std::scoped_lock lock(mutex_);
      ++stats_.rejected;
    }
    reject.status = ResponseStatus::kRejected;
    reject.error = request.reject_reason;
    // A knob out of range is a client bug: resubmitting the same request
    // fails the same way, so no backoff hint and not retryable.
    sink_(reject);
    return;
  }
  auto token = std::make_shared<support::CancelToken>();
  const Clock::time_point admitted = Clock::now();
  {
    const std::scoped_lock lock(mutex_);
    // Shed only when this request would actually wait behind others: the
    // EWMA updates at worker pickups, so with an empty queue it is stale
    // evidence — admitting then lets the fresh near-zero pickup delays
    // drag the signal back down (otherwise one overload spike would shed
    // forever).
    const bool shed =
        options_.shed_queue_delay_ms > 0 &&
        queue_delay_ewma_ms_ > options_.shed_queue_delay_ms &&
        pending_ >= pool_->worker_count();
    if (active_.contains(request.id)) {
      // kRejected (not kError) keeps the wire unambiguous: "rejected"
      // always means THIS submission was refused at admission, never
      // that the in-flight solve behind the id failed — so a client
      // correlating by id cannot mistake it for the original request's
      // terminal response.  Does NOT release the original's slot.
      ++stats_.rejected;
      reject.status = ResponseStatus::kRejected;
      reject.error = "duplicate id '" + request.id + "' is still active";
    } else if (GMM_FAULT("service.admission", "reject")) {
      ++stats_.rejected;
      ++stats_.shed_overload;
      reject.status = ResponseStatus::kRejected;
      reject.error = "injected fault: admission shed";
      reject.retryable = true;
      reject.retry_after_ms = std::max<std::int64_t>(
          static_cast<std::int64_t>(queue_delay_ewma_ms_), 10);
    } else if (shed) {
      // Overload: the queue is moving too slowly for new work to meet
      // any reasonable expectation.  Shed now with an honest backoff
      // hint — the observed delay itself is the best estimate of when
      // capacity frees up.
      ++stats_.rejected;
      ++stats_.shed_overload;
      reject.status = ResponseStatus::kRejected;
      reject.error = "shed: observed queue delay " +
                     std::to_string(static_cast<long>(queue_delay_ewma_ms_)) +
                     " ms exceeds " +
                     std::to_string(
                         static_cast<long>(options_.shed_queue_delay_ms)) +
                     " ms";
      reject.retryable = true;
      reject.retry_after_ms = std::min<std::int64_t>(
          std::max<std::int64_t>(
              static_cast<std::int64_t>(queue_delay_ewma_ms_), 10),
          30000);
    } else if (pending_ >= options_.max_pending) {
      ++stats_.rejected;
      reject.status = ResponseStatus::kRejected;
      reject.error = "queue full (" + std::to_string(options_.max_pending) +
                     " pending)";
      reject.retryable = true;
      reject.retry_after_ms = std::max<std::int64_t>(
          static_cast<std::int64_t>(queue_delay_ewma_ms_), 10);
    } else {
      ++stats_.accepted;
      ++pending_;
      ActiveRequest slot;
      slot.token = token;
      active_.emplace(request.id, std::move(slot));
      reject.status = ResponseStatus::kOk;  // marker: admitted
    }
  }
  if (reject.status != ResponseStatus::kOk) {
    sink_(reject);
    return;
  }
  // The deadline clock starts at admission: queue wait counts.
  if (request.map.deadline_ms >= 0) {
    token->set_deadline_after_seconds(request.map.deadline_ms / 1000.0);
  }
  pool_->submit([this, id = request.id, v = request.version,
                 map = request.map, token, admitted] {
    run_map(id, v, map, token, admitted);
  });
}

void MappingService::run_map(const std::string& id, int version,
                             const MapRequest& request,
                             const support::CancelTokenPtr& token,
                             Clock::time_point admitted) {
  Response response;
  response.id = id;
  response.method = "map";
  response.v = version;

  // Fold this request's observed queue wait into the overload signal.
  // Recorded unconditionally (shedding enabled or not) so the EWMA is
  // warm the moment an operator turns the threshold on.
  {
    const double delay_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - admitted)
            .count();
    const std::scoped_lock lock(mutex_);
    queue_delay_ewma_ms_ =
        queue_delay_ewma_ms_ == 0.0
            ? delay_ms
            : 0.7 * queue_delay_ewma_ms_ + 0.3 * delay_ms;
  }

  // A request whose token fired while queued never starts a solve.
  if (token->should_stop()) {
    response.status = token->cancelled() ? ResponseStatus::kCancelled
                                         : ResponseStatus::kTimeout;
    response.retryable = response.status == ResponseStatus::kTimeout;
    {
      const std::scoped_lock lock(mutex_);
      ++stats_.cache.bypasses;  // never reached the cache
    }
    finish(std::move(response));
    return;
  }

  // From here the solve is RUNNING: register the liveness counter so the
  // watchdog starts judging it.  The registration instant counts as the
  // last progress change, so a fresh solve gets one full window to
  // produce its first node.
  auto progress = std::make_shared<std::atomic<std::int64_t>>(0);
  {
    const std::scoped_lock lock(mutex_);
    const auto it = active_.find(id);
    if (it != active_.end()) {
      it->second.progress = progress;
      it->second.last_progress = 0;
      it->second.last_change = Clock::now();
    }
  }

  const auto bail = [&](std::string message) {
    response.status = ResponseStatus::kError;
    response.error = std::move(message);
    {
      const std::scoped_lock lock(mutex_);
      ++stats_.cache.bypasses;  // failed before the cache was consulted
    }
    finish(std::move(response));
  };

  // Resolve the board: inline text wins, else the named catalog entry.
  arch::Board inline_board;
  const arch::Board* board = nullptr;
  if (!request.board_text.empty()) {
    arch::BoardParseResult parsed =
        arch::parse_board_string(request.board_text);
    if (!parsed.ok) return bail("board_text: " + parsed.error);
    inline_board = std::move(parsed.board);
    board = &inline_board;
  } else {
    board = find_board(request.board_name);
    if (board == nullptr) {
      return bail(request.board_name.empty()
                      ? "no boards loaded and no board_text given"
                      : "unknown board '" + request.board_name + "'");
    }
  }

  // Resolve the design: inline text or a server-side file.
  std::string design_text = request.design_text;
  if (design_text.empty()) {
    std::ifstream file(request.design_path);
    if (!file) return bail("cannot open '" + request.design_path + "'");
    std::ostringstream content;
    content << file.rdbuf();
    design_text = content.str();
  }
  design::DesignParseResult parsed = design::parse_design_string(design_text);
  if (!parsed.ok) return bail("design: " + parsed.error);
  const design::Design& design = parsed.design;
  if (design.size() == 0) return bail("design has no segments");

  ilp::MipOptions mip;
  mip.cancel_token = token;
  mip.progress = progress;
  // The one shared mapping from wire knobs onto MipOptions (gap,
  // node/time budgets, basis cache, threads clamped to the server cap).
  apply_solver_knobs(request.knobs, options_.max_threads_per_solve, mip);

  // ---- solution cache: exact-hit replay ----------------------------------
  // Sharded solves bypass the cache entirely: their objective includes
  // the stitch transfer term, which the replay verifier cannot recompute
  // from a single-board CostTable.
  const bool cacheable =
      cache_.enabled() && !request.sharded && !request.knobs.no_cache;
  RequestFingerprint fp;
  RequestFingerprint fp_complete;  // portfolio only: the complete-keyed twin
  bool have_fp_complete = false;
  std::vector<std::size_t> type_by_rank;    // canonical rank -> flat index
  std::optional<CacheEntry> prior;          // near-miss seed (global path)
  bool verify_failed = false;
  bool near_miss = false;
  if (cacheable) {
    support::WallTimer replay_timer;
    fp = fingerprint_request(design, *board,
                             request.complete ? CachedFormulation::kComplete
                                              : CachedFormulation::kGlobal,
                             mip.rel_gap);  // the EFFECTIVE gap after knobs
    type_by_rank.resize(board->num_types());
    for (std::size_t t = 0; t < board->num_types(); ++t) {
      type_by_rank[fp.type_rank[t]] = t;
    }
    // A portfolio request probes BOTH single-solve keys: its winner is
    // cached under the winner's formulation (exactly as a single solve
    // would be), so a prior global OR complete proof satisfies the same
    // gap contract either way.
    std::vector<const RequestFingerprint*> probes{&fp};
    if (request.portfolio) {
      fp_complete = fingerprint_request(
          design, *board, CachedFormulation::kComplete, mip.rel_gap);
      have_fp_complete = true;
      probes.push_back(&fp_complete);
    }
    for (const RequestFingerprint* probe : probes) {
      std::optional<CacheEntry> hit = cache_.find(probe->full);
      if (!hit.has_value()) continue;
      // Replay through the canonical permutations, then RE-VERIFY against
      // THIS request's design and board: a fingerprint collision (or a
      // poisoned entry) degrades to a verify-fail miss, never a wrong
      // answer.
      std::vector<std::size_t> probe_type_by_rank(board->num_types());
      for (std::size_t t = 0; t < board->num_types(); ++t) {
        probe_type_by_rank[probe->type_rank[t]] = t;
      }
      mapping::GlobalAssignment replayed;
      mapping::DetailedMapping mapped;
      bool ok = hit->num_structures == design.size() &&
                hit->num_types == board->num_types() &&
                hit->type_of_by_rank.size() == design.size();
      if (ok) {
        std::vector<std::size_t> ds_by_rank(design.size());
        for (std::size_t d = 0; d < design.size(); ++d) {
          ds_by_rank[probe->structure_rank[d]] = d;
        }
        replayed.type_of.assign(design.size(), -1);
        for (std::size_t d = 0; d < design.size() && ok; ++d) {
          const int tr = hit->type_of_by_rank[probe->structure_rank[d]];
          ok = tr >= 0 && tr < static_cast<int>(board->num_types());
          if (ok) {
            replayed.type_of[d] = static_cast<int>(
                probe_type_by_rank[static_cast<std::size_t>(tr)]);
          }
        }
        for (const mapping::PlacedFragment& f : hit->fragments_by_rank) {
          if (!ok) break;
          ok = f.ds < design.size() && f.type < board->num_types();
          if (ok) {
            mapping::PlacedFragment placed = f;
            placed.ds = ds_by_rank[f.ds];
            placed.type = probe_type_by_rank[f.type];
            mapped.fragments.push_back(placed);
          }
        }
        mapped.success = ok;
      }
      if (ok) {
        ok = mapping::validate_mapping(design, *board, replayed, mapped)
                 .empty();
      }
      if (ok) {
        const mapping::CostTable table(design, *board);
        replayed.objective = table.assignment_objective(replayed.type_of);
        ok = std::abs(replayed.objective - hit->objective) <=
             1e-6 * std::max(1.0, std::abs(hit->objective));
      }
      // Injected entry corruption: the replay verified fine, but we
      // pretend it did not — driving the exact poison/cold-solve/alert
      // path a genuinely corrupted entry would take.
      if (ok && GMM_FAULT("cache.verify", "corrupt")) ok = false;
      if (ok) {
        {
          const std::scoped_lock lock(mutex_);
          ++stats_.cache.hits;
        }
        response.status = ResponseStatus::kOk;
        response.has_result = true;
        response.cached = true;
        response.solve_status = hit->solve_status;
        response.objective = replayed.objective;
        response.nodes = 0;
        response.seconds = replay_timer.seconds();
        response.retries = hit->retries;
        append_placements(response, design, *board, mapped);
        finish(std::move(response));
        return;
      }
      // Poison the colliding key: left in place it would verify-fail on
      // every future resubmission of this request.
      cache_.erase(probe->full);
      verify_failed = true;
      // Alert once per fingerprint — repeated corruption of the same
      // entry (or a hot key being resubmitted) must not storm the log.
      {
        const std::scoped_lock lock(mutex_);
        if (logged_poisoned_.insert(probe->full).second) {
          GMM_LOG(kWarn) << "cache: poisoned entry evicted, fingerprint "
                         << probe->full.hi << ":" << probe->full.lo
                         << " failed replay verification (request '" << id
                         << "'); answering with a cold solve";
        }
      }
    }
    // Near-miss warm re-solves stay a plain-global feature: a portfolio
    // request races cold (its lanes' value is finding the fast prover).
    if (!request.complete && !request.portfolio) {
      prior = cache_.find_structural(fp.structural);
    }
  }

  // Every formulation lands in the same (status, assignment, detailed,
  // effort, mip) shape; retries and the shard counters are specific to
  // the pipeline/sharded paths.
  lp::SolveStatus status = SolveStatus::kNumericalFailure;
  mapping::GlobalAssignment assignment;
  mapping::DetailedMapping detailed;
  mapping::SolveEffort effort;        // behind the returned mapping
  mapping::SolveEffort total_effort;  // all work executed (= effort
                                      // except for sharded/portfolio)
  ilp::MipResult mip_result;
  mapping::ShardStats shard_stats;
  // Cache-insertion keying for the portfolio path: the winner's proof is
  // inserted exactly as the equivalent single solve would be, under the
  // winner's formulation key.  Sharded winners are never inserted (no
  // single-MIP proof to replay against).
  bool insert_allowed = true;
  bool insert_as_complete = request.complete;
  std::string portfolio_winner;       // stats histogram key, "" = no win
  std::int64_t portfolio_lanes = 0;
  std::int64_t portfolio_cancelled = 0;
  if (request.portfolio) {
    mapping::PortfolioOptions options;
    options.cancel_token = token;
    mapping::PipelineOptions base;
    base.global.mip = mip;
    const int lane_count =
        request.knobs.lanes >= 1 ? request.knobs.lanes : 3;
    options.lanes = mapping::default_portfolio_lanes(*board, lane_count, base);
    // The operator's per-solve parallelism budget covers the whole race:
    // lane workers x per-lane B&B threads stays within
    // max_threads_per_solve, mirroring the sharded fan-out policy.
    const auto budget = static_cast<std::size_t>(
        std::max(1, options_.max_threads_per_solve /
                        std::max(1, mip.num_threads)));
    support::ThreadPool race_pool(
        std::max<std::size_t>(std::min(budget, options.lanes.size()), 1));
    mapping::PortfolioResult result =
        mapping::solve_portfolio(race_pool, design, *board, options);
    status = result.status;
    assignment = std::move(result.assignment);
    detailed = std::move(result.detailed);
    effort = result.effort;
    total_effort = result.total_effort;
    mip_result = std::move(result.mip);
    response.retries = result.retries;
    response.lanes = static_cast<int>(result.lanes.size());
    response.winner = result.winner_name;
    response.lanes_cancelled = result.lanes_cancelled;
    if (result.shards > 1) response.shards = result.shards;
    portfolio_winner = result.winner_name;
    portfolio_lanes = static_cast<std::int64_t>(result.lanes.size());
    portfolio_cancelled = result.lanes_cancelled;
    if (result.winner >= 0) {
      const mapping::LaneKind kind =
          options.lanes[static_cast<std::size_t>(result.winner)].kind;
      insert_allowed = kind != mapping::LaneKind::kSharded;
      insert_as_complete = kind == mapping::LaneKind::kComplete;
    } else {
      insert_allowed = false;
    }
  } else if (request.sharded) {
    mapping::ShardOptions options;
    options.pipeline.global.mip = mip;
    // The operator's per-solve parallelism budget covers the whole
    // sharded solve: fan-out workers x per-candidate B&B threads stays
    // within max_threads_per_solve instead of each request spinning up
    // a hardware-concurrency pool of its own — and never more workers
    // than there are candidate solves to run.
    std::size_t usable = 0;
    for (std::size_t k = 0; k < board->num_devices(); ++k) {
      if (board->device_banks(k) > 0) ++usable;
    }
    const auto budget = static_cast<std::size_t>(
        std::max(1, options_.max_threads_per_solve /
                        std::max(1, mip.num_threads)));
    options.num_workers =
        std::max<std::size_t>(std::min(budget, usable * usable), 1);
    mapping::ShardResult result =
        mapping::map_sharded(design, *board, options);
    status = result.status;
    assignment = std::move(result.assignment);
    detailed = std::move(result.detailed);
    effort = result.effort;
    total_effort = result.total_effort;
    shard_stats = result.stats;
    response.retries = result.retries;
    response.shards = result.stats.shards;
    response.stitch_cost = result.stats.stitch_cost;
  } else if (request.complete) {
    const mapping::CostTable table(design, *board);
    mapping::CompleteOptions options;
    options.mip = mip;
    mapping::CompleteResult result =
        mapping::map_complete(design, *board, table, options);
    status = result.status;
    assignment = std::move(result.assignment);
    detailed = std::move(result.detailed);
    effort = result.effort;
    total_effort = effort;
    mip_result = std::move(result.mip);
  } else {
    mapping::PipelineOptions options;
    options.global.mip = mip;
    mapping::PipelineResult result;
    bool warm_solved = false;
    if (prior.has_value() && prior->num_structures == design.size() &&
        prior->num_types == board->num_types() &&
        prior->type_of_by_rank.size() == design.size()) {
      // NEAR MISS: same structure/board/contract, different traffic.
      // Re-solve incrementally from the cached assignment — B&B seeded
      // with the prior mapping, traffic-unchanged structures pinned, a
      // small migration term biasing toward stability (remap.hpp).  The
      // result is NOT inserted back: its optimality proof is for the
      // pinned model, and the cache only serves unconstrained proofs.
      std::vector<int> prior_type_of(design.size(), -1);
      mapping::RemapOptions remap_options;
      remap_options.pipeline = options;
      remap_options.migration_penalty = options_.near_miss_migration_penalty;
      bool aligned = true;
      for (std::size_t d = 0; d < design.size() && aligned; ++d) {
        const std::size_t r = fp.structure_rank[d];
        const int tr = prior->type_of_by_rank[r];
        aligned = tr >= 0 && tr < static_cast<int>(board->num_types());
        if (!aligned) break;
        prior_type_of[d] =
            static_cast<int>(type_by_rank[static_cast<std::size_t>(tr)]);
        if (fp.param_hash_by_rank[r] == prior->param_hash_by_rank[r]) {
          remap_options.pinned_structures.push_back(d);
        }
      }
      if (aligned) {
        mapping::RemapResult warm =
            mapping::remap(design, *board, prior_type_of, remap_options);
        result = std::move(warm.result);
        near_miss = true;
        warm_solved = true;
      }
    }
    if (!warm_solved) result = mapping::map_pipeline(design, *board, options);
    status = result.status;
    assignment = std::move(result.assignment);
    detailed = std::move(result.detailed);
    effort = result.effort;
    total_effort = effort;
    mip_result = std::move(result.mip);
    response.retries = result.retries;
  }

  // Fold this solve's effort into the aggregate counters the `stats`
  // method reports.  `total_effort` counts every solve the request
  // triggered — pipeline retries, and for sharded requests the whole
  // candidate fan-out including solves the stitch discarded — while the
  // response's own nodes/seconds fields (below) report only the work
  // behind the returned mapping.
  {
    const std::scoped_lock lock(mutex_);
    ++stats_.solves;
    stats_.nodes += total_effort.bnb_nodes;
    stats_.lp_iterations += total_effort.lp_iterations;
    stats_.refactorizations += total_effort.lp_refactorizations;
    stats_.basis += total_effort.basis;
    if (request.sharded) {
      ++stats_.sharded_requests;
      stats_.shard_solves += shard_stats.candidate_solves;
    }
    if (request.portfolio) {
      ++stats_.portfolio.requests;
      stats_.portfolio.lanes_launched += portfolio_lanes;
      stats_.portfolio.lanes_cancelled += portfolio_cancelled;
      if (!portfolio_winner.empty()) {
        ++stats_.portfolio.winners[portfolio_winner];
      }
    }
    // The request consulted the cache and a solve ran anyway: a miss
    // (near_misses / verify_fails break the misses down further).
    if (cacheable) {
      ++stats_.cache.misses;
      if (near_miss) ++stats_.cache.near_misses;
      if (verify_failed) ++stats_.cache.verify_fails;
    } else {
      ++stats_.cache.bypasses;
    }
  }

  response.status = classify(status, mip_result);
  // A watchdog kill travels through the ordinary cancellation machinery
  // (the solver stops with kCancelled); the token's cause upgrades the
  // wire status so clients can tell "you cancelled it" from "the server
  // killed a wedged solve" — only the latter is worth retrying.
  if (response.status == ResponseStatus::kCancelled && token->stalled()) {
    response.status = ResponseStatus::kStalled;
    response.stop_reason = "stalled";
  }
  // Verify-fail cold solves are explicitly NOT degraded: corruption was
  // detected and the client got a fresh full-fidelity solve.  The marker
  // (plus the verify_fails counter) is what monitoring alerts on.
  if (verify_failed) response.degraded = 0;
  // A result payload only when the solve produced a usable mapping —
  // i.e. detailed placement succeeded.  This excludes both a
  // timeout/cancel/infeasible with no incumbent (whose
  // default-constructed objective of 0 would read as a perfect score)
  // and a retry-loop early exit whose stale global assignment never
  // packed (objective without placements).
  if (detailed.success && assignment.complete()) {
    response.has_result = true;
    response.solve_status = lp::to_string(status);
    if (mip_result.stop_reason != SolveStatus::kOptimal &&
        response.status != ResponseStatus::kStalled) {
      response.stop_reason = lp::to_string(mip_result.stop_reason);
    }
    response.objective = assignment.objective;
    response.nodes = effort.bnb_nodes;
    response.seconds = effort.total_seconds();
  }
  if (response.status == ResponseStatus::kError) {
    response.error =
        "solver failed: " + std::string(lp::to_string(status));
  }
  // Taxonomy for solve outcomes: timeouts, stalls, and internal solver
  // failures are transient server-side conditions (retryable); cancelled
  // and infeasible are deterministic for this request.
  response.retryable = response.status == ResponseStatus::kTimeout ||
                       response.status == ResponseStatus::kStalled ||
                       response.status == ResponseStatus::kError;
  if (detailed.success) append_placements(response, design, *board, detailed);

  // Insert only fully PROVED cold results: solve status optimal AND the
  // B&B ran to its proof (stop_reason optimal), so node/time budgets
  // never need to join the fingerprint and a replay is exactly what a
  // fresh solve would return.  Near-miss results stay out — their proof
  // is for the pinned model.
  const RequestFingerprint& insert_fp =
      insert_as_complete && have_fp_complete ? fp_complete : fp;
  if (cacheable && insert_allowed && !near_miss &&
      status == SolveStatus::kOptimal &&
      mip_result.stop_reason == SolveStatus::kOptimal && detailed.success &&
      assignment.complete() && assignment.type_of.size() == design.size()) {
    CacheEntry entry;
    entry.key = insert_fp.full;
    entry.structural = insert_fp.structural;
    entry.num_structures = design.size();
    entry.num_types = board->num_types();
    entry.type_of_by_rank.assign(design.size(), -1);
    bool canonical = true;
    for (std::size_t d = 0; d < design.size() && canonical; ++d) {
      const int t = assignment.type_of[d];
      canonical = t >= 0 && t < static_cast<int>(board->num_types());
      if (canonical) {
        entry.type_of_by_rank[insert_fp.structure_rank[d]] = static_cast<int>(
            insert_fp.type_rank[static_cast<std::size_t>(t)]);
      }
    }
    entry.fragments_by_rank.reserve(detailed.fragments.size());
    for (const mapping::PlacedFragment& f : detailed.fragments) {
      if (!canonical) break;
      canonical = f.ds < design.size() && f.type < board->num_types();
      if (canonical) {
        mapping::PlacedFragment canon = f;
        canon.ds = insert_fp.structure_rank[f.ds];
        canon.type = insert_fp.type_rank[f.type];
        entry.fragments_by_rank.push_back(canon);
      }
    }
    if (canonical) {
      entry.param_hash_by_rank = insert_fp.param_hash_by_rank;
      entry.objective = assignment.objective;
      entry.retries = response.retries;
      entry.solve_status = lp::to_string(status);
      cache_.insert(std::move(entry));
    }
  }
  finish(std::move(response));
}

void MappingService::finish(Response response) {
  // Deregister and COUNT before sinking: a cancel racing this completion
  // is acked found:false once the terminal response is (about to be) on
  // the wire — the protocol's "already finished" contract — and a client
  // that has read a terminal response must never see `stats` counters
  // that miss it (stats may run slightly ahead of the wire, never
  // behind).  But decrement pending_ only AFTER the sink: drain()
  // returning must guarantee every terminal response has been fully
  // written, or a shutdown ack could overtake the final result.
  {
    const std::scoped_lock lock(mutex_);
    active_.erase(response.id);
    ++stats_.completed;
    if (response.status == ResponseStatus::kCancelled) ++stats_.cancelled;
    if (response.status == ResponseStatus::kTimeout) ++stats_.timed_out;
    if (response.status == ResponseStatus::kStalled) ++stats_.stalled;
  }
  sink_(response);
  {
    const std::scoped_lock lock(mutex_);
    --pending_;
  }
  idle_cv_.notify_all();
}

}  // namespace gmm::service
