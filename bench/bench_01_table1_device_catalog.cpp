// Reproduces Table 1: "FPGA On-chip RAMs" — bank counts, sizes and
// configurations of the three device families the paper surveys, printed
// from the library's device catalog.
#include <cstdio>
#include <iostream>
#include <map>

#include "arch/device_catalog.hpp"
#include "bench_common.hpp"
#include "report/text_table.hpp"

int main() {
  using namespace gmm;

  std::printf("== Table 1: FPGA On-chip RAMs ==\n\n");

  // Family-level summary exactly in the paper's shape.
  report::TextTable summary(
      {"Device Name", "RAM", "RAMs (# banks)", "Size (# bits)",
       "Configurations"});
  summary.set_alignment(0, report::Align::kLeft);
  summary.set_alignment(1, report::Align::kLeft);
  summary.set_alignment(4, report::Align::kLeft);

  struct FamilyAgg {
    std::int64_t min_banks = 1 << 30;
    std::int64_t max_banks = 0;
    std::int64_t bits = 0;
    std::string ram;
    std::vector<arch::BankConfig> configs;
  };
  std::map<std::string, FamilyAgg> families;
  std::vector<std::string> family_order;
  for (const arch::DeviceInfo& d : arch::device_catalog()) {
    if (!families.contains(d.family)) family_order.push_back(d.family);
    FamilyAgg& agg = families[d.family];
    agg.min_banks = std::min(agg.min_banks, d.ram_banks);
    agg.max_banks = std::max(agg.max_banks, d.ram_banks);
    agg.bits = d.ram_bits;
    agg.ram = d.ram_name;
    agg.configs = d.configs;
  }
  for (const std::string& family : family_order) {
    const FamilyAgg& agg = families[family];
    std::string configs;
    for (const arch::BankConfig& c : agg.configs) {
      if (!configs.empty()) configs += " ";
      configs += c.to_string();
    }
    summary.add_row({family, agg.ram,
                     std::to_string(agg.min_banks) + " -> " +
                         std::to_string(agg.max_banks),
                     std::to_string(agg.bits), configs});
  }
  summary.print(std::cout);

  // Per-device expansion (catalog detail beyond the paper's summary).
  std::printf("\n-- per-device catalog --\n");
  report::TextTable detail(
      {"Family", "Device", "RAM", "Banks", "Bits/bank", "Ports",
       "Total on-chip bits"});
  detail.set_alignment(0, report::Align::kLeft);
  detail.set_alignment(1, report::Align::kLeft);
  detail.set_alignment(2, report::Align::kLeft);
  bench::BenchJson json("device_catalog");
  for (const arch::DeviceInfo& d : arch::device_catalog()) {
    detail.add_row({d.family, d.device, d.ram_name,
                    std::to_string(d.ram_banks), std::to_string(d.ram_bits),
                    std::to_string(d.ports),
                    std::to_string(d.ram_banks * d.ram_bits)});
    json.write("device", {bench::jstr("family", d.family),
                          bench::jstr("device", d.device),
                          bench::jint("banks", d.ram_banks),
                          bench::jint("bits_per_bank", d.ram_bits),
                          bench::jint("ports", d.ports),
                          bench::jint("total_bits", d.ram_banks * d.ram_bits)});
  }
  detail.print(std::cout);

  std::printf(
      "\nPaper check: Virtex BlockRAM 8->208 banks of 4096 bits "
      "(4096x1..256x16);\nFLEX 10K EAB 9->20 of 2048; APEX E ESB 12->216 "
      "of 2048 (2048x1..128x16).\n");
  return 0;
}
