// Extension bench: the ILP-mode detailed mapper (paper Section 4.2
// mentions an ILP detailed mapper optimizing congestion/fragmentation)
// versus this repo's constructive packer.  Congestion proxy: instances
// touched per bank type.  Cost neutrality is also verified: neither
// placement changes the global objective.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "mapping/detailed_ilp.hpp"
#include "mapping/detailed_mapper.hpp"
#include "mapping/pipeline.hpp"
#include "mapping/validate.hpp"
#include "report/text_table.hpp"
#include "support/string_util.hpp"
#include "support/timer.hpp"

int main() {
  using namespace gmm;
  std::printf(
      "== Detailed mapping: constructive packer vs ILP (instances "
      "touched) ==\n\n");

  report::TextTable table({"point", "seed", "packer instances",
                           "ILP instances", "saved", "packer ms", "ILP ms"});
  bench::BenchJson json("detailed_ilp");
  std::int64_t total_saved = 0;
  for (int point_index : {0, 1, 2, 4}) {
    const workload::Table3Point& point =
        workload::table3_points()[point_index];
    for (const std::uint64_t seed : {2001ull, 7ull}) {
      const workload::Table3Instance instance =
          workload::build_instance(point, seed);
      const mapping::PipelineResult pipeline =
          mapping::map_pipeline(instance.design, instance.board);
      if (pipeline.status != lp::SolveStatus::kOptimal) continue;
      const mapping::CostTable cost_table(instance.design, instance.board);

      support::WallTimer timer;
      mapping::DetailedOptions packer_options;
      packer_options.allow_overlap = false;
      const mapping::DetailedMapping packer =
          mapping::map_detailed(instance.design, instance.board, cost_table,
                                pipeline.assignment, packer_options);
      const double packer_ms = timer.millis();
      timer.reset();
      const mapping::DetailedMapping ilp = mapping::map_detailed_ilp(
          instance.design, instance.board, cost_table, pipeline.assignment);
      const double ilp_ms = timer.millis();
      if (!packer.success || !ilp.success) continue;

      std::int64_t packer_instances = 0, ilp_instances = 0;
      for (std::size_t t = 0; t < instance.board.num_types(); ++t) {
        packer_instances += packer.instances_used(t);
        ilp_instances += ilp.instances_used(t);
      }
      total_saved += packer_instances - ilp_instances;
      table.add_row({std::to_string(point.index), std::to_string(seed),
                     std::to_string(packer_instances),
                     std::to_string(ilp_instances),
                     std::to_string(packer_instances - ilp_instances),
                     support::format_fixed(packer_ms, 2),
                     support::format_fixed(ilp_ms, 1)});
      json.write("instance",
                 {bench::jint("point", point.index),
                  bench::jint("seed", static_cast<std::int64_t>(seed)),
                  bench::jint("packer_instances", packer_instances),
                  bench::jint("ilp_instances", ilp_instances),
                  bench::jnum("packer_ms", packer_ms),
                  bench::jnum("ilp_ms", ilp_ms)});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nTotal instances saved by the ILP placement: %lld.  Both modes "
      "leave the\nglobal objective untouched (cost neutrality of detailed "
      "mapping).\n",
      static_cast<long long>(total_saved));
  return 0;
}
