// Ablation of the MILP solver design choices that DESIGN.md calls out:
// presolve on/off, the packing-repair primal heuristic of the complete
// formulation on/off, and the greedy-repair heuristic's effect on the
// global formulation (measured as nodes + time on a mid-size point).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "mapping/complete_mapper.hpp"
#include "mapping/global_mapper.hpp"
#include "report/text_table.hpp"
#include "support/string_util.hpp"
#include "support/timer.hpp"

int main() {
  using namespace gmm;
  std::printf("== Ablation: solver design choices ==\n\n");

  // A footprint-model instance (random read/write counts): its cost
  // structure is far less uniform than the paper's reads = writes = D_d
  // model, which is exactly when the solver features under ablation earn
  // their keep.
  const workload::Table3Point& point = workload::table3_points()[2];
  auto board = workload::board_from_totals(point.totals);
  workload::DesignGenOptions gen;
  gen.num_segments = point.segments;
  gen.seed = bench::env_seed();
  gen.paper_access_model = false;
  const design::Design footprint_design =
      workload::generate_design(*board, gen);
  const workload::Table3Instance instance{point, std::move(*board),
                                          footprint_design};
  const mapping::CostTable table(instance.design, instance.board);

  report::TextTable out({"configuration", "status", "objective", "seconds",
                         "B&B nodes", "LP iterations"});
  out.set_alignment(0, report::Align::kLeft);
  bench::BenchJson json("ablation_solver");
  const auto emit = [&json](const char* name, lp::SolveStatus status,
                            const ilp::MipResult& mip, double seconds) {
    json.write("configuration",
               {bench::jstr("name", name),
                bench::jstr("status", lp::to_string(status)),
                bench::jnum("objective",
                            mip.has_incumbent() ? mip.objective : -1.0),
                bench::jnum("seconds", seconds),
                bench::jint("nodes", mip.nodes),
                bench::jint("lp_iterations", mip.lp_iterations)});
  };

  // Several solver configurations run here; cap each below the sweep
  // budget so a pathological configuration cannot stall the bench.
  const double limit = std::min(60.0, bench::env_time_limit());
  const auto run_global = [&](const char* name, bool presolve) {
    mapping::GlobalOptions options;
    options.mip.use_presolve = presolve;
    options.mip.time_limit_seconds = limit;
    support::WallTimer timer;
    const mapping::GlobalResult r =
        mapping::map_global(instance.design, instance.board, table, options);
    out.add_row({name, lp::to_string(r.status),
                 r.mip.has_incumbent()
                     ? support::format_fixed(r.mip.objective, 0)
                     : "-",
                 bench::fmt_seconds(timer.seconds()),
                 std::to_string(r.mip.nodes),
                 std::to_string(r.mip.lp_iterations)});
    emit(name, r.status, r.mip, timer.seconds());
  };
  run_global("global, presolve on", true);
  run_global("global, presolve off", false);

  const auto run_complete = [&](const char* name, bool heuristic,
                                bool presolve) {
    mapping::CompleteOptions options;
    options.use_packing_heuristic = heuristic;
    options.mip.use_presolve = presolve;
    options.mip.time_limit_seconds = limit;
    support::WallTimer timer;
    const mapping::CompleteResult r = mapping::map_complete(
        instance.design, instance.board, table, options);
    out.add_row({name, lp::to_string(r.status),
                 r.mip.has_incumbent()
                     ? support::format_fixed(r.mip.objective, 0)
                     : "-",
                 bench::fmt_seconds(timer.seconds()),
                 std::to_string(r.mip.nodes),
                 std::to_string(r.mip.lp_iterations)});
    emit(name, r.status, r.mip, timer.seconds());
  };
  run_complete("complete, packing heuristic + presolve", true, true);
  run_complete("complete, no packing heuristic", false, true);
  run_complete("complete, no presolve", true, false);

  out.print(std::cout);
  std::printf(
      "\nReading: the packing-repair heuristic is what closes the "
      "complete\nformulation's symmetric placement plateau; without it "
      "the flat model\nbranches on interchangeable instances.\n");
  return 0;
}
