// Reproduces Table 2 ("Example on Allocation Options"): all physical
// space allocations of a 3-port, 16-word bank, with the verdict of the
// Figure-3 consumed_ports() rule, plus the Figure-2 worked example
// (55x17 data structure on the 128x1/64x2/32x4/16x8 bank).
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "mapping/preprocess.hpp"
#include "report/text_table.hpp"

int main() {
  using namespace gmm;

  constexpr std::int64_t kDepth = 16;
  constexpr std::int64_t kPorts = 3;

  std::printf(
      "== Table 2: allocation options of a 3-port, 16-word bank ==\n"
      "(word sizes are powers of two; 'EP ok' marks options realizable\n"
      "under the Figure-3 port rule: sum of ceil(words/%lld * %lld) <= "
      "%lld)\n\n",
      static_cast<long long>(kDepth), static_cast<long long>(kPorts),
      static_cast<long long>(kPorts));

  const std::vector<std::int64_t> sizes{16, 8, 4, 2, 1, 0};
  report::TextTable table({"Port 1 (# words)", "Port 2 (# words)",
                           "Port 3 options", "EP-accepted port 3 options"});
  table.set_alignment(2, report::Align::kLeft);
  table.set_alignment(3, report::Align::kLeft);

  int physical_rows = 0;
  for (const std::int64_t a : sizes) {
    for (const std::int64_t b : sizes) {
      if (b > a) continue;
      std::string all_c, ok_c;
      for (const std::int64_t c : sizes) {
        if (c > b || a + b + c > kDepth) continue;
        if (a == 0 && (b > 0 || c > 0)) continue;
        if (!all_c.empty()) all_c += ",";
        all_c += std::to_string(c);
        const std::int64_t ep =
            mapping::consumed_ports(a, kDepth, kPorts) +
            mapping::consumed_ports(b, kDepth, kPorts) +
            mapping::consumed_ports(c, kDepth, kPorts);
        if (ep <= kPorts) {
          if (!ok_c.empty()) ok_c += ",";
          ok_c += std::to_string(c);
        }
      }
      if (all_c.empty()) continue;
      if (a + b > kDepth) continue;
      table.add_row({std::to_string(a), std::to_string(b), all_c,
                     ok_c.empty() ? "(rejected)" : ok_c});
      ++physical_rows;
    }
  }
  table.print(std::cout);
  std::printf(
      "\n%d allocation rows; the paper highlights (8,8,0) as rejected by "
      "the\nover-estimation: an 8-word fraction costs "
      "ceil(8/16*3) = 2 ports, so two\nof them need 4 > 3 ports.  "
      "consumed_ports is exact for <=2-port banks.\n",
      physical_rows);

  // ---- Figure 2 worked example -----------------------------------------
  std::printf("\n== Figure 2: 55x17 structure on the 3-port "
              "128x1/64x2/32x4/16x8 bank ==\n\n");
  arch::BankType bank;
  bank.name = "fig2";
  bank.instances = 16;
  bank.ports = 3;
  bank.configs = {{128, 1}, {64, 2}, {32, 4}, {16, 8}};
  design::DataStructure ds;
  ds.name = "example";
  ds.depth = 55;
  ds.width = 17;
  const mapping::PlacementPlan plan = mapping::plan_placement(ds, bank);

  report::TextTable parts({"Component", "Fragments", "Ports each",
                           "Config", "Ports total"});
  parts.set_alignment(0, report::Align::kLeft);
  parts.set_alignment(3, report::Align::kLeft);
  for (const mapping::FragmentGroup& g : plan.groups) {
    parts.add_row({mapping::to_string(g.kind), std::to_string(g.count),
                   std::to_string(g.ports_each),
                   bank.configs[g.config_index].to_string(),
                   std::to_string(g.count * g.ports_each)});
  }
  parts.print(std::cout);
  std::printf(
      "\nCP = FP + WP + DP + WDP = %lld + %lld + %lld + %lld = %lld "
      "(paper: 18+3+4+1 = 26)\nCW = %lld (paper: 17)   CD = %lld (paper: "
      "56)   fragments = %lld (figure: 12 instances)\n",
      static_cast<long long>(plan.fp), static_cast<long long>(plan.wp),
      static_cast<long long>(plan.dp), static_cast<long long>(plan.wdp),
      static_cast<long long>(plan.cp), static_cast<long long>(plan.cw),
      static_cast<long long>(plan.cd),
      static_cast<long long>(plan.total_fragments()));

  bench::BenchJson json("allocation_options");
  json.write("table2", {bench::jint("allocation_rows", physical_rows)});
  json.write("figure2",
             {bench::jint("cp", plan.cp), bench::jint("cw", plan.cw),
              bench::jint("cd", plan.cd),
              bench::jint("fragments", plan.total_fragments())});
  return 0;
}
