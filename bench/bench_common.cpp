#include "bench_common.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "mapping/complete_mapper.hpp"
#include "mapping/pipeline.hpp"
#include "support/string_util.hpp"
#include "support/timer.hpp"

namespace gmm::bench {

namespace {

constexpr const char* kCachePath = "gmm_table3_results.csv";

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  double parsed = 0.0;
  return support::parse_double(value, parsed) ? parsed : fallback;
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  std::int64_t parsed = 0;
  return support::parse_int(value, parsed) ? parsed : fallback;
}

}  // namespace

double env_time_limit() { return env_double("GMM_BENCH_TIME_LIMIT", 120.0); }

std::uint64_t env_seed() {
  return static_cast<std::uint64_t>(env_int("GMM_BENCH_SEED", 2001));
}

int env_max_point() {
  return static_cast<int>(env_int("GMM_BENCH_MAX_POINT", 9));
}

std::string fmt_seconds(double seconds) {
  return support::format_fixed(seconds, seconds < 10 ? 2 : 1);
}

std::vector<int> env_thread_sweep() {
  const char* value = std::getenv("GMM_BENCH_THREADS");
  const std::string text = value != nullptr ? value : "1,2,4,8";
  std::vector<int> sweep;
  for (const std::string& part : support::split(text, ',')) {
    std::int64_t threads = 0;
    if (support::parse_int(part, threads) && threads >= 1 && threads <= 256) {
      sweep.push_back(static_cast<int>(threads));
    }
  }
  if (sweep.empty()) sweep = {1, 2, 4, 8};
  return sweep;
}

// ---- machine-readable benchmark output -----------------------------------

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double value) {
  if (std::isnan(value)) return "null";
  if (std::isinf(value)) return value > 0 ? "1e308" : "-1e308";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", value);
  return buf;
}

}  // namespace

JsonField jnum(const std::string& key, double value) {
  return {key, json_double(value)};
}

JsonField jint(const std::string& key, std::int64_t value) {
  return {key, std::to_string(value)};
}

JsonField jstr(const std::string& key, const std::string& value) {
  return {key, "\"" + json_escape(value) + "\""};
}

JsonField jbool(const std::string& key, bool value) {
  return {key, value ? "true" : "false"};
}

BenchJson::BenchJson(const std::string& bench) : bench_(bench) {
  const char* dir = std::getenv("GMM_BENCH_JSON_DIR");
  path_ = (dir != nullptr && dir[0] != '\0' ? std::string(dir) + "/"
                                            : std::string()) +
          "BENCH_" + bench + ".json";
  out_.open(path_, std::ios::trunc);
  if (!out_) {
    std::fprintf(stderr, "[bench] cannot open %s for JSON output\n",
                 path_.c_str());
  }
}

void BenchJson::write(const std::string& record,
                      const std::vector<JsonField>& fields) {
  if (!out_) return;
  out_ << "{\"bench\":\"" << json_escape(bench_) << "\",\"record\":\""
       << json_escape(record) << "\"";
  for (const JsonField& f : fields) {
    out_ << ",\"" << json_escape(f.key) << "\":" << f.rendered;
  }
  out_ << "}\n";
  out_.flush();
}

void run_thread_sweep(BenchJson& json, const std::string& record,
                      const std::vector<JsonField>& extra_fields,
                      const std::function<SweepOutcome(int)>& solve) {
  const std::vector<int> counts = env_thread_sweep();
  // Measure everything first so the speedup baseline does not depend on
  // the sweep's order (GMM_BENCH_THREADS may put 1 anywhere, or skip it).
  std::vector<SweepOutcome> outcomes;
  outcomes.reserve(counts.size());
  for (const int threads : counts) outcomes.push_back(solve(threads));
  double baseline = outcomes.front().seconds;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 1) {
      baseline = outcomes[i].seconds;
      break;
    }
  }

  std::printf("%8s %10s %10s %12s %14s %12s %9s %11s\n", "threads",
              "seconds", "speedup", "B&B nodes", "LP iterations",
              "objective", "hit rate", "pivots/pop");
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const SweepOutcome& o = outcomes[i];
    const double speedup = o.seconds > 0 ? baseline / o.seconds : 0.0;
    std::printf("%8d %10.3f %9.2fx %12lld %14lld %12.0f %8.0f%% %11.1f\n",
                counts[i], o.seconds, speedup,
                static_cast<long long>(o.nodes),
                static_cast<long long>(o.lp_iterations), o.objective,
                100.0 * o.basis.hit_rate(), o.basis.pivots_per_pop());
    std::vector<JsonField> fields = extra_fields;
    fields.push_back(jint("threads", counts[i]));
    fields.push_back(jnum("seconds", o.seconds));
    fields.push_back(jnum("speedup", speedup));
    fields.push_back(jint("nodes", o.nodes));
    fields.push_back(jint("lp_iterations", o.lp_iterations));
    fields.push_back(jnum("objective", o.objective));
    fields.push_back(jstr("status", o.status));
    for (JsonField& field : basis_fields(o.basis)) {
      fields.push_back(std::move(field));
    }
    json.write(record, fields);
  }
  std::printf("(JSON mirror: %s)\n", json.path().c_str());
}

std::vector<JsonField> basis_fields(const lp::BasisCacheStats& basis) {
  return {jint("bases_stored", basis.stored),
          jint("bases_loaded", basis.loaded),
          jint("bases_evicted", basis.evicted),
          jint("cold_pops", basis.cold_pops),
          jint("warm_pop_pivots", basis.warm_pop_pivots),
          jint("cold_pop_pivots", basis.cold_pop_pivots),
          jnum("basis_hit_rate", basis.hit_rate()),
          jnum("pivots_per_pop", basis.pivots_per_pop())};
}

void run_basis_warm_cold_ab(
    BenchJson& json, const std::string& record,
    const std::vector<JsonField>& extra_fields,
    const std::function<SweepOutcome(std::size_t max_stored_bases)>& solve) {
  std::printf("%8s %10s %12s %10s %10s %11s %12s\n", "cache", "seconds",
              "B&B nodes", "warm pops", "cold pops", "pivots/pop",
              "objective");
  for (const bool warm : {true, false}) {
    const SweepOutcome o = solve(warm ? std::size_t{4096} : std::size_t{0});
    std::printf("%8s %10.3f %12lld %10lld %10lld %11.1f %12.0f\n",
                warm ? "on" : "off", o.seconds,
                static_cast<long long>(o.nodes),
                static_cast<long long>(o.basis.loaded),
                static_cast<long long>(o.basis.cold_pops),
                o.basis.pivots_per_pop(), o.objective);
    std::vector<JsonField> fields = extra_fields;
    fields.push_back(jstr("basis_cache", warm ? "on" : "off"));
    fields.push_back(jnum("seconds", o.seconds));
    fields.push_back(jint("nodes", o.nodes));
    fields.push_back(jint("lp_iterations", o.lp_iterations));
    fields.push_back(jnum("objective", o.objective));
    fields.push_back(jstr("status", o.status));
    for (JsonField& field : basis_fields(o.basis)) {
      fields.push_back(std::move(field));
    }
    json.write(record, fields);
  }
}

namespace {

std::string cache_header() {
  std::ostringstream out;
  out << "# gmm table3 cache seed=" << env_seed()
      << " limit=" << env_time_limit() << " points=" << env_max_point();
  return out.str();
}

std::optional<std::vector<Table3Row>> load_cache() {
  std::ifstream in(kCachePath);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) || line != cache_header()) return std::nullopt;
  if (!std::getline(in, line)) return std::nullopt;  // skip column header
  std::vector<Table3Row> rows;
  const auto& points = workload::table3_points();
  while (std::getline(in, line)) {
    const std::vector<std::string> f = support::split(line, ',');
    if (f.size() != 12) return std::nullopt;
    Table3Row row;
    std::int64_t index = 0;
    if (!support::parse_int(f[0], index) || index < 1 ||
        index > static_cast<std::int64_t>(points.size())) {
      return std::nullopt;
    }
    row.point = points[index - 1];
    if (!support::parse_double(f[4], row.complete_seconds)) return std::nullopt;
    row.complete_status = f[5];
    if (!support::parse_double(f[6], row.complete_gap)) return std::nullopt;
    if (!support::parse_double(f[7], row.global_seconds)) return std::nullopt;
    row.global_status = f[8];
    row.objectives_match = f[9] == "yes";
    support::parse_int(f[10], row.complete_vars);
    support::parse_int(f[11], row.global_vars);
    rows.push_back(row);
  }
  return rows.empty() ? std::nullopt : std::make_optional(rows);
}

void store_cache(const std::vector<Table3Row>& rows) {
  std::ofstream out(kCachePath);
  out << cache_header() << "\n";
  out << "point,segments,banks_ports,configs,complete_s,complete_status,"
         "complete_gap,global_s,global_status,parity,complete_vars,"
         "global_vars\n";
  for (const Table3Row& row : rows) {
    out << row.point.index << "," << row.point.segments << ","
        << row.point.totals.banks << "/" << row.point.totals.ports << ","
        << row.point.totals.configs << "," << row.complete_seconds << ","
        << row.complete_status << "," << row.complete_gap << ","
        << row.global_seconds << "," << row.global_status << ","
        << (row.objectives_match ? "yes" : "no") << "," << row.complete_vars
        << "," << row.global_vars << "\n";
  }
}

}  // namespace

std::vector<Table3Row> run_or_load_table3_sweep() {
  if (auto cached = load_cache()) {
    std::fprintf(stderr,
                 "[bench] reusing %s (same seed/limit/points)\n",
                 kCachePath);
    return *cached;
  }

  std::vector<Table3Row> rows;
  const int max_point = env_max_point();
  for (const workload::Table3Point& point : workload::table3_points()) {
    if (point.index > max_point) break;
    std::fprintf(stderr, "[bench] table3 point %d (%lld segments)...\n",
                 point.index, static_cast<long long>(point.segments));
    const workload::Table3Instance instance =
        workload::build_instance(point, env_seed());

    Table3Row row;
    row.point = point;

    // Global/detailed pipeline (includes pre-processing, as the paper's
    // timing does).
    support::WallTimer timer;
    mapping::PipelineOptions pipeline_options;
    pipeline_options.global.mip.time_limit_seconds = env_time_limit();
    const mapping::PipelineResult pipeline =
        mapping::map_pipeline(instance.design, instance.board,
                              pipeline_options);
    row.global_seconds = timer.seconds();
    row.global_status = lp::to_string(pipeline.status);
    row.global_vars = pipeline.model_size.variables;
    row.global_rows = pipeline.model_size.rows;

    // Complete (flat) approach, same cost table.
    timer.reset();
    const mapping::CostTable table(instance.design, instance.board);
    mapping::CompleteOptions complete_options;
    complete_options.mip.time_limit_seconds = env_time_limit();
    const mapping::CompleteResult complete = mapping::map_complete(
        instance.design, instance.board, table, complete_options);
    row.complete_seconds = timer.seconds();
    row.complete_status = lp::to_string(complete.status);
    row.complete_gap = complete.mip.has_incumbent() ? complete.mip.gap() : -1;
    row.complete_vars = complete.model_size.variables;
    row.complete_rows = complete.model_size.rows;

    // Both solvers run at the CPLEX-like 1e-4 relative gap, so parity
    // holds up to twice that.
    row.objectives_match =
        pipeline.status == lp::SolveStatus::kOptimal &&
        complete.mip.has_incumbent() &&
        std::abs(pipeline.assignment.objective - complete.mip.objective) <=
            2e-4 * std::max(1.0, pipeline.assignment.objective);
    rows.push_back(row);
  }
  store_cache(rows);
  return rows;
}

}  // namespace gmm::bench
