// Microbenchmarks (google-benchmark) of the solver and pre-processing
// kernels: dual-simplex LP solves, refactorization, consumed_ports /
// placement planning, MILP knapsacks, and the detailed packer.
#include <benchmark/benchmark.h>

#include "arch/device_catalog.hpp"
#include "ilp/mip_solver.hpp"
#include "lp/solver.hpp"
#include "mapping/detailed_mapper.hpp"
#include "mapping/preprocess.hpp"
#include "support/rng.hpp"
#include "workload/table3_suite.hpp"

namespace {

using namespace gmm;

lp::Model random_lp(int vars, int rows, std::uint64_t seed) {
  support::Rng rng(seed);
  lp::Model model;
  for (int j = 0; j < vars; ++j) {
    model.add_variable(0, 10, static_cast<double>(rng.uniform_int(-10, 10)));
  }
  for (int i = 0; i < rows; ++i) {
    lp::LinExpr expr;
    double mid = 0;
    for (int j = 0; j < vars; ++j) {
      if (rng.bernoulli(0.3)) {
        const double a = static_cast<double>(rng.uniform_int(-5, 5));
        if (a != 0) {
          expr.add(j, a);
          mid += 5 * a;
        }
      }
    }
    if (!expr.empty()) {
      model.add_constraint(expr, lp::Sense::kLessEqual,
                           mid + static_cast<double>(rng.uniform_int(0, 30)));
    }
  }
  return model;
}

void BM_LpSolve(benchmark::State& state) {
  const lp::Model model = random_lp(static_cast<int>(state.range(0)),
                                    static_cast<int>(state.range(1)), 42);
  for (auto _ : state) {
    const lp::LpResult r = lp::solve_lp(model);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_LpSolve)->Args({50, 30})->Args({200, 100})->Args({500, 250});

void BM_MipKnapsack(benchmark::State& state) {
  support::Rng rng(7);
  lp::Model model;
  lp::LinExpr weight;
  for (int i = 0; i < state.range(0); ++i) {
    weight.add(model.add_binary(static_cast<double>(-rng.uniform_int(1, 100))),
               static_cast<double>(rng.uniform_int(1, 50)));
  }
  model.add_constraint(weight, lp::Sense::kLessEqual,
                       static_cast<double>(state.range(0)) * 10.0);
  for (auto _ : state) {
    const ilp::MipResult r = ilp::solve_mip(model);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_MipKnapsack)->Arg(20)->Arg(40)->Arg(60);

void BM_PlanPlacement(benchmark::State& state) {
  const arch::BankType bank =
      arch::on_chip_bank_type(*arch::find_device("XCV1000"));
  support::Rng rng(13);
  std::vector<design::DataStructure> shapes;
  for (int i = 0; i < 256; ++i) {
    design::DataStructure ds;
    ds.name = "s";
    ds.depth = rng.uniform_int(1, 16384);
    ds.width = rng.uniform_int(1, 64);
    shapes.push_back(ds);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const mapping::PlacementPlan plan =
        mapping::plan_placement(shapes[i++ % shapes.size()], bank);
    benchmark::DoNotOptimize(plan.cp);
  }
}
BENCHMARK(BM_PlanPlacement);

void BM_ConsumedPorts(benchmark::State& state) {
  std::int64_t d = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapping::consumed_ports(d, 4096, 2));
    d = d % 4000 + 1;
  }
}
BENCHMARK(BM_ConsumedPorts);

void BM_DetailedPack(benchmark::State& state) {
  const workload::Table3Instance instance =
      workload::build_instance(workload::table3_points()[1]);
  const mapping::CostTable table(instance.design, instance.board);
  // A feasible assignment via the pipeline once, re-packed every
  // iteration.
  mapping::GlobalAssignment assignment;
  assignment.type_of.assign(instance.design.size(), -1);
  for (std::size_t d = 0; d < instance.design.size(); ++d) {
    for (std::size_t t = 0; t < instance.board.num_types(); ++t) {
      if (table.feasible(d, t)) {
        assignment.type_of[d] = static_cast<int>(t);
        break;
      }
    }
  }
  for (auto _ : state) {
    const mapping::DetailedMapping m = mapping::map_detailed(
        instance.design, instance.board, table, assignment);
    benchmark::DoNotOptimize(m.fragments.size());
  }
}
BENCHMARK(BM_DetailedPack);

}  // namespace
