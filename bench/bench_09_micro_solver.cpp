// Microbenchmarks (google-benchmark) of the solver and pre-processing
// kernels: dual-simplex LP solves, refactorization, consumed_ports /
// placement planning, MILP knapsacks, and the detailed packer — plus the
// parallel-solver thread sweep: the largest micro MIP solved at every
// GMM_BENCH_THREADS count, reporting seconds, speedup over 1 thread and
// the (identical) objective.  JSON mirror: BENCH_micro_solver.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "arch/device_catalog.hpp"
#include "bench_common.hpp"
#include "ilp/mip_solver.hpp"
#include "lp/solver.hpp"
#include "mapping/complete_mapper.hpp"
#include "mapping/detailed_mapper.hpp"
#include "mapping/global_mapper.hpp"
#include "mapping/preprocess.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"
#include "workload/table3_suite.hpp"

namespace {

using namespace gmm;

lp::Model random_lp(int vars, int rows, std::uint64_t seed) {
  support::Rng rng(seed);
  lp::Model model;
  for (int j = 0; j < vars; ++j) {
    model.add_variable(0, 10, static_cast<double>(rng.uniform_int(-10, 10)));
  }
  for (int i = 0; i < rows; ++i) {
    lp::LinExpr expr;
    double mid = 0;
    for (int j = 0; j < vars; ++j) {
      if (rng.bernoulli(0.3)) {
        const double a = static_cast<double>(rng.uniform_int(-5, 5));
        if (a != 0) {
          expr.add(j, a);
          mid += 5 * a;
        }
      }
    }
    if (!expr.empty()) {
      model.add_constraint(expr, lp::Sense::kLessEqual,
                           mid + static_cast<double>(rng.uniform_int(0, 30)));
    }
  }
  return model;
}

void BM_LpSolve(benchmark::State& state) {
  const lp::Model model = random_lp(static_cast<int>(state.range(0)),
                                    static_cast<int>(state.range(1)), 42);
  for (auto _ : state) {
    const lp::LpResult r = lp::solve_lp(model);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_LpSolve)->Args({50, 30})->Args({200, 100})->Args({500, 250});

void BM_MipKnapsack(benchmark::State& state) {
  support::Rng rng(7);
  lp::Model model;
  lp::LinExpr weight;
  for (int i = 0; i < state.range(0); ++i) {
    weight.add(model.add_binary(static_cast<double>(-rng.uniform_int(1, 100))),
               static_cast<double>(rng.uniform_int(1, 50)));
  }
  model.add_constraint(weight, lp::Sense::kLessEqual,
                       static_cast<double>(state.range(0)) * 10.0);
  for (auto _ : state) {
    const ilp::MipResult r = ilp::solve_mip(model);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_MipKnapsack)->Arg(20)->Arg(40)->Arg(60);

void BM_PlanPlacement(benchmark::State& state) {
  const arch::BankType bank =
      arch::on_chip_bank_type(*arch::find_device("XCV1000"));
  support::Rng rng(13);
  std::vector<design::DataStructure> shapes;
  for (int i = 0; i < 256; ++i) {
    design::DataStructure ds;
    ds.name = "s";
    ds.depth = rng.uniform_int(1, 16384);
    ds.width = rng.uniform_int(1, 64);
    shapes.push_back(ds);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const mapping::PlacementPlan plan =
        mapping::plan_placement(shapes[i++ % shapes.size()], bank);
    benchmark::DoNotOptimize(plan.cp);
  }
}
BENCHMARK(BM_PlanPlacement);

void BM_ConsumedPorts(benchmark::State& state) {
  std::int64_t d = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapping::consumed_ports(d, 4096, 2));
    d = d % 4000 + 1;
  }
}
BENCHMARK(BM_ConsumedPorts);

void BM_DetailedPack(benchmark::State& state) {
  const workload::Table3Instance instance =
      workload::build_instance(workload::table3_points()[1]);
  const mapping::CostTable table(instance.design, instance.board);
  // A feasible assignment via the pipeline once, re-packed every
  // iteration.
  mapping::GlobalAssignment assignment;
  assignment.type_of.assign(instance.design.size(), -1);
  for (std::size_t d = 0; d < instance.design.size(); ++d) {
    for (std::size_t t = 0; t < instance.board.num_types(); ++t) {
      if (table.feasible(d, t)) {
        assignment.type_of[d] = static_cast<int>(t);
        break;
      }
    }
  }
  for (auto _ : state) {
    const mapping::DetailedMapping m = mapping::map_detailed(
        instance.design, instance.board, table, assignment);
    benchmark::DoNotOptimize(m.fragments.size());
  }
}
BENCHMARK(BM_DetailedPack);

// ---- parallel-solver thread sweep ---------------------------------------

/// The largest micro instance: a multi-dimensional knapsack whose LP bound
/// is weak enough (cuts disabled) to force a deep branch & bound tree with
/// non-trivial node LPs — the shape where work-sharing across threads pays.
lp::Model hard_mip(int vars, int rows, std::uint64_t seed) {
  support::Rng rng(seed);
  lp::Model model;
  std::vector<lp::Index> x;
  for (int j = 0; j < vars; ++j) {
    x.push_back(
        model.add_binary(static_cast<double>(-rng.uniform_int(10, 100))));
  }
  for (int i = 0; i < rows; ++i) {
    lp::LinExpr weight;
    std::int64_t total = 0;
    for (const lp::Index j : x) {
      const std::int64_t w = rng.uniform_int(5, 40);
      weight.add(j, static_cast<double>(w));
      total += w;
    }
    model.add_constraint(weight, lp::Sense::kLessEqual,
                         static_cast<double>(total * 30 / 100));
  }
  return model;
}

int run_sweep() {
  bench::BenchJson json("micro_solver");
  // ~20k B&B nodes, ~1.8s serial on one modern core: big enough that
  // work-sharing dominates coordination, small enough for CI.
  const lp::Model model = hard_mip(180, 24, 777);

  std::printf(
      "\n== parallel B&B thread sweep (180-var, 24-row multi-knapsack, "
      "exact gap) ==\n");
  bench::run_thread_sweep(json, "thread_sweep", {}, [&model](int threads) {
    ilp::MipOptions options;
    options.num_threads = threads;
    options.rel_gap = 0.0;
    options.max_cut_rounds = 0;  // keep the tree deep on purpose
    support::WallTimer timer;
    const ilp::MipResult r = ilp::solve_mip(model, options);
    return bench::SweepOutcome{.seconds = timer.seconds(),
                               .nodes = r.nodes,
                               .lp_iterations = r.lp_iterations,
                               .objective = r.objective,
                               .status = lp::to_string(r.status),
                               .basis = r.basis};
  });

  // ---- basis warm-start A/B on a Table-3 point --------------------------
  // The complete formulation of a mid-size Table-3 point with the
  // per-node basis cache on vs off, 1 thread so both arms search the
  // identical tree — isolating the dual pivots a heap pop pays when it
  // warm-starts from its own parent's basis vs re-deriving cold.
  const auto& points = workload::table3_points();
  const std::size_t ab_point = 3;  // paper point 4: deep enough tree
  const workload::Table3Instance instance =
      workload::build_instance(points[ab_point], bench::env_seed());
  const mapping::CostTable cost_table(instance.design, instance.board);
  std::printf("\n== basis warm-start cache A/B (Table-3 point %d, complete "
              "formulation, 1 thread) ==\n",
              points[ab_point].index);
  bench::run_basis_warm_cold_ab(
      json, "basis_warm_cold_ab",
      {bench::jint("point", points[ab_point].index)},
      [&](std::size_t max_stored_bases) {
        mapping::CompleteOptions options;
        options.mip.num_threads = 1;
        options.mip.max_stored_bases = max_stored_bases;
        options.mip.time_limit_seconds = std::min(30.0, bench::env_time_limit());
        support::WallTimer timer;
        const mapping::CompleteResult r = mapping::map_complete(
            instance.design, instance.board, cost_table, options);
        return bench::SweepOutcome{
            .seconds = timer.seconds(),
            .nodes = r.mip.nodes,
            .lp_iterations = r.mip.lp_iterations,
            .objective = r.mip.has_incumbent() ? r.mip.objective : -1.0,
            .status = lp::to_string(r.status),
            .basis = r.mip.basis};
      });

  // ---- dense-vs-sparse LP engine A/B (Table-3 point 6) ------------------
  // The paper's hardest global instance (62 segments, 65-bank board)
  // solved to gap 0 on both LP engines, 1 thread, identical options — so
  // the ONLY difference is the engine behind lp::LpBackend.  The gate
  // metric is work_units (machine-independent multiply-add proxy: the
  // dense tableau pays m^2 per pivot and m^3 per refactorization, the
  // revised simplex pays what its sparse vectors actually touch), and
  // the arms MUST prove the same objective — a mismatch fails the bench.
  const std::size_t engine_point = 5;  // paper point 6
  const workload::Table3Instance hard_instance =
      workload::build_instance(points[engine_point], bench::env_seed());
  const mapping::CostTable hard_table(hard_instance.design,
                                      hard_instance.board);
  std::printf("\n== LP engine A/B (Table-3 point %d, global formulation, "
              "exact gap, 1 thread) ==\n",
              points[engine_point].index);
  std::printf("  %-8s %10s %12s %14s %16s %12s\n", "engine", "wall (s)",
              "pivots", "refactor.", "work units", "objective");
  struct Arm {
    lp::LpEngine engine;
    double objective = 0.0;
    std::string status;
    bool proved = false;
    std::int64_t work_units = 0;
  };
  std::vector<Arm> arms;
  for (const lp::LpEngine engine :
       {lp::LpEngine::kDense, lp::LpEngine::kSparse}) {
    mapping::GlobalOptions options;
    options.mip.num_threads = 1;
    options.mip.lp_engine = engine;
    options.mip.rel_gap = 0.0;
    options.mip.abs_gap = 0.5;  // exact for the integer-valued objective
    options.mip.time_limit_seconds = std::min(120.0, bench::env_time_limit());
    support::WallTimer timer;
    const mapping::GlobalResult r = mapping::map_global(
        hard_instance.design, hard_instance.board, hard_table, options);
    const double seconds = timer.seconds();
    std::printf("  %-8s %10.3f %12lld %14lld %16lld %12.0f\n",
                lp::to_string(engine), seconds,
                static_cast<long long>(r.mip.lp_iterations),
                static_cast<long long>(r.mip.simplex_refactorizations),
                static_cast<long long>(r.mip.lp_work_units),
                r.mip.has_incumbent() ? r.mip.objective : -1.0);
    json.write("lp_engine_ab",
               {bench::jint("point", points[engine_point].index),
                bench::jstr("engine", lp::to_string(engine)),
                bench::jnum("seconds", seconds),
                bench::jint("nodes", r.mip.nodes),
                bench::jint("pivots", r.mip.lp_iterations),
                bench::jint("refactorizations",
                            r.mip.simplex_refactorizations),
                bench::jint("work_units", r.mip.lp_work_units),
                bench::jint("cover_cuts", r.mip.cover_cuts),
                bench::jint("clique_cuts", r.mip.clique_cuts),
                bench::jnum("objective",
                            r.mip.has_incumbent() ? r.mip.objective : -1.0),
                bench::jstr("status", lp::to_string(r.status))});
    arms.push_back({engine, r.mip.has_incumbent() ? r.mip.objective : -1.0,
                    lp::to_string(r.status),
                    r.status == lp::SolveStatus::kOptimal,
                    r.mip.lp_work_units});
  }
  // Objective gate, honest about proof status: two PROVEN optima must
  // match exactly; against one proven optimum the other arm's incumbent
  // must not be better (a feasible solution beating a proven optimum is
  // a correctness bug in one of the engines).  When the quick-mode time
  // cap stops both arms short of a proof, differing incumbents are
  // legitimate and the gate records rather than fails.
  const bool mismatch =
      (arms[0].proved && arms[1].proved &&
       arms[0].objective != arms[1].objective) ||
      (arms[0].proved && !arms[1].proved &&
       arms[1].objective < arms[0].objective) ||
      (arms[1].proved && !arms[0].proved &&
       arms[0].objective < arms[1].objective);
  if (mismatch) {
    std::fprintf(stderr,
                 "FAIL: LP engine A/B objective mismatch on point %d: "
                 "dense %.0f (%s) vs sparse %.0f (%s)\n",
                 points[engine_point].index, arms[0].objective,
                 arms[0].status.c_str(), arms[1].objective,
                 arms[1].status.c_str());
    return 1;
  }
  if (!arms[0].proved && !arms[1].proved) {
    std::printf("  (neither arm proved within the cap; objective gate "
                "vacuous this run)\n");
  }
  std::printf("  sparse/dense work-unit ratio: %.3f\n",
              arms[0].work_units > 0
                  ? static_cast<double>(arms[1].work_units) /
                        static_cast<double>(arms[0].work_units)
                  : 0.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_sweep();
}
