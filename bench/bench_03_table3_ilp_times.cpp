// Reproduces Table 3 ("ILP Execution Times"): the complete (flat X/Y/Z)
// formulation versus the global/detailed pipeline on the paper's nine
// design points.  Absolute seconds differ from the paper (their CPLEX on
// a 248 MHz SUN Ultra-30 vs. this repo's own B&B solver on a modern
// machine); the claim under reproduction is the SHAPE: global/detailed
// is faster everywhere and the advantage grows with design size.
//
// Knobs: GMM_BENCH_TIME_LIMIT (s per complete solve, default 120),
//        GMM_BENCH_SEED, GMM_BENCH_MAX_POINT.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "report/text_table.hpp"
#include "support/string_util.hpp"

int main() {
  using namespace gmm;
  std::printf(
      "== Table 3: ILP execution times, complete vs global/detailed ==\n"
      "(seed %llu, %.0fs time limit per complete solve; paper columns "
      "from the\nSUN Ultra-30 runs are shown for shape comparison)\n\n",
      static_cast<unsigned long long>(bench::env_seed()),
      bench::env_time_limit());

  const std::vector<bench::Table3Row> rows =
      bench::run_or_load_table3_sweep();

  report::TextTable table({"#segments", "banks", "ports", "configs",
                           "Complete (s)", "Global (s)", "ratio",
                           "paper C (s)", "paper G (s)", "paper ratio",
                           "parity"});
  for (const bench::Table3Row& row : rows) {
    const double ratio = row.global_seconds > 0
                             ? row.complete_seconds / row.global_seconds
                             : 0.0;
    const double paper_ratio =
        row.point.paper_complete_seconds / row.point.paper_global_seconds;
    std::string complete = bench::fmt_seconds(row.complete_seconds);
    if (row.complete_status != "optimal") {
      complete += " (" + row.complete_status;
      if (row.complete_gap > 0) {
        complete += " gap " + support::format_fixed(100 * row.complete_gap, 1) + "%";
      }
      complete += ")";
    }
    table.add_row({std::to_string(row.point.segments),
                   std::to_string(row.point.totals.banks),
                   std::to_string(row.point.totals.ports),
                   std::to_string(row.point.totals.configs), complete,
                   bench::fmt_seconds(row.global_seconds),
                   support::format_fixed(ratio, 1) + "x",
                   support::format_fixed(row.point.paper_complete_seconds, 1),
                   support::format_fixed(row.point.paper_global_seconds, 1),
                   support::format_fixed(paper_ratio, 1) + "x",
                   row.objectives_match ? "yes" : "-"});
  }
  table.print(std::cout);

  std::printf(
      "\n'parity' = the global/detailed objective equals the complete\n"
      "formulation's (the paper's claim that detailed mapping does not\n"
      "affect the quality of the assignment).\n"
      "Results cached in gmm_table3_results.csv for the Figure-4 bench.\n");
  return 0;
}
