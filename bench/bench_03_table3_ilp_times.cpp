// Reproduces Table 3 ("ILP Execution Times"): the complete (flat X/Y/Z)
// formulation versus the global/detailed pipeline on the paper's nine
// design points.  Absolute seconds differ from the paper (their CPLEX on
// a 248 MHz SUN Ultra-30 vs. this repo's own B&B solver on a modern
// machine); the claim under reproduction is the SHAPE: global/detailed
// is faster everywhere and the advantage grows with design size.
//
// Knobs: GMM_BENCH_TIME_LIMIT (s per complete solve, default 120),
//        GMM_BENCH_SEED, GMM_BENCH_MAX_POINT, GMM_BENCH_THREADS.
// JSON mirror: BENCH_table3.json (per-point rows + thread-sweep records).
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "mapping/complete_mapper.hpp"
#include "report/text_table.hpp"
#include "support/string_util.hpp"
#include "support/timer.hpp"

int main() {
  using namespace gmm;
  std::printf(
      "== Table 3: ILP execution times, complete vs global/detailed ==\n"
      "(seed %llu, %.0fs time limit per complete solve; paper columns "
      "from the\nSUN Ultra-30 runs are shown for shape comparison)\n\n",
      static_cast<unsigned long long>(bench::env_seed()),
      bench::env_time_limit());

  const std::vector<bench::Table3Row> rows =
      bench::run_or_load_table3_sweep();
  bench::BenchJson json("table3");

  report::TextTable table({"#segments", "banks", "ports", "configs",
                           "Complete (s)", "Global (s)", "ratio",
                           "paper C (s)", "paper G (s)", "paper ratio",
                           "parity"});
  for (const bench::Table3Row& row : rows) {
    const double ratio = row.global_seconds > 0
                             ? row.complete_seconds / row.global_seconds
                             : 0.0;
    const double paper_ratio =
        row.point.paper_complete_seconds / row.point.paper_global_seconds;
    std::string complete = bench::fmt_seconds(row.complete_seconds);
    if (row.complete_status != "optimal") {
      complete += " (" + row.complete_status;
      if (row.complete_gap > 0) {
        complete += " gap " + support::format_fixed(100 * row.complete_gap, 1) + "%";
      }
      complete += ")";
    }
    table.add_row({std::to_string(row.point.segments),
                   std::to_string(row.point.totals.banks),
                   std::to_string(row.point.totals.ports),
                   std::to_string(row.point.totals.configs), complete,
                   bench::fmt_seconds(row.global_seconds),
                   support::format_fixed(ratio, 1) + "x",
                   support::format_fixed(row.point.paper_complete_seconds, 1),
                   support::format_fixed(row.point.paper_global_seconds, 1),
                   support::format_fixed(paper_ratio, 1) + "x",
                   row.objectives_match ? "yes" : "-"});
    json.write("point",
               {bench::jint("index", row.point.index),
                bench::jint("segments", row.point.segments),
                bench::jint("banks", row.point.totals.banks),
                bench::jint("ports", row.point.totals.ports),
                bench::jint("configs", row.point.totals.configs),
                bench::jnum("complete_seconds", row.complete_seconds),
                bench::jstr("complete_status", row.complete_status),
                bench::jnum("complete_gap", row.complete_gap),
                bench::jnum("global_seconds", row.global_seconds),
                bench::jstr("global_status", row.global_status),
                bench::jbool("parity", row.objectives_match)});
  }
  table.print(std::cout);

  std::printf(
      "\n'parity' = the global/detailed objective equals the complete\n"
      "formulation's (the paper's claim that detailed mapping does not\n"
      "affect the quality of the assignment).\n"
      "Results cached in gmm_table3_results.csv for the Figure-4 bench.\n");

  // ---- parallel-solver thread sweep ------------------------------------
  // The complete formulation of a mid-size point re-solved at each
  // GMM_BENCH_THREADS count: the Table-3 bottleneck is exactly the solve
  // the parallel branch & bound attacks.
  const auto& points = workload::table3_points();
  const int sweep_index =
      std::max(0, std::min(3, bench::env_max_point() - 1));
  const workload::Table3Instance instance =
      workload::build_instance(points[sweep_index], bench::env_seed());
  const mapping::CostTable cost_table(instance.design, instance.board);
  const double sweep_limit = std::min(60.0, bench::env_time_limit());

  std::printf("\n== complete-formulation thread sweep (Table-3 point %d) "
              "==\n",
              points[sweep_index].index);
  bench::run_thread_sweep(
      json, "complete_thread_sweep",
      {bench::jint("point", points[sweep_index].index)},
      [&](int threads) {
        mapping::CompleteOptions options;
        options.mip.num_threads = threads;
        options.mip.time_limit_seconds = sweep_limit;
        support::WallTimer timer;
        const mapping::CompleteResult r = mapping::map_complete(
            instance.design, instance.board, cost_table, options);
        return bench::SweepOutcome{
            .seconds = timer.seconds(),
            .nodes = r.mip.nodes,
            .lp_iterations = r.mip.lp_iterations,
            .objective = r.mip.has_incumbent() ? r.mip.objective : -1.0,
            .status = lp::to_string(r.status),
            .basis = r.mip.basis};
      });

  // ---- basis warm-start A/B --------------------------------------------
  // The same Table-3 point solved with the per-node basis cache on vs off
  // (max_stored_bases 4096 vs 0), single-threaded so both arms search the
  // identical tree: warm-started heap pops should pay fewer dual pivots
  // per node.  bench_09 runs the same A/B; this copy keeps the claim
  // measurable without google-benchmark installed.
  std::printf("\n== basis warm-start cache A/B (Table-3 point %d, complete "
              "formulation, 1 thread) ==\n",
              points[sweep_index].index);
  bench::run_basis_warm_cold_ab(
      json, "basis_warm_cold_ab",
      {bench::jint("point", points[sweep_index].index)},
      [&](std::size_t max_stored_bases) {
        mapping::CompleteOptions options;
        options.mip.num_threads = 1;
        options.mip.max_stored_bases = max_stored_bases;
        options.mip.time_limit_seconds = sweep_limit;
        support::WallTimer timer;
        const mapping::CompleteResult r = mapping::map_complete(
            instance.design, instance.board, cost_table, options);
        return bench::SweepOutcome{
            .seconds = timer.seconds(),
            .nodes = r.mip.nodes,
            .lp_iterations = r.mip.lp_iterations,
            .objective = r.mip.has_incumbent() ? r.mip.objective : -1.0,
            .status = lp::to_string(r.status),
            .basis = r.mip.basis};
      });
  return 0;
}
