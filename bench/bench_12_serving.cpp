// Serving-path load bench: spawns a real `mapper_serve --listen` and
// replays an OPEN-LOOP workload against it — request i arrives at the
// fixed time i/rate whether or not earlier requests have finished, so
// the measured latencies include queueing delay instead of hiding it the
// way closed-loop (send-after-receive) replay does.  Per arrival rate it
// reports p50/p95/p99 latency, sustained throughput, and the shed /
// timeout rates of the bounded admission queue.  JSON mirror:
// BENCH_serving.json (one record per rate).
//
// Environment knobs (on top of bench_common's):
//   GMM_BENCH_SERVE_RATES        comma-separated arrival rates in req/s
//                                (default "20,50,100")
//   GMM_BENCH_SERVE_REQUESTS     requests per rate point (default 120)
//   GMM_BENCH_SERVE_CLIENTS      concurrent connections (default 4)
//   GMM_BENCH_SERVE_WORKERS      server mapping workers (default 4)
//   GMM_BENCH_SERVE_QUEUE        server admission bound (default 32)
//   GMM_BENCH_SERVE_DEADLINE_MS  per-request deadline (default 2000)
//   GMM_BENCH_SERVE_SEGMENTS    segments per generated design (default 8)
//
// After the rate sweep an OVERLOAD point runs against a second server
// with the degradation plane armed (--shed-delay-ms, --watchdog-ms) and
// a benign fault schedule, at an arrival rate far above capacity; the
// "overload" record captures shed_rate, p99_under_faults_ms, and
// retry-after honesty (did a retry that waited out the hint get in?).
//   GMM_BENCH_SERVE_OVERLOAD_RATE      arrival rate (default 300 req/s)
//   GMM_BENCH_SERVE_OVERLOAD_REQUESTS  requests (default 150)
//   GMM_BENCH_SERVE_OVERLOAD_SEGMENTS  segments per design (default 24,
//                                      solved with formulation=complete)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "arch/arch_io.hpp"
#include "bench_common.hpp"
#include "design/design_io.hpp"
#include "service/json.hpp"
#include "service/process_client.hpp"
#include "service/protocol.hpp"
#include "support/string_util.hpp"
#include "workload/workload_gen.hpp"

#ifndef GMM_MAPPER_SERVE_PATH
#define GMM_MAPPER_SERVE_PATH ""
#endif

namespace {

using namespace gmm;
using Clock = std::chrono::steady_clock;

std::int64_t env_int(const char* name, std::int64_t lo, std::int64_t hi,
                     std::int64_t fallback) {
  const char* raw = std::getenv(name);
  std::int64_t value = 0;
  if (raw != nullptr && support::parse_int(raw, value) && value >= lo &&
      value <= hi) {
    return value;
  }
  return fallback;
}

std::vector<double> env_rates() {
  const char* raw = std::getenv("GMM_BENCH_SERVE_RATES");
  std::vector<double> rates;
  for (const std::string& token :
       support::split(raw != nullptr ? raw : "20,50,100", ',')) {
    std::int64_t value = 0;
    if (support::parse_int(support::trim(token), value) && value >= 1 &&
        value <= 100000) {
      rates.push_back(static_cast<double>(value));
    }
  }
  if (rates.empty()) rates = {20.0, 50.0, 100.0};
  return rates;
}

/// Latency + terminal status of one replayed request.
struct Outcome {
  double latency_ms = 0.0;
  service::ResponseStatus status = service::ResponseStatus::kError;
  bool received = false;
};

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t index = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
  return sorted[index];
}

}  // namespace

int main() {
  if (std::string(GMM_MAPPER_SERVE_PATH).empty()) {
    std::fprintf(stderr, "mapper_serve path not configured; skipping\n");
    return 0;
  }
  const int requests = static_cast<int>(
      env_int("GMM_BENCH_SERVE_REQUESTS", 1, 1'000'000, 120));
  const int clients =
      static_cast<int>(env_int("GMM_BENCH_SERVE_CLIENTS", 1, 256, 4));
  const int workers =
      static_cast<int>(env_int("GMM_BENCH_SERVE_WORKERS", 1, 256, 4));
  const int queue =
      static_cast<int>(env_int("GMM_BENCH_SERVE_QUEUE", 1, 100000, 32));
  const int deadline_ms = static_cast<int>(
      env_int("GMM_BENCH_SERVE_DEADLINE_MS", 1, 3'600'000, 2000));
  const std::vector<double> rates = env_rates();

  // A pool of small distinct designs on the bundled synthetic board:
  // large enough to defeat trivial caching, small enough that one solve
  // is milliseconds and the interesting signal is QUEUEING, not solving.
  const arch::Board board = *workload::board_from_totals(
      {.banks = 23, .ports = 45, .configs = 100});
  std::vector<std::string> designs;
  for (int i = 0; i < 16; ++i) {
    workload::DesignGenOptions gen;
    gen.num_segments =
        env_int("GMM_BENCH_SERVE_SEGMENTS", 2, 64, 8);
    gen.seed = bench::env_seed() + static_cast<std::uint64_t>(i);
    designs.push_back(design::design_to_string(
        workload::generate_design(board, gen)));
  }
  const std::string board_file = "bench_serving_board.txt";
  {
    std::ofstream out(board_file);
    arch::write_board(out, board);
  }
  long pid = 0;
#ifndef _WIN32
  pid = static_cast<long>(::getpid());
#endif
  const std::string socket_path =
      "/tmp/gmm_bench_serving_" + std::to_string(pid) + ".sock";

  service::ProcessClient server;
  if (!server.start(GMM_MAPPER_SERVE_PATH,
                    {board_file, "--workers", std::to_string(workers),
                     "--queue", std::to_string(queue), "--listen",
                     socket_path})) {
    std::fprintf(stderr, "cannot spawn mapper_serve; skipping\n");
    return 0;
  }
  if (!server.read_line(60.0).has_value()) {
    std::fprintf(stderr, "server printed no listening event\n");
    return 1;
  }

  bench::BenchJson json("serving");
  std::printf("open-loop serving bench: %d requests/rate, %d clients, "
              "%d workers, queue %d, deadline %d ms\n\n",
              requests, clients, workers, queue, deadline_ms);
  std::printf("%8s %9s %9s %9s %9s %8s %7s %7s %7s %7s\n", "rate",
              "p50_ms", "p95_ms", "p99_ms", "thruput", "wall_s", "ok",
              "timeout", "shed", "error");

  for (const double rate : rates) {
    // One socket connection per client; a dedicated reader thread each,
    // so slow responses never block the open-loop sender.  (Sender and
    // reader touch disjoint fds of the connection.)
    std::vector<std::unique_ptr<service::ProcessClient>> conns;
    for (int c = 0; c < clients; ++c) {
      conns.push_back(std::make_unique<service::ProcessClient>());
      if (!conns.back()->connect(socket_path)) {
        std::fprintf(stderr, "client %d cannot connect\n", c);
        return 1;
      }
    }
    std::vector<Outcome> outcomes(static_cast<std::size_t>(requests));
    std::vector<int> per_conn_count(static_cast<std::size_t>(clients), 0);
    for (int i = 0; i < requests; ++i) {
      ++per_conn_count[static_cast<std::size_t>(i % clients)];
    }
    const Clock::time_point start = Clock::now();
    std::vector<std::thread> readers;
    for (int c = 0; c < clients; ++c) {
      readers.emplace_back([&, c] {
        service::ProcessClient& conn = *conns[static_cast<std::size_t>(c)];
        for (int remaining = per_conn_count[static_cast<std::size_t>(c)];
             remaining > 0;) {
          const auto line = conn.read_line(120.0);
          if (!line.has_value()) return;  // server gone: counted as lost
          const service::JsonParseResult parsed =
              service::parse_json(*line);
          if (!parsed.ok) continue;
          service::Response response;
          if (!service::Response::from_json(parsed.value, response) ||
              response.method != "map") {
            continue;
          }
          std::int64_t index = -1;
          if (!support::parse_int(response.id.substr(1), index)) continue;
          const double arrival_s = static_cast<double>(index) / rate;
          Outcome& outcome = outcomes[static_cast<std::size_t>(index)];
          // Latency from the SCHEDULED arrival, not the actual send:
          // sender backlog must count (no coordinated omission).
          outcome.latency_ms =
              std::chrono::duration<double, std::milli>(Clock::now() -
                                                        start)
                  .count() -
              arrival_s * 1000.0;
          outcome.status = response.status;
          outcome.received = true;
          --remaining;
        }
      });
    }
    // The open-loop sender: request i goes on the wire at i/rate from
    // `start`, on connection i % clients, round-robin over the designs.
    for (int i = 0; i < requests; ++i) {
      const double arrival_s = static_cast<double>(i) / rate;
      std::this_thread::sleep_until(
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(arrival_s)));
      service::JsonObject request;
      request["v"] = 2;
      request["id"] = "r" + std::to_string(i);
      request["method"] = std::string("map");
      request["design_text"] =
          designs[static_cast<std::size_t>(i) % designs.size()];
      request["deadline_ms"] = deadline_ms;
      if (!conns[static_cast<std::size_t>(i % clients)]->send_line(
              service::Json(std::move(request)).dump())) {
        std::fprintf(stderr, "send failed at request %d\n", i);
        break;
      }
    }
    for (std::thread& t : readers) t.join();
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - start).count();

    std::vector<double> latencies;
    std::int64_t ok = 0, timeout = 0, shed = 0, error = 0, lost = 0;
    for (const Outcome& outcome : outcomes) {
      if (!outcome.received) {
        ++lost;
        continue;
      }
      latencies.push_back(outcome.latency_ms);
      switch (outcome.status) {
        case service::ResponseStatus::kOk:
          ++ok;
          break;
        case service::ResponseStatus::kTimeout:
          ++timeout;
          break;
        case service::ResponseStatus::kRejected:
          ++shed;
          break;
        default:
          ++error;
          break;
      }
    }
    std::sort(latencies.begin(), latencies.end());
    const double p50 = percentile(latencies, 0.50);
    const double p95 = percentile(latencies, 0.95);
    const double p99 = percentile(latencies, 0.99);
    const double throughput = static_cast<double>(ok) / wall_s;
    const double n = static_cast<double>(requests);
    std::printf("%8.0f %9.2f %9.2f %9.2f %9.1f %8.2f %7lld %7lld %7lld "
                "%7lld\n",
                rate, p50, p95, p99, throughput, wall_s,
                static_cast<long long>(ok), static_cast<long long>(timeout),
                static_cast<long long>(shed), static_cast<long long>(error));
    json.write("open_loop",
               {bench::jnum("rate_rps", rate),
                bench::jint("requests", requests),
                bench::jint("clients", clients),
                bench::jint("workers", workers),
                bench::jint("queue", queue),
                bench::jint("deadline_ms", deadline_ms),
                bench::jnum("p50_ms", p50), bench::jnum("p95_ms", p95),
                bench::jnum("p99_ms", p99),
                bench::jnum("throughput_rps", throughput),
                bench::jnum("wall_seconds", wall_s),
                bench::jint("ok", ok), bench::jint("timeout", timeout),
                bench::jint("shed", shed), bench::jint("error", error),
                bench::jint("lost", lost),
                bench::jnum("shed_rate", static_cast<double>(shed) / n),
                bench::jnum("timeout_rate",
                            static_cast<double>(timeout) / n)});
    if (lost > 0) {
      std::fprintf(stderr, "rate %.0f: %lld request(s) lost\n", rate,
                   static_cast<long long>(lost));
    }
  }

  service::ProcessClient closer;
  if (closer.connect(socket_path)) {
    closer.send_line(R"({"method":"shutdown"})");
    closer.read_line(30.0);
  }
  int exit_code = server.wait_exit(30.0);

  // ---- overload point ------------------------------------------------
  // A second server with the degradation plane armed (delay-keyed
  // shedding, stall watchdog) and a BENIGN fault schedule (partial
  // writes, LU sabotage — absorbed internally, no connection kills),
  // driven far past capacity.  Reported: shed rate, p99 under faults,
  // and retry-after HONESTY — after waiting out the hint on a shed
  // response, does a retry get accepted?
  const int over_rate = static_cast<int>(
      env_int("GMM_BENCH_SERVE_OVERLOAD_RATE", 1, 100000, 300));
  const int over_requests = static_cast<int>(
      env_int("GMM_BENCH_SERVE_OVERLOAD_REQUESTS", 1, 1'000'000, 150));
  // Heavier designs than the latency phases: the point is a server whose
  // capacity is far BELOW the arrival rate, so queue delay builds and the
  // shedding plane engages.
  std::vector<std::string> over_designs;
  for (int i = 0; i < 8; ++i) {
    workload::DesignGenOptions gen;
    gen.num_segments = env_int("GMM_BENCH_SERVE_OVERLOAD_SEGMENTS", 2, 64, 24);
    gen.seed = bench::env_seed() + 1000 + static_cast<std::uint64_t>(i);
    over_designs.push_back(design::design_to_string(
        workload::generate_design(board, gen)));
  }
  const std::string over_socket = socket_path + ".overload";
  service::ProcessClient over_server;
  if (!over_server.start(
          GMM_MAPPER_SERVE_PATH,
          {board_file, "--workers", "2", "--queue", "16", "--listen",
           over_socket, "--shed-delay-ms", "25", "--watchdog-ms", "2000",
           "--faults",
           "seed=5,socket.write:partial@0.05,lu.refactor:singular@0.01"})) {
    std::fprintf(stderr, "cannot spawn overload server; skipping phase\n");
    std::remove(board_file.c_str());
    std::printf("\nJSON mirror: %s\n", json.path().c_str());
    return exit_code == 0 ? 0 : 1;
  }
  if (!over_server.read_line(60.0).has_value()) {
    std::fprintf(stderr, "overload server printed no listening event\n");
    return 1;
  }
  {
    constexpr int kOverClients = 4;
    std::vector<std::unique_ptr<service::ProcessClient>> conns;
    for (int c = 0; c < kOverClients; ++c) {
      conns.push_back(std::make_unique<service::ProcessClient>());
      if (!conns.back()->connect(over_socket)) {
        std::fprintf(stderr, "overload client %d cannot connect\n", c);
        return 1;
      }
    }
    struct OverOutcome {
      double latency_ms = 0.0;
      service::ResponseStatus status = service::ResponseStatus::kError;
      std::int64_t retry_after_ms = 0;
      bool received = false;
    };
    std::vector<OverOutcome> outcomes(
        static_cast<std::size_t>(over_requests));
    std::vector<int> per_conn(kOverClients, 0);
    for (int i = 0; i < over_requests; ++i) ++per_conn[i % kOverClients];
    const Clock::time_point start = Clock::now();
    std::vector<std::thread> readers;
    for (int c = 0; c < kOverClients; ++c) {
      readers.emplace_back([&, c] {
        service::ProcessClient& conn = *conns[static_cast<std::size_t>(c)];
        for (int remaining = per_conn[static_cast<std::size_t>(c)];
             remaining > 0;) {
          const auto line = conn.read_line(120.0);
          if (!line.has_value()) return;
          const service::JsonParseResult parsed = service::parse_json(*line);
          if (!parsed.ok) continue;
          service::Response response;
          if (!service::Response::from_json(parsed.value, response) ||
              response.method != "map") {
            continue;
          }
          std::int64_t index = -1;
          if (!support::parse_int(response.id.substr(1), index)) continue;
          OverOutcome& outcome = outcomes[static_cast<std::size_t>(index)];
          outcome.latency_ms =
              std::chrono::duration<double, std::milli>(Clock::now() - start)
                  .count() -
              static_cast<double>(index) / over_rate * 1000.0;
          outcome.status = response.status;
          outcome.retry_after_ms = response.retry_after_ms;
          outcome.received = true;
          --remaining;
        }
      });
    }
    for (int i = 0; i < over_requests; ++i) {
      const double arrival_s =
          static_cast<double>(i) / static_cast<double>(over_rate);
      std::this_thread::sleep_until(
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(arrival_s)));
      service::JsonObject request;
      request["v"] = 2;
      request["id"] = "o" + std::to_string(i);
      request["method"] = std::string("map");
      request["design_text"] =
          over_designs[static_cast<std::size_t>(i) % over_designs.size()];
      // The flat one-ILP formulation: orders of magnitude slower than the
      // pipeline on the same design, which is the point — capacity must
      // sit far below the arrival rate for shedding to engage.
      request["formulation"] = std::string("complete");
      request["deadline_ms"] = deadline_ms;
      if (!conns[static_cast<std::size_t>(i % kOverClients)]->send_line(
              service::Json(std::move(request)).dump())) {
        std::fprintf(stderr, "overload send failed at request %d\n", i);
        break;
      }
    }
    for (std::thread& t : readers) t.join();

    std::vector<double> latencies;
    std::int64_t ok = 0, shed = 0, timeout = 0, error = 0;
    std::vector<std::int64_t> shed_hints;
    for (const OverOutcome& outcome : outcomes) {
      if (!outcome.received) continue;
      latencies.push_back(outcome.latency_ms);
      switch (outcome.status) {
        case service::ResponseStatus::kOk:
          ++ok;
          break;
        case service::ResponseStatus::kRejected:
          ++shed;
          shed_hints.push_back(outcome.retry_after_ms);
          break;
        case service::ResponseStatus::kTimeout:
          ++timeout;
          break;
        default:
          ++error;
          break;
      }
    }
    // Retry-after honesty: wait out the LARGEST hint the storm produced,
    // then retry one request per shed response (fresh ids, sequential).
    // An honest hint means the backlog has drained by then and retries
    // are accepted.
    std::int64_t retried = 0, retry_accepted = 0;
    if (!shed_hints.empty()) {
      std::int64_t max_hint = 0;
      for (const std::int64_t hint : shed_hints) {
        max_hint = std::max(max_hint, hint);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(max_hint));
      service::ProcessClient& conn = *conns[0];
      const std::size_t retries = std::min<std::size_t>(shed_hints.size(), 20);
      for (std::size_t i = 0; i < retries; ++i) {
        service::JsonObject request;
        request["v"] = 2;
        request["id"] = "y" + std::to_string(i);
        request["method"] = std::string("map");
        request["design_text"] = over_designs[i % over_designs.size()];
        request["formulation"] = std::string("complete");
        request["deadline_ms"] = deadline_ms;
        if (!conn.send_line(service::Json(std::move(request)).dump())) break;
        const auto line = conn.read_line(60.0);
        if (!line.has_value()) break;
        ++retried;
        service::Response response;
        const service::JsonParseResult parsed = service::parse_json(*line);
        if (parsed.ok && service::Response::from_json(parsed.value, response) &&
            response.status != service::ResponseStatus::kRejected) {
          ++retry_accepted;
        }
      }
    }

    std::sort(latencies.begin(), latencies.end());
    const double p99 = percentile(latencies, 0.99);
    const double n = static_cast<double>(over_requests);
    const double shed_rate = static_cast<double>(shed) / n;
    const double retry_success =
        retried > 0 ? static_cast<double>(retry_accepted) /
                          static_cast<double>(retried)
                    : 0.0;
    std::printf("\noverload point: rate %d rps, %d requests, shed %.1f%%, "
                "p99 %.2f ms (under faults), retry-after honesty %lld/%lld\n",
                over_rate, over_requests, 100.0 * shed_rate, p99,
                static_cast<long long>(retry_accepted),
                static_cast<long long>(retried));
    json.write("overload",
               {bench::jnum("rate_rps", static_cast<double>(over_rate)),
                bench::jint("requests", over_requests),
                bench::jint("ok", ok), bench::jint("shed", shed),
                bench::jint("timeout", timeout), bench::jint("error", error),
                bench::jnum("shed_rate", shed_rate),
                bench::jnum("p99_under_faults_ms", p99),
                bench::jint("retry_attempts", retried),
                bench::jint("retry_accepted", retry_accepted),
                bench::jnum("retry_success_rate", retry_success)});
  }
  service::ProcessClient over_closer;
  if (over_closer.connect(over_socket)) {
    over_closer.send_line(R"({"method":"shutdown"})");
    over_closer.read_line(30.0);
  }
  if (over_server.wait_exit(30.0) != 0) exit_code = 1;

  std::remove(board_file.c_str());
  std::printf("\nJSON mirror: %s\n", json.path().c_str());
  return exit_code == 0 ? 0 : 1;
}
