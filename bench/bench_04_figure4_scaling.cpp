// Reproduces Figure 4 ("Complete versus Global/Detailed Execution
// Times"): the Table-3 data plotted against design-point index.  Prints
// an ASCII rendering, writes gnuplot-ready data (gmm_figure4.dat), and
// shows the paper's own series for shape comparison.  Reuses the cached
// Table-3 sweep when fresh (same seed/limit), otherwise re-runs it.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "report/ascii_plot.hpp"

int main() {
  using namespace gmm;
  std::printf("== Figure 4: complete vs global/detailed scaling ==\n\n");

  const std::vector<bench::Table3Row> rows =
      bench::run_or_load_table3_sweep();

  report::Series complete{"complete approach (measured)", {}, '*'};
  report::Series global{"global/detailed approach (measured)", {}, 'o'};
  report::Series paper_complete{"complete (paper, Ultra-30)", {}, 'C'};
  report::Series paper_global{"global/detailed (paper, Ultra-30)", {}, 'G'};
  for (const bench::Table3Row& row : rows) {
    complete.y.push_back(row.complete_seconds);
    global.y.push_back(row.global_seconds);
    paper_complete.y.push_back(row.point.paper_complete_seconds);
    paper_global.y.push_back(row.point.paper_global_seconds);
  }

  report::PlotOptions options;
  options.x_label = "design point (increasing problem size)";
  options.y_label = "execution time (seconds, log scale)";
  options.log_y = true;
  report::ascii_plot(std::cout, {complete, global}, options);

  std::printf("\n-- paper series (same axes) --\n");
  report::ascii_plot(std::cout, {paper_complete, paper_global}, options);

  std::ofstream data("gmm_figure4.dat");
  report::write_gnuplot_data(
      data, {complete, global, paper_complete, paper_global});
  std::printf(
      "\nWrote gmm_figure4.dat (gnuplot: plot 'gmm_figure4.dat' u 1:2 w lp "
      "t 'complete', '' u 1:3 w lp t 'global/detailed')\n");

  bench::BenchJson json("figure4");
  for (const bench::Table3Row& row : rows) {
    json.write("point",
               {bench::jint("index", row.point.index),
                bench::jnum("complete_seconds", row.complete_seconds),
                bench::jnum("global_seconds", row.global_seconds),
                bench::jnum("paper_complete_seconds",
                            row.point.paper_complete_seconds),
                bench::jnum("paper_global_seconds",
                            row.point.paper_global_seconds)});
  }
  return 0;
}
