// Extension bench: does the paper's ILP objective predict simulated
// memory performance?  For each instance: map with the global/detailed
// pipeline and with the greedy baseline, replay the same access trace
// through the cycle-approximate simulator, and compare objective ordering
// with simulated latency/makespan ordering.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "mapping/greedy_mapper.hpp"
#include "mapping/pipeline.hpp"
#include "report/text_table.hpp"
#include "sim/memory_sim.hpp"
#include "support/string_util.hpp"

int main() {
  using namespace gmm;
  std::printf(
      "== Simulator validation: ILP objective vs simulated latency ==\n\n");

  report::TextTable table({"point", "seed", "mapper", "objective",
                           "sim latency sum", "sim makespan",
                           "avg latency", "stalls"});
  table.set_alignment(2, report::Align::kLeft);

  bench::BenchJson json("sim_quality");
  int agree = 0, comparisons = 0;
  for (int point_index : {0, 1, 3}) {
    const workload::Table3Point& point =
        workload::table3_points()[point_index];
    for (std::uint64_t seed : {5ull, 6ull}) {
      const workload::Table3Instance instance =
          workload::build_instance(point, seed);
      const mapping::CostTable cost_table(instance.design, instance.board);

      const auto skip = [&](const char* why) {
        table.add_row({std::to_string(point.index), std::to_string(seed),
                       why, "-", "-", "-", "-", "-"});
      };
      const mapping::PipelineResult pipeline =
          mapping::map_pipeline(instance.design, instance.board);
      if (pipeline.status != lp::SolveStatus::kOptimal ||
          !pipeline.detailed.success) {
        skip("(pipeline did not solve)");
        continue;
      }
      const mapping::GreedyResult greedy =
          mapping::map_greedy(instance.design, instance.board, cost_table);
      if (!greedy.success) {
        skip("(greedy found no assignment)");
        continue;
      }
      const mapping::DetailedMapping greedy_detail = mapping::map_detailed(
          instance.design, instance.board, cost_table, greedy.assignment);
      if (!greedy_detail.success) {
        skip("(greedy assignment unpackable)");
        continue;
      }

      sim::TraceOptions trace_options;
      trace_options.seed = seed;
      const std::vector<sim::Access> trace =
          sim::generate_trace(instance.design, trace_options);

      const sim::SimReport ilp_sim = sim::simulate(
          instance.board, instance.design, pipeline.detailed, trace);
      const sim::SimReport greedy_sim = sim::simulate(
          instance.board, instance.design, greedy_detail, trace);

      const auto add = [&](const char* name, double objective,
                           const sim::SimReport& report) {
        table.add_row({std::to_string(point.index), std::to_string(seed),
                       name, support::format_fixed(objective, 0),
                       std::to_string(report.latency_sum),
                       std::to_string(report.total_cycles),
                       support::format_fixed(report.average_latency(), 2),
                       std::to_string(report.stall_cycles)});
        json.write("mapper",
                   {bench::jint("point", point.index),
                    bench::jint("seed", static_cast<std::int64_t>(seed)),
                    bench::jstr("mapper", name),
                    bench::jnum("objective", objective),
                    bench::jint("latency_sum", report.latency_sum),
                    bench::jint("makespan", report.total_cycles),
                    bench::jint("stalls", report.stall_cycles)});
      };
      add("global/detailed", pipeline.assignment.objective, ilp_sim);
      add("greedy", greedy.assignment.objective, greedy_sim);

      ++comparisons;
      const bool objective_order =
          pipeline.assignment.objective <= greedy.assignment.objective;
      const bool sim_order = ilp_sim.latency_sum <= greedy_sim.latency_sum;
      if (objective_order == sim_order) ++agree;
    }
  }
  table.print(std::cout);
  std::printf(
      "\nObjective ordering agreed with simulated latency ordering on %d "
      "of %d\ninstance pairs.\n",
      agree, comparisons);
  json.write("summary", {bench::jint("comparisons", comparisons),
                         bench::jint("agreements", agree)});
  return 0;
}
