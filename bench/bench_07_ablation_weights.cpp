// Ablation: the objective's weight coefficients (paper Section 4.1.3).
// Sweeps the three cost-component weights and shows how the optimal
// assignment shifts between on-chip and off-chip tiers — latency weight
// pulls hot structures on-chip, pin weights push big far structures
// off... quantified rather than asserted.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "mapping/pipeline.hpp"
#include "report/text_table.hpp"
#include "support/string_util.hpp"

int main() {
  using namespace gmm;
  std::printf(
      "== Ablation: objective weight sweep (alpha_1 latency, alpha_2 pin "
      "delay, alpha_3 pin I/O) ==\n\n");

  const workload::Table3Instance instance =
      workload::build_instance(workload::table3_points()[1],
                               bench::env_seed());

  struct WeightCase {
    const char* name;
    mapping::CostWeights weights;
  };
  const WeightCase cases[] = {
      {"latency only", {1.0, 0.0, 0.0}},
      {"pin delay only", {0.0, 1.0, 0.0}},
      {"pin I/O only", {0.0, 0.0, 1.0}},
      {"equal (paper default)", {1.0, 1.0, 1.0}},
      {"latency-heavy", {10.0, 1.0, 1.0}},
      {"pin-heavy", {1.0, 10.0, 10.0}},
  };

  report::TextTable table({"weights", "status", "objective",
                           "on-chip segs", "off-chip segs", "latency part",
                           "pin-delay part", "pin-I/O part"});
  table.set_alignment(0, report::Align::kLeft);
  bench::BenchJson json("ablation_weights");

  for (const WeightCase& c : cases) {
    mapping::PipelineOptions options;
    options.global.weights = c.weights;
    options.global.mip.time_limit_seconds = bench::env_time_limit();
    const mapping::PipelineResult r =
        mapping::map_pipeline(instance.design, instance.board, options);
    if (r.status != lp::SolveStatus::kOptimal) {
      table.add_row({c.name, lp::to_string(r.status), "-", "-", "-", "-",
                     "-", "-"});
      continue;
    }
    const mapping::CostTable table_for_weights(instance.design,
                                               instance.board, c.weights);
    int onchip = 0, offchip = 0;
    double latency = 0, pin_delay = 0, pin_io = 0;
    for (std::size_t d = 0; d < instance.design.size(); ++d) {
      const int t = r.assignment.type_of[d];
      (instance.board.type(t).on_chip() ? onchip : offchip) += 1;
      const mapping::CostBreakdown& b = table_for_weights.breakdown(d, t);
      latency += b.latency;
      pin_delay += b.pin_delay;
      pin_io += b.pin_io;
    }
    table.add_row({c.name, "optimal",
                   support::format_fixed(r.assignment.objective, 0),
                   std::to_string(onchip), std::to_string(offchip),
                   support::format_fixed(latency, 0),
                   support::format_fixed(pin_delay, 0),
                   support::format_fixed(pin_io, 0)});
    json.write("weight_case",
               {bench::jstr("name", c.name),
                bench::jnum("objective", r.assignment.objective),
                bench::jint("onchip_segments", onchip),
                bench::jint("offchip_segments", offchip),
                bench::jnum("latency_part", latency),
                bench::jnum("pin_delay_part", pin_delay),
                bench::jnum("pin_io_part", pin_io)});
  }
  table.print(std::cout);
  std::printf(
      "\nReading: with pin weights zeroed nothing distinguishes tiers but "
      "raw\nlatency; pin-heavy weights trade latency for fewer traversed "
      "pins.\n");
  return 0;
}
