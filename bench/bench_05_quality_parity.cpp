// Extension bench: the paper's optimality-preservation claim, measured.
// For a sweep of random designs (several seeds per size), compares the
// objective reached by (a) the global/detailed pipeline, (b) the complete
// flat formulation, and (c) the greedy baseline.  (a) == (b) wherever both
// prove optimality is the parity claim; (c) quantifies what the ILP buys.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "mapping/complete_mapper.hpp"
#include "mapping/greedy_mapper.hpp"
#include "mapping/pipeline.hpp"
#include "report/text_table.hpp"
#include "support/string_util.hpp"

int main() {
  using namespace gmm;
  std::printf(
      "== Quality parity: global/detailed vs complete vs greedy ==\n\n");

  report::TextTable table({"point", "seed", "global obj", "complete obj",
                           "parity", "greedy obj", "greedy excess"});
  bench::BenchJson json("quality_parity");
  int parity_checked = 0, parity_held = 0;

  for (int point_index : {0, 1, 2}) {  // the three smallest Table-3 points
    const workload::Table3Point& point =
        workload::table3_points()[point_index];
    for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
      const workload::Table3Instance instance =
          workload::build_instance(point, seed);
      const mapping::CostTable cost_table(instance.design, instance.board);

      // Nine instances run here, so cap each solve below the sweep-wide
      // budget (the headline Table-3 bench is where long limits belong).
      const double limit = std::min(60.0, bench::env_time_limit());
      mapping::PipelineOptions pipeline_options;
      pipeline_options.global.mip.time_limit_seconds = limit;
      const mapping::PipelineResult pipeline = mapping::map_pipeline(
          instance.design, instance.board, pipeline_options);

      mapping::CompleteOptions complete_options;
      complete_options.mip.time_limit_seconds = limit;
      const mapping::CompleteResult complete = mapping::map_complete(
          instance.design, instance.board, cost_table, complete_options);

      const mapping::GreedyResult greedy =
          mapping::map_greedy(instance.design, instance.board, cost_table);

      std::string parity = "-";
      if (pipeline.status == lp::SolveStatus::kOptimal &&
          complete.status == lp::SolveStatus::kOptimal) {
        ++parity_checked;
        // Both solvers prove optimality to the 1e-4 relative gap.
        const bool match =
            std::abs(pipeline.assignment.objective -
                     complete.assignment.objective) <=
            2e-4 * std::max(1.0, pipeline.assignment.objective);
        parity = match ? "yes" : "NO";
        parity_held += match ? 1 : 0;
      }
      const double greedy_excess =
          greedy.success && pipeline.status == lp::SolveStatus::kOptimal
              ? 100.0 *
                    (greedy.assignment.objective -
                     pipeline.assignment.objective) /
                    pipeline.assignment.objective
              : -1.0;
      table.add_row(
          {std::to_string(point.index), std::to_string(seed),
           support::format_fixed(pipeline.assignment.objective, 0),
           complete.mip.has_incumbent()
               ? support::format_fixed(complete.assignment.objective, 0)
               : std::string(lp::to_string(complete.status)),
           parity,
           greedy.success
               ? support::format_fixed(greedy.assignment.objective, 0)
               : "failed",
           greedy_excess >= 0
               ? "+" + support::format_fixed(greedy_excess, 2) + "%"
               : "-"});
      json.write("instance",
                 {bench::jint("point", point.index),
                  bench::jint("seed", static_cast<std::int64_t>(seed)),
                  bench::jnum("global_objective",
                              pipeline.assignment.objective),
                  bench::jnum("complete_objective",
                              complete.mip.has_incumbent()
                                  ? complete.assignment.objective
                                  : -1.0),
                  bench::jstr("parity", parity),
                  bench::jnum("greedy_objective",
                              greedy.success ? greedy.assignment.objective
                                             : -1.0),
                  bench::jnum("greedy_excess_pct", greedy_excess)});
    }
  }
  table.print(std::cout);
  std::printf("\nParity held on %d of %d double-proven instances.\n",
              parity_held, parity_checked);
  json.write("summary", {bench::jint("parity_checked", parity_checked),
                         bench::jint("parity_held", parity_held)});
  return 0;
}
