// Solution-cache bench: what the fingerprint cache and the incremental
// re-solve actually buy on the serving path.  JSON mirror:
// BENCH_cache.json.
//
//   (probe)     — generated instances vary wildly in hardness (some
//       close in a handful of B&B nodes, where neither replay nor a warm
//       start has anything to save), so the bench first solves a few
//       candidate instances and keeps the one with the deepest tree;
//       (a) and (b) measure the cache mechanisms on THAT instance.
//   (a) replay  — one cold solve through MappingService, then N exact
//       resubmissions: every one must replay from the cache
//       ("cached":true, identical objective), and the headline is the
//       cold-seconds / median-replay-seconds speedup (target >= 10x —
//       replay pays fingerprint + verification only, no B&B).
//   (b) warm    — traffic-mutated re-solves, cold map_pipeline vs
//       mapping::remap seeded with the prior assignment as a MIP start
//       (no pins, no migration penalty, so the MODEL is identical and the
//       proved objective must match exactly); the claim is strictly fewer
//       total B&B nodes from incumbent-first pruning.
//   (c) stream  — a mixed request stream (repeats / traffic mutants /
//       fresh designs) through the service; reports the hit/miss/
//       near-miss split and the end-to-end hit rate.
//
// The process exits non-zero when (a) misses the 10x bar, when (b) fails
// objective parity or node reduction, or when a replayed objective
// diverges — this is the acceptance gate CI's bench-smoke lane runs.
//
// Environment knobs (on top of bench_common's):
//   GMM_BENCH_CACHE_SEGMENTS  segments per generated design (default 32)
//   GMM_BENCH_CACHE_PROBES    candidate instances probed (default 8)
//   GMM_BENCH_CACHE_REPLAYS   exact resubmissions in part (a) (default 20)
//   GMM_BENCH_CACHE_MUTANTS   traffic mutants in part (b) (default 6)
//   GMM_BENCH_CACHE_STREAM    requests in part (c) (default 40)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "design/design_io.hpp"
#include "lp/types.hpp"
#include "mapping/cost_model.hpp"
#include "mapping/pipeline.hpp"
#include "mapping/remap.hpp"
#include "service/mapping_service.hpp"
#include "service/protocol.hpp"
#include "support/rng.hpp"
#include "support/string_util.hpp"
#include "workload/workload_gen.hpp"

namespace {

using namespace gmm;

std::int64_t env_knob(const char* name, std::int64_t fallback,
                      std::int64_t min, std::int64_t max) {
  const char* raw = std::getenv(name);
  std::int64_t value = 0;
  if (raw != nullptr && support::parse_int(raw, value) && value >= min &&
      value <= max) {
    return value;
  }
  return fallback;
}

arch::Board bench_board() {
  return *workload::board_from_totals({.banks = 23, .ports = 45,
                                       .configs = 100});
}

design::Design base_design(std::uint64_t salt) {
  workload::DesignGenOptions gen;
  gen.num_segments = env_knob("GMM_BENCH_CACHE_SEGMENTS", 32, 2, 256);
  gen.seed = bench::env_seed() + salt;
  return workload::generate_design(bench_board(), gen);
}

/// The same design with one structure's read traffic bumped — identical
/// shape and conflicts, so the serving path treats it as a near miss.
design::Design traffic_mutant(const design::Design& base, int which,
                              std::int64_t bump) {
  design::Design out(base.name());
  for (std::size_t d = 0; d < base.size(); ++d) {
    design::DataStructure ds = base.at(d);
    if (d == static_cast<std::size_t>(which) % base.size()) {
      ds.reads = ds.effective_reads() + bump;
    }
    out.add(ds);
  }
  for (const auto& [a, b] : base.conflict_pairs()) out.add_conflict(a, b);
  return out;
}

/// Collects terminal responses from an in-process MappingService; the
/// bench drives the service synchronously (handle then drain), so lookup
/// by id is race-free after drain().
class Collector {
 public:
  service::MappingService::ResponseSink sink() {
    return [this](const service::Response& r) {
      const std::scoped_lock lock(mutex_);
      responses_.push_back(r);
    };
  }
  [[nodiscard]] service::Response take(const std::string& id) {
    const std::scoped_lock lock(mutex_);
    for (const service::Response& r : responses_) {
      if (r.id == id && r.method == "map") return r;
    }
    return {};
  }

 private:
  std::mutex mutex_;
  std::vector<service::Response> responses_;
};

service::Request map_request(const std::string& id,
                             const design::Design& design) {
  service::Request r;
  r.method = service::Method::kMap;
  r.id = id;
  r.map.design_text = design::design_to_string(design);
  return r;
}

}  // namespace

int main() {
  bench::BenchJson json("cache");
  int exit_code = 0;

  const arch::Board board = bench_board();
  const std::int64_t probes = env_knob("GMM_BENCH_CACHE_PROBES", 8, 1, 64);
  const std::int64_t replays = env_knob("GMM_BENCH_CACHE_REPLAYS", 20, 1, 10'000);
  const std::int64_t mutants = env_knob("GMM_BENCH_CACHE_MUTANTS", 6, 1, 1'000);
  const std::int64_t stream = env_knob("GMM_BENCH_CACHE_STREAM", 40, 1, 100'000);

  // Exact sub-integer-gap contract so (b)'s "identical objective" is an
  // equality, not a tolerance (see tests/ilp/mip_start_test.cpp).
  mapping::PipelineOptions exact;
  exact.global.mip.num_threads = 1;
  exact.global.mip.rel_gap = 0.0;
  exact.global.mip.abs_gap = 0.5;

  // ---- probe: keep the hardest tractable instance -------------------------
  // A probe that cannot prove optimality inside its per-solve budget is
  // skipped (parts (a)/(b) need a proved baseline in sane wall clock).
  std::uint64_t hard_salt = 0;
  std::int64_t hard_nodes = -1;
  mapping::PipelineResult prior;  // exact base solve of the hard instance
  {
    mapping::PipelineOptions probe_options = exact;
    probe_options.global.mip.time_limit_seconds = 5.0;
    for (std::int64_t salt = 0; salt < probes; ++salt) {
      const mapping::PipelineResult r = mapping::map_pipeline(
          base_design(static_cast<std::uint64_t>(salt)), board,
          probe_options);
      if (r.status != lp::SolveStatus::kOptimal) continue;
      if (r.effort.bnb_nodes > hard_nodes) {
        hard_nodes = r.effort.bnb_nodes;
        hard_salt = static_cast<std::uint64_t>(salt);
        prior = r;
      }
    }
    if (hard_nodes < 0) {
      std::fprintf(stderr, "probe: no instance proved optimal in budget\n");
      return 1;
    }
    std::printf("probe: instance %llu is hardest of %lld (%lld nodes)\n",
                static_cast<unsigned long long>(hard_salt),
                static_cast<long long>(probes),
                static_cast<long long>(hard_nodes));
    json.write("probe", {bench::jint("probes", probes),
                         bench::jint("hard_salt", static_cast<std::int64_t>(
                                         hard_salt)),
                         bench::jint("hard_nodes", hard_nodes)});
  }
  const design::Design design = base_design(hard_salt);

  // ---- (a) exact-hit replay vs cold solve ---------------------------------
  {
    Collector out;
    service::MappingService svc({board}, {.workers = 1}, out.sink());
    svc.handle(map_request("cold", design));
    svc.drain();
    const service::Response cold = out.take("cold");
    if (cold.status != service::ResponseStatus::kOk || cold.cached) {
      std::fprintf(stderr, "replay: cold solve failed (%s)\n",
                   cold.error.c_str());
      return 1;
    }
    std::vector<double> replay_seconds;
    for (std::int64_t i = 0; i < replays; ++i) {
      const std::string id = "replay-" + std::to_string(i);
      svc.handle(map_request(id, design));
      svc.drain();
      const service::Response r = out.take(id);
      if (r.status != service::ResponseStatus::kOk || !r.cached ||
          r.objective != cold.objective) {
        std::fprintf(stderr, "replay %lld: not a faithful cache hit\n",
                     static_cast<long long>(i));
        exit_code = 1;
        continue;
      }
      replay_seconds.push_back(std::max(r.seconds, 1e-9));
    }
    std::sort(replay_seconds.begin(), replay_seconds.end());
    const double median =
        replay_seconds.empty() ? 0.0
                               : replay_seconds[replay_seconds.size() / 2];
    const double speedup = median > 0.0 ? cold.seconds / median : 0.0;
    std::printf("replay: cold %.6fs, median replay %.6fs over %zu hits "
                "-> %.1fx\n",
                cold.seconds, median, replay_seconds.size(), speedup);
    if (replay_seconds.size() != static_cast<std::size_t>(replays) ||
        speedup < 10.0) {
      std::fprintf(stderr,
                   "replay: FAILED the 10x bar (%zu/%lld hits, %.1fx)\n",
                   replay_seconds.size(), static_cast<long long>(replays),
                   speedup);
      exit_code = 1;
    }
    json.write("replay",
               {bench::jnum("cold_seconds", cold.seconds),
                bench::jnum("median_replay_seconds", median),
                bench::jint("replays", static_cast<std::int64_t>(
                                replay_seconds.size())),
                bench::jnum("speedup", speedup),
                bench::jnum("objective", cold.objective),
                bench::jbool("pass", speedup >= 10.0)});
  }

  // ---- (b) MIP-start re-solve vs cold on traffic mutants ------------------
  {
    const design::Design& base = design;
    std::int64_t cold_nodes = 0, warm_nodes = 0;
    double cold_seconds = 0.0, warm_seconds = 0.0;
    bool parity = true;
    for (std::int64_t k = 0; k < mutants; ++k) {
      // Small traffic deltas — the "local reconfiguration" regime the
      // near-miss path targets; a bump big enough to reshuffle the whole
      // mapping is a different problem, not an incremental one.
      const design::Design mutant =
          traffic_mutant(base, static_cast<int>(k), 10 * (k + 1));
      const mapping::PipelineResult cold =
          mapping::map_pipeline(mutant, board, exact);
      // The service's near-miss configuration: MIP start from the prior
      // mapping, every traffic-unchanged structure pinned in place, and
      // the (reporting-neutral) migration bias.  The solver proves the
      // optimum of the delta only — the parity check below asserts that
      // equals the full cold optimum on this workload.
      mapping::RemapOptions remap_options{.pipeline = exact,
                                          .migration_penalty = 1e-3};
      for (std::size_t d = 0; d < mutant.size(); ++d) {
        if (d != static_cast<std::size_t>(k) % mutant.size()) {
          remap_options.pinned_structures.push_back(d);
        }
      }
      const mapping::RemapResult warm = mapping::remap(
          mutant, board, prior.assignment.type_of, remap_options);
      const bool ok = cold.status == lp::SolveStatus::kOptimal &&
                      warm.result.status == lp::SolveStatus::kOptimal &&
                      !warm.fell_back_cold &&
                      warm.result.assignment.objective ==
                          cold.assignment.objective;
      if (!ok) parity = false;
      cold_nodes += cold.effort.bnb_nodes;
      warm_nodes += warm.result.effort.bnb_nodes;
      cold_seconds += cold.effort.total_seconds();
      warm_seconds += warm.result.effort.total_seconds();
      std::printf("warm: mutant %lld cold %6lld nodes %.3fs | warm %6lld "
                  "nodes %.3fs%s%s\n",
                  static_cast<long long>(k),
                  static_cast<long long>(cold.effort.bnb_nodes),
                  cold.effort.total_seconds(),
                  static_cast<long long>(warm.result.effort.bnb_nodes),
                  warm.result.effort.total_seconds(),
                  warm.warm_used ? "" : "  [start rejected]",
                  ok ? "" : "  [OBJECTIVE MISMATCH]");
    }
    const bool fewer = warm_nodes < cold_nodes;
    std::printf("warm: totals cold %lld nodes %.3fs | warm %lld nodes %.3fs "
                "-> %s\n",
                static_cast<long long>(cold_nodes), cold_seconds,
                static_cast<long long>(warm_nodes), warm_seconds,
                parity && fewer ? "pass" : "FAIL");
    if (!parity || !fewer) exit_code = 1;
    json.write("warm_resolve",
               {bench::jint("mutants", mutants),
                bench::jint("cold_nodes", cold_nodes),
                bench::jint("warm_nodes", warm_nodes),
                bench::jnum("cold_seconds", cold_seconds),
                bench::jnum("warm_seconds", warm_seconds),
                bench::jbool("objective_parity", parity),
                bench::jbool("pass", parity && fewer)});
  }

  // ---- (c) mixed request stream hit rate ----------------------------------
  {
    Collector out;
    service::MappingService svc({board}, {.workers = 1}, out.sink());
    support::Rng rng(bench::env_seed());
    constexpr int kPool = 5;
    for (std::int64_t i = 0; i < stream; ++i) {
      const int slot = static_cast<int>(rng.uniform_int(0, kPool - 1));
      const design::Design base = base_design(10 + slot);
      const double roll = rng.uniform_real();
      design::Design request = base;
      if (roll < 0.2) {  // traffic mutant: near miss (or mutant repeat)
        request = traffic_mutant(base, static_cast<int>(rng.uniform_int(0, 3)),
                                 100 * (1 + rng.uniform_int(0, 2)));
      } else if (roll < 0.3) {  // fresh one-off design: guaranteed miss
        request = base_design(1000 + static_cast<std::uint64_t>(i));
      }
      svc.handle(map_request("s" + std::to_string(i), request));
    }
    svc.drain();
    const service::ServiceStats stats = svc.stats();
    const double denom = static_cast<double>(stats.accepted);
    const double hit_rate =
        denom > 0.0 ? static_cast<double>(stats.cache.hits) / denom : 0.0;
    std::printf("stream: %lld requests -> %lld hits, %lld misses "
                "(%lld near), %lld bypasses; hit rate %.2f\n",
                static_cast<long long>(stats.accepted),
                static_cast<long long>(stats.cache.hits),
                static_cast<long long>(stats.cache.misses),
                static_cast<long long>(stats.cache.near_misses),
                static_cast<long long>(stats.cache.bypasses), hit_rate);
    if (stats.cache.hits + stats.cache.misses + stats.cache.bypasses !=
        stats.accepted) {
      std::fprintf(stderr, "stream: cache accounting leaked a request\n");
      exit_code = 1;
    }
    json.write("stream",
               {bench::jint("requests", stats.accepted),
                bench::jint("hits", stats.cache.hits),
                bench::jint("misses", stats.cache.misses),
                bench::jint("near_misses", stats.cache.near_misses),
                bench::jint("bypasses", stats.cache.bypasses),
                bench::jint("insertions", stats.cache.insertions),
                bench::jint("evictions", stats.cache.evictions),
                bench::jnum("hit_rate", hit_rate)});
  }

  std::printf("\nJSON mirror: %s\n", json.path().c_str());
  return exit_code;
}
