// Portfolio racing bench: first-prover wall clock vs each single lane.
//
// For each selected Table-3 point the bench solves every default lane
// SOLO (global pipeline, complete formulation, knob variants), then
// races them all with mapping::solve_portfolio, and records into
// BENCH_portfolio.json:
//   * per-lane solo wall clock / status / objective,
//   * the portfolio's first-prover wall clock, winner, and objective,
//   * the ratios vs the best and the worst solo lane.
//
// Acceptance gates (non-zero exit on failure):
//   1. SAFETY — at gap 0 the portfolio objective is never worse than any
//      usable solo lane's objective (a proof is a proof under either
//      formulation);
//   2. WIN    — on at least one point the portfolio's first proof
//      strictly beats the WORST solo lane (the whole motivation: Table 3
//      lane times differ by orders of magnitude and the slow lane is not
//      predictable up front).
// The first-prover-vs-FASTEST-lane comparison is recorded (ratio_best)
// but not gated: on a single-core host the racing lanes time-share one
// CPU, so the ratio sits near the lane count until a winner cancels the
// rest; on multi-core CI it approaches 1.
//
// Env knobs:
//   GMM_BENCH_PORTFOLIO_POINTS  comma-separated Table-3 points (default 1,2,3)
//   GMM_BENCH_PORTFOLIO_LANES   lanes to race, 1..6 (default 3)
//   GMM_BENCH_TIME_LIMIT        per-lane budget in seconds (default 120)
//   GMM_BENCH_SEED              workload seed (default 2001)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mapping/portfolio.hpp"
#include "workload/table3_suite.hpp"

namespace {

using namespace gmm;

std::vector<int> env_points() {
  const char* raw = std::getenv("GMM_BENCH_PORTFOLIO_POINTS");
  const std::string text = raw != nullptr ? raw : "1,2,3";
  std::vector<int> points;
  std::string token;
  for (const char c : text + ",") {
    if (c == ',') {
      if (!token.empty()) points.push_back(std::atoi(token.c_str()));
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  return points;
}

int env_lanes() {
  const char* raw = std::getenv("GMM_BENCH_PORTFOLIO_LANES");
  const int lanes = raw != nullptr ? std::atoi(raw) : 3;
  return std::clamp(lanes, 1, mapping::kMaxPortfolioLanes);
}

}  // namespace

int main() {
  bench::BenchJson json("portfolio");
  const double limit = bench::env_time_limit();
  const std::uint64_t seed = bench::env_seed();
  const int lane_count = env_lanes();
  const std::vector<workload::Table3Point> suite = workload::table3_points();

  // Gap 0 everywhere: the SAFETY gate compares exact optima, so every
  // prover must prove the same objective.
  mapping::PipelineOptions base;
  base.global.mip.rel_gap = 0.0;
  base.global.mip.abs_gap = 0.0;
  base.global.mip.time_limit_seconds = limit;

  bool any_beats_worst = false;
  bool safety_ok = true;
  int points_run = 0;

  for (const int index : env_points()) {
    const auto it =
        std::find_if(suite.begin(), suite.end(),
                     [index](const workload::Table3Point& p) {
                       return p.index == index;
                     });
    if (it == suite.end()) {
      std::printf("point %d: not in the Table-3 suite, skipped\n", index);
      continue;
    }
    const workload::Table3Instance instance =
        workload::build_instance(*it, seed);
    const std::vector<mapping::PortfolioLane> lanes =
        mapping::default_portfolio_lanes(instance.board, lane_count, base);
    ++points_run;

    // Solo baselines: each lane alone through the same portfolio
    // harness, so wrapper overhead cancels out of the comparison.
    double best_solo = -1.0, worst_solo = -1.0;
    double best_solo_objective = -1.0;
    std::string best_name, worst_name;
    for (const mapping::PortfolioLane& lane : lanes) {
      mapping::PortfolioOptions solo;
      solo.lanes = {lane};
      const mapping::PortfolioResult r =
          mapping::solve_portfolio(instance.design, instance.board, solo);
      const bool usable = r.detailed.success && r.assignment.complete();
      std::printf("point %d lane %-16s %-10s %10.3fs  objective %s\n",
                  index, lane.name.c_str(), lp::to_string(r.status),
                  r.seconds,
                  usable ? std::to_string(static_cast<long long>(
                               r.assignment.objective))
                               .c_str()
                         : "-");
      json.write("solo",
                 {bench::jint("point", index), bench::jstr("lane", lane.name),
                  bench::jstr("status", lp::to_string(r.status)),
                  bench::jbool("proved", r.winner >= 0),
                  bench::jnum("seconds", r.seconds),
                  bench::jnum("objective",
                              usable ? r.assignment.objective : -1.0),
                  bench::jint("nodes", r.total_effort.bnb_nodes)});
      if (!usable) continue;
      if (best_solo < 0.0 || r.seconds < best_solo) {
        best_solo = r.seconds;
        best_name = lane.name;
      }
      if (worst_solo < 0.0 || r.seconds > worst_solo) {
        worst_solo = r.seconds;
        worst_name = lane.name;
      }
      if (best_solo_objective < 0.0 ||
          r.assignment.objective < best_solo_objective) {
        best_solo_objective = r.assignment.objective;
      }
    }

    // The race.
    mapping::PortfolioOptions race;
    race.lanes = lanes;
    const mapping::PortfolioResult r =
        mapping::solve_portfolio(instance.design, instance.board, race);
    const bool usable = r.detailed.success && r.assignment.complete();
    const double ratio_best =
        best_solo > 0.0 ? r.first_prove_seconds / best_solo : -1.0;
    const double ratio_worst =
        worst_solo > 0.0 ? r.first_prove_seconds / worst_solo : -1.0;
    std::printf("point %d RACE  winner %-12s first proof %10.3fs  "
                "(best solo %s %.3fs, worst solo %s %.3fs)\n",
                index, r.winner >= 0 ? r.winner_name.c_str() : "none",
                r.first_prove_seconds, best_name.c_str(), best_solo,
                worst_name.c_str(), worst_solo);
    json.write(
        "race",
        {bench::jint("point", index),
         bench::jint("lanes", static_cast<std::int64_t>(r.lanes.size())),
         bench::jstr("winner", r.winner_name),
         bench::jnum("first_prove_seconds", r.first_prove_seconds),
         bench::jnum("wall_seconds", r.seconds),
         bench::jnum("objective", usable ? r.assignment.objective : -1.0),
         bench::jnum("best_solo_seconds", best_solo),
         bench::jnum("worst_solo_seconds", worst_solo),
         bench::jnum("ratio_best", ratio_best),
         bench::jnum("ratio_worst", ratio_worst),
         bench::jint("lanes_cancelled", r.lanes_cancelled)});

    // Gate 1: at gap 0 the race must never return a worse objective than
    // any solo lane that produced one.
    if (best_solo_objective >= 0.0) {
      const double tol = 1e-6 * std::max(1.0, best_solo_objective);
      if (!usable || r.assignment.objective > best_solo_objective + tol) {
        std::printf("point %d SAFETY FAIL: race objective %s vs best solo "
                    "%.0f\n",
                    index,
                    usable ? std::to_string(static_cast<long long>(
                                 r.assignment.objective))
                                 .c_str()
                           : "unusable",
                    best_solo_objective);
        safety_ok = false;
      }
    }
    // Gate 2 evidence: strictly beating the worst lane on any point.
    if (worst_solo > 0.0 && r.winner >= 0 &&
        r.first_prove_seconds < worst_solo) {
      any_beats_worst = true;
    }
  }

  const bool win_ok = any_beats_worst || points_run == 0;
  json.write("summary", {bench::jint("points", points_run),
                         bench::jint("lanes", lane_count),
                         bench::jbool("safety_ok", safety_ok),
                         bench::jbool("beats_worst_lane", any_beats_worst)});
  std::printf("\nportfolio bench: %d points, safety %s, beats-worst %s "
              "(json: %s)\n",
              points_run, safety_ok ? "ok" : "FAIL",
              any_beats_worst ? "yes" : "NO", json.path().c_str());
  if (!safety_ok || !win_ok) return 1;
  return 0;
}
