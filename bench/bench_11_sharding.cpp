// Multi-device sharding sweep: one synthetic design mapped onto 1-, 2-
// and 4-device splits of the same board (total banks/ports/bits
// preserved by arch::split_across_devices), reporting wall clock, the
// stitched objective, the inter-device stitch cost and the repair-loop
// effort per device count.  JSON mirror: BENCH_sharding.json.
//
// Environment knobs (on top of bench_common's):
//   GMM_BENCH_SHARD_DEVICES   comma-separated device counts (default 1,2,4)
//   GMM_BENCH_SHARD_SEGMENTS  segments in the generated design (default 32)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "arch/board.hpp"
#include "arch/device_catalog.hpp"
#include "bench_common.hpp"
#include "lp/types.hpp"
#include "mapping/shard_mapper.hpp"
#include "support/string_util.hpp"
#include "support/timer.hpp"
#include "workload/workload_gen.hpp"

namespace {

using namespace gmm;

std::vector<int> env_device_sweep() {
  const char* raw = std::getenv("GMM_BENCH_SHARD_DEVICES");
  std::vector<int> counts;
  for (const std::string& token :
       support::split(raw != nullptr ? raw : "1,2,4", ',')) {
    std::int64_t value = 0;
    if (support::parse_int(support::trim(token), value) && value >= 1 &&
        value <= 64) {
      counts.push_back(static_cast<int>(value));
    }
  }
  if (counts.empty()) counts = {1, 2, 4};
  return counts;
}

std::int64_t env_segments() {
  const char* raw = std::getenv("GMM_BENCH_SHARD_SEGMENTS");
  std::int64_t value = 0;
  if (raw != nullptr && support::parse_int(raw, value) && value >= 2 &&
      value <= 4096) {
    return value;
  }
  return 32;
}

}  // namespace

int main() {
  bench::BenchJson json("sharding");

  // An XCV1000 with sixteen attached SRAMs: enough bank instances that a
  // four-way split still leaves every device four SRAMs and a quarter of
  // the BlockRAMs.  Utilization targets deliberately leave slack — a
  // design that saturates the whole board's off-chip ports cannot be
  // split at all (splitting only ever removes co-location options).
  const arch::Board base = arch::single_fpga_board("XCV1000", 16);
  workload::DesignGenOptions gen;
  gen.num_segments = env_segments();
  gen.seed = bench::env_seed();
  gen.target_port_utilization = 0.35;
  gen.target_bit_utilization = 0.25;
  const design::Design design = workload::generate_design(base, gen);

  std::printf("sharding sweep: design '%s' (%zu segments, %lld bits) on "
              "splits of '%s' (%lld banks, %lld bits)\n\n",
              design.name().c_str(), design.size(),
              static_cast<long long>(design.total_bits()),
              base.name().c_str(),
              static_cast<long long>(base.total_banks()),
              static_cast<long long>(base.total_bits()));
  std::printf("%8s %10s %12s %12s %7s %10s %7s %10s  %s\n", "devices",
              "seconds", "objective", "stitch", "shards", "cut_edges",
              "repair", "solves", "status");

  int exit_code = 0;
  for (const int devices : env_device_sweep()) {
    const arch::Board board =
        devices == 1 ? base : arch::split_across_devices(base, devices);
    support::WallTimer timer;
    const mapping::ShardResult r = mapping::map_sharded(design, board);
    const double seconds = timer.seconds();
    const bool ok = r.status == lp::SolveStatus::kOptimal ||
                    r.status == lp::SolveStatus::kFeasible;
    if (!ok) exit_code = 1;
    std::printf("%8d %10.3f %12.0f %12.0f %7d %10lld %7d %10lld  %s\n",
                devices, seconds, r.objective, r.stats.stitch_cost,
                r.stats.shards, static_cast<long long>(r.stats.cut_edges),
                r.stats.repair_rounds,
                static_cast<long long>(r.stats.candidate_solves),
                lp::to_string(r.status));
    json.write("device_sweep",
               {bench::jint("devices", devices),
                bench::jnum("seconds", seconds),
                bench::jnum("objective", r.objective),
                bench::jnum("stitch_cost", r.stats.stitch_cost),
                bench::jint("shards", r.stats.shards),
                bench::jint("cut_edges", r.stats.cut_edges),
                bench::jint("repair_rounds", r.stats.repair_rounds),
                bench::jint("migrations", r.stats.migrations),
                bench::jint("candidate_solves", r.stats.candidate_solves),
                bench::jnum("stitch_seconds", r.stats.stitch_seconds),
                bench::jint("bnb_nodes", r.effort.bnb_nodes),
                bench::jstr("status", lp::to_string(r.status))});
  }
  std::printf("\nJSON mirror: %s\n", json.path().c_str());
  return exit_code;
}
