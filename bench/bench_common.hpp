// Shared infrastructure for the bench binaries: environment knobs, the
// Table-3 sweep (shared between the Table-3 and Figure-4 benches via a
// CSV cache), and small formatting helpers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "workload/table3_suite.hpp"

namespace gmm::bench {

/// Environment knobs (all optional):
///   GMM_BENCH_TIME_LIMIT  seconds per complete-approach solve (default 120)
///   GMM_BENCH_SEED        workload seed (default 2001)
///   GMM_BENCH_MAX_POINT   run Table-3 points 1..N only (default 9)
double env_time_limit();
std::uint64_t env_seed();
int env_max_point();

/// One measured Table-3 row.
struct Table3Row {
  workload::Table3Point point;
  double complete_seconds = 0.0;
  std::string complete_status;
  double complete_gap = 0.0;   // relative gap when not proven optimal
  double global_seconds = 0.0;
  std::string global_status;
  bool objectives_match = false;  // quality parity on this point
  std::int64_t complete_vars = 0, complete_rows = 0;
  std::int64_t global_vars = 0, global_rows = 0;
};

/// Run (or reuse) the Table-3 sweep.  Results are cached in
/// `gmm_table3_results.csv` in the working directory; a cache produced
/// with the same seed/limit/point-count is reused so the Figure-4 bench
/// does not re-pay the complete-approach solves.
std::vector<Table3Row> run_or_load_table3_sweep();

/// Format seconds with one decimal, like the paper's tables.
std::string fmt_seconds(double seconds);

}  // namespace gmm::bench
