// Shared infrastructure for the bench binaries: environment knobs, the
// Table-3 sweep (shared between the Table-3 and Figure-4 benches via a
// CSV cache), and small formatting helpers.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "lp/basis.hpp"
#include "workload/table3_suite.hpp"

namespace gmm::bench {

/// Environment knobs (all optional):
///   GMM_BENCH_TIME_LIMIT  seconds per complete-approach solve (default 120)
///   GMM_BENCH_SEED        workload seed (default 2001)
///   GMM_BENCH_MAX_POINT   run Table-3 points 1..N only (default 9)
double env_time_limit();
std::uint64_t env_seed();
int env_max_point();

/// One measured Table-3 row.
struct Table3Row {
  workload::Table3Point point;
  double complete_seconds = 0.0;
  std::string complete_status;
  double complete_gap = 0.0;   // relative gap when not proven optimal
  double global_seconds = 0.0;
  std::string global_status;
  bool objectives_match = false;  // quality parity on this point
  std::int64_t complete_vars = 0, complete_rows = 0;
  std::int64_t global_vars = 0, global_rows = 0;
};

/// Run (or reuse) the Table-3 sweep.  Results are cached in
/// `gmm_table3_results.csv` in the working directory; a cache produced
/// with the same seed/limit/point-count is reused so the Figure-4 bench
/// does not re-pay the complete-approach solves.
std::vector<Table3Row> run_or_load_table3_sweep();

/// Format seconds with one decimal, like the paper's tables.
std::string fmt_seconds(double seconds);

/// Solver thread counts to sweep, from GMM_BENCH_THREADS (comma-separated,
/// default "1,2,4,8").
std::vector<int> env_thread_sweep();

/// One measurement of a thread-sweep solve.
struct SweepOutcome {
  double seconds = 0.0;
  std::int64_t nodes = 0;
  std::int64_t lp_iterations = 0;
  double objective = 0.0;
  std::string status;
  /// Basis warm-start cache counters of the solve (MipResult::basis);
  /// the sweep reports the hit rate and the warm/cold pivots-per-pop
  /// split so BENCH_*.json captures the pivots-per-node trajectory.
  lp::BasisCacheStats basis;
};

// ---- machine-readable benchmark output -----------------------------------
//
// Every bench binary mirrors its headline numbers into
// BENCH_<bench>.json — one JSON object per line, one line per benchmark
// record — so successive PRs can diff a perf trajectory without parsing
// the human tables.  $GMM_BENCH_JSON_DIR redirects the output directory
// (default: the working directory).

/// One pre-rendered key/value pair of a JSON record.
struct JsonField {
  std::string key;
  std::string rendered;  // value as a JSON literal
};

JsonField jnum(const std::string& key, double value);
JsonField jint(const std::string& key, std::int64_t value);
JsonField jstr(const std::string& key, const std::string& value);
JsonField jbool(const std::string& key, bool value);

/// Line-per-record JSON writer for one bench binary.  The file is
/// truncated on construction, so a bench run always leaves exactly its
/// own records behind.
class BenchJson {
 public:
  explicit BenchJson(const std::string& bench);
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  /// Append {"bench":...,"record":...,<fields...>} as one line.
  void write(const std::string& record, const std::vector<JsonField>& fields);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string bench_;
  std::string path_;
  std::ofstream out_;
};

/// Run `solve(threads)` for every env_thread_sweep() count, print an
/// aligned table and mirror one JSON record per count (threads, seconds,
/// speedup, nodes, lp_iterations, objective, status + `extra_fields`).
/// The speedup baseline is the 1-thread entry wherever it appears in the
/// sweep, or the first entry when the sweep omits 1.
void run_thread_sweep(BenchJson& json, const std::string& record,
                      const std::vector<JsonField>& extra_fields,
                      const std::function<SweepOutcome(int threads)>& solve);

/// Render one outcome's basis-cache counters as JSON fields (hit rate,
/// stored/loaded/evicted, warm/cold pivots per pop).
std::vector<JsonField> basis_fields(const lp::BasisCacheStats& basis);

/// Warm-vs-cold A/B: run `solve(max_stored_bases)` once with the cache on
/// (4096) and once off (0), print the dual-pivots-per-pop comparison and
/// mirror one `record` JSON line per arm (field "basis_cache": "on"/"off").
/// The claim under measurement: heap pops that warm-start from their own
/// parent's basis pay fewer dual pivots than cold re-derivations.
void run_basis_warm_cold_ab(
    BenchJson& json, const std::string& record,
    const std::vector<JsonField>& extra_fields,
    const std::function<SweepOutcome(std::size_t max_stored_bases)>& solve);

}  // namespace gmm::bench
