// Long-lived mapping server speaking the jsonl protocol on stdin/stdout
// or on a listening socket.
//
//   mapper_serve [board-file]... [options]
//
// Options:
//   --workers N        concurrent mapping workers (default 1; 0 = hardware)
//   --queue N          admission bound, queued + in-flight (default 64)
//   --threads N        max B&B workers a request may ask for (default 8)
//   --cache N          solution-cache capacity in entries (default 128;
//                      0 disables the cache entirely)
//   --listen SPEC      serve socket clients instead of stdin/stdout:
//                      a path ("/tmp/gmm.sock") is a Unix-domain socket,
//                      "host:port" is TCP ("localhost:0" = kernel-assigned
//                      port, announced on stdout as a "listening" event)
//   --max-clients N    concurrent socket connections (default 256)
//   --connect SPEC     client bridge: relay stdin jsonl to a listening
//                      server and its responses to stdout (stdin EOF
//                      half-closes; exits when the server closes)
//   --shed-delay-ms N  adaptive overload shedding: reject new requests
//                      when the observed queue delay EWMA exceeds N ms
//                      (default 0 = off; rejections carry retry_after_ms)
//   --watchdog-ms N    stall watchdog window: a running solve whose
//                      progress counter is flat for N ms terminates with
//                      status "stalled" (default 0 = off)
//   --max-inflight N   per-client in-flight quota on socket connections
//                      (default 0 = off; excess maps are rejected at the
//                      transport with a retry_after_ms hint)
//   --faults SPEC      arm the deterministic fault injector (see README
//                      "Operating under failure" for the grammar, e.g.
//                      "seed=7,socket.write:partial@0.05"); without the
//                      flag the GMM_FAULTS environment variable is
//                      consulted; unset/empty leaves every site disarmed
//   --verbose          log at info level (logs go to stderr; stdout
//                      carries only protocol lines)
//
// Each board file becomes a catalog entry requests select with "board";
// the first file is the default.  Requests may instead carry an inline
// "board_text".  See README "Mapping service" for the protocol and
// examples/serve_demo.sh for a scripted session.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "arch/arch_io.hpp"
#include "service/serve_loop.hpp"
#include "service/socket_server.hpp"
#include "support/fault.hpp"
#include "support/log.hpp"
#include "support/string_util.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [board-file]... [--workers N] [--queue N] "
               "[--threads N] [--cache N] [--listen SPEC] [--max-clients N] "
               "[--connect SPEC] [--shed-delay-ms N] [--watchdog-ms N] "
               "[--max-inflight N] [--faults SPEC] [--verbose]\n",
               argv0);
  return 2;
}

bool parse_count(const char* text, std::int64_t max, std::int64_t& out) {
  return gmm::support::parse_int(text, out) && out >= 0 && out <= max;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmm;
  service::ServiceOptions options;
  service::SocketServerOptions socket_options;
  std::string connect_spec;
  std::string fault_spec;
  bool saw_faults_flag = false;
  std::vector<const char*> board_files;
  for (int i = 1; i < argc; ++i) {
    std::int64_t value = 0;
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 1024, value)) return usage(argv[0]);
      options.workers = static_cast<std::size_t>(value);
    } else if (std::strcmp(argv[i], "--queue") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 1'000'000, value) || value == 0) {
        return usage(argv[0]);
      }
      options.max_pending = static_cast<std::size_t>(value);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 1024, value) || value == 0) {
        return usage(argv[0]);
      }
      options.max_threads_per_solve = static_cast<int>(value);
    } else if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 1'000'000, value)) return usage(argv[0]);
      options.cache_capacity = static_cast<std::size_t>(value);
    } else if (std::strcmp(argv[i], "--listen") == 0 && i + 1 < argc) {
      socket_options.listen = argv[++i];
    } else if (std::strcmp(argv[i], "--max-clients") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 65536, value) || value == 0) {
        return usage(argv[0]);
      }
      socket_options.max_clients = static_cast<std::size_t>(value);
    } else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--shed-delay-ms") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 3'600'000, value)) return usage(argv[0]);
      options.shed_queue_delay_ms = static_cast<double>(value);
    } else if (std::strcmp(argv[i], "--watchdog-ms") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 3'600'000, value)) return usage(argv[0]);
      options.watchdog_window_ms = static_cast<double>(value);
    } else if (std::strcmp(argv[i], "--max-inflight") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 1'000'000, value)) return usage(argv[0]);
      socket_options.max_inflight_per_client = static_cast<std::size_t>(value);
    } else if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      fault_spec = argv[++i];
      saw_faults_flag = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      support::set_log_level(support::LogLevel::kInfo);
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      board_files.push_back(argv[i]);
    }
  }
  if (!connect_spec.empty() && !socket_options.listen.empty()) {
    std::fprintf(stderr, "--connect and --listen are mutually exclusive\n");
    return 2;
  }
  if (!connect_spec.empty()) return service::run_socket_client(connect_spec);

  // Arm the fault injector explicitly, never at static init: --faults
  // wins, then GMM_FAULTS; a malformed spec is a startup error (silently
  // serving without the faults an operator asked for would be worse).
  if (!saw_faults_flag) {
    if (const char* env = std::getenv("GMM_FAULTS")) fault_spec = env;
  }
  if (!fault_spec.empty()) {
    std::string fault_error;
    if (!support::global_faults().arm(fault_spec, fault_error)) {
      std::fprintf(stderr, "bad fault spec: %s\n", fault_error.c_str());
      return 2;
    }
    GMM_LOG(kWarn) << "fault injection armed: "
                   << support::global_faults().spec_string();
  }

  std::vector<arch::Board> boards;
  boards.reserve(board_files.size());
  for (const char* path : board_files) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot open board file %s\n", path);
      return 1;
    }
    arch::BoardParseResult parsed = arch::parse_board(file);
    if (!parsed.ok) {
      std::fprintf(stderr, "%s: %s\n", path, parsed.error.c_str());
      return 1;
    }
    // The catalog is keyed by board name; a duplicate would silently
    // shadow one file behind the other, so refuse to start instead.
    for (const arch::Board& existing : boards) {
      if (existing.name() == parsed.board.name()) {
        std::fprintf(stderr, "%s: duplicate board name '%s'\n", path,
                     parsed.board.name().c_str());
        return 1;
      }
    }
    boards.push_back(std::move(parsed.board));
  }

  if (!socket_options.listen.empty()) {
    return service::run_socket_server(socket_options, std::move(boards),
                                      options);
  }
  return service::run_serve_loop(std::cin, std::cout, std::move(boards),
                                 options);
}
