// Long-lived mapping server speaking the jsonl protocol on stdin/stdout
// or on a listening socket.
//
//   mapper_serve [board-file]... [options]
//
// Options:
//   --workers N        concurrent mapping workers (default 1; 0 = hardware)
//   --queue N          admission bound, queued + in-flight (default 64)
//   --threads N        max B&B workers a request may ask for (default 8)
//   --cache N          solution-cache capacity in entries (default 128;
//                      0 disables the cache entirely)
//   --listen SPEC      serve socket clients instead of stdin/stdout:
//                      a path ("/tmp/gmm.sock") is a Unix-domain socket,
//                      "host:port" is TCP ("localhost:0" = kernel-assigned
//                      port, announced on stdout as a "listening" event)
//   --max-clients N    concurrent socket connections (default 256)
//   --connect SPEC     client bridge: relay stdin jsonl to a listening
//                      server and its responses to stdout (stdin EOF
//                      half-closes; exits when the server closes)
//   --verbose          log at info level (logs go to stderr; stdout
//                      carries only protocol lines)
//
// Each board file becomes a catalog entry requests select with "board";
// the first file is the default.  Requests may instead carry an inline
// "board_text".  See README "Mapping service" for the protocol and
// examples/serve_demo.sh for a scripted session.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "arch/arch_io.hpp"
#include "service/serve_loop.hpp"
#include "service/socket_server.hpp"
#include "support/log.hpp"
#include "support/string_util.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [board-file]... [--workers N] [--queue N] "
               "[--threads N] [--cache N] [--listen SPEC] [--max-clients N] "
               "[--connect SPEC] [--verbose]\n",
               argv0);
  return 2;
}

bool parse_count(const char* text, std::int64_t max, std::int64_t& out) {
  return gmm::support::parse_int(text, out) && out >= 0 && out <= max;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmm;
  service::ServiceOptions options;
  service::SocketServerOptions socket_options;
  std::string connect_spec;
  std::vector<const char*> board_files;
  for (int i = 1; i < argc; ++i) {
    std::int64_t value = 0;
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 1024, value)) return usage(argv[0]);
      options.workers = static_cast<std::size_t>(value);
    } else if (std::strcmp(argv[i], "--queue") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 1'000'000, value) || value == 0) {
        return usage(argv[0]);
      }
      options.max_pending = static_cast<std::size_t>(value);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 1024, value) || value == 0) {
        return usage(argv[0]);
      }
      options.max_threads_per_solve = static_cast<int>(value);
    } else if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 1'000'000, value)) return usage(argv[0]);
      options.cache_capacity = static_cast<std::size_t>(value);
    } else if (std::strcmp(argv[i], "--listen") == 0 && i + 1 < argc) {
      socket_options.listen = argv[++i];
    } else if (std::strcmp(argv[i], "--max-clients") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], 65536, value) || value == 0) {
        return usage(argv[0]);
      }
      socket_options.max_clients = static_cast<std::size_t>(value);
    } else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      support::set_log_level(support::LogLevel::kInfo);
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      board_files.push_back(argv[i]);
    }
  }
  if (!connect_spec.empty() && !socket_options.listen.empty()) {
    std::fprintf(stderr, "--connect and --listen are mutually exclusive\n");
    return 2;
  }
  if (!connect_spec.empty()) return service::run_socket_client(connect_spec);

  std::vector<arch::Board> boards;
  boards.reserve(board_files.size());
  for (const char* path : board_files) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot open board file %s\n", path);
      return 1;
    }
    arch::BoardParseResult parsed = arch::parse_board(file);
    if (!parsed.ok) {
      std::fprintf(stderr, "%s: %s\n", path, parsed.error.c_str());
      return 1;
    }
    // The catalog is keyed by board name; a duplicate would silently
    // shadow one file behind the other, so refuse to start instead.
    for (const arch::Board& existing : boards) {
      if (existing.name() == parsed.board.name()) {
        std::fprintf(stderr, "%s: duplicate board name '%s'\n", path,
                     parsed.board.name().c_str());
        return 1;
      }
    }
    boards.push_back(std::move(parsed.board));
  }

  if (!socket_options.listen.empty()) {
    return service::run_socket_server(socket_options, std::move(boards),
                                      options);
  }
  return service::run_serve_loop(std::cin, std::cout, std::move(boards),
                                 options);
}
