// Device exploration: map one design across every FPGA in the Table-1
// catalog and compare cost, on-chip fit, and solve effort — the
// "which part do I buy?" question a designer would ask this library.
#include <cstdio>
#include <iostream>

#include "arch/device_catalog.hpp"
#include "mapping/pipeline.hpp"
#include "report/text_table.hpp"
#include "support/string_util.hpp"

int main() {
  using namespace gmm;

  // A mid-size DSP design: FFT twiddle factors, two ping-pong buffers,
  // a windowing table and an output accumulator.
  design::Design design("fft1k");
  const auto add = [&design](const char* name, std::int64_t depth,
                             std::int64_t width, std::int64_t reads,
                             std::int64_t writes) {
    design::DataStructure ds;
    ds.name = name;
    ds.depth = depth;
    ds.width = width;
    ds.reads = reads;
    ds.writes = writes;
    design.add(ds);
  };
  add("twiddle", 512, 32, 500000, 512);
  add("ping", 1024, 32, 300000, 300000);
  add("pong", 1024, 32, 300000, 300000);
  add("window", 1024, 16, 100000, 1024);
  add("accum", 2048, 24, 200000, 200000);
  design.set_all_conflicting();

  std::printf("design '%s': %zu structures, %lld total bits\n\n",
              design.name().c_str(), design.size(),
              static_cast<long long>(design.total_bits()));

  report::TextTable table({"Device", "On-chip RAMs", "Status", "Objective",
                           "On-chip segs", "Solve (ms)"});
  table.set_alignment(0, report::Align::kLeft);

  for (const arch::DeviceInfo& info : arch::device_catalog()) {
    const arch::Board board = arch::single_fpga_board(info.device, 4);
    const mapping::PipelineResult r = mapping::map_pipeline(design, board);
    std::string objective = "-";
    std::string onchip = "-";
    if (r.status == lp::SolveStatus::kOptimal) {
      objective = support::format_fixed(r.assignment.objective, 0);
      int count = 0;
      for (std::size_t d = 0; d < design.size(); ++d) {
        if (board.type(static_cast<std::size_t>(r.assignment.type_of[d]))
                .on_chip()) {
          ++count;
        }
      }
      onchip = std::to_string(count) + "/" + std::to_string(design.size());
    }
    table.add_row({info.device, std::to_string(info.ram_banks),
                   lp::to_string(r.status), objective, onchip,
                   support::format_fixed(r.effort.total_seconds() * 1e3, 1)});
  }
  table.print(std::cout);
  std::printf(
      "\nReading: bigger devices pull more structures on-chip and the\n"
      "objective falls monotonically until everything fits on-chip.\n");
  return 0;
}
