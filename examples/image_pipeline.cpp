// Image-processing pipeline mapping — the workload class the paper's
// introduction motivates ("with signal and image processing applications,
// memory mapping becomes a crucial step").
//
// A 3x3 convolution + histogram stage over a 256x256 8-bit image on a
// hierarchical board (on-chip BlockRAM, direct SRAM, far bulk memory):
//   * three line buffers, heavily read every pixel,
//   * the 3x3 coefficient table, read 9x per pixel,
//   * input and output frame halves with disjoint lifetimes (ping/pong),
//   * a histogram updated per pixel.
// Shows lifetime-derived conflicts, the overlap-aware capacity relaxation,
// and validates the mapping in the cycle-approximate simulator.
#include <cstdio>

#include "arch/device_catalog.hpp"
#include "mapping/pipeline.hpp"
#include "mapping/validate.hpp"
#include "sim/footprint.hpp"
#include "sim/memory_sim.hpp"

int main() {
  using namespace gmm;

  const arch::Board board = arch::hierarchical_board("XCV1000");
  std::printf("board: %s\n", board.name().c_str());
  for (const arch::BankType& t : board.types()) {
    std::printf("  %-22s x%-3lld %lld ports, %lld bits, RL/WL %lld/%lld, "
                "%lld pins\n",
                t.name.c_str(), static_cast<long long>(t.instances),
                static_cast<long long>(t.ports),
                static_cast<long long>(t.capacity_bits()),
                static_cast<long long>(t.read_latency),
                static_cast<long long>(t.write_latency),
                static_cast<long long>(t.pins_traversed));
  }

  constexpr std::int64_t kWidth = 256, kHeight = 256;
  constexpr std::int64_t kPixels = kWidth * kHeight;

  design::Design design("convolve3x3");
  const auto add = [&design](const char* name, std::int64_t depth,
                             std::int64_t width, std::int64_t reads,
                             std::int64_t writes, std::int64_t t0,
                             std::int64_t t1) {
    design::DataStructure ds;
    ds.name = name;
    ds.depth = depth;
    ds.width = width;
    ds.reads = reads;
    ds.writes = writes;
    ds.lifetime = design::Lifetime{t0, t1};
    design.add(ds);
  };
  // Whole run spans schedule steps [0, 300).
  add("line0", kWidth, 8, 3 * kPixels, kPixels, 0, 200);
  add("line1", kWidth, 8, 3 * kPixels, kPixels, 0, 200);
  add("line2", kWidth, 8, 3 * kPixels, kPixels, 0, 200);
  add("kernel", 16, 16, 9 * kPixels, 16, 0, 200);
  add("frame_in", kPixels, 8, kPixels, kPixels, 0, 200);
  add("frame_out", kPixels, 8, kPixels, kPixels, 100, 300);
  // The histogram stage runs after convolution; its scratch can overlap
  // storage with the line buffers, whose lifetime has ended.
  add("histogram", 256, 16, 2 * kPixels, 2 * kPixels, 200, 300);
  design.derive_conflicts_from_lifetimes();
  std::printf("\n%zu structures, %zu conflict pairs (of %zu possible)\n",
              design.size(), design.num_conflicts(),
              design.size() * (design.size() - 1) / 2);

  const mapping::PipelineResult result = mapping::map_pipeline(design, board);
  if (result.status != lp::SolveStatus::kOptimal ||
      !result.detailed.success) {
    std::printf("mapping failed (%s)\n", lp::to_string(result.status));
    return 1;
  }
  const auto violations = mapping::validate_mapping(
      design, board, result.assignment, result.detailed);
  std::printf("mapping objective %.0f, legality violations: %zu\n\n",
              result.assignment.objective, violations.size());

  for (std::size_t d = 0; d < design.size(); ++d) {
    const arch::BankType& type =
        board.type(static_cast<std::size_t>(result.assignment.type_of[d]));
    std::printf("  %-10s -> %-22s (%lld fragment%s)\n",
                design.at(d).name.c_str(), type.name.c_str(),
                static_cast<long long>(result.detailed.fragment_count(d)),
                result.detailed.fragment_count(d) == 1 ? "" : "s");
  }

  // Replay a pixel-streaming trace.
  sim::TraceOptions trace_options;
  trace_options.pattern = sim::AddressPattern::kSequential;
  trace_options.max_accesses = 150'000;
  const std::vector<sim::Access> trace =
      sim::generate_trace(design, trace_options);
  const sim::SimReport report =
      sim::simulate(board, design, result.detailed, trace);
  std::printf(
      "\nsimulated %lld accesses: makespan %lld cycles, average service "
      "latency %.2f,\nport-contention stalls %lld cycles\n",
      static_cast<long long>(report.accesses),
      static_cast<long long>(report.total_cycles), report.average_latency(),
      static_cast<long long>(report.stall_cycles));
  for (std::size_t t = 0; t < board.num_types(); ++t) {
    if (report.per_type[t].accesses == 0) continue;
    std::printf("  %-22s %9lld accesses, %lld latency cycles\n",
                board.type(t).name.c_str(),
                static_cast<long long>(report.per_type[t].accesses),
                static_cast<long long>(report.per_type[t].latency_cycles));
  }

  // ---- profile-guided remapping -----------------------------------------
  // The paper (Section 3.2): "A footprint analysis of the memory accesses
  // could tremendously help in guiding the mapping process."  Extract the
  // footprints the simulator observed, remap, and re-simulate.
  const design::Design profiled =
      sim::with_trace_footprints(design, trace);
  const mapping::PipelineResult remapped =
      mapping::map_pipeline(profiled, board);
  if (remapped.status == lp::SolveStatus::kOptimal &&
      remapped.detailed.success) {
    const sim::SimReport report2 =
        sim::simulate(board, profiled, remapped.detailed, trace);
    std::printf(
        "\nprofile-guided remap: objective %.0f, simulated latency sum "
        "%lld -> %lld\n",
        remapped.assignment.objective,
        static_cast<long long>(report.latency_sum),
        static_cast<long long>(report2.latency_sum));
    for (std::size_t d = 0; d < design.size(); ++d) {
      if (remapped.assignment.type_of[d] != result.assignment.type_of[d]) {
        std::printf(
            "  %-10s moved %s -> %s\n", design.at(d).name.c_str(),
            board.type(static_cast<std::size_t>(result.assignment.type_of[d]))
                .name.c_str(),
            board
                .type(static_cast<std::size_t>(remapped.assignment.type_of[d]))
                .name.c_str());
      }
    }
  }
  return 0;
}
