#!/bin/sh
# Scripted jsonl mapping-service session (README "Mapping service").
#
#   ./examples/serve_demo.sh [path-to-mapper_serve]
#
# Pipes a small conversation into mapper_serve: a liveness ping, two
# mapping requests against the bundled XCV300 board (one by server-side
# file path, one inline), a deliberately impossible 0 ms deadline that
# comes back as status "timeout", a stats request (request accounting +
# aggregate solver counters; answered synchronously, so its tally races
# the still-in-flight solves and may print before them), and a graceful
# shutdown.  Responses stream to stdout one JSON object per line.
set -eu

SERVE="${1:-./build/mapper_serve}"
DATA="$(dirname "$0")/data"

if [ ! -x "$SERVE" ]; then
  echo "mapper_serve not found at $SERVE (build first, or pass its path)" >&2
  exit 1
fi

"$SERVE" "$DATA/board_xcv300.txt" <<EOF
{"id":"ping-1","method":"ping"}
{"id":"filter","method":"map","design_path":"$DATA/design_filter.txt"}
{"id":"inline","method":"map","design_text":"design tiny\nsegment coeffs depth 64 width 8\nsegment window depth 128 width 8\nconflicts all\n"}
{"id":"hopeless","method":"map","design_path":"$DATA/design_fft.txt","deadline_ms":0}
{"id":"tally","method":"stats"}
{"method":"shutdown"}
EOF
