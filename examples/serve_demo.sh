#!/bin/sh
# Scripted jsonl mapping-service session (README "Mapping service").
#
#   ./examples/serve_demo.sh [path-to-mapper_serve]
#
# Pipes a small conversation into mapper_serve: a liveness ping, two
# mapping requests against the bundled XCV300 board (one by server-side
# file path, one inline), a sharded mapping against the dual-FPGA board,
# a deliberately impossible 0 ms deadline that comes back as status
# "timeout", a stats request (request accounting + aggregate solver
# counters; answered synchronously, so its tally races the
# still-in-flight solves and may print before them), and a graceful
# shutdown.  Responses stream to stdout one JSON object per line.
#
# A second section repeats the conversation over a Unix-domain SOCKET:
# the same binary serves with --listen and bridges clients with
# --connect, exercising a v2 request (solver knobs in the nested
# "options" object) and an unchanged v1 legacy request side by side.
#
# The script FAILS (exit 1) when any response carries "status":"error"
# or when no response arrives at all — so CI smoke runs catch a broken
# serve path instead of rubber-stamping whatever the server printed.
set -eu

SERVE="${1:-./build/mapper_serve}"
DATA="$(dirname "$0")/data"

if [ ! -x "$SERVE" ]; then
  echo "mapper_serve not found at $SERVE (build first, or pass its path)" >&2
  exit 1
fi

OUT="$("$SERVE" "$DATA/board_xcv300.txt" "$DATA/board_dual_fpga.txt" <<EOF
{"id":"ping-1","method":"ping"}
{"id":"filter","method":"map","design_path":"$DATA/design_filter.txt"}
{"id":"inline","method":"map","design_text":"design tiny\nsegment coeffs depth 64 width 8\nsegment window depth 128 width 8\nconflicts all\n"}
{"id":"sharded","method":"map","board":"board.dual","formulation":"sharded","design_path":"$DATA/design_fft.txt"}
{"id":"hopeless","method":"map","design_path":"$DATA/design_fft.txt","deadline_ms":0}
{"id":"tally","method":"stats"}
{"method":"shutdown"}
EOF
)"

printf '%s\n' "$OUT"

if [ -z "$OUT" ]; then
  echo "serve_demo: no responses from $SERVE" >&2
  exit 1
fi
if printf '%s\n' "$OUT" | grep -q '"status":"error"'; then
  echo "serve_demo: a response carried \"status\":\"error\" (see above)" >&2
  exit 1
fi

# ---- socket mode ----------------------------------------------------------
# The same protocol over a Unix-domain socket: one server, two client
# sessions through the built-in --connect bridge (no netcat needed).
# The v2 request tunes the solver through "options"; the v1 request is
# bytes a legacy client could have sent unchanged (its response carries
# no "v" key).  Socket paths live under /tmp: sockaddr_un caps them at
# ~108 bytes, which deep build trees overflow.
SOCK="/tmp/gmm_serve_demo_$$.sock"
"$SERVE" "$DATA/board_xcv300.txt" --listen "$SOCK" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null; rm -f "$SOCK"' EXIT

# The bridge does not retry a missing socket: wait for the bind first.
tries=0
while [ ! -S "$SOCK" ] && [ "$tries" -lt 100 ]; do
  tries=$((tries + 1))
  sleep 0.1
done

SOCKET_OUT="$("$SERVE" --connect "$SOCK" <<EOF
{"id":"ping-sock","method":"ping"}
{"v":2,"id":"tuned","method":"map","design_path":"$DATA/design_filter.txt","options":{"gap":0.01,"threads":2,"time_limit_ms":30000}}
{"id":"legacy","method":"map","design_path":"$DATA/design_filter.txt","threads":1}
{"id":"tally-sock","method":"stats"}
EOF
)"
# ---- solution cache -------------------------------------------------------
# The same design resubmitted through two SEPARATE client sessions: the
# server's fingerprint-keyed solution cache must replay the second one
# ("cached":true) with the identical mapping cost, no new solve.
COLD_OUT="$(printf '{"id":"repeat-cold","method":"map","design_path":"%s"}\n' \
    "$DATA/design_histogram.txt" | "$SERVE" --connect "$SOCK")"
WARM_OUT="$(printf '{"id":"repeat-warm","method":"map","design_path":"%s"}\n' \
    "$DATA/design_histogram.txt" | "$SERVE" --connect "$SOCK")"

SHUTDOWN_OUT="$(printf '{"method":"shutdown"}\n' | "$SERVE" --connect "$SOCK")"
wait "$SERVER_PID"
trap - EXIT
rm -f "$SOCK"

printf '%s\n%s\n%s\n%s\n' "$SOCKET_OUT" "$COLD_OUT" "$WARM_OUT" "$SHUTDOWN_OUT"

if [ -z "$SOCKET_OUT" ]; then
  echo "serve_demo: no responses over the socket" >&2
  exit 1
fi
for check in '"status":"error"'; do
  if printf '%s\n' "$SOCKET_OUT$COLD_OUT$WARM_OUT$SHUTDOWN_OUT" \
      | grep -q "$check"; then
    echo "serve_demo: a socket response carried $check (see above)" >&2
    exit 1
  fi
done
# The v2 response must echo its version; the v1 response must not grow one.
if ! printf '%s\n' "$SOCKET_OUT" | grep -q '"id":"tuned".*"v":2\|"v":2.*"id":"tuned"'; then
  echo "serve_demo: the v2 response did not echo \"v\":2" >&2
  exit 1
fi
if printf '%s\n' "$SOCKET_OUT" | grep '"id":"legacy"' | grep -q '"v":'; then
  echo "serve_demo: the legacy v1 response grew a \"v\" key" >&2
  exit 1
fi
# The resubmission must be a verified cache replay at the same cost.
if printf '%s\n' "$COLD_OUT" | grep -q '"cached":true'; then
  echo "serve_demo: the FIRST request claimed a cache hit" >&2
  exit 1
fi
if ! printf '%s\n' "$WARM_OUT" | grep -q '"cached":true'; then
  echo "serve_demo: the repeated request was not served from the cache" >&2
  exit 1
fi
COLD_COST="$(printf '%s\n' "$COLD_OUT" | sed -n 's/.*"objective":\([^,}]*\).*/\1/p')"
WARM_COST="$(printf '%s\n' "$WARM_OUT" | sed -n 's/.*"objective":\([^,}]*\).*/\1/p')"
if [ -z "$COLD_COST" ] || [ "$COLD_COST" != "$WARM_COST" ]; then
  echo "serve_demo: cached replay cost '$WARM_COST' != cold cost '$COLD_COST'" >&2
  exit 1
fi

# ---- operating under failure ----------------------------------------------
# A server armed with a benign deterministic fault schedule (README
# "Operating under failure"): service.admission:reject@1 sheds exactly
# the FIRST map request with a retryable rejection carrying a
# "retry_after_ms" backoff hint; the client's retry (fresh id, since the
# protocol treats a resubmitted id as a duplicate while active) then
# succeeds.  Everything after that first evaluation behaves normally —
# deterministic triggers make fault drills scriptable.
FSOCK="/tmp/gmm_serve_demo_faults_$$.sock"
"$SERVE" "$DATA/board_xcv300.txt" --listen "$FSOCK" \
    --faults 'seed=7,service.admission:reject@1' &
FAULT_SERVER_PID=$!
trap 'kill "$FAULT_SERVER_PID" 2>/dev/null; rm -f "$FSOCK"' EXIT
tries=0
while [ ! -S "$FSOCK" ] && [ "$tries" -lt 100 ]; do
  tries=$((tries + 1))
  sleep 0.1
done

FAULT_OUT="$("$SERVE" --connect "$FSOCK" <<EOF
{"id":"doomed","method":"map","design_path":"$DATA/design_filter.txt"}
{"id":"retry","method":"map","design_path":"$DATA/design_filter.txt"}
EOF
)"
FAULT_SHUTDOWN="$(printf '{"method":"shutdown"}\n' | "$SERVE" --connect "$FSOCK")"
wait "$FAULT_SERVER_PID"
trap - EXIT
rm -f "$FSOCK"

printf '%s\n%s\n' "$FAULT_OUT" "$FAULT_SHUTDOWN"

DOOMED="$(printf '%s\n' "$FAULT_OUT" | grep '"id":"doomed"' || true)"
if ! printf '%s\n' "$DOOMED" | grep -q '"status":"rejected"'; then
  echo "serve_demo: the injected admission fault did not reject" >&2
  exit 1
fi
if ! printf '%s\n' "$DOOMED" | grep -q '"retryable":true'; then
  echo "serve_demo: the shed rejection was not marked retryable" >&2
  exit 1
fi
if ! printf '%s\n' "$DOOMED" | grep -q '"retry_after_ms":'; then
  echo "serve_demo: the shed rejection carried no retry_after_ms hint" >&2
  exit 1
fi
if ! printf '%s\n' "$FAULT_OUT" | grep '"id":"retry"' | grep -q '"status":"ok"'; then
  echo "serve_demo: the retry after the shed rejection did not succeed" >&2
  exit 1
fi
