#!/bin/sh
# Scripted jsonl mapping-service session (README "Mapping service").
#
#   ./examples/serve_demo.sh [path-to-mapper_serve]
#
# Pipes a small conversation into mapper_serve: a liveness ping, two
# mapping requests against the bundled XCV300 board (one by server-side
# file path, one inline), a sharded mapping against the dual-FPGA board,
# a deliberately impossible 0 ms deadline that comes back as status
# "timeout", a stats request (request accounting + aggregate solver
# counters; answered synchronously, so its tally races the
# still-in-flight solves and may print before them), and a graceful
# shutdown.  Responses stream to stdout one JSON object per line.
#
# The script FAILS (exit 1) when any response carries "status":"error"
# or when no response arrives at all — so CI smoke runs catch a broken
# serve path instead of rubber-stamping whatever the server printed.
set -eu

SERVE="${1:-./build/mapper_serve}"
DATA="$(dirname "$0")/data"

if [ ! -x "$SERVE" ]; then
  echo "mapper_serve not found at $SERVE (build first, or pass its path)" >&2
  exit 1
fi

OUT="$("$SERVE" "$DATA/board_xcv300.txt" "$DATA/board_dual_fpga.txt" <<EOF
{"id":"ping-1","method":"ping"}
{"id":"filter","method":"map","design_path":"$DATA/design_filter.txt"}
{"id":"inline","method":"map","design_text":"design tiny\nsegment coeffs depth 64 width 8\nsegment window depth 128 width 8\nconflicts all\n"}
{"id":"sharded","method":"map","board":"board.dual","formulation":"sharded","design_path":"$DATA/design_fft.txt"}
{"id":"hopeless","method":"map","design_path":"$DATA/design_fft.txt","deadline_ms":0}
{"id":"tally","method":"stats"}
{"method":"shutdown"}
EOF
)"

printf '%s\n' "$OUT"

if [ -z "$OUT" ]; then
  echo "serve_demo: no responses from $SERVE" >&2
  exit 1
fi
if printf '%s\n' "$OUT" | grep -q '"status":"error"'; then
  echo "serve_demo: a response carried \"status\":\"error\" (see above)" >&2
  exit 1
fi
