// Command-line mapper: the library as a standalone tool.
//
//   mapper_cli <board-file> <design-file>... [options]
//
// Options:
//   --complete     solve the flat (complete) formulation instead of the
//                  global/detailed pipeline (single-design mode only)
//   --portfolio    race several solver configurations concurrently and
//                  return the first lane to prove (single-design mode
//                  only); prints the per-lane race table
//   --lanes N      portfolio lane count, 1..6 (default 3)
//   --devices N    split a single-device board round-robin across N
//                  identical FPGAs and map with the sharded mapper
//                  (single-design mode only); boards whose files already
//                  declare devices shard automatically
//   --csv          machine-readable placement dump instead of tables
//   --map          append the per-instance memory-map report
//   --threads N    branch & bound workers per solve (default 1; 0 = all
//                  hardware threads)
//   --lp-engine E  LP engine for every node relaxation: "dense" (default)
//                  or "sparse" (revised simplex; per-pivot cost scales
//                  with nonzeros — same answers, different speed)
//   --jobs N       map the given designs as one batch over an N-worker
//                  pool (default: one worker per design, capped at the
//                  hardware concurrency); implied when several design
//                  files are given
//
// Reads the text formats of arch_io/design_io (see examples/data/ for
// samples), runs the requested mapper, and prints the assignment,
// placements and solve statistics.  Batch mode parses the board once and
// shares it read-only across every concurrent pipeline — the serving
// pattern for many mapping requests against one device catalog.
// Multi-device boards route through mapping::map_sharded (partition ->
// per-device ILP fan-out -> stitch ILP) and report the per-structure
// device placement plus the stitch transfer cost.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "arch/arch_io.hpp"
#include "design/design_io.hpp"
#include "lp/lp_backend.hpp"
#include "mapping/batch_mapper.hpp"
#include "mapping/complete_mapper.hpp"
#include "mapping/pipeline.hpp"
#include "mapping/portfolio.hpp"
#include "mapping/shard_mapper.hpp"
#include "mapping/validate.hpp"
#include "report/placement_report.hpp"
#include "report/text_table.hpp"
#include "support/string_util.hpp"
#include "support/timer.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <board-file> <design-file>... [--complete] "
               "[--portfolio] [--lanes N] [--devices N] [--csv] [--map] "
               "[--threads N] [--lp-engine dense|sparse] [--jobs N]\n",
               argv0);
  return 2;
}

bool parse_count(const char* text, int& out) {
  std::int64_t value = 0;
  if (!gmm::support::parse_int(text, value) || value < 0 || value > 1024) {
    return false;
  }
  out = static_cast<int>(value);
  return true;
}

struct ParsedDesign {
  std::string path;
  gmm::design::Design design;
};

int report_single(const gmm::arch::Board& board,
                  const gmm::design::Design& design, const char* label,
                  bool csv, bool memory_map,
                  const gmm::mapping::GlobalAssignment& assignment,
                  const gmm::mapping::DetailedMapping& detailed,
                  const gmm::mapping::SolveEffort& effort,
                  gmm::lp::SolveStatus status,
                  const std::vector<int>* device_of = nullptr) {
  using namespace gmm;
  if (status != lp::SolveStatus::kOptimal &&
      status != lp::SolveStatus::kFeasible) {
    std::fprintf(stderr, "mapping failed: %s\n", lp::to_string(status));
    return 1;
  }
  const auto violations =
      mapping::validate_mapping(design, board, assignment, detailed);
  if (!violations.empty()) {
    std::fprintf(stderr, "mapping produced %zu legality violations!\n",
                 violations.size());
    for (const std::string& v : violations) {
      std::fprintf(stderr, "  %s\n", v.c_str());
    }
    return 1;
  }

  if (csv) {
    std::printf("structure,type,instance,first_port,ports,config,offset_bits,"
                "block_bits,kind\n");
    for (const mapping::PlacedFragment& f : detailed.fragments) {
      const arch::BankType& type = board.type(f.type);
      std::printf("%s,%s,%lld,%lld,%lld,%s,%lld,%lld,%s\n",
                  design.at(f.ds).name.c_str(), type.name.c_str(),
                  static_cast<long long>(f.instance),
                  static_cast<long long>(f.first_port),
                  static_cast<long long>(f.ports),
                  type.configs[f.config_index].to_string().c_str(),
                  static_cast<long long>(f.offset_bits),
                  static_cast<long long>(f.block_bits),
                  mapping::to_string(f.kind));
    }
    return 0;
  }

  std::printf("%s mapping of '%s' onto '%s': %s, objective %.0f (%.3fs)\n\n",
              label, design.name().c_str(), board.name().c_str(),
              lp::to_string(status), assignment.objective,
              effort.total_seconds());
  std::vector<std::string> headers = {"Structure", "Depth x Width",
                                      "Bank type", "Fragments"};
  if (device_of != nullptr) headers.insert(headers.begin() + 2, "Device");
  report::TextTable table(headers);
  table.set_alignment(0, report::Align::kLeft);
  table.set_alignment(2, report::Align::kLeft);
  if (device_of != nullptr) table.set_alignment(3, report::Align::kLeft);
  for (std::size_t d = 0; d < design.size(); ++d) {
    const design::DataStructure& ds = design.at(d);
    std::vector<std::string> row = {
        ds.name, std::to_string(ds.depth) + "x" + std::to_string(ds.width),
        board.type(static_cast<std::size_t>(assignment.type_of[d])).name,
        std::to_string(detailed.fragment_count(d))};
    if (device_of != nullptr) {
      const int dev = (*device_of)[d];
      row.insert(row.begin() + 2,
                 dev < 0 ? "-"
                         : board.device(static_cast<std::size_t>(dev)).name);
    }
    table.add_row(row);
  }
  table.print(std::cout);
  if (memory_map) {
    std::printf("\n");
    report::write_placement_report(std::cout, design, board, detailed);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmm;
  bool use_complete = false;
  bool use_portfolio = false;
  int lanes = 3;
  bool csv = false;
  bool memory_map = false;
  int threads = 1;
  lp::LpEngine lp_engine = lp::LpEngine::kDense;
  int jobs = 0;  // 0 = auto (one per design, capped at hardware)
  int devices = 0;  // 0 = as declared in the board file
  bool jobs_given = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--complete") == 0) {
      use_complete = true;
    } else if (std::strcmp(argv[i], "--portfolio") == 0) {
      use_portfolio = true;
    } else if (std::strcmp(argv[i], "--lanes") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], lanes) || lanes < 1 ||
          lanes > mapping::kMaxPortfolioLanes) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--devices") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], devices) || devices < 1) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--map") == 0) {
      memory_map = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], threads)) return usage(argv[0]);
    } else if (std::strcmp(argv[i], "--lp-engine") == 0 && i + 1 < argc) {
      if (!gmm::lp::parse_lp_engine(argv[++i], lp_engine)) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      if (!parse_count(argv[++i], jobs)) return usage(argv[0]);
      jobs_given = true;
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() < 2) return usage(argv[0]);

  std::ifstream board_file(positional[0]);
  if (!board_file) {
    std::fprintf(stderr, "cannot open board file %s\n", positional[0]);
    return 1;
  }
  arch::BoardParseResult parsed_board = arch::parse_board(board_file);
  if (!parsed_board.ok) {
    std::fprintf(stderr, "%s: %s\n", positional[0],
                 parsed_board.error.c_str());
    return 1;
  }
  arch::Board board = std::move(parsed_board.board);
  if (devices > 1) {
    if (board.has_explicit_devices()) {
      std::fprintf(stderr,
                   "--devices only applies to single-device board files "
                   "(%s already declares devices)\n",
                   positional[0]);
      return 1;
    }
    board = arch::split_across_devices(board, devices);
  }

  std::vector<ParsedDesign> designs;
  for (std::size_t i = 1; i < positional.size(); ++i) {
    std::ifstream design_file(positional[i]);
    if (!design_file) {
      std::fprintf(stderr, "cannot open design file %s\n", positional[i]);
      return 1;
    }
    design::DesignParseResult parsed = design::parse_design(design_file);
    if (!parsed.ok) {
      std::fprintf(stderr, "%s: %s\n", positional[i], parsed.error.c_str());
      return 1;
    }
    designs.push_back({positional[i], std::move(parsed.design)});
  }

  mapping::PipelineOptions pipeline_options;
  pipeline_options.global.mip.num_threads = threads;
  pipeline_options.global.mip.lp_engine = lp_engine;

  // ---- single-design mode ----------------------------------------------
  if (designs.size() == 1 && !jobs_given) {
    const design::Design& design = designs[0].design;
    if (use_portfolio) {
      if (use_complete) {
        std::fprintf(stderr,
                     "--portfolio and --complete are exclusive (the "
                     "portfolio menu already includes a complete lane)\n");
        return usage(argv[0]);
      }
      mapping::PortfolioOptions portfolio_options;
      portfolio_options.lanes =
          mapping::default_portfolio_lanes(board, lanes, pipeline_options);
      const mapping::PortfolioResult r =
          mapping::solve_portfolio(design, board, portfolio_options);
      if (!csv) {
        report::TextTable race({"Lane", "Kind", "Status", "Objective",
                                "Wall (s)", "B&B nodes"});
        race.set_alignment(0, report::Align::kLeft);
        race.set_alignment(1, report::Align::kLeft);
        race.set_alignment(2, report::Align::kLeft);
        for (const mapping::LaneReport& lane : r.lanes) {
          race.add_row(
              {lane.name, mapping::to_string(lane.kind),
               lane.ran ? lp::to_string(lane.status) : "never ran",
               lane.usable
                   ? std::to_string(static_cast<long long>(lane.objective))
                   : "-",
               support::format_fixed(lane.seconds, 3),
               std::to_string(static_cast<long long>(lane.effort.bnb_nodes))});
        }
        race.print(std::cout);
        std::printf("\nportfolio: %zu lanes, winner %s, first proof in "
                    "%.3fs, %d lanes cancelled\n\n",
                    r.lanes.size(),
                    r.winner >= 0 ? r.winner_name.c_str() : "none",
                    r.first_prove_seconds, r.lanes_cancelled);
      }
      return report_single(board, design, "portfolio", csv, memory_map,
                           r.assignment, r.detailed, r.effort, r.status,
                           board.multi_device() && !r.device_of.empty()
                               ? &r.device_of
                               : nullptr);
    }
    if (board.multi_device()) {
      if (use_complete) {
        std::fprintf(stderr,
                     "--complete is a single-device option; multi-device "
                     "boards use the sharded mapper\n");
        return usage(argv[0]);
      }
      mapping::ShardOptions shard_options;
      shard_options.pipeline = pipeline_options;
      const mapping::ShardResult r =
          mapping::map_sharded(design, board, shard_options);
      if (!csv &&
          (r.status == lp::SolveStatus::kOptimal ||
           r.status == lp::SolveStatus::kFeasible)) {
        std::printf("sharded over %d devices: %d shards, stitch cost %.0f, "
                    "%lld cut edges, %d repair rounds\n",
                    r.stats.devices, r.stats.shards, r.stats.stitch_cost,
                    static_cast<long long>(r.stats.cut_edges),
                    r.stats.repair_rounds);
      }
      return report_single(board, design, "sharded", csv, memory_map,
                           r.assignment, r.detailed, r.effort, r.status,
                           &r.device_of);
    }
    if (use_complete) {
      const mapping::CostTable table(design, board);
      mapping::CompleteOptions complete_options;
      complete_options.mip.num_threads = threads;
      complete_options.mip.lp_engine = lp_engine;
      const mapping::CompleteResult r =
          mapping::map_complete(design, board, table, complete_options);
      return report_single(board, design, "complete", csv, memory_map,
                           r.assignment, r.detailed, r.effort, r.status);
    }
    const mapping::PipelineResult r =
        mapping::map_pipeline(design, board, pipeline_options);
    return report_single(board, design, "global/detailed", csv, memory_map,
                         r.assignment, r.detailed, r.effort, r.status);
  }

  // ---- batch mode ------------------------------------------------------
  if (use_complete) {
    std::fprintf(stderr, "--complete is a single-design option\n");
    return usage(argv[0]);
  }
  if (use_portfolio) {
    std::fprintf(stderr, "--portfolio is a single-design option\n");
    return usage(argv[0]);
  }
  if (board.multi_device()) {
    std::fprintf(stderr,
                 "batch mode maps each design with the single-device "
                 "pipeline; multi-device boards (--devices) are a "
                 "single-design option\n");
    return usage(argv[0]);
  }
  if (jobs <= 0) {
    jobs = static_cast<int>(
        std::min(designs.size(),
                 static_cast<std::size_t>(
                     std::max(1u, std::thread::hardware_concurrency()))));
  }
  std::vector<mapping::BatchItem> items;
  items.reserve(designs.size());
  for (const ParsedDesign& d : designs) {
    items.push_back({.design = &d.design, .board = &board});
  }
  const mapping::BatchResult batch = mapping::map_batch(
      items, pipeline_options, static_cast<std::size_t>(jobs));

  int exit_code = 0;
  report::TextTable table({"Design", "Status", "Objective", "Fragments",
                           "Solve (s)", "B&B nodes"});
  table.set_alignment(0, report::Align::kLeft);
  table.set_alignment(1, report::Align::kLeft);
  for (std::size_t i = 0; i < designs.size(); ++i) {
    const mapping::PipelineResult& r = batch.results[i];
    const bool ok = r.status == lp::SolveStatus::kOptimal ||
                    r.status == lp::SolveStatus::kFeasible;
    if (!ok) exit_code = 1;
    table.add_row({designs[i].design.name(), lp::to_string(r.status),
                   ok ? std::to_string(static_cast<long long>(
                            r.assignment.objective))
                      : "-",
                   ok ? std::to_string(r.detailed.fragments.size()) : "-",
                   support::format_fixed(r.effort.total_seconds(), 3),
                   std::to_string(static_cast<long long>(r.effort.bnb_nodes))});
  }
  table.print(std::cout);
  std::printf("\n%zu/%zu designs mapped in %.3fs over %d workers "
              "(%.1f designs/s)\n",
              batch.succeeded, batch.results.size(), batch.seconds, jobs,
              batch.seconds > 0
                  ? static_cast<double>(batch.results.size()) / batch.seconds
                  : 0.0);
  return exit_code;
}
