// Command-line mapper: the library as a standalone tool.
//
//   mapper_cli <board-file> <design-file> [--complete] [--csv] [--map]
//
// Reads the text formats of arch_io/design_io (see examples/data/ for
// samples), runs the requested mapper, and prints the assignment,
// placements and solve statistics.  --csv emits a machine-readable
// placement dump on stdout instead of tables; --map appends the
// per-instance memory-map report.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "arch/arch_io.hpp"
#include "design/design_io.hpp"
#include "mapping/complete_mapper.hpp"
#include "mapping/pipeline.hpp"
#include "mapping/validate.hpp"
#include "report/placement_report.hpp"
#include "report/text_table.hpp"
#include "support/string_util.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <board-file> <design-file> [--complete] [--csv]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmm;
  if (argc < 3) return usage(argv[0]);
  bool use_complete = false;
  bool csv = false;
  bool memory_map = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--complete") == 0) {
      use_complete = true;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--map") == 0) {
      memory_map = true;
    } else {
      return usage(argv[0]);
    }
  }

  std::ifstream board_file(argv[1]);
  if (!board_file) {
    std::fprintf(stderr, "cannot open board file %s\n", argv[1]);
    return 1;
  }
  const arch::BoardParseResult board = arch::parse_board(board_file);
  if (!board.ok) {
    std::fprintf(stderr, "%s: %s\n", argv[1], board.error.c_str());
    return 1;
  }
  std::ifstream design_file(argv[2]);
  if (!design_file) {
    std::fprintf(stderr, "cannot open design file %s\n", argv[2]);
    return 1;
  }
  const design::DesignParseResult parsed = design::parse_design(design_file);
  if (!parsed.ok) {
    std::fprintf(stderr, "%s: %s\n", argv[2], parsed.error.c_str());
    return 1;
  }

  mapping::GlobalAssignment assignment;
  mapping::DetailedMapping detailed;
  mapping::SolveEffort effort;
  lp::SolveStatus status;
  if (use_complete) {
    const mapping::CostTable table(parsed.design, board.board);
    const mapping::CompleteResult r =
        mapping::map_complete(parsed.design, board.board, table);
    status = r.status;
    assignment = r.assignment;
    detailed = r.detailed;
    effort = r.effort;
  } else {
    const mapping::PipelineResult r =
        mapping::map_pipeline(parsed.design, board.board);
    status = r.status;
    assignment = r.assignment;
    detailed = r.detailed;
    effort = r.effort;
  }

  if (status != lp::SolveStatus::kOptimal &&
      status != lp::SolveStatus::kFeasible) {
    std::fprintf(stderr, "mapping failed: %s\n", lp::to_string(status));
    return 1;
  }
  const auto violations = mapping::validate_mapping(
      parsed.design, board.board, assignment, detailed);
  if (!violations.empty()) {
    std::fprintf(stderr, "mapping produced %zu legality violations!\n",
                 violations.size());
    for (const std::string& v : violations) {
      std::fprintf(stderr, "  %s\n", v.c_str());
    }
    return 1;
  }

  if (csv) {
    std::printf("structure,type,instance,first_port,ports,config,offset_bits,"
                "block_bits,kind\n");
    for (const mapping::PlacedFragment& f : detailed.fragments) {
      const arch::BankType& type = board.board.type(f.type);
      std::printf("%s,%s,%lld,%lld,%lld,%s,%lld,%lld,%s\n",
                  parsed.design.at(f.ds).name.c_str(), type.name.c_str(),
                  static_cast<long long>(f.instance),
                  static_cast<long long>(f.first_port),
                  static_cast<long long>(f.ports),
                  type.configs[f.config_index].to_string().c_str(),
                  static_cast<long long>(f.offset_bits),
                  static_cast<long long>(f.block_bits),
                  mapping::to_string(f.kind));
    }
    return 0;
  }

  std::printf("%s mapping of '%s' onto '%s': %s, objective %.0f (%.3fs)\n\n",
              use_complete ? "complete" : "global/detailed",
              parsed.design.name().c_str(), board.board.name().c_str(),
              lp::to_string(status), assignment.objective,
              effort.total_seconds());
  report::TextTable table({"Structure", "Depth x Width", "Bank type",
                           "Fragments"});
  table.set_alignment(0, report::Align::kLeft);
  table.set_alignment(2, report::Align::kLeft);
  for (std::size_t d = 0; d < parsed.design.size(); ++d) {
    const design::DataStructure& ds = parsed.design.at(d);
    table.add_row({ds.name,
                   std::to_string(ds.depth) + "x" + std::to_string(ds.width),
                   board.board.type(static_cast<std::size_t>(
                                        assignment.type_of[d]))
                       .name,
                   std::to_string(detailed.fragment_count(d))});
  }
  table.print(std::cout);
  if (memory_map) {
    std::printf("\n");
    report::write_placement_report(std::cout, parsed.design, board.board,
                                   detailed);
  }
  return 0;
}
