// Quickstart: map three data structures onto a Virtex board in ~40 lines.
//
//   build/examples/quickstart
//
// Walks the canonical flow: pick a board (device catalog), describe the
// design (data structures + conflicts), run the global/detailed pipeline,
// inspect the assignment and the concrete placements.
#include <cstdio>

#include "arch/device_catalog.hpp"
#include "mapping/pipeline.hpp"

int main() {
  using namespace gmm;

  // A single-FPGA reconfigurable board: XCV300 (16 dual-ported 4096-bit
  // BlockRAMs) plus four off-chip 32Kx32 SRAM banks.
  const arch::Board board = arch::single_fpga_board("XCV300", 4);

  // Three structures of a small filter kernel.  Reads/writes bias the
  // mapper: the hot coefficient table belongs on-chip.
  design::Design design("quickstart");
  design::DataStructure coeffs{.name = "coeffs", .depth = 64, .width = 16,
                               .reads = 100000, .writes = 64};
  design::DataStructure window{.name = "window", .depth = 512, .width = 16,
                               .reads = 50000, .writes = 50000};
  design::DataStructure frame{.name = "frame", .depth = 65536, .width = 8,
                              .reads = 65536, .writes = 65536};
  design.add(coeffs);
  design.add(window);
  design.add(frame);
  design.set_all_conflicting();  // all live simultaneously

  const mapping::PipelineResult result = mapping::map_pipeline(design, board);
  if (result.status != lp::SolveStatus::kOptimal) {
    std::printf("mapping failed: %s\n", lp::to_string(result.status));
    return 1;
  }

  std::printf("objective %.0f, solved in %.3fs (%lld B&B nodes)\n\n",
              result.assignment.objective, result.effort.total_seconds(),
              static_cast<long long>(result.effort.bnb_nodes));
  for (std::size_t d = 0; d < design.size(); ++d) {
    const arch::BankType& type =
        board.type(static_cast<std::size_t>(result.assignment.type_of[d]));
    std::printf("%-8s -> %-18s (%s, %lld fragment%s)\n",
                design.at(d).name.c_str(), type.name.c_str(),
                type.on_chip() ? "on-chip" : "off-chip",
                static_cast<long long>(result.detailed.fragment_count(d)),
                result.detailed.fragment_count(d) == 1 ? "" : "s");
  }

  std::printf("\nconcrete placements:\n");
  for (const mapping::PlacedFragment& f : result.detailed.fragments) {
    const arch::BankType& type = board.type(f.type);
    std::printf(
        "  %-8s %s[%lld] ports %lld..%lld config %-7s offset %6lld bits "
        "(%s)\n",
        design.at(f.ds).name.c_str(), type.name.c_str(),
        static_cast<long long>(f.instance),
        static_cast<long long>(f.first_port),
        static_cast<long long>(f.first_port + f.ports - 1),
        type.configs[f.config_index].to_string().c_str(),
        static_cast<long long>(f.offset_bits), mapping::to_string(f.kind));
  }
  return 0;
}
