#include "design/design_io.hpp"

#include <gtest/gtest.h>

namespace gmm::design {
namespace {

TEST(DesignIo, ParsesFullDesign) {
  const DesignParseResult r = parse_design_string(R"(
design fir_filter
segment coeffs depth 64 width 16 reads 10000 writes 64
segment window depth 64 width 16 lifetime 0 100
segment output depth 512 width 16 lifetime 50 200
conflict coeffs window
)");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.design.name(), "fir_filter");
  ASSERT_EQ(r.design.size(), 3u);
  EXPECT_EQ(r.design.at(0).name, "coeffs");
  EXPECT_EQ(r.design.at(0).depth, 64);
  EXPECT_EQ(r.design.at(0).reads, 10000);
  ASSERT_TRUE(r.design.at(1).lifetime.has_value());
  EXPECT_EQ(r.design.at(1).lifetime->start, 0);
  EXPECT_EQ(r.design.at(1).lifetime->end, 100);
  EXPECT_TRUE(r.design.conflicts(0, 1));
  EXPECT_FALSE(r.design.conflicts(0, 2));
}

TEST(DesignIo, ConflictsAllDirective) {
  const DesignParseResult r = parse_design_string(R"(
segment a depth 8 width 8
segment b depth 8 width 8
segment c depth 8 width 8
conflicts all
)");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.design.num_conflicts(), 3u);
}

TEST(DesignIo, ConflictsLifetimesDirective) {
  const DesignParseResult r = parse_design_string(R"(
segment a depth 8 width 8 lifetime 0 10
segment b depth 8 width 8 lifetime 10 20
segment c depth 8 width 8 lifetime 5 15
conflicts lifetimes
)");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.design.conflicts(0, 1));
  EXPECT_TRUE(r.design.conflicts(0, 2));
}

TEST(DesignIo, RoundTrip) {
  const DesignParseResult first = parse_design_string(R"(
design demo
segment big depth 1000 width 24 reads 5000
segment tiny depth 4 width 2 lifetime 3 9
conflict big tiny
)");
  ASSERT_TRUE(first.ok) << first.error;
  const DesignParseResult second =
      parse_design_string(design_to_string(first.design));
  ASSERT_TRUE(second.ok) << second.error;
  ASSERT_EQ(second.design.size(), first.design.size());
  for (std::size_t i = 0; i < first.design.size(); ++i) {
    EXPECT_EQ(second.design.at(i).name, first.design.at(i).name);
    EXPECT_EQ(second.design.at(i).depth, first.design.at(i).depth);
    EXPECT_EQ(second.design.at(i).width, first.design.at(i).width);
    EXPECT_EQ(second.design.at(i).reads, first.design.at(i).reads);
    EXPECT_EQ(second.design.at(i).lifetime, first.design.at(i).lifetime);
  }
  EXPECT_EQ(second.design.conflict_pairs(), first.design.conflict_pairs());
}

TEST(DesignIo, RejectsDuplicateSegment) {
  const DesignParseResult r = parse_design_string(
      "segment a depth 8 width 8\nsegment a depth 4 width 4\n");
  EXPECT_FALSE(r.ok);
}

TEST(DesignIo, RejectsUnknownConflictTarget) {
  const DesignParseResult r = parse_design_string(
      "segment a depth 8 width 8\nconflict a ghost\n");
  EXPECT_FALSE(r.ok);
}

TEST(DesignIo, RejectsSelfConflict) {
  const DesignParseResult r = parse_design_string(
      "segment a depth 8 width 8\nconflict a a\n");
  EXPECT_FALSE(r.ok);
}

TEST(DesignIo, RejectsBadLifetime) {
  const DesignParseResult r = parse_design_string(
      "segment a depth 8 width 8 lifetime 9 3\n");
  EXPECT_FALSE(r.ok);
}

TEST(DesignIo, RejectsMissingDimensions) {
  const DesignParseResult r =
      parse_design_string("segment a depth 8 reads 10\n");
  EXPECT_FALSE(r.ok);
}

}  // namespace
}  // namespace gmm::design
