#include "design/conflict_analysis.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace gmm::design {
namespace {

Design make_design(std::size_t n) {
  Design design;
  for (std::size_t i = 0; i < n; ++i) {
    DataStructure s;
    s.name = "s" + std::to_string(i);
    s.depth = 8;
    s.width = 8;
    design.add(s);
  }
  return design;
}

std::set<std::set<std::size_t>> as_sets(
    const std::vector<std::vector<std::size_t>>& cliques) {
  std::set<std::set<std::size_t>> out;
  for (const auto& c : cliques) out.insert(std::set<std::size_t>(c.begin(), c.end()));
  return out;
}

TEST(ConflictCliques, EmptyGraphGivesSingletons) {
  const Design design = make_design(4);
  const CliqueAnalysis a = conflict_cliques(design);
  EXPECT_FALSE(a.capped);
  EXPECT_EQ(as_sets(a.cliques),
            (std::set<std::set<std::size_t>>{{0}, {1}, {2}, {3}}));
}

TEST(ConflictCliques, CompleteGraphGivesOneClique) {
  Design design = make_design(5);
  design.set_all_conflicting();
  const CliqueAnalysis a = conflict_cliques(design);
  EXPECT_FALSE(a.capped);
  EXPECT_EQ(as_sets(a.cliques),
            (std::set<std::set<std::size_t>>{{0, 1, 2, 3, 4}}));
}

TEST(ConflictCliques, TrianglePlusPendant) {
  Design design = make_design(4);
  design.add_conflict(0, 1);
  design.add_conflict(1, 2);
  design.add_conflict(0, 2);
  design.add_conflict(2, 3);
  const CliqueAnalysis a = conflict_cliques(design);
  EXPECT_EQ(as_sets(a.cliques),
            (std::set<std::set<std::size_t>>{{0, 1, 2}, {2, 3}}));
}

TEST(ConflictCliques, IntervalGraphFromLifetimes) {
  Design design;
  const auto add = [&design](std::int64_t s, std::int64_t e) {
    DataStructure ds;
    ds.name = "x" + std::to_string(design.size());
    ds.depth = 4;
    ds.width = 4;
    ds.lifetime = Lifetime{s, e};
    design.add(ds);
  };
  add(0, 10);   // 0
  add(5, 15);   // 1
  add(12, 20);  // 2
  add(30, 40);  // 3
  design.derive_conflicts_from_lifetimes();
  const CliqueAnalysis a = conflict_cliques(design);
  EXPECT_EQ(as_sets(a.cliques),
            (std::set<std::set<std::size_t>>{{0, 1}, {1, 2}, {3}}));
}

TEST(ConflictCliques, CapFallsBackToConservative) {
  // A graph with many maximal cliques: complete multipartite K(2,2,2,...)
  // has 2^k maximal cliques.  Cap at 4 forces the fallback.
  Design design = make_design(12);
  for (std::size_t a = 0; a < 12; ++a) {
    for (std::size_t b = a + 1; b < 12; ++b) {
      if (a / 2 != b / 2) design.add_conflict(a, b);  // across pairs only
    }
  }
  const CliqueAnalysis a = conflict_cliques(design, 4);
  EXPECT_TRUE(a.capped);
  ASSERT_EQ(a.cliques.size(), 1u);
  EXPECT_EQ(a.cliques[0].size(), 12u);
}

TEST(ConflictCliques, EveryCliqueIsActuallyAClique) {
  Design design = make_design(9);
  // Deterministic pseudo-random edges.
  for (std::size_t a = 0; a < 9; ++a) {
    for (std::size_t b = a + 1; b < 9; ++b) {
      if ((a * 7 + b * 13) % 3 == 0) design.add_conflict(a, b);
    }
  }
  const CliqueAnalysis analysis = conflict_cliques(design);
  EXPECT_FALSE(analysis.capped);
  for (const auto& clique : analysis.cliques) {
    for (std::size_t i = 0; i < clique.size(); ++i) {
      for (std::size_t j = i + 1; j < clique.size(); ++j) {
        EXPECT_TRUE(design.conflicts(clique[i], clique[j]));
      }
    }
  }
  // Every vertex appears in at least one clique.
  std::set<std::size_t> seen;
  for (const auto& clique : analysis.cliques) {
    seen.insert(clique.begin(), clique.end());
  }
  EXPECT_EQ(seen.size(), 9u);
  // Maximality: no clique is a subset of another.
  const auto sets = as_sets(analysis.cliques);
  for (const auto& a : sets) {
    for (const auto& b : sets) {
      if (a == b) continue;
      EXPECT_FALSE(std::includes(b.begin(), b.end(), a.begin(), a.end()))
          << "clique contained in another";
    }
  }
}

}  // namespace
}  // namespace gmm::design
