#include "design/design.hpp"

#include <gtest/gtest.h>

namespace gmm::design {
namespace {

DataStructure ds(const std::string& name, std::int64_t depth,
                 std::int64_t width) {
  DataStructure s;
  s.name = name;
  s.depth = depth;
  s.width = width;
  return s;
}

TEST(DataStructure, BitsAndEffectiveAccesses) {
  DataStructure s = ds("a", 55, 17);
  EXPECT_EQ(s.bits(), 935);
  // Paper default: reads = writes = depth.
  EXPECT_EQ(s.effective_reads(), 55);
  EXPECT_EQ(s.effective_writes(), 55);
  s.reads = 1000;
  s.writes = 10;
  EXPECT_EQ(s.effective_reads(), 1000);
  EXPECT_EQ(s.effective_writes(), 10);
}

TEST(Lifetime, Overlap) {
  const Lifetime a{0, 10};
  const Lifetime b{10, 20};
  const Lifetime c{5, 15};
  EXPECT_FALSE(a.overlaps(b));  // half-open: touching is disjoint
  EXPECT_FALSE(b.overlaps(a));
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(c.overlaps(b));
  EXPECT_TRUE(a.overlaps(a));
}

TEST(Design, AddAndQuery) {
  Design design("d");
  const std::size_t a = design.add(ds("a", 16, 8));
  const std::size_t b = design.add(ds("b", 32, 4));
  EXPECT_EQ(design.size(), 2u);
  EXPECT_EQ(design.at(a).name, "a");
  EXPECT_EQ(design.total_bits(), 16 * 8 + 32 * 4);
  EXPECT_FALSE(design.conflicts(a, b));
  design.add_conflict(a, b);
  EXPECT_TRUE(design.conflicts(a, b));
  EXPECT_TRUE(design.conflicts(b, a));
  design.add_conflict(b, a);  // duplicate, no effect
  EXPECT_EQ(design.num_conflicts(), 1u);
}

TEST(Design, SetAllConflicting) {
  Design design;
  for (int i = 0; i < 5; ++i) design.add(ds("s" + std::to_string(i), 8, 8));
  design.set_all_conflicting();
  EXPECT_EQ(design.num_conflicts(), 10u);  // C(5,2)
  for (std::size_t a = 0; a < 5; ++a) {
    for (std::size_t b = a + 1; b < 5; ++b) {
      EXPECT_TRUE(design.conflicts(a, b));
    }
  }
}

TEST(Design, DeriveConflictsFromLifetimes) {
  Design design;
  DataStructure a = ds("a", 8, 8);
  a.lifetime = Lifetime{0, 10};
  DataStructure b = ds("b", 8, 8);
  b.lifetime = Lifetime{10, 20};
  DataStructure c = ds("c", 8, 8);
  c.lifetime = Lifetime{5, 15};
  DataStructure d = ds("d", 8, 8);  // no lifetime: conflicts with all
  design.add(a);
  design.add(b);
  design.add(c);
  design.add(d);
  design.derive_conflicts_from_lifetimes();
  EXPECT_FALSE(design.conflicts(0, 1));  // disjoint
  EXPECT_TRUE(design.conflicts(0, 2));
  EXPECT_TRUE(design.conflicts(1, 2));
  EXPECT_TRUE(design.conflicts(0, 3));
  EXPECT_TRUE(design.conflicts(1, 3));
  EXPECT_TRUE(design.conflicts(2, 3));
}

}  // namespace
}  // namespace gmm::design
