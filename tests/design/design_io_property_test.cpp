// Property-based round-trip testing of the design text format: generate
// random valid designs with support/rng, write -> parse -> compare
// field-by-field.  Covers empty design names (previously renamed
// "unnamed" on the way through), optional read/write footprints,
// lifetime intervals, and all three conflict declarations (explicit
// pairs, all-pairs, lifetime-derived — the latter two round-trip as the
// explicit pair list they expand to).
#include "design/design_io.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "design/design.hpp"
#include "support/rng.hpp"

namespace gmm::design {
namespace {

DataStructure random_structure(support::Rng& rng, int ordinal) {
  DataStructure ds;
  ds.name = "seg" + std::to_string(ordinal) + "_" +
            std::to_string(rng.uniform_int(0, 999));
  ds.depth = rng.uniform_int(1, 1 << 16);
  ds.width = rng.uniform_int(1, 128);
  // 0 means "unknown footprint" and is omitted by the writer; both forms
  // must round-trip.
  if (rng.bernoulli(0.5)) ds.reads = rng.uniform_int(1, 1'000'000);
  if (rng.bernoulli(0.5)) ds.writes = rng.uniform_int(1, 1'000'000);
  if (rng.bernoulli(0.4)) {
    Lifetime lt;
    lt.start = rng.uniform_int(0, 1000);
    lt.end = lt.start + rng.uniform_int(1, 1000);  // parser needs end > start
    ds.lifetime = lt;
  }
  return ds;
}

Design random_design(support::Rng& rng) {
  Design design(rng.bernoulli(0.1)
                    ? ""
                    : "design_" + std::to_string(rng.uniform_int(0, 9999)));
  const std::int64_t segments = rng.uniform_int(0, 12);
  for (std::int64_t i = 0; i < segments; ++i) {
    design.add(random_structure(rng, static_cast<int>(i)));
  }
  if (segments >= 2) {
    const double mode = rng.uniform_real();
    if (mode < 0.3) {
      design.set_all_conflicting();
    } else if (mode < 0.5) {
      design.derive_conflicts_from_lifetimes();
    } else if (mode < 0.9) {
      const std::int64_t pairs = rng.uniform_int(0, 2 * segments);
      for (std::int64_t p = 0; p < pairs; ++p) {
        const std::size_t a = rng.index(static_cast<std::size_t>(segments));
        const std::size_t b = rng.index(static_cast<std::size_t>(segments));
        if (a != b) design.add_conflict(a, b);
      }
    }  // else: no conflicts at all
  }
  return design;
}

void expect_designs_equal(const Design& a, const Design& b,
                          std::uint64_t seed) {
  EXPECT_EQ(a.name(), b.name()) << "seed " << seed;
  ASSERT_EQ(a.size(), b.size()) << "seed " << seed;
  for (std::size_t d = 0; d < a.size(); ++d) {
    const DataStructure& x = a.at(d);
    const DataStructure& y = b.at(d);
    EXPECT_EQ(x.name, y.name) << "seed " << seed;
    EXPECT_EQ(x.depth, y.depth) << "seed " << seed;
    EXPECT_EQ(x.width, y.width) << "seed " << seed;
    EXPECT_EQ(x.reads, y.reads) << "seed " << seed;
    EXPECT_EQ(x.writes, y.writes) << "seed " << seed;
    EXPECT_EQ(x.lifetime, y.lifetime) << "seed " << seed << " segment " << d;
  }
  // Conflicts round-trip as the normalized (a < b, first-mention order)
  // pair list, exactly.
  EXPECT_EQ(a.conflict_pairs(), b.conflict_pairs()) << "seed " << seed;
}

TEST(DesignIoProperty, WriteParseRoundTripsRandomDesigns) {
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    support::Rng rng(seed);
    const Design design = random_design(rng);
    const std::string text = design_to_string(design);
    const DesignParseResult parsed = parse_design_string(text);
    ASSERT_TRUE(parsed.ok)
        << "seed " << seed << ": " << parsed.error << "\n" << text;
    expect_designs_equal(design, parsed.design, seed);
    // Idempotence: a second trip produces byte-identical text.
    EXPECT_EQ(design_to_string(parsed.design), text) << "seed " << seed;
  }
}

TEST(DesignIoProperty, EmptyNameRoundTripsEmpty) {
  Design design("");
  DataStructure ds;
  ds.name = "only";
  ds.depth = 8;
  ds.width = 8;
  design.add(ds);
  const DesignParseResult parsed =
      parse_design_string(design_to_string(design));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_TRUE(parsed.design.name().empty());
  ASSERT_EQ(parsed.design.size(), 1u);
  EXPECT_EQ(parsed.design.at(0).name, "only");
}

TEST(DesignIoProperty, FootprintZeroIsOmittedButPreserved) {
  // reads/writes of 0 mean "unknown"; the writer omits them and the
  // parser must restore exactly 0, never a stray default.
  Design design("fp");
  DataStructure ds;
  ds.name = "s";
  ds.depth = 16;
  ds.width = 4;
  ds.reads = 0;
  ds.writes = 123;
  design.add(ds);
  const std::string text = design_to_string(design);
  EXPECT_EQ(text.find("reads"), std::string::npos) << text;
  const DesignParseResult parsed = parse_design_string(text);
  ASSERT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.design.at(0).reads, 0);
  EXPECT_EQ(parsed.design.at(0).writes, 123);
}

}  // namespace
}  // namespace gmm::design
