// Balanced min-cut conflict-graph partitioning: determinism, balance
// caps (primary and extra dimensions), cut quality on clustered graphs,
// and the degenerate shapes (one part, more parts than structures, empty
// designs) the shard mapper leans on.
#include "design/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "support/rng.hpp"

namespace gmm::design {
namespace {

DataStructure ds(const std::string& name, std::int64_t depth,
                 std::int64_t width, std::int64_t accesses = 0) {
  DataStructure s;
  s.name = name;
  s.depth = depth;
  s.width = width;
  s.reads = accesses;
  s.writes = accesses;
  return s;
}

Design random_design(support::Rng& rng, std::size_t segments,
                     double edge_probability) {
  Design design("d");
  for (std::size_t i = 0; i < segments; ++i) {
    design.add(ds("s" + std::to_string(i), rng.uniform_int(4, 4096),
                  rng.uniform_int(1, 32), rng.uniform_int(1, 100000)));
  }
  for (std::size_t a = 0; a < segments; ++a) {
    for (std::size_t b = a + 1; b < segments; ++b) {
      if (rng.bernoulli(edge_probability)) design.add_conflict(a, b);
    }
  }
  return design;
}

std::int64_t recount_cut(const Design& design,
                         const PartitionResult& result) {
  std::int64_t cut = 0;
  for (const auto& [a, b] : design.conflict_pairs()) {
    if (result.part_of[a] != result.part_of[b]) ++cut;
  }
  return cut;
}

TEST(Partition, SinglePartIsTrivial) {
  Design design("d");
  design.add(ds("a", 64, 8));
  design.add(ds("b", 64, 8));
  design.set_all_conflicting();
  const PartitionResult r = partition_design(design, {.parts = 1});
  EXPECT_EQ(r.part_of, (std::vector<int>{0, 0}));
  EXPECT_EQ(r.cut_edges, 0);
  EXPECT_EQ(r.part_bits[0], 2 * 64 * 8);
}

TEST(Partition, EmptyDesign) {
  const Design design("d");
  const PartitionResult r = partition_design(design, {.parts = 3});
  EXPECT_TRUE(r.part_of.empty());
  EXPECT_EQ(r.part_bits, (std::vector<std::int64_t>{0, 0, 0}));
  EXPECT_EQ(r.cut_edges, 0);
}

TEST(Partition, MorePartsThanStructures) {
  Design design("d");
  design.add(ds("a", 64, 8));
  design.add(ds("b", 64, 8));
  const PartitionResult r = partition_design(design, {.parts = 5});
  // Unconnected structures spread onto distinct parts.
  EXPECT_NE(r.part_of[0], r.part_of[1]);
  EXPECT_EQ(r.cut_edges, 0);
}

TEST(Partition, DeterministicAcrossRepeatedRuns) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    support::Rng rng(seed);
    const Design design = random_design(rng, 24, 0.2);
    const PartitionOptions options{.parts = 4};
    const PartitionResult first = partition_design(design, options);
    const PartitionResult second = partition_design(design, options);
    EXPECT_EQ(first.part_of, second.part_of) << "seed " << seed;
    EXPECT_EQ(first.cut_edges, second.cut_edges) << "seed " << seed;
    EXPECT_EQ(first.cut_traffic, second.cut_traffic) << "seed " << seed;
  }
}

TEST(Partition, ReportedCutMatchesAssignment) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    support::Rng rng(100 + seed);
    const Design design = random_design(rng, 20, 0.3);
    for (const std::size_t parts : {2u, 3u, 4u}) {
      const PartitionResult r = partition_design(design, {.parts = parts});
      EXPECT_EQ(r.cut_edges, recount_cut(design, r))
          << "seed " << seed << " parts " << parts;
      // part_bits must match a recount too.
      std::vector<std::int64_t> bits(parts, 0);
      for (std::size_t d = 0; d < design.size(); ++d) {
        bits[static_cast<std::size_t>(r.part_of[d])] +=
            std::max<std::int64_t>(design.at(d).bits(), 1);
      }
      EXPECT_EQ(r.part_bits, bits) << "seed " << seed << " parts " << parts;
    }
  }
}

TEST(Partition, RespectsUniformBalanceCaps) {
  // 16 equal structures, no conflicts: every part must end up within the
  // (1 + tolerance) / parts share.
  Design design("d");
  for (int i = 0; i < 16; ++i) design.add(ds("s" + std::to_string(i), 64, 8));
  const PartitionResult r = partition_design(
      design, {.parts = 4, .balance_tolerance = 0.15});
  const std::int64_t cap =
      static_cast<std::int64_t>(16 * 64 * 8 / 4 * 1.15) + 1;
  for (const std::int64_t bits : r.part_bits) {
    EXPECT_GT(bits, 0);
    EXPECT_LE(bits, cap);
  }
}

TEST(Partition, CutsAlongClusterBoundary) {
  // Two 5-cliques of hot structures joined by one cold edge: min-cut
  // must put each clique in its own part, cutting only the cold edge.
  Design design("d");
  for (int i = 0; i < 10; ++i) {
    design.add(ds("s" + std::to_string(i), 64, 8, 50000));
  }
  for (std::size_t a = 0; a < 5; ++a) {
    for (std::size_t b = a + 1; b < 5; ++b) {
      design.add_conflict(a, b);
      design.add_conflict(a + 5, b + 5);
    }
  }
  design.add_conflict(4, 5);  // the lone inter-cluster edge
  const PartitionResult r = partition_design(design, {.parts = 2});
  EXPECT_EQ(r.cut_edges, 1);
  for (std::size_t d = 1; d < 5; ++d) {
    EXPECT_EQ(r.part_of[d], r.part_of[0]) << d;
    EXPECT_EQ(r.part_of[d + 5], r.part_of[5]) << d;
  }
  EXPECT_NE(r.part_of[0], r.part_of[5]);
}

TEST(Partition, EdgeTrafficIsTheSmallerEndpoint) {
  Design design("d");
  design.add(ds("hot", 64, 8, 100000));
  design.add(ds("cold", 64, 8, 10));
  design.add_conflict(0, 1);
  EXPECT_EQ(edge_traffic(design, 0, 1), 2 * 10);
  // Structures without footprints fall back to reads = writes = depth.
  Design fallback("f");
  fallback.add(ds("a", 64, 8));
  fallback.add(ds("b", 32, 8));
  EXPECT_EQ(edge_traffic(fallback, 0, 1), 2 * 32);
}

TEST(Partition, ExtraDimensionCapsSpreadScarceConsumers) {
  // Eight structures, each demanding one unit of a scarce resource with
  // per-part capacity two: no part may take more than two, even though
  // bits-balance alone would allow four.
  Design design("d");
  for (int i = 0; i < 8; ++i) design.add(ds("s" + std::to_string(i), 64, 8));
  design.set_all_conflicting();
  PartitionOptions options{.parts = 4};
  // Bits caps deliberately slack: only the scarce dimension may bind.
  options.capacities.assign(4, 1 << 20);
  PartitionDimension scarce;
  scarce.weights.assign(8, 1);
  scarce.capacities.assign(4, 2);
  options.extra_dimensions.push_back(scarce);
  const PartitionResult r = partition_design(design, options);
  std::vector<int> count(4, 0);
  for (const int p : r.part_of) ++count[static_cast<std::size_t>(p)];
  for (const int c : count) EXPECT_LE(c, 2);
}

TEST(Partition, OverflowingStructureStillGetsPlaced) {
  // A structure bigger than every cap must still land somewhere (the
  // per-device solve owns the infeasibility verdict, not the partition).
  Design design("d");
  design.add(ds("huge", 1 << 20, 32));
  design.add(ds("tiny", 16, 8));
  PartitionOptions options{.parts = 2};
  options.capacities = {1024, 1024};
  const PartitionResult r = partition_design(design, options);
  EXPECT_GE(r.part_of[0], 0);
  EXPECT_GE(r.part_of[1], 0);
}

}  // namespace
}  // namespace gmm::design
