#include <gtest/gtest.h>

#include <sstream>

#include "report/ascii_plot.hpp"
#include "report/text_table.hpp"

namespace gmm::report {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"Design", "Time (sec)"});
  table.set_alignment(0, Align::kLeft);
  table.add_row({"point1", "8.1"});
  table.add_row({"point9", "2989.0"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| Design"), std::string::npos);
  EXPECT_NE(out.find("2989.0"), std::string::npos);
  // All lines equally wide.
  std::istringstream lines(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TextTable, CsvEscaping) {
  TextTable table({"name", "value"});
  table.add_row({"plain", "1"});
  table.add_row({"with,comma", "2"});
  table.add_row({"with\"quote", "3"});
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_NE(out.str().find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.str().find("\"with\"\"quote\""), std::string::npos);
}

TEST(AsciiPlot, RendersSeriesAndLegend) {
  Series a{"complete", {8.1, 29.4, 99.3, 518.3, 2989.0}, '*'};
  Series b{"global", {7.8, 25.3, 50.7, 216.4, 489.0}, 'o'};
  std::ostringstream out;
  PlotOptions options;
  options.x_label = "design point";
  options.y_label = "seconds";
  ascii_plot(out, {a, b}, options);
  const std::string text = out.str();
  EXPECT_NE(text.find('*'), std::string::npos);
  EXPECT_NE(text.find('o'), std::string::npos);
  EXPECT_NE(text.find("complete"), std::string::npos);
  EXPECT_NE(text.find("global"), std::string::npos);
  EXPECT_NE(text.find("seconds"), std::string::npos);
}

TEST(AsciiPlot, LogScaleHandlesWideRanges) {
  Series s{"times", {1.0, 10.0, 100.0, 1000.0}, '#'};
  std::ostringstream out;
  PlotOptions options;
  options.log_y = true;
  ascii_plot(out, {s}, options);
  EXPECT_FALSE(out.str().empty());
}

TEST(GnuplotData, ColumnsPerSeries) {
  Series a{"a", {1, 2, 3}, '*'};
  Series b{"b", {4, 5}, 'o'};
  std::ostringstream out;
  write_gnuplot_data(out, {a, b});
  const std::string text = out.str();
  EXPECT_NE(text.find("# x\ta\tb"), std::string::npos);
  EXPECT_NE(text.find("0\t1\t4"), std::string::npos);
  EXPECT_NE(text.find("2\t3\tnan"), std::string::npos);
}

}  // namespace
}  // namespace gmm::report
