#include "workload/table3_suite.hpp"

#include <gtest/gtest.h>

namespace gmm::workload {
namespace {

TEST(Table3Suite, NinePointsInPaperOrder) {
  const auto& points = table3_points();
  ASSERT_EQ(points.size(), 9u);
  // First and last rows exactly as printed in the paper.
  EXPECT_EQ(points.front().segments, 22);
  EXPECT_EQ(points.front().totals.banks, 13);
  EXPECT_EQ(points.front().totals.ports, 25);
  EXPECT_EQ(points.front().totals.configs, 50);
  EXPECT_DOUBLE_EQ(points.front().paper_complete_seconds, 8.1);
  EXPECT_DOUBLE_EQ(points.front().paper_global_seconds, 7.8);
  EXPECT_EQ(points.back().segments, 132);
  EXPECT_EQ(points.back().totals.banks, 180);
  EXPECT_DOUBLE_EQ(points.back().paper_complete_seconds, 2989.0);
  EXPECT_DOUBLE_EQ(points.back().paper_global_seconds, 489.0);
}

TEST(Table3Suite, PointsOrderedByProblemSize) {
  // The paper orders design points by increasing problem size; the
  // complete-approach time grows monotonically along them.
  const auto& points = table3_points();
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].paper_complete_seconds,
              points[i - 1].paper_complete_seconds);
  }
}

TEST(Table3Suite, EveryPointInstantiates) {
  for (const Table3Point& point : table3_points()) {
    const Table3Instance instance = build_instance(point);
    EXPECT_EQ(instance.board.total_banks(), point.totals.banks)
        << "point " << point.index;
    EXPECT_EQ(instance.board.total_ports(), point.totals.ports);
    EXPECT_EQ(instance.board.total_configs(), point.totals.configs);
    EXPECT_EQ(static_cast<std::int64_t>(instance.design.size()),
              point.segments);
  }
}

TEST(Table3Suite, InstancesAreSeedStable) {
  const Table3Instance a = build_instance(table3_points()[2], 77);
  const Table3Instance b = build_instance(table3_points()[2], 77);
  ASSERT_EQ(a.design.size(), b.design.size());
  for (std::size_t i = 0; i < a.design.size(); ++i) {
    EXPECT_EQ(a.design.at(i).depth, b.design.at(i).depth);
    EXPECT_EQ(a.design.at(i).width, b.design.at(i).width);
  }
}

}  // namespace
}  // namespace gmm::workload
