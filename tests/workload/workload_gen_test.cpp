#include "workload/workload_gen.hpp"

#include <gtest/gtest.h>

#include "mapping/pipeline.hpp"

namespace gmm::workload {
namespace {

TEST(BoardFromTotals, HitsRequestedTotalsExactly) {
  const BoardTotals cases[] = {
      {13, 25, 50},   {23, 45, 100},  {45, 77, 150},
      {65, 105, 150}, {180, 265, 375}};
  for (const BoardTotals& totals : cases) {
    const auto board = board_from_totals(totals);
    ASSERT_TRUE(board.has_value())
        << totals.banks << "/" << totals.ports << "/" << totals.configs;
    EXPECT_EQ(board->total_banks(), totals.banks);
    EXPECT_EQ(board->total_ports(), totals.ports);
    EXPECT_EQ(board->total_configs(), totals.configs);
  }
}

TEST(BoardFromTotals, RejectsImpossibleTotals) {
  // More banks than ports is unrealizable (every bank has >= 1 port).
  EXPECT_FALSE(board_from_totals({10, 5, 0}).has_value());
  // Configs not a multiple of 5 cannot come from 5-config ports.
  EXPECT_FALSE(board_from_totals({10, 15, 7}).has_value());
}

TEST(BoardFromTotals, TypesAreValid) {
  const auto board = board_from_totals({45, 77, 150});
  ASSERT_TRUE(board.has_value());
  for (const arch::BankType& t : board->types()) {
    EXPECT_EQ(t.validate(), "") << t.name;
  }
  // The template mixes on-chip and off-chip tiers.
  bool has_onchip = false, has_offchip = false;
  for (const arch::BankType& t : board->types()) {
    (t.on_chip() ? has_onchip : has_offchip) = true;
  }
  EXPECT_TRUE(has_onchip);
  EXPECT_TRUE(has_offchip);
}

TEST(GenerateDesign, ProducesRequestedSegmentCount) {
  const auto board = board_from_totals({23, 45, 100});
  ASSERT_TRUE(board.has_value());
  DesignGenOptions options;
  options.num_segments = 32;
  options.seed = 7;
  const design::Design design = generate_design(*board, options);
  EXPECT_EQ(design.size(), 32u);
  // All-conflicting by default (Table-3 setting).
  EXPECT_EQ(design.num_conflicts(), 32u * 31u / 2u);
}

TEST(GenerateDesign, DeterministicForSeed) {
  const auto board = board_from_totals({23, 45, 100});
  DesignGenOptions options;
  options.num_segments = 16;
  options.seed = 42;
  const design::Design a = generate_design(*board, options);
  const design::Design b = generate_design(*board, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.at(i).depth, b.at(i).depth);
    EXPECT_EQ(a.at(i).width, b.at(i).width);
    EXPECT_EQ(a.at(i).reads, b.at(i).reads);
  }
}

TEST(GenerateDesign, DifferentSeedsDiffer) {
  const auto board = board_from_totals({23, 45, 100});
  DesignGenOptions a_options, b_options;
  a_options.num_segments = b_options.num_segments = 16;
  a_options.seed = 1;
  b_options.seed = 2;
  const design::Design a = generate_design(*board, a_options);
  const design::Design b = generate_design(*board, b_options);
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.at(i).depth == b.at(i).depth && a.at(i).width == b.at(i).width) {
      ++same;
    }
  }
  EXPECT_LT(same, 8);
}

TEST(GenerateDesign, GeneratedDesignsAreMappable) {
  // The utilization targets must leave the pipeline a feasible problem.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto board = board_from_totals({13, 25, 50});
    DesignGenOptions options;
    options.num_segments = 22;
    options.seed = seed;
    const design::Design design = generate_design(*board, options);
    const mapping::PipelineResult r = mapping::map_pipeline(design, *board);
    EXPECT_EQ(r.status, lp::SolveStatus::kOptimal) << "seed " << seed;
    EXPECT_TRUE(r.detailed.success) << r.detailed.failure;
  }
}

TEST(GenerateDesign, LifetimeModeDerivesConflicts) {
  const auto board = board_from_totals({23, 45, 100});
  DesignGenOptions options;
  options.num_segments = 20;
  options.all_conflicting = false;
  const design::Design design = generate_design(*board, options);
  // Random lifetimes virtually never produce an all-conflicting clique.
  EXPECT_LT(design.num_conflicts(), 20u * 19u / 2u);
  for (const design::DataStructure& ds : design.structures()) {
    EXPECT_TRUE(ds.lifetime.has_value());
  }
}

}  // namespace
}  // namespace gmm::workload
