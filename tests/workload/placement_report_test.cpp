#include "report/placement_report.hpp"

#include <gtest/gtest.h>

#include "arch/device_catalog.hpp"
#include "mapping/pipeline.hpp"

namespace gmm::report {
namespace {

TEST(PlacementReport, RendersInstancesAndFragments) {
  const arch::Board board = arch::single_fpga_board("XCV300", 2);
  design::Design design("d");
  design::DataStructure a;
  a.name = "coeffs";
  a.depth = 64;
  a.width = 16;
  design.add(a);
  design::DataStructure b;
  b.name = "frame";
  b.depth = 65536;
  b.width = 8;
  design.add(b);
  design.set_all_conflicting();
  const mapping::PipelineResult r = mapping::map_pipeline(design, board);
  ASSERT_EQ(r.status, lp::SolveStatus::kOptimal);

  const std::string text =
      placement_report_to_string(design, board, r.detailed);
  EXPECT_NE(text.find("coeffs"), std::string::npos);
  EXPECT_NE(text.find("frame"), std::string::npos);
  EXPECT_NE(text.find("XCV300.BlockRAM"), std::string::npos);
  EXPECT_NE(text.find("config"), std::string::npos);
  EXPECT_NE(text.find("ports"), std::string::npos);
}

TEST(PlacementReport, FailedMappingReported) {
  const arch::Board board = arch::single_fpga_board("XCV50", 1);
  design::Design design("d");
  mapping::DetailedMapping failed;
  failed.success = false;
  failed.failure = "synthetic failure";
  const std::string text =
      placement_report_to_string(design, board, failed);
  EXPECT_NE(text.find("FAILED"), std::string::npos);
  EXPECT_NE(text.find("synthetic failure"), std::string::npos);
}

TEST(PlacementReport, SharedBlocksListedOnSameRange) {
  arch::Board board("b");
  board.add_bank_type(arch::on_chip_bank_type(*arch::find_device("XCV50")));
  design::Design design("d");
  for (int i = 0; i < 2; ++i) {
    design::DataStructure s;
    s.name = "phase" + std::to_string(i);
    s.depth = 4096;
    s.width = 1;
    s.lifetime = design::Lifetime{i * 100, i * 100 + 50};
    design.add(s);
  }
  design.derive_conflicts_from_lifetimes();  // disjoint -> can share
  const mapping::PipelineResult r = mapping::map_pipeline(design, board);
  ASSERT_EQ(r.status, lp::SolveStatus::kOptimal);
  const std::string text =
      placement_report_to_string(design, board, r.detailed);
  EXPECT_NE(text.find("phase0"), std::string::npos);
  EXPECT_NE(text.find("phase1"), std::string::npos);
  // Shared storage: single instance line for the one instance used.
  EXPECT_NE(text.find("[0]"), std::string::npos);
  EXPECT_EQ(text.find("[1]"), std::string::npos);
}

}  // namespace
}  // namespace gmm::report
