// Regression tests for the BasisCacheStats derived-rate accessors.
//
// A fresh B&B solve that never pops a node (root-only proof, immediate
// infeasibility, cancellation before the first pop) reports zero pops.
// hit_rate() and pivots_per_pop() must return a finite 0.0 in that case,
// never 0/0 = NaN: the values flow verbatim into the serving stats JSON
// payload, and a NaN there would corrupt the line for every client.
#include "lp/basis.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gmm::lp {
namespace {

TEST(BasisStats, ZeroPopRatesAreFiniteZero) {
  const BasisCacheStats stats;
  EXPECT_EQ(stats.loaded + stats.cold_pops, 0);
  EXPECT_EQ(stats.hit_rate(), 0.0);
  EXPECT_EQ(stats.pivots_per_pop(), 0.0);
  EXPECT_TRUE(std::isfinite(stats.hit_rate()));
  EXPECT_TRUE(std::isfinite(stats.pivots_per_pop()));
}

TEST(BasisStats, StoredWithoutPopsStillZero) {
  // Snapshots can be stored (and evicted) before any pop happens; the
  // denominators are pops, not stores, so the rates must stay 0.0.
  BasisCacheStats stats;
  stats.stored = 12;
  stats.evicted = 3;
  stats.warm_pop_pivots = 0;
  EXPECT_EQ(stats.hit_rate(), 0.0);
  EXPECT_EQ(stats.pivots_per_pop(), 0.0);
}

TEST(BasisStats, RatesMatchHandComputation) {
  BasisCacheStats stats;
  stats.loaded = 3;
  stats.cold_pops = 1;
  stats.warm_pop_pivots = 6;
  stats.cold_pop_pivots = 10;
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.75);
  EXPECT_DOUBLE_EQ(stats.pivots_per_pop(), 4.0);
}

TEST(BasisStats, AccumulateThenRate) {
  // operator+= folds per-solve counters (pipeline retries, portfolio
  // lanes); rates computed on the sum must equal rates on pooled data.
  BasisCacheStats a;
  a.loaded = 2;
  a.cold_pops = 2;
  a.warm_pop_pivots = 4;
  a.cold_pop_pivots = 12;
  BasisCacheStats b;  // zero-pop solve folded in must not perturb rates
  a += b;
  EXPECT_DOUBLE_EQ(a.hit_rate(), 0.5);
  EXPECT_DOUBLE_EQ(a.pivots_per_pop(), 4.0);
  b += a;
  EXPECT_DOUBLE_EQ(b.hit_rate(), 0.5);
}

}  // namespace
}  // namespace gmm::lp
