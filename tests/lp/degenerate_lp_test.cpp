// Anti-cycling regression on known-degenerate instances, for BOTH
// backends.
//
// The covering LP below (min sum x, every pair {i, i+1} must sum to at
// least 1, all data 0/1) has massively tied ratio tests and degenerate
// vertices — the classic food for simplex cycling.  With
// SimplexOptions::stall_threshold = 0 the engines enter Bland's
// smallest-index mode on the FIRST zero-dual-step pivot and stay there
// until a real step, so the solve must still terminate at the optimum;
// with the default threshold the same optimum must be reached.  The
// point of forcing threshold 0 is that the Bland path itself — not just
// the Harris path — is exercised end to end on a degenerate instance.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "lp/lp_backend.hpp"
#include "lp/model.hpp"
#include "lp/standard_form.hpp"

namespace gmm::lp {
namespace {

/// Degenerate covering LP: min sum x_j, x_j in [0,1],
/// x_i + x_{i+1} >= 1 for a ring of n variables.  For even n the
/// optimum is n/2 with many alternative optimal bases (every other
/// vertex at 1), and every ratio test is an exact tie.
Model degenerate_ring_cover(int n) {
  Model model;
  for (int j = 0; j < n; ++j) model.add_variable(0, 1, 1.0);
  for (int i = 0; i < n; ++i) {
    LinExpr expr;
    expr.add(i, 1.0);
    expr.add((i + 1) % n, 1.0);
    model.add_constraint(expr, Sense::kGreaterEqual, 1.0);
  }
  return model;
}

class DegenerateLpTest : public ::testing::TestWithParam<LpEngine> {};

TEST_P(DegenerateLpTest, BlandModeFromFirstStallStillSolvesRingCover) {
  const Model model = degenerate_ring_cover(24);
  const StandardForm sf = StandardForm::build(model);

  SimplexOptions bland_now;
  bland_now.stall_threshold = 0;
  const auto eager = make_lp_backend(GetParam(), sf);
  ASSERT_EQ(eager->solve(bland_now), SolveStatus::kOptimal);

  const auto relaxed = make_lp_backend(GetParam(), sf);
  ASSERT_EQ(relaxed->solve({}), SolveStatus::kOptimal);

  EXPECT_NEAR(eager->objective_value(), 12.0, 1e-7);
  EXPECT_NEAR(relaxed->objective_value(), 12.0, 1e-7);
}

TEST_P(DegenerateLpTest, TightIterationBudgetIsEnoughUnderBland) {
  // A cycling engine would burn the whole iteration budget; Bland's rule
  // bounds the pivot count by the number of bases actually visited.
  const Model model = degenerate_ring_cover(40);
  const StandardForm sf = StandardForm::build(model);
  SimplexOptions options;
  options.stall_threshold = 0;
  options.iteration_limit = 2'000;  // generous for n=40, fatal for a cycle
  const auto engine = make_lp_backend(GetParam(), sf);
  ASSERT_EQ(engine->solve(options), SolveStatus::kOptimal);
  EXPECT_NEAR(engine->objective_value(), 20.0, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(BothBackends, DegenerateLpTest,
                         ::testing::Values(LpEngine::kDense,
                                           LpEngine::kSparse),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace gmm::lp
