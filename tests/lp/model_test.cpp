#include "lp/model.hpp"

#include <gtest/gtest.h>

namespace gmm::lp {
namespace {

TEST(Model, AddVariableAndQuery) {
  Model m;
  const Index x = m.add_variable(0.0, 10.0, 2.5, VarType::kContinuous, "x");
  const Index y = m.add_binary(-1.0, "y");
  EXPECT_EQ(m.num_vars(), 2);
  EXPECT_DOUBLE_EQ(m.var_lb(x), 0.0);
  EXPECT_DOUBLE_EQ(m.var_ub(x), 10.0);
  EXPECT_DOUBLE_EQ(m.obj(x), 2.5);
  EXPECT_EQ(m.var_type(y), VarType::kBinary);
  EXPECT_DOUBLE_EQ(m.var_lb(y), 0.0);
  EXPECT_DOUBLE_EQ(m.var_ub(y), 1.0);
  EXPECT_EQ(m.var_name(x), "x");
}

TEST(Model, RowCanonicalizationMergesDuplicates) {
  Model m;
  const Index x = m.add_variable(0, 1, 0);
  const Index y = m.add_variable(0, 1, 0);
  LinExpr e;
  e.add(y, 1.0);
  e.add(x, 2.0);
  e.add(y, 3.0);   // duplicate of y
  e.add(x, -2.0);  // cancels x entirely
  const Index r = m.add_row(e, 0.0, 8.0);
  const Model::RowView view = m.row(r);
  ASSERT_EQ(view.size, 1u);
  EXPECT_EQ(view.vars[0], y);
  EXPECT_DOUBLE_EQ(view.coefs[0], 4.0);
}

TEST(Model, SenseMapping) {
  Model m;
  const Index x = m.add_variable(0, 10, 1);
  const Index le = m.add_constraint(LinExpr(x, 1.0), Sense::kLessEqual, 5);
  const Index ge = m.add_constraint(LinExpr(x, 1.0), Sense::kGreaterEqual, 2);
  const Index eq = m.add_constraint(LinExpr(x, 1.0), Sense::kEqual, 3);
  EXPECT_EQ(m.row_lb(le), -kInf);
  EXPECT_DOUBLE_EQ(m.row_ub(le), 5.0);
  EXPECT_DOUBLE_EQ(m.row_lb(ge), 2.0);
  EXPECT_EQ(m.row_ub(ge), kInf);
  EXPECT_DOUBLE_EQ(m.row_lb(eq), 3.0);
  EXPECT_DOUBLE_EQ(m.row_ub(eq), 3.0);
}

TEST(Model, ActivityAndObjective) {
  Model m;
  const Index x = m.add_variable(0, 10, 3);
  const Index y = m.add_variable(0, 10, -1);
  LinExpr e;
  e.add(x, 2.0);
  e.add(y, 1.0);
  const Index r = m.add_row(e, -kInf, 100);
  const std::vector<double> sol{4.0, 6.0};
  EXPECT_DOUBLE_EQ(m.row_activity(r, sol), 14.0);
  EXPECT_DOUBLE_EQ(m.objective_value(sol), 6.0);
}

TEST(Model, FeasibilityCheck) {
  Model m;
  const Index x = m.add_variable(0, 1, 0, VarType::kBinary);
  const Index y = m.add_variable(0, 1, 0, VarType::kBinary);
  LinExpr e;
  e.add(x, 1.0);
  e.add(y, 1.0);
  m.add_constraint(e, Sense::kLessEqual, 1);
  EXPECT_TRUE(m.is_feasible({1.0, 0.0}));
  EXPECT_TRUE(m.is_feasible({0.0, 0.0}));
  EXPECT_FALSE(m.is_feasible({1.0, 1.0}));   // row violated
  EXPECT_FALSE(m.is_feasible({0.5, 0.0}));   // fractional binary
  EXPECT_FALSE(m.is_feasible({2.0, 0.0}));   // out of bounds
  EXPECT_FALSE(m.is_feasible({1.0}));        // wrong dimension
}

TEST(Model, HasIntegers) {
  Model m;
  m.add_variable(0, 1, 0);
  EXPECT_FALSE(m.has_integers());
  m.add_binary(0);
  EXPECT_TRUE(m.has_integers());
}

}  // namespace
}  // namespace gmm::lp
