// Property tests for Basis snapshot/load on randomized LPs (300 seeds
// per property):
//
//   1. load_basis(snapshot_basis()) of a solved engine into a fresh one
//      re-solves to the cold objective in (nearly) zero dual pivots —
//      the warm-start contract the branch & bound's basis cache rests on.
//   2. A parent-optimal basis restored under ONE tightened bound (the
//      branch & bound pop path) reaches exactly the cold solve's
//      status and objective.
//   3. A basis snapshot from a DIFFERENT random LP of compatible shape
//      still converges to the right objective: load_basis repairs dual
//      feasibility (flipping wrong-side nonbasic columns, falling back
//      to the logical basis when no repair exists), so a foreign basis
//      can cost pivots, never correctness.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "lp/standard_form.hpp"
#include "support/rng.hpp"

namespace gmm::lp {
namespace {

constexpr int kSeeds = 300;

/// Random bounded LP: every variable carries finite bounds on both
/// sides, so the dual-simplex cold start and the load-time status
/// repair always have a bound to sit on.  Always feasible (the box
/// midpoint satisfies every row by construction) and bounded (box).
Model random_lp(int vars, int rows, std::uint64_t seed) {
  support::Rng rng(seed);
  Model model;
  for (int j = 0; j < vars; ++j) {
    model.add_variable(0, 10, static_cast<double>(rng.uniform_int(-10, 10)));
  }
  for (int i = 0; i < rows; ++i) {
    LinExpr expr;
    double mid = 0;
    for (int j = 0; j < vars; ++j) {
      if (rng.bernoulli(0.4)) {
        const double a = static_cast<double>(rng.uniform_int(-5, 5));
        if (a != 0) {
          expr.add(j, a);
          mid += 5 * a;
        }
      }
    }
    if (expr.empty()) {
      // Keep the row count (and with it the standard-form shape) a pure
      // function of (vars, rows): pad with a guaranteed-slack row.
      expr.add(static_cast<Index>(rng.uniform_int(0, vars - 1)), 1.0);
      mid = 5.0;
    }
    model.add_constraint(expr, Sense::kLessEqual,
                         mid + static_cast<double>(rng.uniform_int(0, 30)));
  }
  return model;
}

struct Dims {
  int vars = 0;
  int rows = 0;
};

Dims random_dims(support::Rng& rng) {
  return {static_cast<int>(rng.uniform_int(2, 14)),
          static_cast<int>(rng.uniform_int(1, 10))};
}

TEST(BasisRoundtripProperty, SnapshotLoadReSolvesToColdObjective) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    support::Rng rng(seed);
    const Dims dims = random_dims(rng);
    const Model model = random_lp(dims.vars, dims.rows, seed * 7919);
    const StandardForm sf = StandardForm::build(model);

    SimplexEngine cold(sf);
    ASSERT_EQ(cold.solve({}), SolveStatus::kOptimal) << "seed " << seed;
    const double cold_obj = cold.objective_value();
    const Basis snapshot = cold.snapshot_basis();

    SimplexEngine warm(sf);
    warm.load_basis(snapshot);
    ASSERT_EQ(warm.solve({}), SolveStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(warm.objective_value(), cold_obj,
                1e-7 * (1.0 + std::abs(cold_obj)))
        << "seed " << seed;
    // An optimal basis restored under unchanged bounds is primal AND
    // dual feasible: the re-solve must not need to pivot.
    EXPECT_EQ(warm.stats().iterations, 0) << "seed " << seed;
  }
}

TEST(BasisRoundtripProperty, ParentBasisUnderBranchBoundMatchesColdSolve) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    support::Rng rng(seed + 1'000'000);
    const Dims dims = random_dims(rng);
    const Model model = random_lp(dims.vars, dims.rows, seed * 104729);
    const StandardForm sf = StandardForm::build(model);

    SimplexEngine parent(sf);
    ASSERT_EQ(parent.solve({}), SolveStatus::kOptimal) << "seed " << seed;
    const Basis snapshot = parent.snapshot_basis();

    // One branching-style bound change on a random structural column.
    const Index j = static_cast<Index>(rng.uniform_int(0, dims.vars - 1));
    const double value = parent.column_value(j);
    const bool down = rng.bernoulli(0.5);
    const double lb = down ? 0.0 : std::min(10.0, std::ceil(value + 0.5));
    const double ub = down ? std::max(0.0, std::floor(value - 0.5)) : 10.0;
    if (lb > ub) continue;  // degenerate draw; branching never produces it

    const auto solve_with_bounds = [&](SimplexEngine& engine,
                                       const Basis* warm) {
      engine.set_column_bounds(j, lb, ub);
      if (warm != nullptr) {
        engine.load_basis(*warm);
      } else {
        engine.refresh_basic_solution();
      }
      return engine.solve({});
    };

    SimplexEngine cold(sf);
    const SolveStatus cold_status = solve_with_bounds(cold, nullptr);
    SimplexEngine warm(sf);
    const SolveStatus warm_status = solve_with_bounds(warm, &snapshot);

    ASSERT_EQ(warm_status, cold_status) << "seed " << seed;
    if (cold_status == SolveStatus::kOptimal) {
      EXPECT_NEAR(warm.objective_value(), cold.objective_value(),
                  1e-7 * (1.0 + std::abs(cold.objective_value())))
          << "seed " << seed;
    } else {
      // The tightened box can make the LP infeasible; both paths must
      // agree on that verdict, not just on objectives.
      ASSERT_EQ(cold_status, SolveStatus::kInfeasible) << "seed " << seed;
    }
  }
}

TEST(BasisRoundtripProperty, ForeignBasisOfCompatibleShapeNeverWrong) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    support::Rng rng(seed + 2'000'000);
    const Dims dims = random_dims(rng);
    // Two DIFFERENT LPs of identical shape (same vars/rows => same
    // standard-form column count, so load_basis accepts the snapshot).
    const Model donor_model = random_lp(dims.vars, dims.rows, seed * 31);
    const Model target_model = random_lp(dims.vars, dims.rows, seed * 37 + 1);
    const StandardForm donor_sf = StandardForm::build(donor_model);
    const StandardForm target_sf = StandardForm::build(target_model);

    SimplexEngine donor(donor_sf);
    ASSERT_EQ(donor.solve({}), SolveStatus::kOptimal) << "seed " << seed;
    const Basis foreign = donor.snapshot_basis();

    SimplexEngine cold(target_sf);
    ASSERT_EQ(cold.solve({}), SolveStatus::kOptimal) << "seed " << seed;
    const double cold_obj = cold.objective_value();

    SimplexEngine warm(target_sf);
    warm.load_basis(foreign);
    SolveStatus status = warm.solve({});
    if (status != SolveStatus::kOptimal) {
      // Graceful degradation: a foreign basis may be numerically hopeless
      // (singular beyond repair); the engine must still recover through
      // the same cold restart the branch & bound uses.
      warm.reset_to_logical_basis();
      status = warm.solve({});
    }
    ASSERT_EQ(status, SolveStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(warm.objective_value(), cold_obj,
                1e-7 * (1.0 + std::abs(cold_obj)))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace gmm::lp
