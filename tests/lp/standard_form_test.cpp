#include "lp/standard_form.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lp/solver.hpp"
#include "support/rng.hpp"

namespace gmm::lp {
namespace {

TEST(StandardForm, BuildsCscAndLogicalBounds) {
  Model m;
  const Index x = m.add_variable(0, 5, 1.0);
  const Index y = m.add_variable(-1, 1, -2.0);
  LinExpr e;
  e.add(x, 2.0);
  e.add(y, -3.0);
  m.add_row(e, -4.0, 8.0);
  const StandardForm sf = StandardForm::build(m);
  EXPECT_EQ(sf.num_rows, 1);
  EXPECT_EQ(sf.num_structural, 2);
  EXPECT_EQ(sf.num_cols(), 3);
  EXPECT_TRUE(sf.is_logical(2));
  EXPECT_EQ(sf.logical_row(2), 0);
  // Structural bounds/costs pass through unscaled.
  EXPECT_DOUBLE_EQ(sf.lb[x], 0.0);
  EXPECT_DOUBLE_EQ(sf.ub[x], 5.0);
  EXPECT_DOUBLE_EQ(sf.cost[y], -2.0);
}

TEST(StandardForm, RowEquilibrationIsPow2AndBoundsConsistent) {
  // Row with max |coef| = 1e6 -> scale is a power of two near 1e-6, and
  // the logical bounds are the negated row bounds times the same scale.
  Model m;
  const Index x = m.add_variable(0, 1, 0.0);
  m.add_row(LinExpr(x, 1048576.0), 0.0, 2097152.0);
  const StandardForm sf = StandardForm::build(m);
  const double scaled = sf.value[0];
  EXPECT_NEAR(std::abs(scaled), 1.0, 0.5);  // equilibrated near unit
  const double scale = scaled / 1048576.0;
  int exponent = 0;
  const double mantissa = std::frexp(scale, &exponent);
  EXPECT_TRUE(mantissa == 0.5 || mantissa == -0.5);  // exact power of two
  EXPECT_DOUBLE_EQ(sf.lb[sf.num_structural], -2097152.0 * scale);
  EXPECT_DOUBLE_EQ(sf.ub[sf.num_structural], -0.0 * scale);
}

TEST(StandardForm, InfiniteRowBoundsSurviveScaling) {
  Model m;
  const Index x = m.add_variable(0, 1, 0.0);
  m.add_constraint(LinExpr(x, 1e6), Sense::kLessEqual, 5e5);
  const StandardForm sf = StandardForm::build(m);
  EXPECT_EQ(sf.ub[sf.num_structural], kInf);   // row lb was -inf
  EXPECT_LT(sf.lb[sf.num_structural], 0.0);    // scaled -5e5
  EXPECT_TRUE(std::isfinite(sf.lb[sf.num_structural]));
}

TEST(StandardForm, BadlyScaledLpSolvesCorrectly) {
  // Mixed 1e-3 .. 1e6 coefficients; the optimum is analytic.
  // min -x - y  s.t. 1e6 x + 1e6 y <= 1.5e6, 0.001 x <= 0.001,
  // x,y in [0,1]: optimum x=0.5? no: x<=1 from row2, x+y <= 1.5
  // -> x=1, y=0.5, objective -1.5.
  Model m;
  const Index x = m.add_variable(0, 1, -1.0);
  const Index y = m.add_variable(0, 1, -1.0);
  LinExpr big;
  big.add(x, 1e6);
  big.add(y, 1e6);
  m.add_constraint(big, Sense::kLessEqual, 1.5e6);
  m.add_constraint(LinExpr(x, 1e-3), Sense::kLessEqual, 1e-3);
  const LpResult r = solve_lp(m, {.simplex = {}, .use_presolve = false});
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -1.5, 1e-7);
}

TEST(StandardForm, RandomScaledLpsMatchUnscaledEquivalents) {
  // Scaling rows of a model by arbitrary positive factors must not change
  // the optimum (the solver's internal equilibration handles either).
  support::Rng rng(321);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 10));
    Model plain, scaled;
    for (int j = 0; j < n; ++j) {
      const double lb = 0, ub = rng.uniform_int(1, 5);
      const double c = static_cast<double>(rng.uniform_int(-5, 5));
      plain.add_variable(lb, ub, c);
      scaled.add_variable(lb, ub, c);
    }
    for (int i = 0; i < 6; ++i) {
      LinExpr e_plain, e_scaled;
      double mid = 0;
      const double factor = std::pow(10.0, rng.uniform_int(-3, 6));
      for (int j = 0; j < n; ++j) {
        if (!rng.bernoulli(0.5)) continue;
        const double a = static_cast<double>(rng.uniform_int(1, 9));
        e_plain.add(j, a);
        e_scaled.add(j, a * factor);
        mid += a * 2.5;
      }
      if (e_plain.empty()) continue;
      plain.add_constraint(e_plain, Sense::kLessEqual, mid);
      scaled.add_constraint(e_scaled, Sense::kLessEqual, mid * factor);
    }
    const LpResult a = solve_lp(plain);
    const LpResult b = solve_lp(scaled);
    ASSERT_EQ(a.status, SolveStatus::kOptimal);
    ASSERT_EQ(b.status, SolveStatus::kOptimal);
    EXPECT_NEAR(a.objective, b.objective,
                1e-6 * std::max(1.0, std::abs(a.objective)))
        << "trial " << trial;
  }
}

TEST(Simplex, IterationLimitReported) {
  support::Rng rng(99);
  Model m;
  const int n = 40;
  for (int j = 0; j < n; ++j) {
    m.add_variable(0, 10, static_cast<double>(rng.uniform_int(-9, 9)));
  }
  for (int i = 0; i < 30; ++i) {
    LinExpr e;
    double mid = 0;
    for (int j = 0; j < n; ++j) {
      if (rng.bernoulli(0.4)) {
        const double a = static_cast<double>(rng.uniform_int(-4, 4));
        e.add(j, a);
        mid += 5 * a;
      }
    }
    if (!e.empty()) m.add_constraint(e, Sense::kGreaterEqual, mid - 10);
  }
  LpOptions options;
  options.simplex.iteration_limit = 1;  // absurdly small
  options.use_presolve = false;
  const LpResult r = solve_lp(m, options);
  EXPECT_TRUE(r.status == SolveStatus::kIterationLimit ||
              r.status == SolveStatus::kOptimal);  // trivially optimal ok
}

TEST(Simplex, FixedVariablesRespected) {
  Model m;
  const Index x = m.add_variable(3, 3, -10.0);  // fixed, attractive cost
  const Index y = m.add_variable(0, 10, 1.0);
  LinExpr e;
  e.add(x, 1.0);
  e.add(y, 1.0);
  m.add_constraint(e, Sense::kGreaterEqual, 5.0);
  const LpResult r = solve_lp(m, {.simplex = {}, .use_presolve = false});
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r.x[x], 3.0);
  EXPECT_NEAR(r.x[y], 2.0, 1e-8);
}

}  // namespace
}  // namespace gmm::lp
