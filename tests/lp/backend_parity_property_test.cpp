// Differential property tests between the two LpBackend implementations
// (300 seeds per property): the dense tableau engine is the oracle, the
// sparse revised simplex must agree.
//
//   1. Random bounded LPs — identical status, and identical optimal
//      objectives to tolerance.  The generator deliberately produces
//      DEGENERATE instances (rows tight at the optimum with ties) and
//      REDUNDANT rows (duplicated constraints, which make the basis
//      matrix rank-deficient enough to exercise singular-basis repair).
//   2. Possibly-infeasible instances (a random equality pair can
//      contradict) — the two backends must agree on kOptimal vs
//      kInfeasible, and on the objective when optimal.
//   3. Cross-backend basis portability: a snapshot taken from one
//      backend loads into the other and re-solves to the same optimum —
//      the Basis is pure status, so the warm-start cache can be shared
//      across engines.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "lp/lp_backend.hpp"
#include "lp/model.hpp"
#include "lp/standard_form.hpp"
#include "support/rng.hpp"

namespace gmm::lp {
namespace {

constexpr int kSeeds = 300;

/// Random bounded LP with adversarial structure: integer data (exact
/// ties), rows tight at the box midpoint with probability 1/3 (primal
/// degeneracy), and each row duplicated with probability 1/5 (redundant
/// rows -> dependent basis columns).  Always feasible and bounded.
Model random_lp(int vars, int rows, std::uint64_t seed) {
  support::Rng rng(seed);
  Model model;
  for (int j = 0; j < vars; ++j) {
    model.add_variable(0, 10, static_cast<double>(rng.uniform_int(-10, 10)));
  }
  for (int i = 0; i < rows; ++i) {
    LinExpr expr;
    double mid = 0;
    for (int j = 0; j < vars; ++j) {
      if (rng.bernoulli(0.4)) {
        const double a = static_cast<double>(rng.uniform_int(-5, 5));
        if (a != 0) {
          expr.add(j, a);
          mid += 5 * a;
        }
      }
    }
    if (expr.empty()) {
      expr.add(static_cast<Index>(rng.uniform_int(0, vars - 1)), 1.0);
      mid = 5.0;
    }
    const double slack =
        rng.bernoulli(1.0 / 3.0)
            ? 0.0  // tight at the midpoint: degenerate vertex candidates
            : static_cast<double>(rng.uniform_int(1, 30));
    model.add_constraint(expr, Sense::kLessEqual, mid + slack);
    if (rng.bernoulli(0.2)) {
      model.add_constraint(expr, Sense::kLessEqual, mid + slack);  // redundant
    }
  }
  return model;
}

/// Like random_lp but with a pair of equality rows over the same
/// expression whose right-hand sides differ with probability 1/2 —
/// an exactly-contradictory (infeasible) system when they do.
Model random_maybe_infeasible_lp(int vars, std::uint64_t seed) {
  support::Rng rng(seed);
  Model model = random_lp(vars, static_cast<int>(rng.uniform_int(1, 6)),
                          seed ^ 0x9e3779b97f4a7c15ull);
  LinExpr expr;
  for (int j = 0; j < vars; ++j) {
    expr.add(j, static_cast<double>(rng.uniform_int(1, 3)));
  }
  const double rhs = static_cast<double>(rng.uniform_int(1, 20 * vars));
  model.add_constraint(expr, Sense::kEqual, rhs);
  const double rhs2 = rng.bernoulli(0.5)
                          ? rhs
                          : rhs + static_cast<double>(rng.uniform_int(1, 5));
  model.add_constraint(expr, Sense::kEqual, rhs2);
  return model;
}

struct Dims {
  int vars = 0;
  int rows = 0;
};

Dims random_dims(support::Rng& rng) {
  return {static_cast<int>(rng.uniform_int(2, 14)),
          static_cast<int>(rng.uniform_int(1, 10))};
}

TEST(BackendParityProperty, RandomLpsAgreeOnStatusAndObjective) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    support::Rng rng(seed);
    const Dims dims = random_dims(rng);
    const Model model = random_lp(dims.vars, dims.rows, seed * 7919);
    const StandardForm sf = StandardForm::build(model);

    const auto dense = make_lp_backend(LpEngine::kDense, sf);
    const auto sparse = make_lp_backend(LpEngine::kSparse, sf);
    const SolveStatus ds = dense->solve({});
    const SolveStatus ss = sparse->solve({});
    ASSERT_EQ(ds, SolveStatus::kOptimal) << "seed " << seed;
    ASSERT_EQ(ss, SolveStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(sparse->objective_value(), dense->objective_value(),
                1e-6 * (1.0 + std::abs(dense->objective_value())))
        << "seed " << seed;
  }
}

TEST(BackendParityProperty, InfeasibleInstancesAgree) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    support::Rng rng(seed + 2'000'000);
    const int vars = static_cast<int>(rng.uniform_int(2, 10));
    const Model model = random_maybe_infeasible_lp(vars, seed * 104729);
    const StandardForm sf = StandardForm::build(model);

    const auto dense = make_lp_backend(LpEngine::kDense, sf);
    const auto sparse = make_lp_backend(LpEngine::kSparse, sf);
    const SolveStatus ds = dense->solve({});
    const SolveStatus ss = sparse->solve({});
    EXPECT_EQ(ds, ss) << "seed " << seed;
    if (ds == SolveStatus::kOptimal && ss == SolveStatus::kOptimal) {
      EXPECT_NEAR(sparse->objective_value(), dense->objective_value(),
                  1e-6 * (1.0 + std::abs(dense->objective_value())))
          << "seed " << seed;
    }
  }
}

TEST(BackendParityProperty, BasesPortAcrossBackends) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    support::Rng rng(seed + 4'000'000);
    const Dims dims = random_dims(rng);
    const Model model = random_lp(dims.vars, dims.rows, seed * 15485863);
    const StandardForm sf = StandardForm::build(model);

    const auto from =
        make_lp_backend(seed % 2 ? LpEngine::kDense : LpEngine::kSparse, sf);
    const auto to =
        make_lp_backend(seed % 2 ? LpEngine::kSparse : LpEngine::kDense, sf);
    ASSERT_EQ(from->solve({}), SolveStatus::kOptimal) << "seed " << seed;
    to->load_basis(from->snapshot_basis());
    ASSERT_EQ(to->solve({}), SolveStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(to->objective_value(), from->objective_value(),
                1e-7 * (1.0 + std::abs(from->objective_value())))
        << "seed " << seed;
    // An optimal basis under unchanged bounds is primal and dual
    // feasible in either engine: no pivots needed on the receiving side.
    EXPECT_EQ(to->stats().iterations, 0) << "seed " << seed;
  }
}

TEST(BackendParityProperty, BranchStyleBoundChangesAgreeAfterWarmRestart) {
  // The branch & bound hot path: solve, snapshot, tighten one bound,
  // refresh, re-solve warm.  Both backends must land on the same
  // objective (or both detect infeasibility of the tightened child).
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    support::Rng rng(seed + 6'000'000);
    const Dims dims = random_dims(rng);
    const Model model = random_lp(dims.vars, dims.rows, seed * 32452843);
    const StandardForm sf = StandardForm::build(model);

    const auto dense = make_lp_backend(LpEngine::kDense, sf);
    const auto sparse = make_lp_backend(LpEngine::kSparse, sf);
    ASSERT_EQ(dense->solve({}), SolveStatus::kOptimal) << "seed " << seed;
    ASSERT_EQ(sparse->solve({}), SolveStatus::kOptimal) << "seed " << seed;

    const Index j = static_cast<Index>(rng.uniform_int(0, dims.vars - 1));
    const bool up = rng.bernoulli(0.5);
    const double lb = up ? 6.0 : 0.0;
    const double ub = up ? 10.0 : 4.0;
    dense->set_column_bounds(j, lb, ub);
    sparse->set_column_bounds(j, lb, ub);
    dense->refresh_basic_solution();
    sparse->refresh_basic_solution();
    const SolveStatus ds = dense->solve({});
    const SolveStatus ss = sparse->solve({});
    EXPECT_EQ(ds, ss) << "seed " << seed;
    if (ds == SolveStatus::kOptimal && ss == SolveStatus::kOptimal) {
      EXPECT_NEAR(sparse->objective_value(), dense->objective_value(),
                  1e-6 * (1.0 + std::abs(dense->objective_value())))
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace gmm::lp
