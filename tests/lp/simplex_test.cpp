#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "lp/solver.hpp"
#include "support/rng.hpp"

namespace gmm::lp {
namespace {

TEST(Simplex, UnconstrainedBoundsOnly) {
  // min -x with x in [0,5]: optimum x=5.  Zero rows exercises the m=0 path.
  Model m;
  m.add_variable(0, 5, -1.0);
  const LpResult r = solve_lp(m, {.simplex = {}, .use_presolve = false});
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r.objective, -5.0);
  EXPECT_DOUBLE_EQ(r.x[0], 5.0);
}

TEST(Simplex, SingleConstraint) {
  // min x s.t. x >= 3, x in [0,10].
  Model m;
  const Index x = m.add_variable(0, 10, 1.0);
  m.add_constraint(LinExpr(x, 1.0), Sense::kGreaterEqual, 3);
  const LpResult r = solve_lp(m, {.simplex = {}, .use_presolve = false});
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-9);
  EXPECT_NEAR(r.x[0], 3.0, 1e-9);
}

TEST(Simplex, ClassicTwoVariable) {
  // max 3x + 4y s.t. x + 2y <= 14, 3x - y >= 0, x - y <= 2
  // => optimum at (6, 4) with value 34.
  Model m;
  const Index x = m.add_variable(0, kInf, -3.0);
  const Index y = m.add_variable(0, kInf, -4.0);
  // Note: -4y cost with infinite upper bound would break the dual start,
  // so give generous finite bounds (they do not bind at the optimum).
  m.set_var_bounds(x, 0, 1000);
  m.set_var_bounds(y, 0, 1000);
  LinExpr c1;
  c1.add(x, 1.0);
  c1.add(y, 2.0);
  m.add_constraint(c1, Sense::kLessEqual, 14);
  LinExpr c2;
  c2.add(x, 3.0);
  c2.add(y, -1.0);
  m.add_constraint(c2, Sense::kGreaterEqual, 0);
  LinExpr c3;
  c3.add(x, 1.0);
  c3.add(y, -1.0);
  m.add_constraint(c3, Sense::kLessEqual, 2);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -34.0, 1e-7);
  EXPECT_NEAR(r.x[x], 6.0, 1e-7);
  EXPECT_NEAR(r.x[y], 4.0, 1e-7);
}

TEST(Simplex, EqualityConstraint) {
  // min x s.t. x + y = 10, x in [0,10], y in [0,4] => x = 6.
  Model m;
  const Index x = m.add_variable(0, 10, 1.0);
  const Index y = m.add_variable(0, 4, 0.0);
  LinExpr e;
  e.add(x, 1.0);
  e.add(y, 1.0);
  m.add_constraint(e, Sense::kEqual, 10);
  const LpResult r = solve_lp(m, {.simplex = {}, .use_presolve = false});
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 6.0, 1e-8);
  EXPECT_NEAR(r.x[x], 6.0, 1e-8);
  EXPECT_NEAR(r.x[y], 4.0, 1e-8);
}

TEST(Simplex, InfeasibleByConflictingRows) {
  Model m;
  const Index x = m.add_variable(0, 10, 1.0);
  m.add_constraint(LinExpr(x, 1.0), Sense::kGreaterEqual, 5);
  m.add_constraint(LinExpr(x, 1.0), Sense::kLessEqual, 3);
  const LpResult no_presolve =
      solve_lp(m, {.simplex = {}, .use_presolve = false});
  EXPECT_EQ(no_presolve.status, SolveStatus::kInfeasible);
  const LpResult with_presolve = solve_lp(m);
  EXPECT_EQ(with_presolve.status, SolveStatus::kInfeasible);
}

TEST(Simplex, InfeasibleMultiVariable) {
  // x + y >= 10 with x,y in [0,4]: max activity 8.
  Model m;
  const Index x = m.add_variable(0, 4, 1.0);
  const Index y = m.add_variable(0, 4, 1.0);
  LinExpr e;
  e.add(x, 1.0);
  e.add(y, 1.0);
  m.add_constraint(e, Sense::kGreaterEqual, 10);
  const LpResult r = solve_lp(m, {.simplex = {}, .use_presolve = false});
  EXPECT_EQ(r.status, SolveStatus::kInfeasible);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x + y s.t. x + y >= -3, x,y in [-5,5] => objective -3.
  Model m;
  const Index x = m.add_variable(-5, 5, 1.0);
  const Index y = m.add_variable(-5, 5, 1.0);
  LinExpr e;
  e.add(x, 1.0);
  e.add(y, 1.0);
  m.add_constraint(e, Sense::kGreaterEqual, -3);
  const LpResult r = solve_lp(m, {.simplex = {}, .use_presolve = false});
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, -3.0, 1e-8);
}

TEST(Simplex, DegenerateVertexStillSolves) {
  // Several constraints meet at the optimum (0,0) redundantly.
  Model m;
  const Index x = m.add_variable(0, 10, 1.0);
  const Index y = m.add_variable(0, 10, 1.0);
  for (int i = 1; i <= 5; ++i) {
    LinExpr e;
    e.add(x, static_cast<double>(i));
    e.add(y, 1.0);
    m.add_constraint(e, Sense::kGreaterEqual, 0);
  }
  const LpResult r = solve_lp(m, {.simplex = {}, .use_presolve = false});
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-9);
}

// ---- property test: fractional knapsack has a closed-form optimum -----

double greedy_fractional_knapsack(const std::vector<double>& value,
                                  const std::vector<double>& weight,
                                  double capacity) {
  std::vector<std::size_t> order(value.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return value[a] / weight[a] > value[b] / weight[b];
  });
  double total = 0.0;
  for (const std::size_t i : order) {
    const double take = std::min(1.0, capacity / weight[i]);
    total += take * value[i];
    capacity -= take * weight[i];
    if (capacity <= 0) break;
  }
  return total;
}

class FractionalKnapsackTest : public ::testing::TestWithParam<int> {};

TEST_P(FractionalKnapsackTest, MatchesGreedyOptimum) {
  support::Rng rng(1000 + GetParam());
  const int n = static_cast<int>(rng.uniform_int(3, 40));
  std::vector<double> value(n), weight(n);
  double total_weight = 0;
  for (int i = 0; i < n; ++i) {
    value[i] = static_cast<double>(rng.uniform_int(1, 100));
    weight[i] = static_cast<double>(rng.uniform_int(1, 50));
    total_weight += weight[i];
  }
  const double capacity = total_weight * rng.uniform_real() * 0.8 + 1.0;

  Model m;
  LinExpr wsum;
  for (int i = 0; i < n; ++i) {
    const Index xi = m.add_variable(0, 1, -value[i]);
    wsum.add(xi, weight[i]);
  }
  m.add_constraint(wsum, Sense::kLessEqual, capacity);
  const LpResult r = solve_lp(m, {.simplex = {}, .use_presolve = false});
  ASSERT_EQ(r.status, SolveStatus::kOptimal);
  const double expected = greedy_fractional_knapsack(value, weight, capacity);
  EXPECT_NEAR(-r.objective, expected, 1e-6 * std::max(1.0, expected));
}

INSTANTIATE_TEST_SUITE_P(Sweep, FractionalKnapsackTest,
                         ::testing::Range(0, 25));

// ---- property test: random feasible LPs satisfy optimality conditions --

class RandomLpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpTest, OptimalSolutionIsFeasibleAndObjectiveConsistent) {
  support::Rng rng(77 + GetParam());
  const int n = static_cast<int>(rng.uniform_int(2, 25));
  const int rows = static_cast<int>(rng.uniform_int(1, 20));
  Model m;
  for (int j = 0; j < n; ++j) {
    const double lb = static_cast<double>(rng.uniform_int(-5, 0));
    const double ub = lb + static_cast<double>(rng.uniform_int(1, 10));
    const double c = static_cast<double>(rng.uniform_int(-10, 10));
    m.add_variable(lb, ub, c);
  }
  // Rows are built to be feasible at the all-zero-ish midpoint: activity
  // range always contains the midpoint activity.
  std::vector<double> mid(n);
  for (int j = 0; j < n; ++j) mid[j] = (m.var_lb(j) + m.var_ub(j)) / 2;
  for (int i = 0; i < rows; ++i) {
    LinExpr e;
    double mid_activity = 0;
    for (int j = 0; j < n; ++j) {
      if (rng.bernoulli(0.4)) {
        const double a = static_cast<double>(rng.uniform_int(-5, 5));
        if (a != 0) {
          e.add(j, a);
          mid_activity += a * mid[j];
        }
      }
    }
    if (e.empty()) continue;
    const double slackness = static_cast<double>(rng.uniform_int(0, 20));
    if (rng.bernoulli(0.5)) {
      m.add_constraint(e, Sense::kLessEqual, mid_activity + slackness);
    } else {
      m.add_constraint(e, Sense::kGreaterEqual, mid_activity - slackness);
    }
  }
  const LpResult r = solve_lp(m, {.simplex = {}, .use_presolve = false});
  ASSERT_EQ(r.status, SolveStatus::kOptimal) << "seed " << GetParam();
  // The reported solution must be primal feasible and match the objective.
  Model relaxed(m);
  EXPECT_TRUE(relaxed.is_feasible(r.x, 1e-5));
  EXPECT_NEAR(relaxed.objective_value(r.x), r.objective,
              1e-6 * std::max(1.0, std::abs(r.objective)));
  // The midpoint is feasible by construction, so optimum <= its objective.
  EXPECT_LE(r.objective, relaxed.objective_value(mid) + 1e-6);
  // Presolve must not change the optimum.
  const LpResult rp = solve_lp(m);
  ASSERT_EQ(rp.status, SolveStatus::kOptimal);
  EXPECT_NEAR(rp.objective, r.objective,
              1e-5 * std::max(1.0, std::abs(r.objective)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomLpTest, ::testing::Range(0, 40));

TEST(Simplex, BasisSnapshotRoundTrip) {
  Model m;
  const Index x = m.add_variable(0, 10, 1.0);
  const Index y = m.add_variable(0, 4, 0.0);
  LinExpr e;
  e.add(x, 1.0);
  e.add(y, 1.0);
  m.add_constraint(e, Sense::kEqual, 10);
  const StandardForm sf = StandardForm::build(m);
  SimplexEngine engine(sf);
  ASSERT_EQ(engine.solve({}), SolveStatus::kOptimal);
  const double obj = engine.objective_value();
  const Basis basis = engine.snapshot_basis();

  SimplexEngine other(sf);
  other.load_basis(basis);
  ASSERT_EQ(other.solve({}), SolveStatus::kOptimal);
  EXPECT_NEAR(other.objective_value(), obj, 1e-9);
  // A warm start from the optimal basis needs no pivots.
  EXPECT_EQ(other.stats().iterations, 0);
}

TEST(Simplex, BoundChangeWarmRestart) {
  // Solve, tighten a bound, re-solve warm: must match a cold solve.
  Model m;
  const Index x = m.add_variable(0, 10, -2.0);
  const Index y = m.add_variable(0, 10, -1.0);
  LinExpr e;
  e.add(x, 1.0);
  e.add(y, 1.0);
  m.add_constraint(e, Sense::kLessEqual, 12);
  const StandardForm sf = StandardForm::build(m);
  SimplexEngine engine(sf);
  ASSERT_EQ(engine.solve({}), SolveStatus::kOptimal);
  EXPECT_NEAR(engine.objective_value(), -22.0, 1e-9);  // x=10, y=2

  engine.set_column_bounds(x, 0, 4);  // force x <= 4
  engine.refresh_basic_solution();
  ASSERT_EQ(engine.solve({}), SolveStatus::kOptimal);
  EXPECT_NEAR(engine.objective_value(), -16.0, 1e-9);  // x=4, y=8

  Model m2;
  m2.add_variable(0, 4, -2.0);
  m2.add_variable(0, 10, -1.0);
  LinExpr e2;
  e2.add(0, 1.0);
  e2.add(1, 1.0);
  m2.add_constraint(e2, Sense::kLessEqual, 12);
  const LpResult cold = solve_lp(m2, {.simplex = {}, .use_presolve = false});
  EXPECT_NEAR(cold.objective, -16.0, 1e-9);
}

}  // namespace
}  // namespace gmm::lp
