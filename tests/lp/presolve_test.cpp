#include "lp/presolve.hpp"

#include <gtest/gtest.h>

namespace gmm::lp {
namespace {

TEST(Presolve, DetectsCrossedVariableBounds) {
  Model m;
  m.add_variable(0, 1, 0, VarType::kInteger);
  m.set_var_bounds(0, 0.4, 0.6);  // no integer inside
  const PresolveResult r = presolve(m);
  EXPECT_TRUE(r.infeasible);
}

TEST(Presolve, RoundsIntegerBounds) {
  Model m;
  m.add_variable(0.3, 2.7, 1.0, VarType::kInteger);
  const PresolveResult r = presolve(m);
  ASSERT_FALSE(r.infeasible);
  ASSERT_EQ(r.reduced.num_vars(), 1);
  EXPECT_DOUBLE_EQ(r.reduced.var_lb(0), 1.0);
  EXPECT_DOUBLE_EQ(r.reduced.var_ub(0), 2.0);
}

TEST(Presolve, FixedVariableSubstitution) {
  Model m;
  const Index x = m.add_variable(3, 3, 2.0);  // fixed at 3
  const Index y = m.add_variable(0, 10, 1.0);
  LinExpr e;
  e.add(x, 1.0);
  e.add(y, 1.0);
  m.add_constraint(e, Sense::kLessEqual, 8);  // becomes y <= 5
  const PresolveResult r = presolve(m);
  ASSERT_FALSE(r.infeasible);
  EXPECT_EQ(r.vars_fixed, 1);
  EXPECT_DOUBLE_EQ(r.objective_offset, 6.0);
  // Row becomes a singleton on y, which folds into y's bounds.
  EXPECT_EQ(r.reduced.num_rows(), 0);
  ASSERT_EQ(r.reduced.num_vars(), 1);
  EXPECT_DOUBLE_EQ(r.reduced.var_ub(0), 5.0);
  // Postsolve restores the fixed variable.
  const std::vector<double> x_full = postsolve(r, {4.0});
  ASSERT_EQ(x_full.size(), 2u);
  EXPECT_DOUBLE_EQ(x_full[0], 3.0);
  EXPECT_DOUBLE_EQ(x_full[1], 4.0);
}

TEST(Presolve, RemovesRedundantRow) {
  Model m;
  const Index x = m.add_variable(0, 1, 0);
  m.add_constraint(LinExpr(x, 1.0), Sense::kLessEqual, 5);  // always true
  const PresolveResult r = presolve(m);
  ASSERT_FALSE(r.infeasible);
  EXPECT_EQ(r.reduced.num_rows(), 0);
  EXPECT_EQ(r.rows_removed, 1);
}

TEST(Presolve, DetectsInfeasibleRow) {
  Model m;
  const Index x = m.add_variable(0, 1, 0);
  const Index y = m.add_variable(0, 1, 0);
  LinExpr e;
  e.add(x, 1.0);
  e.add(y, 1.0);
  m.add_constraint(e, Sense::kGreaterEqual, 3);  // max activity is 2
  const PresolveResult r = presolve(m);
  EXPECT_TRUE(r.infeasible);
}

TEST(Presolve, SingletonRowTightensAndCascades) {
  Model m;
  const Index x = m.add_variable(0, 10, 1.0);
  const Index y = m.add_variable(0, 10, 1.0);
  m.add_constraint(LinExpr(x, 2.0), Sense::kEqual, 6);  // x = 3
  LinExpr e;
  e.add(x, 1.0);
  e.add(y, 1.0);
  m.add_constraint(e, Sense::kLessEqual, 4);  // then y <= 1
  const PresolveResult r = presolve(m);
  ASSERT_FALSE(r.infeasible);
  EXPECT_EQ(r.vars_fixed, 1);             // x
  EXPECT_EQ(r.reduced.num_rows(), 0);     // both rows folded away
  ASSERT_EQ(r.reduced.num_vars(), 1);     // y remains
  EXPECT_DOUBLE_EQ(r.reduced.var_ub(0), 1.0);
  EXPECT_DOUBLE_EQ(r.objective_offset, 3.0);
}

TEST(Presolve, NegativeCoefficientSingleton) {
  Model m;
  m.add_variable(-10, 10, 1.0);
  m.add_constraint(LinExpr(0, -2.0), Sense::kLessEqual, 4);  // x >= -2
  const PresolveResult r = presolve(m);
  ASSERT_FALSE(r.infeasible);
  ASSERT_EQ(r.reduced.num_vars(), 1);
  EXPECT_DOUBLE_EQ(r.reduced.var_lb(0), -2.0);
  EXPECT_DOUBLE_EQ(r.reduced.var_ub(0), 10.0);
}

TEST(Presolve, EverythingFixed) {
  Model m;
  m.add_variable(2, 2, 5.0);
  m.add_variable(1, 1, -1.0);
  const PresolveResult r = presolve(m);
  ASSERT_FALSE(r.infeasible);
  EXPECT_EQ(r.reduced.num_vars(), 0);
  EXPECT_DOUBLE_EQ(r.objective_offset, 9.0);
  const std::vector<double> x = postsolve(r, {});
  EXPECT_DOUBLE_EQ(x[0], 2.0);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
}

}  // namespace
}  // namespace gmm::lp
