#include "support/arithmetic.hpp"

#include <gtest/gtest.h>

namespace gmm::support {
namespace {

TEST(Arithmetic, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 1), 0);
  EXPECT_EQ(ceil_div(1, 1), 1);
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(8, 2), 4);
  EXPECT_EQ(ceil_div(9, 2), 5);
  EXPECT_EQ(ceil_div(55, 16), 4);
  EXPECT_EQ(ceil_div(1, 4096), 1);
}

TEST(Arithmetic, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(4097));
  EXPECT_FALSE(is_pow2(-4));
}

TEST(Arithmetic, RoundUpPow2) {
  EXPECT_EQ(round_up_pow2(1), 1);
  EXPECT_EQ(round_up_pow2(2), 2);
  EXPECT_EQ(round_up_pow2(3), 4);
  EXPECT_EQ(round_up_pow2(5), 8);
  // The Figure-3 example: a 7-word remainder occupies an 8-word block.
  EXPECT_EQ(round_up_pow2(7), 8);
  EXPECT_EQ(round_up_pow2(4096), 4096);
  EXPECT_EQ(round_up_pow2(4097), 8192);
}

TEST(Arithmetic, RoundDownPow2) {
  EXPECT_EQ(round_down_pow2(1), 1);
  EXPECT_EQ(round_down_pow2(3), 2);
  EXPECT_EQ(round_down_pow2(8), 8);
  EXPECT_EQ(round_down_pow2(9), 8);
}

TEST(Arithmetic, Ilog2) {
  EXPECT_EQ(ilog2_floor(1), 0);
  EXPECT_EQ(ilog2_floor(2), 1);
  EXPECT_EQ(ilog2_floor(3), 1);
  EXPECT_EQ(ilog2_floor(4), 2);
  EXPECT_EQ(ilog2_ceil(1), 0);
  EXPECT_EQ(ilog2_ceil(3), 2);
  EXPECT_EQ(ilog2_ceil(4), 2);
  // Address width of a 56-word consumed depth (CD in the Figure-2
  // example) is ceil(log2(56)) = 6 bits.
  EXPECT_EQ(ilog2_ceil(56), 6);
}

TEST(Arithmetic, Pow2RoundTripProperty) {
  for (std::int64_t v = 1; v < 10'000; ++v) {
    const std::int64_t up = round_up_pow2(v);
    const std::int64_t down = round_down_pow2(v);
    EXPECT_TRUE(is_pow2(up));
    EXPECT_TRUE(is_pow2(down));
    EXPECT_GE(up, v);
    EXPECT_LE(down, v);
    EXPECT_LT(up, 2 * v);
    EXPECT_GT(2 * down, v);
    if (is_pow2(v)) {
      EXPECT_EQ(up, v);
      EXPECT_EQ(down, v);
    }
  }
}

TEST(Arithmetic, CheckedMul) {
  EXPECT_EQ(checked_mul(0, 5), 0);
  EXPECT_EQ(checked_mul(4096, 208), 851968);  // largest Virtex on-chip bits
  EXPECT_EQ(checked_mul(1'000'000, 1'000'000), 1'000'000'000'000);
}

}  // namespace
}  // namespace gmm::support
