// Fault-injection registry: spec grammar round-trip (300-seed property),
// rejection of malformed / unknown specs, schedule determinism, and the
// trigger semantics the chaos harness leans on.
#include "support/fault.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/rng.hpp"
#include "support/string_util.hpp"

namespace gmm::support {
namespace {

TEST(FaultSpec, EmptySpecParsesDisarmed) {
  const FaultSpec spec = parse_fault_spec("");
  EXPECT_TRUE(spec.ok);
  EXPECT_TRUE(spec.clauses.empty());
  EXPECT_EQ(spec.seed, 0u);
}

TEST(FaultSpec, ParsesEveryTriggerForm) {
  const FaultSpec spec = parse_fault_spec(
      "seed=42,lu.refactor:singular,ilp.node:stall@once,"
      "socket.write:partial@0.25,cache.verify:corrupt@3,"
      "socket.read:eintr@always");
  ASSERT_TRUE(spec.ok) << spec.error;
  EXPECT_EQ(spec.seed, 42u);
  ASSERT_EQ(spec.clauses.size(), 5u);
  EXPECT_EQ(spec.clauses[0].trigger, FaultTrigger::kAlways);  // default
  EXPECT_EQ(spec.clauses[1].trigger, FaultTrigger::kOnce);
  EXPECT_EQ(spec.clauses[2].trigger, FaultTrigger::kProbability);
  EXPECT_DOUBLE_EQ(spec.clauses[2].probability, 0.25);
  EXPECT_EQ(spec.clauses[3].trigger, FaultTrigger::kNth);
  EXPECT_EQ(spec.clauses[3].nth, 3);
  EXPECT_EQ(spec.clauses[4].trigger, FaultTrigger::kAlways);
}

TEST(FaultSpec, WhitespaceAroundClausesIsTolerated) {
  const FaultSpec spec =
      parse_fault_spec(" seed=1 , lu.refactor:singular , ilp.node:stall@2 ");
  ASSERT_TRUE(spec.ok) << spec.error;
  EXPECT_EQ(spec.seed, 1u);
  EXPECT_EQ(spec.clauses.size(), 2u);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  const char* bad[] = {
      "nosuchsite:fail",                 // unknown site
      "lu.refactor:nosuchaction",        // known site, unknown action
      "lu.refactor",                     // no colon
      ":singular",                       // empty site
      "lu.refactor:",                    // empty action
      "lu.refactor:singular@0.0",        // probability not in (0,1)
      "lu.refactor:singular@1.0",        // probability not in (0,1)
      "lu.refactor:singular@-0.5",       // negative probability
      "lu.refactor:singular@0",          // Nth must be >= 1
      "lu.refactor:singular@sometimes",  // unknown trigger word
      "lu.refactor:singular@",           // empty trigger
      "seed=notanumber,ilp.node:stall",  // malformed seed
      "ilp.node:stall,seed=3",           // seed not first
      "seed=1,seed=2,ilp.node:stall",    // duplicate seed
      "ilp.node:stall,,ilp.alloc:fail",  // empty clause
      "lu.refactor:singular@3x",         // trailing junk on trigger
  };
  for (const char* text : bad) {
    const FaultSpec spec = parse_fault_spec(text);
    EXPECT_FALSE(spec.ok) << "accepted: " << text;
    EXPECT_FALSE(spec.error.empty()) << text;
  }
}

TEST(FaultSpec, KnownPointsTableIsClosedAndConsistent) {
  const std::vector<std::string> points = known_fault_points();
  // The chaos harness arms every instrumented site; the acceptance floor
  // is ten distinct sites.
  EXPECT_GE(points.size(), 10u);
  for (const std::string& point : points) {
    const std::vector<std::string> parts = split(point, ':');
    ASSERT_EQ(parts.size(), 2u) << point;
    EXPECT_TRUE(fault_site_known(parts[0], parts[1])) << point;
    // Each listed point must parse as a bare clause.
    EXPECT_TRUE(parse_fault_spec(point).ok) << point;
  }
  EXPECT_FALSE(fault_site_known("lu.refactor", "corrupt"));
  EXPECT_FALSE(fault_site_known("", ""));
}

/// Draw a random valid spec over the known points table.
FaultSpec random_spec(Rng& rng) {
  const std::vector<std::string> points = known_fault_points();
  FaultSpec spec;
  spec.ok = true;
  spec.seed = rng.next_u64();
  const std::size_t count = 1 + rng.index(points.size());
  for (std::size_t i = 0; i < count; ++i) {
    const std::vector<std::string> parts = split(rng.pick(points), ':');
    FaultClause clause;
    clause.site = parts[0];
    clause.action = parts[1];
    switch (rng.index(4)) {
      case 0:
        clause.trigger = FaultTrigger::kAlways;
        break;
      case 1:
        clause.trigger = FaultTrigger::kOnce;
        break;
      case 2:
        clause.trigger = FaultTrigger::kNth;
        clause.nth = 1 + static_cast<std::int64_t>(rng.index(1000));
        break;
      default:
        clause.trigger = FaultTrigger::kProbability;
        // Open interval: squeeze the draw away from the endpoints.
        clause.probability = 0.999 * rng.uniform_real() + 0.0005;
        break;
    }
    spec.clauses.push_back(std::move(clause));
  }
  return spec;
}

TEST(FaultSpec, PrintParseRoundTripOver300Seeds) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    Rng rng(seed);
    const FaultSpec spec = random_spec(rng);
    const std::string text = fault_spec_to_string(spec);
    const FaultSpec reparsed = parse_fault_spec(text);
    ASSERT_TRUE(reparsed.ok) << "seed " << seed << ": " << reparsed.error
                             << " for '" << text << "'";
    EXPECT_EQ(reparsed.seed, spec.seed) << text;
    ASSERT_EQ(reparsed.clauses.size(), spec.clauses.size()) << text;
    for (std::size_t i = 0; i < spec.clauses.size(); ++i) {
      EXPECT_TRUE(reparsed.clauses[i] == spec.clauses[i])
          << "seed " << seed << " clause " << i << " of '" << text << "'";
    }
    // Canonical printing is a fixed point.
    EXPECT_EQ(fault_spec_to_string(reparsed), text);
  }
}

TEST(FaultInjector, DisarmedByDefaultAndAfterDisarm) {
  FaultInjector injector;
  EXPECT_FALSE(injector.armed());
  EXPECT_EQ(injector.spec_string(), "");
  std::string error;
  ASSERT_TRUE(injector.arm("seed=1,ilp.node:stall", error)) << error;
  EXPECT_TRUE(injector.armed());
  injector.disarm();
  EXPECT_FALSE(injector.armed());
  EXPECT_EQ(injector.total_fires(), 0);
}

TEST(FaultInjector, BadSpecKeepsPreviousArming) {
  FaultInjector injector;
  std::string error;
  ASSERT_TRUE(injector.arm("seed=1,ilp.node:stall@once", error)) << error;
  EXPECT_FALSE(injector.arm("bogus:site", error));
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(injector.armed());
  EXPECT_TRUE(injector.fire("ilp.node", "stall"));  // old spec still live
}

TEST(FaultInjector, OnceAndNthFireExactlyOnce) {
  FaultInjector injector;
  std::string error;
  ASSERT_TRUE(
      injector.arm("seed=9,ilp.node:stall@once,ilp.alloc:fail@3", error))
      << error;
  int stall_fires = 0;
  int alloc_fires = 0;
  int alloc_fire_index = -1;
  for (int i = 1; i <= 10; ++i) {
    if (injector.fire("ilp.node", "stall")) ++stall_fires;
    if (injector.fire("ilp.alloc", "fail")) {
      ++alloc_fires;
      alloc_fire_index = i;
    }
  }
  EXPECT_EQ(stall_fires, 1);
  EXPECT_EQ(alloc_fires, 1);
  EXPECT_EQ(alloc_fire_index, 3);  // exactly the Nth evaluation, 1-based
  const std::vector<FaultCount> counts = injector.counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].evaluations, 10);
  EXPECT_EQ(counts[0].fires, 1);
  EXPECT_EQ(injector.total_fires(), 2);
}

TEST(FaultInjector, UnarmedPointNeverFires) {
  FaultInjector injector;
  std::string error;
  ASSERT_TRUE(injector.arm("seed=4,socket.read:eintr@always", error)) << error;
  EXPECT_FALSE(injector.fire("socket.read", "short"));
  EXPECT_FALSE(injector.fire("socket.write", "eintr"));
  EXPECT_TRUE(injector.fire("socket.read", "eintr"));
}

TEST(FaultInjector, ProbabilityScheduleIsDeterministicPerSeed) {
  const std::string spec =
      "seed=123,socket.write:partial@0.3,socket.read:short@0.3";
  FaultInjector a;
  FaultInjector b;
  std::string error;
  ASSERT_TRUE(a.arm(spec, error)) << error;
  ASSERT_TRUE(b.arm(spec, error)) << error;
  std::vector<bool> trace_a;
  std::vector<bool> trace_b;
  for (int i = 0; i < 500; ++i) {
    trace_a.push_back(a.fire("socket.write", "partial"));
    trace_b.push_back(b.fire("socket.write", "partial"));
  }
  EXPECT_EQ(trace_a, trace_b);  // same spec => identical schedule

  // Interleaving another site's evaluations must not perturb the stream:
  // replay on a fresh injector with read evaluations mixed in.
  FaultInjector c;
  ASSERT_TRUE(c.arm(spec, error)) << error;
  std::vector<bool> trace_c;
  for (int i = 0; i < 500; ++i) {
    (void)c.fire("socket.read", "short");
    trace_c.push_back(c.fire("socket.write", "partial"));
    (void)c.fire("socket.read", "short");
  }
  EXPECT_EQ(trace_c, trace_a);

  // A different seed gives a different schedule (500 draws at p=0.3
  // colliding by chance is ~impossible; this guards seed plumbing).
  FaultInjector d;
  ASSERT_TRUE(
      d.arm("seed=124,socket.write:partial@0.3,socket.read:short@0.3", error))
      << error;
  std::vector<bool> trace_d;
  for (int i = 0; i < 500; ++i) {
    trace_d.push_back(d.fire("socket.write", "partial"));
  }
  EXPECT_NE(trace_d, trace_a);
}

TEST(FaultInjector, ProbabilityFireRateTracksP) {
  FaultInjector injector;
  std::string error;
  ASSERT_TRUE(injector.arm("seed=7,ilp.node:stall@0.2", error)) << error;
  int fires = 0;
  const int kDraws = 5000;
  for (int i = 0; i < kDraws; ++i) {
    if (injector.fire("ilp.node", "stall")) ++fires;
  }
  // p=0.2 over 5000 draws: expect ~1000, allow +-15%.
  EXPECT_GT(fires, 850);
  EXPECT_LT(fires, 1150);
}

TEST(FaultInjector, SpecStringRoundTripsThroughArm) {
  FaultInjector injector;
  std::string error;
  ASSERT_TRUE(injector.arm(
      "seed=77,lu.refactor:singular@once,socket.write:partial@0.125", error))
      << error;
  const std::string canonical = injector.spec_string();
  EXPECT_EQ(canonical,
            "seed=77,lu.refactor:singular@once,socket.write:partial@0.125");
  FaultInjector replay;
  ASSERT_TRUE(replay.arm(canonical, error)) << error;
  EXPECT_EQ(replay.spec_string(), canonical);
}

TEST(FaultInjector, GlobalMacroIsFalseWhenDisarmed) {
  ASSERT_FALSE(global_faults().armed());
  EXPECT_FALSE(GMM_FAULT("ilp.node", "stall"));
  std::string error;
  ASSERT_TRUE(global_faults().arm("seed=2,ilp.node:stall@once", error))
      << error;
  EXPECT_TRUE(GMM_FAULT("ilp.node", "stall"));
  EXPECT_FALSE(GMM_FAULT("ilp.node", "stall"));  // once already spent
  global_faults().disarm();
  EXPECT_FALSE(GMM_FAULT("ilp.node", "stall"));
}

}  // namespace
}  // namespace gmm::support
