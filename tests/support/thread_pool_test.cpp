#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <numeric>
#include <thread>
#include <vector>

namespace gmm::support {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCount) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
  SUCCEED();
}

TEST(ThreadPool, ParallelForSingleWorker) {
  ThreadPool pool(1);
  std::vector<int> data(257, 0);
  parallel_for(pool, data.size(), [&data](std::size_t i) { data[i] = 1; });
  EXPECT_EQ(std::accumulate(data.begin(), data.end(), 0), 257);
}

TEST(ThreadPool, SubmitDuringDrainStress) {
  // Tasks keep submitting follow-up work while the main thread sits in
  // wait_idle(): the drain must only complete once the whole tree of
  // recursively spawned tasks has run.  This is the exact pattern of the
  // parallel B&B search, where dives push deferred siblings mid-drain.
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  // Fan-out tree: each task below `depth` spawns two children.
  std::function<void(int)> spawn = [&](int depth) {
    executed.fetch_add(1, std::memory_order_relaxed);
    if (depth > 0) {
      pool.submit([&spawn, depth] { spawn(depth - 1); });
      pool.submit([&spawn, depth] { spawn(depth - 1); });
    }
  };
  for (int root = 0; root < 8; ++root) {
    pool.submit([&spawn] { spawn(5); });
  }
  pool.wait_idle();
  // 8 roots, each a complete binary tree of depth 5: 8 * (2^6 - 1) tasks.
  EXPECT_EQ(executed.load(), 8 * 63);
}

TEST(ThreadPool, ConcurrentSubmittersAndWaiters) {
  // Several external threads hammer submit() while another loops
  // wait_idle(); every task must run exactly once and nothing may hang.
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  constexpr int kPerSubmitter = 500;
  std::vector<std::thread> submitters;
  submitters.reserve(4);
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&pool, &executed] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        pool.submit([&executed] {
          executed.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.wait_idle();
  EXPECT_EQ(executed.load(), 4 * kPerSubmitter);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&count] { ++count; });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), (batch + 1) * 20);
  }
}

}  // namespace
}  // namespace gmm::support
