#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace gmm::support {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(), [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCount) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
  SUCCEED();
}

TEST(ThreadPool, ParallelForSingleWorker) {
  ThreadPool pool(1);
  std::vector<int> data(257, 0);
  parallel_for(pool, data.size(), [&data](std::size_t i) { data[i] = 1; });
  EXPECT_EQ(std::accumulate(data.begin(), data.end(), 0), 257);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&count] { ++count; });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), (batch + 1) * 20);
  }
}

}  // namespace
}  // namespace gmm::support
