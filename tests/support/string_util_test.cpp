#include "support/string_util.hpp"

#include <gtest/gtest.h>

namespace gmm::support {
namespace {

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(StringUtil, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtil, SplitWs) {
  EXPECT_EQ(split_ws("  a  b\tc\n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
  EXPECT_EQ(split_ws("one"), (std::vector<std::string>{"one"}));
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("bank.type", "bank"));
  EXPECT_FALSE(starts_with("bank", "bank.type"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(StringUtil, FormatFixed) {
  EXPECT_EQ(format_fixed(8.1, 1), "8.1");
  EXPECT_EQ(format_fixed(2989.0, 1), "2989.0");
  EXPECT_EQ(format_fixed(0.123456, 3), "0.123");
}

TEST(StringUtil, ParseInt) {
  std::int64_t v = 0;
  EXPECT_TRUE(parse_int("42", v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parse_int("  -7 ", v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(parse_int("4x", v));
  EXPECT_FALSE(parse_int("", v));
  EXPECT_FALSE(parse_int("3.5", v));
}

TEST(StringUtil, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(parse_double("2.5", v));
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_TRUE(parse_double(" -1e3 ", v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(parse_double("abc", v));
}

}  // namespace
}  // namespace gmm::support
