#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace gmm::support {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntRoughlyUniform) {
  Rng rng(13);
  std::vector<int> buckets(8, 0);
  const int draws = 80'000;
  for (int i = 0; i < draws; ++i) ++buckets[rng.uniform_int(0, 7)];
  for (const int count : buckets) {
    EXPECT_NEAR(count, draws / 8, draws / 8 / 5);  // within 20%
  }
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> shuffled(v);
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(Rng, ForkSeedIndependence) {
  Rng parent(23);
  Rng child_a(parent.fork_seed());
  Rng child_b(parent.fork_seed());
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child_a.next_u64() == child_b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace gmm::support
