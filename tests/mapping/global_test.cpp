#include "mapping/global_mapper.hpp"

#include <gtest/gtest.h>

#include "arch/device_catalog.hpp"
#include "mapping/greedy_mapper.hpp"
#include "support/rng.hpp"

namespace gmm::mapping {
namespace {

design::DataStructure ds(const std::string& name, std::int64_t depth,
                         std::int64_t width) {
  design::DataStructure s;
  s.name = name;
  s.depth = depth;
  s.width = width;
  return s;
}

TEST(GlobalMapper, PrefersOnChipWhenEverythingFits) {
  const arch::Board board = arch::single_fpga_board("XCV1000", 4);
  design::Design design("d");
  design.add(ds("a", 1024, 4));
  design.add(ds("b", 256, 16));
  design.set_all_conflicting();
  const CostTable table(design, board);
  const GlobalResult r = map_global(design, board, table);
  ASSERT_EQ(r.status, lp::SolveStatus::kOptimal);
  // On-chip is strictly cheaper and fits both structures.
  EXPECT_EQ(r.assignment.type_of, (std::vector<int>{0, 0}));
  EXPECT_DOUBLE_EQ(r.assignment.objective,
                   table.cost(0, 0) + table.cost(1, 0));
}

TEST(GlobalMapper, SpillsToOffChipUnderCapacityPressure) {
  // XCV50: 8 BlockRAMs = 32 Kbit on-chip.  Two 32 Kbit structures cannot
  // both live on-chip; the cheaper-to-access one should stay.
  const arch::Board board = arch::single_fpga_board("XCV50", 4);
  design::Design design("d");
  auto hot = ds("hot", 2048, 16);  // 32 Kbit, heavily read
  hot.reads = 100000;
  auto cold = ds("cold", 2048, 16);  // 32 Kbit, rarely touched
  cold.reads = 1;
  cold.writes = 1;
  design.add(hot);
  design.add(cold);
  design.set_all_conflicting();
  const CostTable table(design, board);
  const GlobalResult r = map_global(design, board, table);
  ASSERT_EQ(r.status, lp::SolveStatus::kOptimal);
  EXPECT_EQ(r.assignment.type_of[0], 0);  // hot on-chip
  EXPECT_EQ(r.assignment.type_of[1], 1);  // cold spilled to SRAM
}

TEST(GlobalMapper, InfeasibleWhenNothingFits) {
  arch::Board board("tiny");
  board.add_bank_type(arch::on_chip_bank_type(*arch::find_device("XCV50")));
  design::Design design("d");
  design.add(ds("huge", 1 << 20, 64));  // far beyond 32 Kbit
  design.set_all_conflicting();
  const CostTable table(design, board);
  const GlobalResult r = map_global(design, board, table);
  EXPECT_EQ(r.status, lp::SolveStatus::kInfeasible);
}

TEST(GlobalMapper, PortConstraintForcesSpill) {
  // One single-ported SRAM type with 2 instances (2 ports total) plus a
  // bulk tier; three port-hungry structures cannot all use the SRAM.
  arch::Board board("b");
  board.add_bank_type(arch::offchip_sram(2, 32768, 32));
  board.add_bank_type(arch::offchip_bulk(4, 1 << 20, 32));
  design::Design design("d");
  for (int i = 0; i < 3; ++i) {
    design.add(ds("s" + std::to_string(i), 1024, 32));
  }
  design.set_all_conflicting();
  const CostTable table(design, board);
  const GlobalResult r = map_global(design, board, table);
  ASSERT_EQ(r.status, lp::SolveStatus::kOptimal);
  int on_sram = 0;
  for (const int t : r.assignment.type_of) on_sram += t == 0 ? 1 : 0;
  EXPECT_EQ(on_sram, 2);  // exactly the two available ports
}

TEST(GlobalMapper, OverlapAwareCapacityAdmitsMore) {
  // Two full-chip structures with disjoint lifetimes fit on-chip only
  // when capacity is overlap-aware.
  arch::Board board("b");
  board.add_bank_type(arch::on_chip_bank_type(*arch::find_device("XCV50")));
  design::Design design("d");
  auto a = ds("a", 4096, 8);  // 32 Kbit = whole chip... too big; halve:
  a.depth = 2048;             // 16 Kbit
  a.lifetime = design::Lifetime{0, 10};
  auto b = ds("b", 2048, 8);
  b.lifetime = design::Lifetime{20, 30};
  auto c = ds("c", 2048, 8);
  c.lifetime = design::Lifetime{40, 50};
  design.add(a);
  design.add(b);
  design.add(c);
  design.derive_conflicts_from_lifetimes();  // pairwise disjoint

  const CostTable table(design, board);
  GlobalOptions overlap_on;
  overlap_on.overlap_aware_capacity = true;
  const GlobalResult with = map_global(design, board, table, overlap_on);
  // 3 x 16 Kbit > 32 Kbit, but they never coexist: feasible with overlap.
  ASSERT_EQ(with.status, lp::SolveStatus::kOptimal);

  GlobalOptions overlap_off;
  overlap_off.overlap_aware_capacity = false;
  const GlobalResult without = map_global(design, board, table, overlap_off);
  EXPECT_EQ(without.status, lp::SolveStatus::kInfeasible);
}

TEST(GlobalMapper, NoGoodCutExcludesAssignment) {
  const arch::Board board = arch::single_fpga_board("XCV1000", 4);
  design::Design design("d");
  design.add(ds("a", 1024, 4));
  design.set_all_conflicting();
  const CostTable table(design, board);
  const GlobalResult first = map_global(design, board, table);
  ASSERT_EQ(first.status, lp::SolveStatus::kOptimal);
  ASSERT_EQ(first.assignment.type_of[0], 0);

  GlobalOptions options;
  options.no_good_cuts.push_back({{0, 0}});  // forbid a -> type 0
  const GlobalResult second = map_global(design, board, table, options);
  ASSERT_EQ(second.status, lp::SolveStatus::kOptimal);
  EXPECT_EQ(second.assignment.type_of[0], 1);
  EXPECT_GT(second.assignment.objective, first.assignment.objective);
}

TEST(GlobalMapper, NeverWorseThanGreedy) {
  // The ILP optimum must be <= any greedy assignment's objective.
  support::Rng rng(909);
  const arch::Board board = arch::hierarchical_board("XCV300");
  for (int trial = 0; trial < 5; ++trial) {
    design::Design design("d");
    const int n = static_cast<int>(rng.uniform_int(5, 15));
    for (int i = 0; i < n; ++i) {
      auto s = ds("s" + std::to_string(i), rng.uniform_int(16, 4096),
                  rng.uniform_int(1, 32));
      s.reads = rng.uniform_int(1, 100000);
      s.writes = rng.uniform_int(1, 1000);
      design.add(s);
    }
    design.set_all_conflicting();
    const CostTable table(design, board);
    const GreedyResult greedy = map_greedy(design, board, table);
    GlobalOptions options;
    options.mip.rel_gap = 1e-9;  // the comparison needs a proven optimum
    const GlobalResult global = map_global(design, board, table, options);
    if (global.status != lp::SolveStatus::kOptimal) continue;
    if (greedy.success) {
      EXPECT_LE(global.assignment.objective,
                greedy.assignment.objective + 1e-6)
          << "trial " << trial;
    }
  }
}

TEST(GlobalMapper, ModelSizeReported) {
  const arch::Board board = arch::hierarchical_board("XCV300");
  design::Design design("d");
  for (int i = 0; i < 6; ++i) design.add(ds("s" + std::to_string(i), 512, 8));
  design.set_all_conflicting();
  const CostTable table(design, board);
  const GlobalResult r = map_global(design, board, table);
  ASSERT_EQ(r.status, lp::SolveStatus::kOptimal);
  EXPECT_GT(r.model_size.variables, 0);
  EXPECT_LE(r.model_size.variables,
            static_cast<std::int64_t>(design.size() * board.num_types()));
  // Uniqueness + ports + capacity rows.
  EXPECT_GE(r.model_size.rows, static_cast<std::int64_t>(design.size()));
}

}  // namespace
}  // namespace gmm::mapping
