// Edge cases across the mapping stack: empty designs, single-structure
// boards, one-instance types, and preprocessing over every catalog device.
#include <gtest/gtest.h>

#include "arch/device_catalog.hpp"
#include "mapping/pipeline.hpp"
#include "mapping/validate.hpp"
#include "support/arithmetic.hpp"
#include "support/rng.hpp"

namespace gmm::mapping {
namespace {

TEST(EdgeCases, EmptyDesignMapsTrivially) {
  const arch::Board board = arch::single_fpga_board("XCV50", 1);
  design::Design design("empty");
  const PipelineResult r = map_pipeline(design, board);
  EXPECT_EQ(r.status, lp::SolveStatus::kOptimal);
  EXPECT_TRUE(r.detailed.success);
  EXPECT_TRUE(r.detailed.fragments.empty());
}

TEST(EdgeCases, SingleBitStructure) {
  const arch::Board board = arch::single_fpga_board("XCV50", 1);
  design::Design design("d");
  design::DataStructure one;
  one.name = "bit";
  one.depth = 1;
  one.width = 1;
  design.add(one);
  design.set_all_conflicting();
  const PipelineResult r = map_pipeline(design, board);
  ASSERT_EQ(r.status, lp::SolveStatus::kOptimal);
  ASSERT_EQ(r.detailed.fragments.size(), 1u);
  EXPECT_TRUE(
      validate_mapping(design, board, r.assignment, r.detailed).empty());
}

TEST(EdgeCases, StructureExactlyFillsBoard) {
  // One structure consuming the whole on-chip space of an XCV50
  // (8 x 4096 bits = 8 full instances in 4096x1... as 4096 deep x 8 wide).
  arch::Board board("b");
  board.add_bank_type(arch::on_chip_bank_type(*arch::find_device("XCV50")));
  design::Design design("d");
  design::DataStructure full;
  full.name = "full";
  full.depth = 4096;
  full.width = 8;
  design.add(full);
  design.set_all_conflicting();
  const PipelineResult r = map_pipeline(design, board);
  ASSERT_EQ(r.status, lp::SolveStatus::kOptimal);
  ASSERT_TRUE(r.detailed.success);
  EXPECT_EQ(r.detailed.instances_used(0), 8);
  EXPECT_TRUE(
      validate_mapping(design, board, r.assignment, r.detailed).empty());
}

TEST(EdgeCases, OneBitOverTheBoardIsInfeasible) {
  arch::Board board("b");
  board.add_bank_type(arch::on_chip_bank_type(*arch::find_device("XCV50")));
  design::Design design("d");
  design::DataStructure too_big;
  too_big.name = "too_big";
  too_big.depth = 4096;
  too_big.width = 9;  // 36864 > 32768 bits
  design.add(too_big);
  design.set_all_conflicting();
  const PipelineResult r = map_pipeline(design, board);
  EXPECT_EQ(r.status, lp::SolveStatus::kInfeasible);
}

TEST(EdgeCases, SingleInstanceType) {
  arch::Board board("b");
  board.add_bank_type(arch::offchip_sram(1, 32768, 32));
  design::Design design("d");
  for (int i = 0; i < 3; ++i) {
    design::DataStructure s;
    s.name = "s" + std::to_string(i);
    s.depth = 256;
    s.width = 32;
    design.add(s);
  }
  design.set_all_conflicting();
  // A single-ported single instance can host only one structure (ports).
  const PipelineResult r = map_pipeline(design, board);
  EXPECT_EQ(r.status, lp::SolveStatus::kInfeasible);
}

TEST(EdgeCases, PreprocessInvariantsOnEveryCatalogDevice) {
  support::Rng rng(31);
  for (const arch::DeviceInfo& info : arch::device_catalog()) {
    const arch::BankType bank = arch::on_chip_bank_type(info);
    for (int iter = 0; iter < 25; ++iter) {
      design::DataStructure ds;
      ds.name = "s";
      ds.depth = rng.uniform_int(1, 3000);
      ds.width = rng.uniform_int(1, 40);
      const PlacementPlan plan = plan_placement(ds, bank);
      EXPECT_EQ(plan.cp, plan.fp + plan.wp + plan.dp + plan.wdp);
      std::int64_t covered = 0, ports = 0;
      for (const FragmentGroup& g : plan.groups) {
        covered += g.count * g.words_covered * g.bits_covered;
        ports += g.count * g.ports_each;
        EXPECT_TRUE(support::is_pow2(g.block_bits)) << info.device;
        EXPECT_LE(g.block_bits, bank.capacity_bits()) << info.device;
      }
      EXPECT_EQ(covered, ds.depth * ds.width) << info.device;
      EXPECT_EQ(ports, plan.cp) << info.device;
      // The reserved-bits identity: CW * CD equals the padded block area.
      EXPECT_EQ(plan.reserved_bits(), plan.cw * plan.cd) << info.device;
    }
  }
}

TEST(EdgeCases, WidthOneStructuresOnEveryTier) {
  const arch::Board board = arch::hierarchical_board("XCV300");
  design::Design design("d");
  for (int i = 0; i < 6; ++i) {
    design::DataStructure s;
    s.name = "bitstream" + std::to_string(i);
    s.depth = 1 << (6 + i);  // 64 .. 2048
    s.width = 1;
    design.add(s);
  }
  design.set_all_conflicting();
  const PipelineResult r = map_pipeline(design, board);
  ASSERT_EQ(r.status, lp::SolveStatus::kOptimal);
  EXPECT_TRUE(
      validate_mapping(design, board, r.assignment, r.detailed).empty());
}

}  // namespace
}  // namespace gmm::mapping
