#include "mapping/pipeline.hpp"

#include <gtest/gtest.h>

#include "arch/device_catalog.hpp"
#include "mapping/validate.hpp"
#include "support/rng.hpp"

namespace gmm::mapping {
namespace {

design::DataStructure ds(const std::string& name, std::int64_t depth,
                         std::int64_t width) {
  design::DataStructure s;
  s.name = name;
  s.depth = depth;
  s.width = width;
  return s;
}

TEST(Pipeline, EndToEndOnHierarchicalBoard) {
  const arch::Board board = arch::hierarchical_board("XCV300");
  design::Design design("d");
  design.add(ds("coeffs", 64, 16));
  design.add(ds("window", 512, 16));
  design.add(ds("frame", 65536, 8));
  design.set_all_conflicting();
  const PipelineResult r = map_pipeline(design, board);
  ASSERT_EQ(r.status, lp::SolveStatus::kOptimal);
  ASSERT_TRUE(r.detailed.success) << r.detailed.failure;
  EXPECT_EQ(r.retries, 0);
  EXPECT_TRUE(validate_mapping(design, board, r.assignment, r.detailed)
                  .empty());
  // The big frame cannot fit on-chip (XCV300: 16 x 4096 bits).
  EXPECT_NE(r.assignment.type_of[2], 0);
}

TEST(Pipeline, ReportsInfeasibleDesigns) {
  arch::Board board("b");
  board.add_bank_type(arch::on_chip_bank_type(*arch::find_device("XCV50")));
  design::Design design("d");
  design.add(ds("too_big", 1 << 20, 32));
  design.set_all_conflicting();
  const PipelineResult r = map_pipeline(design, board);
  EXPECT_EQ(r.status, lp::SolveStatus::kInfeasible);
}

// The headline property: on boards whose types have at most two ports
// (every real device in the catalog), the first global solution always
// detail-maps — zero retries, as the paper's design intends.
class FirstShotGuarantee : public ::testing::TestWithParam<int> {};

TEST_P(FirstShotGuarantee, DualPortBoardsNeverRetry) {
  support::Rng rng(8800 + GetParam());
  const char* devices[] = {"XCV50", "XCV300", "XCV1000", "EPF10K70",
                           "EP20K100E"};
  const arch::Board board = arch::hierarchical_board(
      devices[rng.index(std::size(devices))]);

  design::Design design("d");
  const int n = static_cast<int>(rng.uniform_int(4, 25));
  for (int i = 0; i < n; ++i) {
    auto s = ds("s" + std::to_string(i), rng.uniform_int(4, 20000),
                rng.uniform_int(1, 40));
    s.reads = rng.uniform_int(1, 50000);
    s.writes = rng.uniform_int(1, 5000);
    design.add(s);
  }
  design.set_all_conflicting();

  const PipelineResult r = map_pipeline(design, board);
  if (r.status == lp::SolveStatus::kInfeasible) return;  // legitimately
  ASSERT_EQ(r.status, lp::SolveStatus::kOptimal) << "seed " << GetParam();
  EXPECT_EQ(r.retries, 0) << "seed " << GetParam();
  ASSERT_TRUE(r.detailed.success) << r.detailed.failure;
  EXPECT_TRUE(validate_mapping(design, board, r.assignment, r.detailed)
                  .empty())
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, FirstShotGuarantee,
                         ::testing::Range(0, 30));

// With lifetime-derived conflicts, overlap-aware capacity + the sharing
// packer must still produce legal mappings.
class OverlapSweep : public ::testing::TestWithParam<int> {};

TEST_P(OverlapSweep, LifetimeOverlapMappingsAreLegal) {
  support::Rng rng(9900 + GetParam());
  const arch::Board board = arch::hierarchical_board("XCV300");
  design::Design design("d");
  const int n = static_cast<int>(rng.uniform_int(4, 15));
  for (int i = 0; i < n; ++i) {
    auto s = ds("s" + std::to_string(i), rng.uniform_int(16, 4000),
                rng.uniform_int(1, 32));
    const std::int64_t start = rng.uniform_int(0, 100);
    s.lifetime = design::Lifetime{start, start + rng.uniform_int(1, 50)};
    design.add(s);
  }
  design.derive_conflicts_from_lifetimes();

  PipelineOptions options;
  options.max_retries = 32;
  const PipelineResult r = map_pipeline(design, board, options);
  if (r.status == lp::SolveStatus::kInfeasible) return;
  ASSERT_EQ(r.status, lp::SolveStatus::kOptimal) << "seed " << GetParam();
  ASSERT_TRUE(r.detailed.success) << r.detailed.failure;
  EXPECT_TRUE(validate_mapping(design, board, r.assignment, r.detailed)
                  .empty())
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, OverlapSweep, ::testing::Range(0, 15));

TEST(Pipeline, EffortBreakdownPopulated) {
  const arch::Board board = arch::single_fpga_board("XCV300", 4);
  design::Design design("d");
  for (int i = 0; i < 10; ++i) design.add(ds("s" + std::to_string(i), 256, 8));
  design.set_all_conflicting();
  const PipelineResult r = map_pipeline(design, board);
  ASSERT_EQ(r.status, lp::SolveStatus::kOptimal);
  EXPECT_GE(r.effort.preprocess_seconds, 0.0);
  EXPECT_GT(r.effort.total_seconds(), 0.0);
  EXPECT_GT(r.model_size.variables, 0);
  EXPECT_GE(r.effort.bnb_nodes, 1);
}

}  // namespace
}  // namespace gmm::mapping
