#include "mapping/detailed_mapper.hpp"

#include <gtest/gtest.h>

#include "arch/device_catalog.hpp"
#include "mapping/validate.hpp"
#include "support/rng.hpp"

namespace gmm::mapping {
namespace {

design::DataStructure ds(const std::string& name, std::int64_t depth,
                         std::int64_t width) {
  design::DataStructure s;
  s.name = name;
  s.depth = depth;
  s.width = width;
  return s;
}

TEST(DetailedMapper, PlacesFigure2Example) {
  arch::Board board("b");
  arch::BankType t;
  t.name = "fig2";
  t.instances = 16;
  t.ports = 3;
  t.configs = {{128, 1}, {64, 2}, {32, 4}, {16, 8}};
  board.add_bank_type(t);

  design::Design design("d");
  design.add(ds("big", 55, 17));
  design.set_all_conflicting();

  const CostTable table(design, board);
  GlobalAssignment assignment;
  assignment.type_of = {0};
  const DetailedMapping mapping =
      map_detailed(design, board, table, assignment);
  ASSERT_TRUE(mapping.success) << mapping.failure;
  EXPECT_EQ(mapping.fragment_count(0), 12);
  EXPECT_TRUE(
      validate_mapping(design, board, assignment, mapping).empty());
  // The packer may merge the 1-port column/corner fragments onto shared
  // instances, so at most 12 instances are touched.
  EXPECT_LE(mapping.instances_used(0), 12);
  EXPECT_GE(mapping.instances_used(0), 6);  // at least the full blocks
}

TEST(DetailedMapper, PacksSmallStructuresOntoSharedInstance) {
  // Two half-bank structures share one dual-ported BlockRAM.
  arch::Board board("b");
  board.add_bank_type(arch::on_chip_bank_type(*arch::find_device("XCV50")));
  design::Design design("d");
  design.add(ds("a", 2048, 1));  // half of a 4096x1 BlockRAM
  design.add(ds("b", 2048, 1));
  design.set_all_conflicting();
  const CostTable table(design, board);
  GlobalAssignment assignment;
  assignment.type_of = {0, 0};
  const DetailedMapping mapping =
      map_detailed(design, board, table, assignment);
  ASSERT_TRUE(mapping.success) << mapping.failure;
  EXPECT_EQ(mapping.instances_used(0), 1);
  EXPECT_TRUE(validate_mapping(design, board, assignment, mapping).empty());
}

TEST(DetailedMapper, ConflictingStructuresNeverShareBlocks) {
  arch::Board board("b");
  board.add_bank_type(arch::on_chip_bank_type(*arch::find_device("XCV50")));
  design::Design design("d");
  design.add(ds("a", 4096, 1));
  design.add(ds("b", 4096, 1));
  design.set_all_conflicting();
  const CostTable table(design, board);
  GlobalAssignment assignment;
  assignment.type_of = {0, 0};
  const DetailedMapping mapping =
      map_detailed(design, board, table, assignment);
  ASSERT_TRUE(mapping.success) << mapping.failure;
  EXPECT_EQ(mapping.instances_used(0), 2);
  EXPECT_TRUE(validate_mapping(design, board, assignment, mapping).empty());
}

TEST(DetailedMapper, NonConflictingStructuresShareStorage) {
  arch::Board board("b");
  board.add_bank_type(arch::on_chip_bank_type(*arch::find_device("XCV50")));
  design::Design design("d");
  auto a = ds("a", 4096, 1);
  a.lifetime = design::Lifetime{0, 10};
  auto b = ds("b", 4096, 1);
  b.lifetime = design::Lifetime{20, 30};
  design.add(a);
  design.add(b);
  design.derive_conflicts_from_lifetimes();  // no conflicts
  const CostTable table(design, board);
  GlobalAssignment assignment;
  assignment.type_of = {0, 0};
  const DetailedMapping mapping =
      map_detailed(design, board, table, assignment);
  ASSERT_TRUE(mapping.success) << mapping.failure;
  // Lifetime-disjoint full-bank structures overlap on one instance.
  EXPECT_EQ(mapping.instances_used(0), 1);
  EXPECT_TRUE(validate_mapping(design, board, assignment, mapping).empty());
}

TEST(DetailedMapper, OverlapDisabledUsesSeparateInstances) {
  arch::Board board("b");
  board.add_bank_type(arch::on_chip_bank_type(*arch::find_device("XCV50")));
  design::Design design("d");
  auto a = ds("a", 4096, 1);
  a.lifetime = design::Lifetime{0, 10};
  auto b = ds("b", 4096, 1);
  b.lifetime = design::Lifetime{20, 30};
  design.add(a);
  design.add(b);
  design.derive_conflicts_from_lifetimes();
  const CostTable table(design, board);
  GlobalAssignment assignment;
  assignment.type_of = {0, 0};
  DetailedOptions options;
  options.allow_overlap = false;
  const DetailedMapping mapping =
      map_detailed(design, board, table, assignment, options);
  ASSERT_TRUE(mapping.success) << mapping.failure;
  EXPECT_EQ(mapping.instances_used(0), 2);
}

TEST(DetailedMapper, FailsWhenInstancesExhausted) {
  arch::Board board("b");
  arch::BankType t = arch::on_chip_bank_type(*arch::find_device("XCV50"));
  t.instances = 1;
  board.add_bank_type(t);
  design::Design design("d");
  design.add(ds("a", 4096, 1));
  design.add(ds("b", 4096, 1));
  design.set_all_conflicting();
  const CostTable table(design, board);
  GlobalAssignment assignment;
  assignment.type_of = {0, 0};
  const DetailedMapping mapping =
      map_detailed(design, board, table, assignment);
  EXPECT_FALSE(mapping.success);
  EXPECT_FALSE(mapping.failure.empty());
}

// Property: on dual-ported banks, any assignment satisfying the aggregate
// port and capacity constraints detail-maps successfully (the paper's
// guarantee; exact for Pt <= 2).
class DualPortGuarantee : public ::testing::TestWithParam<int> {};

TEST_P(DualPortGuarantee, AggregateFeasibleAlwaysPacks) {
  support::Rng rng(7100 + GetParam());
  arch::Board board("b");
  arch::BankType t = arch::on_chip_bank_type(*arch::find_device("XCV1000"));
  board.add_bank_type(t);  // 32 instances, 2 ports, 4096 bits

  design::Design design("d");
  std::int64_t used_ports = 0;
  std::int64_t used_bits = 0;
  std::vector<int> assignment_vec;
  // Keep adding random structures while the aggregate constraints hold.
  for (int i = 0; i < 200; ++i) {
    design::DataStructure s =
        ds("s" + std::to_string(i), rng.uniform_int(1, 6000),
           rng.uniform_int(1, 20));
    const PlacementPlan plan = plan_placement(s, t);
    if (!plan.feasible) continue;
    if (used_ports + plan.cp > t.total_ports()) continue;
    if (used_bits + plan.cw * plan.cd > t.total_bits()) continue;
    used_ports += plan.cp;
    used_bits += plan.cw * plan.cd;
    design.add(s);
    assignment_vec.push_back(0);
  }
  design.set_all_conflicting();
  if (design.size() == 0) GTEST_SKIP() << "degenerate draw";

  const CostTable table(design, board);
  GlobalAssignment assignment;
  assignment.type_of = assignment_vec;
  const DetailedMapping mapping =
      map_detailed(design, board, table, assignment);
  ASSERT_TRUE(mapping.success)
      << mapping.failure << " (ports " << used_ports << "/"
      << t.total_ports() << ", bits " << used_bits << "/" << t.total_bits()
      << ")";
  EXPECT_TRUE(validate_mapping(design, board, assignment, mapping).empty());
}

INSTANTIATE_TEST_SUITE_P(Sweep, DualPortGuarantee, ::testing::Range(0, 25));

}  // namespace
}  // namespace gmm::mapping
