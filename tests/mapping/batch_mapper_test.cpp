// Batched mapping driver: N independent designs over one shared pool
// must produce exactly the per-design pipeline results, in order.
#include "mapping/batch_mapper.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mapping/pipeline.hpp"
#include "mapping/validate.hpp"
#include "workload/workload_gen.hpp"

namespace gmm::mapping {
namespace {

std::vector<design::Design> corpus(const arch::Board& board, int count) {
  std::vector<design::Design> designs;
  for (int i = 0; i < count; ++i) {
    workload::DesignGenOptions gen;
    gen.num_segments = 8 + 2 * i;
    gen.seed = 9000 + static_cast<std::uint64_t>(i);
    designs.push_back(workload::generate_design(board, gen));
  }
  return designs;
}

TEST(BatchMapper, MatchesSerialPipelinePerItem) {
  const auto board =
      workload::board_from_totals({.banks = 16, .ports = 24, .configs = 50});
  ASSERT_TRUE(board.has_value());
  const std::vector<design::Design> designs = corpus(*board, 6);

  std::vector<BatchItem> items;
  for (const design::Design& d : designs) {
    items.push_back({.design = &d, .board = &*board});
  }
  const BatchResult batch = map_batch(items, PipelineOptions{}, 4);
  ASSERT_EQ(batch.results.size(), designs.size());
  EXPECT_TRUE(batch.all_succeeded());

  for (std::size_t i = 0; i < designs.size(); ++i) {
    const PipelineResult serial = map_pipeline(designs[i], *board);
    ASSERT_EQ(batch.results[i].status, serial.status) << "item " << i;
    EXPECT_NEAR(batch.results[i].assignment.objective,
                serial.assignment.objective,
                1e-6 * std::max(1.0, std::abs(serial.assignment.objective)))
        << "item " << i;
    // Every batched mapping must be legal against its own design.
    EXPECT_TRUE(validate_mapping(designs[i], *board,
                                 batch.results[i].assignment,
                                 batch.results[i].detailed)
                    .empty())
        << "item " << i;
  }
}

TEST(BatchMapper, SharedExternalPoolAcrossBatches) {
  const auto board =
      workload::board_from_totals({.banks = 16, .ports = 24, .configs = 50});
  ASSERT_TRUE(board.has_value());
  const std::vector<design::Design> designs = corpus(*board, 4);
  std::vector<BatchItem> items;
  for (const design::Design& d : designs) {
    items.push_back({.design = &d, .board = &*board});
  }
  // One pool, two waves — the serving pattern (pool outlives batches).
  support::ThreadPool pool(3);
  const BatchResult first = map_batch(pool, items);
  const BatchResult second = map_batch(pool, items);
  ASSERT_EQ(first.results.size(), second.results.size());
  EXPECT_TRUE(first.all_succeeded());
  for (std::size_t i = 0; i < first.results.size(); ++i) {
    EXPECT_EQ(first.results[i].status, second.results[i].status);
    EXPECT_EQ(first.results[i].assignment.objective,
              second.results[i].assignment.objective);
  }
}

TEST(BatchMapper, EmptyBatch) {
  const BatchResult batch = map_batch({}, PipelineOptions{}, 2);
  EXPECT_TRUE(batch.results.empty());
  EXPECT_TRUE(batch.all_succeeded());
  EXPECT_EQ(batch.succeeded, 0u);
}

}  // namespace
}  // namespace gmm::mapping
