#include "mapping/detailed_ilp.hpp"

#include <gtest/gtest.h>

#include "arch/device_catalog.hpp"
#include "mapping/detailed_mapper.hpp"
#include "mapping/pipeline.hpp"
#include "mapping/validate.hpp"
#include "support/rng.hpp"

namespace gmm::mapping {
namespace {

design::DataStructure ds(const std::string& name, std::int64_t depth,
                         std::int64_t width) {
  design::DataStructure s;
  s.name = name;
  s.depth = depth;
  s.width = width;
  return s;
}

TEST(DetailedIlp, ProducesLegalMapping) {
  const arch::Board board = arch::single_fpga_board("XCV300", 2);
  design::Design design("d");
  design.add(ds("a", 55, 17));
  design.add(ds("b", 256, 8));
  design.add(ds("c", 1024, 4));
  design.set_all_conflicting();
  const CostTable table(design, board);
  GlobalAssignment assignment;
  assignment.type_of = {0, 0, 0};
  const DetailedMapping mapping =
      map_detailed_ilp(design, board, table, assignment);
  ASSERT_TRUE(mapping.success) << mapping.failure;
  EXPECT_TRUE(validate_mapping(design, board, assignment, mapping).empty());
}

TEST(DetailedIlp, MinimizesInstancesTouched) {
  // Four quarter-bank structures: the ILP must co-locate them on a single
  // dual-ported instance pairwise -> exactly 2 instances, never 4.
  arch::Board board("b");
  board.add_bank_type(arch::on_chip_bank_type(*arch::find_device("XCV50")));
  design::Design design("d");
  for (int i = 0; i < 4; ++i) {
    design.add(ds("s" + std::to_string(i), 1024, 1));  // quarter of 4096x1
  }
  design.set_all_conflicting();
  const CostTable table(design, board);
  GlobalAssignment assignment;
  assignment.type_of = {0, 0, 0, 0};
  const DetailedMapping ilp =
      map_detailed_ilp(design, board, table, assignment);
  ASSERT_TRUE(ilp.success) << ilp.failure;
  // Each structure needs 1 port (1024 of 4096 rounds to a quarter, 1/4 of
  // 2 ports -> 1); two structures per dual-ported instance.
  EXPECT_EQ(ilp.instances_used(0), 2);
  EXPECT_TRUE(validate_mapping(design, board, assignment, ilp).empty());
}

TEST(DetailedIlp, NeverWorseThanConstructivePacker) {
  support::Rng rng(6400);
  const arch::Board board = arch::hierarchical_board("XCV1000");
  for (int trial = 0; trial < 8; ++trial) {
    design::Design design("d");
    const int n = static_cast<int>(rng.uniform_int(3, 10));
    for (int i = 0; i < n; ++i) {
      design.add(ds("s" + std::to_string(i), rng.uniform_int(64, 4096),
                    rng.uniform_int(1, 16)));
    }
    design.set_all_conflicting();
    const PipelineResult pipeline = map_pipeline(design, board);
    if (pipeline.status != lp::SolveStatus::kOptimal) continue;
    const CostTable table(design, board);
    DetailedOptions packer_options;
    packer_options.allow_overlap = false;  // same rules as ILP mode
    const DetailedMapping packer = map_detailed(
        design, board, table, pipeline.assignment, packer_options);
    const DetailedMapping ilp =
        map_detailed_ilp(design, board, table, pipeline.assignment);
    ASSERT_TRUE(packer.success);
    ASSERT_TRUE(ilp.success) << ilp.failure;
    EXPECT_TRUE(
        validate_mapping(design, board, pipeline.assignment, ilp).empty())
        << "trial " << trial;
    for (std::size_t t = 0; t < board.num_types(); ++t) {
      EXPECT_LE(ilp.instances_used(t), packer.instances_used(t))
          << "trial " << trial << " type " << t;
    }
  }
}

TEST(DetailedIlp, FallsBackAboveFragmentCap) {
  const arch::Board board = arch::single_fpga_board("XCV1000", 2);
  design::Design design("d");
  // Many fragments: a wide-and-deep structure decomposes into dozens of
  // pieces (7x2 full + 7 column + 2 row + corner = 24 fragments).
  design.add(ds("wide", 2000, 40));
  design.add(ds("more", 500, 24));
  design.set_all_conflicting();
  const CostTable table(design, board);
  ASSERT_TRUE(table.feasible(0, 0));
  ASSERT_TRUE(table.feasible(1, 0));
  GlobalAssignment assignment;
  assignment.type_of = {0, 0};
  DetailedIlpOptions options;
  options.max_fragments_for_ilp = 4;  // force the fallback
  const DetailedMapping mapping =
      map_detailed_ilp(design, board, table, assignment, options);
  ASSERT_TRUE(mapping.success) << mapping.failure;
  EXPECT_TRUE(validate_mapping(design, board, assignment, mapping).empty());
}

}  // namespace
}  // namespace gmm::mapping
