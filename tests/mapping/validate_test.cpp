// Negative tests: the validator must catch every corruption class it
// advertises.  A validator that never fires is worse than none — these
// tests corrupt known-good mappings one field at a time.
#include "mapping/validate.hpp"

#include <gtest/gtest.h>

#include "arch/device_catalog.hpp"
#include "mapping/detailed_mapper.hpp"
#include "mapping/pipeline.hpp"

namespace gmm::mapping {
namespace {

struct Fixture {
  arch::Board board{"b"};
  design::Design design{"d"};
  CostTable* table = nullptr;
  GlobalAssignment assignment;
  DetailedMapping mapping;

  Fixture() {
    board.add_bank_type(
        arch::on_chip_bank_type(*arch::find_device("XCV300")));
    design::DataStructure a;
    a.name = "a";
    a.depth = 1024;
    a.width = 1;
    design.add(a);
    design::DataStructure b;
    b.name = "b";
    b.depth = 2048;
    b.width = 1;
    design.add(b);
    design.set_all_conflicting();
    table = new CostTable(design, board);
    assignment.type_of = {0, 0};
    mapping = map_detailed(design, board, *table, assignment);
  }
  ~Fixture() { delete table; }
};

TEST(ValidateNegative, CleanMappingPasses) {
  Fixture f;
  ASSERT_TRUE(f.mapping.success);
  EXPECT_TRUE(
      validate_mapping(f.design, f.board, f.assignment, f.mapping).empty());
}

TEST(ValidateNegative, DetectsFailedMapping) {
  Fixture f;
  f.mapping.success = false;
  f.mapping.failure = "synthetic";
  EXPECT_FALSE(
      validate_mapping(f.design, f.board, f.assignment, f.mapping).empty());
}

TEST(ValidateNegative, DetectsMissingCoverage) {
  Fixture f;
  f.mapping.fragments.pop_back();
  const auto violations =
      validate_mapping(f.design, f.board, f.assignment, f.mapping);
  EXPECT_FALSE(violations.empty());
}

TEST(ValidateNegative, DetectsWrongTypeAssignment) {
  Fixture f;
  f.assignment.type_of[0] = -1;
  EXPECT_FALSE(
      validate_mapping(f.design, f.board, f.assignment, f.mapping).empty());
}

TEST(ValidateNegative, DetectsInstanceOutOfRange) {
  Fixture f;
  f.mapping.fragments.front().instance = 10'000;
  EXPECT_FALSE(
      validate_mapping(f.design, f.board, f.assignment, f.mapping).empty());
}

TEST(ValidateNegative, DetectsPortRangeOverflow) {
  Fixture f;
  f.mapping.fragments.front().first_port = 99;
  EXPECT_FALSE(
      validate_mapping(f.design, f.board, f.assignment, f.mapping).empty());
}

TEST(ValidateNegative, DetectsNonPow2Block) {
  Fixture f;
  f.mapping.fragments.front().block_bits = 1000;  // not a power of two
  EXPECT_FALSE(
      validate_mapping(f.design, f.board, f.assignment, f.mapping).empty());
}

TEST(ValidateNegative, DetectsMisalignedOffset) {
  Fixture f;
  f.mapping.fragments.front().offset_bits += 1;
  EXPECT_FALSE(
      validate_mapping(f.design, f.board, f.assignment, f.mapping).empty());
}

TEST(ValidateNegative, DetectsCapacityOverflow) {
  Fixture f;
  f.mapping.fragments.front().offset_bits =
      f.board.type(0).capacity_bits();
  EXPECT_FALSE(
      validate_mapping(f.design, f.board, f.assignment, f.mapping).empty());
}

TEST(ValidateNegative, DetectsUnknownConfig) {
  Fixture f;
  f.mapping.fragments.front().config_index = 99;
  EXPECT_FALSE(
      validate_mapping(f.design, f.board, f.assignment, f.mapping).empty());
}

TEST(ValidateNegative, DetectsConflictingShare) {
  // Force both structures' fragments onto the identical block+ports of
  // one instance; they conflict, so sharing is illegal.
  Fixture f;
  ASSERT_GE(f.mapping.fragments.size(), 2u);
  PlacedFragment& second = f.mapping.fragments[1];
  const PlacedFragment& first = f.mapping.fragments[0];
  second.instance = first.instance;
  second.offset_bits = first.offset_bits;
  second.block_bits = first.block_bits;
  second.first_port = first.first_port;
  second.ports = first.ports;
  second.config_index = first.config_index;
  EXPECT_FALSE(
      validate_mapping(f.design, f.board, f.assignment, f.mapping).empty());
}

TEST(ValidateNegative, DetectsPartialBlockOverlap) {
  Fixture f;
  ASSERT_GE(f.mapping.fragments.size(), 2u);
  PlacedFragment& second = f.mapping.fragments[1];
  const PlacedFragment& first = f.mapping.fragments[0];
  // Same instance, overlapping but not identical blocks.
  second.instance = first.instance;
  second.offset_bits = first.offset_bits;  // same offset...
  second.block_bits = first.block_bits * 2;  // ...different size
  second.first_port = first.first_port + first.ports;  // ports disjoint
  const auto violations =
      validate_mapping(f.design, f.board, f.assignment, f.mapping);
  EXPECT_FALSE(violations.empty());
}

}  // namespace
}  // namespace gmm::mapping
