#include "mapping/cost_model.hpp"

#include <gtest/gtest.h>

#include "arch/device_catalog.hpp"
#include "support/arithmetic.hpp"

namespace gmm::mapping {
namespace {

design::Design two_structure_design() {
  design::Design d("demo");
  design::DataStructure a;
  a.name = "a";
  a.depth = 100;
  a.width = 8;
  d.add(a);
  design::DataStructure b;
  b.name = "b";
  b.depth = 2000;
  b.width = 16;
  d.add(b);
  d.set_all_conflicting();
  return d;
}

TEST(CostModel, OnChipHasNoPinCosts) {
  const arch::Board board = arch::single_fpga_board("XCV1000", 4);
  const design::Design design = two_structure_design();
  const CostTable table(design, board);
  // Type 0 = on-chip BlockRAM (0 pins).
  EXPECT_DOUBLE_EQ(table.breakdown(0, 0).pin_delay, 0.0);
  EXPECT_DOUBLE_EQ(table.breakdown(0, 0).pin_io, 0.0);
  // Type 1 = off-chip SRAM: positive pin costs.
  EXPECT_GT(table.breakdown(0, 1).pin_delay, 0.0);
  EXPECT_GT(table.breakdown(0, 1).pin_io, 0.0);
}

TEST(CostModel, PaperLatencyFormula) {
  // Default (no access counts): latency = D_d * (RL_t + WL_t).
  const arch::Board board = arch::single_fpga_board("XCV1000", 4);
  const design::Design design = two_structure_design();
  const CostTable table(design, board);
  const arch::BankType& onchip = board.type(0);
  EXPECT_DOUBLE_EQ(
      table.breakdown(0, 0).latency,
      static_cast<double>(100 * (onchip.read_latency + onchip.write_latency)));
  const arch::BankType& sram = board.type(1);
  EXPECT_DOUBLE_EQ(
      table.breakdown(1, 1).latency,
      static_cast<double>(2000 * (sram.read_latency + sram.write_latency)));
}

TEST(CostModel, AccessCountsRefineLatency) {
  design::Design design("demo");
  design::DataStructure hot;
  hot.name = "hot";
  hot.depth = 16;
  hot.width = 8;
  hot.reads = 100000;
  hot.writes = 16;
  design.add(hot);
  const arch::Board board = arch::single_fpga_board("XCV1000", 4);
  const CostTable table(design, board);
  const arch::BankType& sram = board.type(1);
  EXPECT_DOUBLE_EQ(table.breakdown(0, 1).latency,
                   static_cast<double>(100000 * sram.read_latency +
                                       16 * sram.write_latency));
}

TEST(CostModel, PinIoUsesConsumedDimensions) {
  const arch::Board board = arch::single_fpga_board("XCV1000", 4);
  const design::Design design = two_structure_design();
  const CostTable table(design, board);
  const PlacementPlan& plan = table.plan(1, 1);
  ASSERT_TRUE(plan.feasible);
  const arch::BankType& sram = board.type(1);
  const double expected = static_cast<double>(
      (support::ilog2_ceil(plan.cd) + plan.cw) * sram.pins_traversed);
  EXPECT_DOUBLE_EQ(table.breakdown(1, 1).pin_io, expected);
}

TEST(CostModel, WeightsScaleComponents) {
  const arch::Board board = arch::single_fpga_board("XCV1000", 4);
  const design::Design design = two_structure_design();
  CostWeights weights;
  weights.latency = 2.0;
  weights.pin_delay = 0.0;
  weights.pin_io = 0.0;
  const CostTable table(design, board, weights);
  EXPECT_DOUBLE_EQ(table.cost(0, 1), 2.0 * table.breakdown(0, 1).latency);
}

TEST(CostModel, AssignmentObjectiveSumsPerStructureCosts) {
  const arch::Board board = arch::single_fpga_board("XCV1000", 4);
  const design::Design design = two_structure_design();
  const CostTable table(design, board);
  const std::vector<int> assignment{0, 1};
  EXPECT_DOUBLE_EQ(table.assignment_objective(assignment),
                   table.cost(0, 0) + table.cost(1, 1));
}

TEST(CostModel, OnChipCheaperThanOffChipForSameStructure) {
  const arch::Board board = arch::single_fpga_board("XCV1000", 4);
  const design::Design design = two_structure_design();
  const CostTable table(design, board);
  // On-chip: lower latency and zero pins; must be cheaper.
  EXPECT_LT(table.cost(0, 0), table.cost(0, 1));
}

TEST(CostModel, NormalizedWeightsBalanceComponents) {
  const arch::Board board = arch::single_fpga_board("XCV1000", 4);
  const design::Design design = two_structure_design();
  const CostWeights w = normalized_weights(design, board);
  EXPECT_GT(w.latency, 0.0);
  EXPECT_GT(w.pin_delay, 0.0);
  EXPECT_GT(w.pin_io, 0.0);
  // After normalization the mean weighted component is ~1, so weighted
  // latency and pin-delay sums agree to within the feasibility pattern.
  double latency_sum = 0, pin_delay_sum = 0;
  for (std::size_t d = 0; d < design.size(); ++d) {
    for (std::size_t t = 0; t < board.num_types(); ++t) {
      if (!plan_placement(design.at(d), board.type(t)).feasible) continue;
      latency_sum += w.latency * CostTable(design, board, w).breakdown(d, t).latency;
      pin_delay_sum += w.pin_delay * CostTable(design, board, w).breakdown(d, t).pin_delay;
    }
  }
  EXPECT_NEAR(latency_sum, pin_delay_sum, 1e-6);
}

}  // namespace
}  // namespace gmm::mapping
